// Tests for the public hmcsim API surface: the sweep fan-out, the trace
// generator, and the workload adapters.
package hmcsim_test

import (
	"context"
	"sync/atomic"
	"testing"

	"hmcsim"
)

var ctx = context.Background()

func TestSweepPreservesOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var calls atomic.Int64
		out := hmcsim.Sweep(ctx, workers, 100, func(i int) int {
			calls.Add(1)
			return i * i
		})
		if len(out) != 100 || calls.Load() != 100 {
			t.Fatalf("workers=%d: %d results from %d calls", workers, len(out), calls.Load())
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if got := hmcsim.Sweep(ctx, 4, 0, func(int) int { return 1 }); got != nil {
		t.Errorf("empty sweep returned %v", got)
	}
}

func TestSweepCancellation(t *testing.T) {
	// A sweep whose context is cancelled partway stops scheduling new
	// jobs: the first job cancels the context, so with one worker the
	// remaining 99 slots must keep their zero value.
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	out := hmcsim.Sweep(cctx, 1, 100, func(i int) int {
		calls.Add(1)
		cancel()
		return i + 1
	})
	if calls.Load() != 1 {
		t.Fatalf("cancelled sweep ran %d jobs, want 1", calls.Load())
	}
	if out[0] != 1 || out[99] != 0 {
		t.Fatalf("partial results wrong: out[0]=%d out[99]=%d", out[0], out[99])
	}

	// A pre-cancelled context schedules nothing, whatever the fan-out.
	for _, workers := range []int{1, 8} {
		var n atomic.Int64
		hmcsim.Sweep(cctx, workers, 50, func(i int) int {
			n.Add(1)
			return i
		})
		if n.Load() != 0 {
			t.Errorf("workers=%d: pre-cancelled sweep ran %d jobs", workers, n.Load())
		}
	}
}

func TestSweep2CrossProduct(t *testing.T) {
	as := []int{1, 2, 3}
	bs := []string{"x", "y"}
	got := hmcsim.Sweep2(ctx, 2, as, bs, func(a int, b string) string {
		return string(rune('0'+a)) + b
	})
	want := []string{"1x", "1y", "2x", "2y", "3x", "3y"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTraceSpecGenerate(t *testing.T) {
	spec := hmcsim.TraceSpec{N: 200, Size: 64, Vaults: 2, Writes: 0.25, Seed: 3}
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 200 {
		t.Fatalf("got %d requests", len(a))
	}
	writes := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical specs", i)
		}
		if a[i].Size != 64 || a[i].Addr%64 != 0 {
			t.Errorf("request %d not 64B-aligned: %+v", i, a[i])
		}
		if a[i].Write {
			writes++
		}
	}
	if writes == 0 || writes == len(a) {
		t.Errorf("write mix %d/%d, want a 25%% blend", writes, len(a))
	}

	if _, err := (hmcsim.TraceSpec{N: 1, Size: 40}).Generate(); err == nil {
		t.Error("size 40 accepted, want error (not a flit multiple)")
	}
	if _, err := (hmcsim.TraceSpec{N: 1, Size: 64, Vaults: 3}).Generate(); err == nil {
		t.Error("3 vaults accepted, want error (not a power of two)")
	}
}

func TestWorkloadAdapters(t *testing.T) {
	sys := hmcsim.NewSystem(hmcsim.DefaultConfig())
	g := hmcsim.GUPS{
		Ports: 2, Size: 32, Pattern: hmcsim.AllVaults,
		Warmup: 2 * hmcsim.Microsecond, Window: 5 * hmcsim.Microsecond,
	}
	m := g.Run(sys)
	if m.Reads == 0 || m.GBps <= 0 || m.AvgLatNs <= 0 {
		t.Errorf("GUPS measurement empty: %+v", m)
	}

	reqs, err := hmcsim.TraceSpec{N: 50, Size: 32, Vaults: 1, Seed: 5}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sys2 := hmcsim.NewSystem(hmcsim.DefaultConfig())
	r := hmcsim.TraceReplay{Requests: reqs, Ports: 3}.Run(sys2)
	if len(r.Ports) != 3 {
		t.Fatalf("want 3 per-port measurements, got %d", len(r.Ports))
	}
	if r.Reads != 150 {
		t.Errorf("aggregate reads = %d, want 150", r.Reads)
	}
	for i, p := range r.Ports {
		if p.Reads != 50 {
			t.Errorf("port %d reads = %d, want 50", i, p.Reads)
		}
	}
}

func TestBackendsComparable(t *testing.T) {
	o := hmcsim.Options{Quick: true}
	backends := hmcsim.ComparisonBackends()
	if len(backends) != 2 {
		t.Fatalf("want 2 comparison backends, got %d", len(backends))
	}
	for _, b := range backends {
		if b.Name() == "" {
			t.Error("unnamed backend")
		}
		if lat := b.IdleLatencyNs(context.Background(), o, 64); lat <= 0 {
			t.Errorf("%s: idle latency %v", b.Name(), lat)
		}
	}
}
