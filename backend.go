package hmcsim

import (
	"context"

	"hmcsim/internal/core"
	"hmcsim/internal/ddr"
	"hmcsim/internal/sim"
)

// Backend is an attachable memory device under test. Each backend
// encapsulates its own measurement methodology so device comparisons
// (the paper's DDR3 baseline, Section IV-B) become plain sweeps over a
// backend list rather than special-cased code.
type Backend interface {
	Name() string
	// IdleLatencyNs measures one isolated read of size bytes, in
	// nanoseconds of device latency. ctx carries cancellation and
	// progress wiring (WithProgress), like every runner entry point.
	IdleLatencyNs(ctx context.Context, o Options, size int) float64
	// RandomReadGBps measures data bandwidth (payload bytes per second,
	// in GB/s) under saturating random reads of size bytes.
	RandomReadGBps(ctx context.Context, o Options, size int) float64
}

// ComparisonBackends returns the devices of the paper's comparison, the
// DDR baseline first.
func ComparisonBackends() []Backend { return []Backend{DDRChannel{}, HMCDevice{}} }

// HMCDevice measures the HMC 1.1 cube behind the AC-510 host model.
type HMCDevice struct{}

// Name identifies the device.
func (HMCDevice) Name() string { return "HMC 1.1 (device)" }

// IdleLatencyNs plays a single read and subtracts the fixed FPGA
// pipeline, exactly how the paper isolates the 100-180 ns HMC
// contribution from the 547 ns infrastructure floor.
func (HMCDevice) IdleLatencyNs(ctx context.Context, o Options, size int) float64 {
	sys := o.NewSystemCtx(ctx)
	trace := sys.RandomTrace(1, size, sys.SingleVault(0), 1)
	ports := sys.PlayStreams([][]Request{trace})
	floor := sys.Cfg.Host.TxLatency + sys.Cfg.Host.RxLatency
	return (ports[0].Mon.AvgLat() - floor).Nanoseconds()
}

// RandomReadGBps saturates the cube with nine GUPS ports of random
// reads and counts payload bytes through the host infrastructure.
func (HMCDevice) RandomReadGBps(ctx context.Context, o Options, size int) float64 {
	sys := o.NewSystemCtx(ctx)
	r := sys.RunGUPS(core.GUPSSpec{
		Ports: 9, Size: size, Pattern: core.AllVaults(),
		Warmup: o.Warmup(), Window: o.Window(),
	})
	return float64(r.Reads*uint64(size)) / r.Window.Seconds() / 1e9
}

// InternalGBps is the cube's aggregate internal bandwidth (16 vaults
// times the per-vault TSV bandwidth); the measured external figure is
// capped by the two half-width links and the FPGA controller, not by
// the memory itself.
func (HMCDevice) InternalGBps() float64 {
	cfg := DefaultConfig()
	return 16 * cfg.HMC.Vault.TSVBandwidth.GBpsValue()
}

// DDRChannel measures a single synchronous DDR3-1600 channel.
type DDRChannel struct{}

// Name identifies the device.
func (DDRChannel) Name() string { return "DDR3-1600 channel" }

// IdleLatencyNs issues one isolated read against an idle channel.
func (DDRChannel) IdleLatencyNs(ctx context.Context, o Options, size int) float64 {
	eng := sim.NewEngine()
	attachCheckpoint(ctx, eng)
	c := ddr.New(eng, ddr.DefaultConfig())
	var out float64
	eng.Schedule(0, func() {
		c.TryAccess(&ddr.Request{Addr: 0x40, Size: size}, func(r *ddr.Request) {
			out = r.Done.Nanoseconds()
		})
	})
	eng.Drain()
	return out
}

// RandomReadGBps drives back-to-back random reads until a fixed request
// count drains, then divides payload bytes by elapsed simulated time.
func (DDRChannel) RandomReadGBps(ctx context.Context, o Options, size int) float64 {
	eng := sim.NewEngine()
	attachCheckpoint(ctx, eng)
	c := ddr.New(eng, ddr.DefaultConfig())
	rng := sim.NewRand(o.Seed + 9)
	completed := 0
	n := 20000
	if o.Quick {
		n = 5000
	}
	var issue func(i int)
	issue = func(i int) {
		if i >= n {
			return
		}
		req := &ddr.Request{Addr: rng.Uint64() & (1<<32 - 1) &^ uint64(size-1), Size: size}
		if !c.TryAccess(req, func(*ddr.Request) { completed++ }) {
			c.Notify(func() { issue(i) })
			return
		}
		issue(i + 1)
	}
	eng.Schedule(0, func() { issue(0) })
	eng.Drain()
	return float64(completed*size) / eng.Now().Seconds() / 1e9
}
