// Benchmarks regenerating every table and figure of the paper, plus
// ablations of the design choices DESIGN.md calls out. Each benchmark
// runs the corresponding experiment on reduced (Quick) sweeps and reports
// its headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints a compact reproduction summary. The hmcsim CLI runs the full
// paper-scale sweeps.
package hmcsim_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"hmcsim"
	"hmcsim/internal/core"
	"hmcsim/internal/dram"
	"hmcsim/internal/exp"
	"hmcsim/internal/sim"
)

// ctx is declared in api_test.go; both files share package hmcsim_test.
var quick = exp.Options{Quick: true}

// BenchmarkExperiments iterates the experiment registry, so newly
// registered runners are benchmarked without editing this file.
func BenchmarkExperiments(b *testing.B) {
	for _, r := range exp.Runners() {
		b.Run(r.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := r.Run(ctx, quick)
				if err != nil {
					b.Fatalf("%s: %v", r.Name(), err)
				}
				if len(res.Series) == 0 {
					b.Fatalf("%s: empty result", r.Name())
				}
			}
		})
	}
}

// TestBenchSweep runs every registered experiment once in quick mode
// and writes the wall-clock trajectory to BENCH_sweep.json, the
// performance record future changes are compared against. Each entry
// records the engine shard count it ran with: the registry pass uses
// the serial reference engine (shards 0), and the heavyweight figures
// are re-timed on the 4-shard lockstep engine so intra-run speedup has
// a tracked trajectory too.
func TestBenchSweep(t *testing.T) {
	type entry struct {
		Name   string  `json:"name"`
		Shards int     `json:"shards"`
		Millis float64 `json:"millis"`
	}
	// Record the effective fan-out: timings scale with the cores the
	// sweeps actually used, so trajectories are only comparable between
	// runs with the same worker count.
	sweep := struct {
		Quick   bool    `json:"quick"`
		Workers int     `json:"workers"`
		Entries []entry `json:"entries"`
	}{Quick: true, Workers: runtime.NumCPU()}
	timed := func(r hmcsim.Runner, o exp.Options) {
		start := time.Now()
		res, err := r.Run(ctx, o)
		if err != nil {
			t.Fatalf("runner %q: %v", r.Name(), err)
		}
		if res.Name != r.Name() {
			t.Fatalf("runner %q produced result %q", r.Name(), res.Name)
		}
		sweep.Entries = append(sweep.Entries, entry{
			Name:   r.Name(),
			Shards: o.Shards,
			Millis: float64(time.Since(start).Microseconds()) / 1000,
		})
	}
	for _, r := range exp.Runners() {
		timed(r, quick)
	}
	for _, name := range []string{"fig6", "fig13"} {
		r, err := exp.Runner(name)
		if err != nil {
			t.Fatal(err)
		}
		timed(r, exp.Options{Quick: true, Shards: 4})
	}
	blob, err := json.MarshalIndent(sweep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sweep.json", append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestShardSpeedupSmoke is the perf acceptance gate for the sharded
// engine: on a machine with cores to spare, running fig13 on a 4-shard
// lockstep engine must beat the serial reference engine by a clear
// margin (at least 10%, far below the expected ~2x, so scheduler noise
// cannot flake it). Skipped below 4 cores, where the shards would just
// time-slice one CPU.
func TestShardSpeedupSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup smoke runs fig13 twice; skipped with -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >=4 CPUs for a meaningful shard speedup, have %d", runtime.NumCPU())
	}
	wall := func(shards int) time.Duration {
		start := time.Now()
		if _, err := exp.Run(ctx, "fig13", exp.Options{Quick: true, Workers: 1, Shards: shards}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := wall(1)
	sharded := wall(4)
	t.Logf("fig13 quick: shards=1 %v, shards=4 %v (%.2fx)", serial, sharded, float64(serial)/float64(sharded))
	if float64(sharded) >= 0.9*float64(serial) {
		t.Errorf("4-shard fig13 took %v, want < 90%% of serial %v", sharded, serial)
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.TableI()
		if len(r.Rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkEq1PeakBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.PeakBandwidth()
		b.ReportMetric(r.Peak.GBpsValue(), "GB/s-peak")
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig6(ctx, quick)
		if p, ok := r.Point("16 vaults", 128); ok {
			b.ReportMetric(p.GBps, "GB/s-spread128")
			b.ReportMetric(p.AvgLatNs, "ns-spread128")
		}
		if p, ok := r.Point("1 bank", 128); ok {
			b.ReportMetric(p.AvgLatNs, "ns-1bank128")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig7(ctx, quick)
		if p, ok := r.Point(128, 55); ok {
			b.ReportMetric(p.AvgLatNs, "ns-128B-n55")
		}
		if p, ok := r.Point(16, 1); ok {
			b.ReportMetric(p.AvgLatNs, "ns-noload")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig8(ctx, quick)
		if p, ok := r.Point(128, 350); ok {
			b.ReportMetric(p.AvgLatNs, "ns-128B-plateau")
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig9(ctx, quick)
		b.ReportMetric(r.CollisionPenalty(1, 64), "x-collision64")
		b.ReportMetric(r.CollisionPenalty(1, 128), "x-collision128")
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig10(ctx, quick)
		mean16, sigma16 := r.Stats(16)
		mean128, sigma128 := r.Stats(128)
		b.ReportMetric(mean16, "ns-mean16")
		b.ReportMetric(sigma16, "ns-sigma16")
		b.ReportMetric(mean128, "ns-mean128")
		b.ReportMetric(sigma128, "ns-sigma128")
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig13(ctx, quick)
		if p, ok := r.SaturatedPoint(128, "16 vaults"); ok {
			b.ReportMetric(p.GBps, "GB/s-ceiling")
		}
		if p, ok := r.SaturatedPoint(16, "8 banks"); ok {
			b.ReportMetric(p.GBps, "GB/s-vaultcap")
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.Fig14(ctx, quick)
		b.ReportMetric(r.Average(2), "outstanding-2banks")
		b.ReportMetric(r.Average(4), "outstanding-4banks")
	}
}

func BenchmarkDDRComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := exp.DDRComparison(ctx, quick)
		b.ReportMetric(r.HMCRandomGBps/r.DDRRandomGBps, "x-hmc-vs-ddr")
	}
}

// --- Ablations -----------------------------------------------------------

// gupsOnce runs one 9-port GUPS measurement on a custom configuration.
func gupsOnce(cfg core.Config, size int, pattern func(*core.System) core.Pattern) core.Result {
	sys := core.NewSystem(cfg)
	return sys.RunGUPS(core.GUPSSpec{
		Ports: 9, Size: size, Pattern: pattern(sys),
		Warmup: 15 * sim.Microsecond, Window: 40 * sim.Microsecond,
	})
}

// BenchmarkAblationBankQueueDepth shows that the per-bank queue depth sets
// the outstanding-request plateau of Figure 14: halving the queues halves
// the bank-bound occupancy.
func BenchmarkAblationBankQueueDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		deep := core.DefaultConfig()
		shallow := core.DefaultConfig()
		shallow.HMC.Vault.BankQueueDepth = 32
		pat := func(s *core.System) core.Pattern { return s.Banks(4) }
		rDeep := gupsOnce(deep, 32, pat)
		rShallow := gupsOnce(shallow, 32, pat)
		b.ReportMetric(rDeep.HMCOutstanding, "outstanding-q128")
		b.ReportMetric(rShallow.HMCOutstanding, "outstanding-q32")
	}
}

// BenchmarkAblationOpenPage compares the vault's closed-page policy with
// open-page under random traffic: random accesses almost never hit, so
// open-page only adds precharge-on-demand latency.
func BenchmarkAblationOpenPage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		closed := core.DefaultConfig()
		open := core.DefaultConfig()
		open.HMC.Vault.Policy = dram.OpenPage
		pat := func(s *core.System) core.Pattern { return s.Banks(1) }
		rClosed := gupsOnce(closed, 64, pat)
		rOpen := gupsOnce(open, 64, pat)
		b.ReportMetric(rClosed.Bandwidth.GBpsValue(), "GB/s-closed")
		b.ReportMetric(rOpen.Bandwidth.GBpsValue(), "GB/s-open")
	}
}

// BenchmarkAblationSingleLink removes one of the two half-width links,
// halving the external ceiling of Figures 6 and 13 while leaving the
// within-vault plateaus untouched.
func BenchmarkAblationSingleLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		two := core.DefaultConfig()
		one := core.DefaultConfig()
		one.HMC.Links = 1
		one.HMC.LinkHome = []int{0}
		all := func(s *core.System) core.Pattern { return core.AllVaults() }
		rTwo := gupsOnce(two, 128, all)
		rOne := gupsOnce(one, 128, all)
		b.ReportMetric(rTwo.Bandwidth.GBpsValue(), "GB/s-2links")
		b.ReportMetric(rOne.Bandwidth.GBpsValue(), "GB/s-1link")

		vault := func(s *core.System) core.Pattern { return s.Vaults(1) }
		vTwo := gupsOnce(two, 128, vault)
		b.ReportMetric(vTwo.Bandwidth.GBpsValue(), "GB/s-vault-2links")
	}
}

// BenchmarkAblationNoCBuffer varies the router credit depth: tiny buffers
// throttle distributed traffic; the default is sized so the NoC is not
// the artificial bottleneck.
func BenchmarkAblationNoCBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := core.DefaultConfig()
		small.HMC.NoC.InputBuffer = 1
		big := core.DefaultConfig()
		all := func(s *core.System) core.Pattern { return core.AllVaults() }
		rSmall := gupsOnce(small, 64, all)
		rBig := gupsOnce(big, 64, all)
		b.ReportMetric(rSmall.Bandwidth.GBpsValue(), "GB/s-buf1")
		b.ReportMetric(rBig.Bandwidth.GBpsValue(), "GB/s-buf8")
	}
}

// BenchmarkAblationReadWriteMix revisits Section IV-F's bi-directional
// asymmetry: read-only traffic saturates the response direction while a
// 50/50 mix spreads load over both.
func BenchmarkAblationReadWriteMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		all := func(s *core.System) core.Pattern { return core.AllVaults() }
		sysR := core.NewSystem(cfg)
		readOnly := sysR.RunGUPS(core.GUPSSpec{
			Ports: 9, Size: 128, Pattern: all(sysR),
			Warmup: 15 * sim.Microsecond, Window: 40 * sim.Microsecond,
		})
		sysM := core.NewSystem(cfg)
		mixed := sysM.RunGUPS(core.GUPSSpec{
			Ports: 9, Size: 128, Pattern: all(sysM), Kind: 2, // ReadWriteMix
			Warmup: 15 * sim.Microsecond, Window: 40 * sim.Microsecond,
		})
		b.ReportMetric(readOnly.Bandwidth.GBpsValue(), "GB/s-readonly")
		b.ReportMetric(mixed.Bandwidth.GBpsValue(), "GB/s-mixed")
	}
}

// BenchmarkEngineThroughput measures the simulation kernel itself:
// simulated transactions per wall second under full random load.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(core.DefaultConfig())
		res := sys.RunGUPS(core.GUPSSpec{
			Ports: 9, Size: 32, Pattern: core.AllVaults(),
			Warmup: 5 * sim.Microsecond, Window: 50 * sim.Microsecond,
		})
		if res.Reads == 0 {
			b.Fatal("no traffic")
		}
	}
}
