package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestTimelineFlagWritesChromeTrace: `hmcsim -exp fig6 -quick -timeline
// out.json` simulates normally and writes a valid Chrome trace_event
// file with per-component counter series.
func TestTimelineFlagWritesChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig6", "-quick", "-timeline", path}, &out, &stderr)
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(out.String(), "fig6") {
		t.Fatalf("results missing from stdout:\n%s", out.String())
	}
	if !strings.Contains(stderr.String(), "timeline written to "+path) {
		t.Fatalf("stderr missing the timeline note:\n%s", stderr.String())
	}
	blob := readFile(t, path)
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(blob, &trace); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q, want ms", trace.DisplayTimeUnit)
	}
	counters := map[string]bool{}
	meta := 0
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "C":
			counters[ev.Name] = true
		case "M":
			meta++
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta == 0 {
		t.Fatal("trace has no process_name metadata events")
	}
	for _, want := range []string{"vault 0", "noc hops", "host tags"} {
		if !counters[want] {
			t.Fatalf("trace missing counter series %q (have %v)", want, counters)
		}
	}
}

// TestTimelineRejectedWithServer: -timeline rides inside the local
// simulation contexts, so combining it with -server is a usage error.
func TestTimelineRejectedWithServer(t *testing.T) {
	var out, stderr bytes.Buffer
	code := run(context.Background(), []string{"-server", "http://localhost:1", "-exp", "fig6", "-timeline", "x.json"}, &out, &stderr)
	if code != 2 {
		t.Fatalf("exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-timeline is local-only") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestSpansRequiresServer: -spans describes serving-layer stages, so a
// local run rejects it.
func TestSpansRequiresServer(t *testing.T) {
	var out, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "eq1", "-spans"}, &out, &stderr)
	if code != 2 {
		t.Fatalf("exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-spans requires -server") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestSpansRemoteText: a -server run with -spans prints the per-job
// breakdowns and per-daemon aggregate after the results.
func TestSpansRemoteText(t *testing.T) {
	url := newDaemon(t)
	var out, stderr bytes.Buffer
	code := run(context.Background(), []string{"-server", url, "-exp", "eq1,table1", "-spans"}, &out, &stderr)
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr.String())
	}
	s := out.String()
	if !strings.Contains(s, "spans (trace ") {
		t.Fatalf("stdout missing the spans section:\n%s", s)
	}
	for _, want := range []string{"eq1", "table1", "done ", url + ": 2 job(s)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("spans section missing %q:\n%s", want, s)
		}
	}
}

// TestSpansRemoteJSON: with -format json the spans wrap the results in
// an envelope carrying the run's trace ID.
func TestSpansRemoteJSON(t *testing.T) {
	url := newDaemon(t)
	var out, stderr bytes.Buffer
	code := run(context.Background(), []string{"-server", url, "-exp", "eq1", "-format", "json", "-spans"}, &out, &stderr)
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr.String())
	}
	var env struct {
		Results []json.RawMessage `json:"results"`
		TraceID string            `json:"traceId"`
		Spans   []struct {
			Exp    string `json:"exp"`
			Daemon string `json:"daemon"`
			Spans  struct {
				TraceID string `json:"traceId"`
				Stages  []struct {
					Name  string  `json:"name"`
					DurMs float64 `json:"durMs"`
				} `json:"stages"`
				TotalMs float64 `json:"totalMs"`
			} `json:"spans"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatalf("output is not the spans envelope: %v\n%s", err, out.String())
	}
	if len(env.Results) != 1 || len(env.Spans) != 1 || env.TraceID == "" {
		t.Fatalf("envelope wrong: %d results, %d spans, trace %q", len(env.Results), len(env.Spans), env.TraceID)
	}
	sp := env.Spans[0]
	if sp.Exp != "eq1" || sp.Daemon != url || sp.Spans.TraceID != env.TraceID {
		t.Fatalf("span report wrong: %+v", sp)
	}
	var sum float64
	for _, st := range sp.Spans.Stages {
		sum += st.DurMs
	}
	if diff := sum - sp.Spans.TotalMs; diff > 0.01 || diff < -0.01 {
		t.Fatalf("stages sum %.3f, total %.3f", sum, sp.Spans.TotalMs)
	}
}
