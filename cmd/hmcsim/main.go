// Command hmcsim regenerates the tables and figures of "Performance
// Implications of NoCs on 3D-Stacked Memories: Insights from the Hybrid
// Memory Cube" (ISPASS 2018) on the cycle-level simulator in this
// repository.
//
// Usage:
//
//	hmcsim -exp table1|eq1|fig6|fig7|fig8|fig9|fig10|fig13|fig14|all [-quick] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hmcsim/internal/exp"
)

func main() {
	which := flag.String("exp", "all", "experiment to run (table1, eq1, fig6, fig7, fig8, fig9, fig10, fig13, fig14, all)")
	quick := flag.Bool("quick", false, "reduced sweeps and windows")
	seed := flag.Uint64("seed", 0, "workload seed override")
	flag.Parse()

	o := exp.Options{Quick: *quick, Seed: *seed}
	runners := map[string]func() fmt.Stringer{
		"table1": func() fmt.Stringer { return exp.TableI() },
		"eq1":    func() fmt.Stringer { return exp.PeakBandwidth() },
		"fig6":   func() fmt.Stringer { return exp.Fig6(o) },
		"fig7":   func() fmt.Stringer { return exp.Fig7(o) },
		"fig8":   func() fmt.Stringer { return exp.Fig8(o) },
		"fig9":   func() fmt.Stringer { return exp.Fig9(o) },
		"fig10":  func() fmt.Stringer { return exp.Fig10(o) },
		"fig13":  func() fmt.Stringer { return exp.Fig13(o) },
		"fig14":  func() fmt.Stringer { return exp.Fig14(o) },
		"ddr":    func() fmt.Stringer { return exp.DDRComparison(o) },
	}
	order := []string{"table1", "eq1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig13", "fig14", "ddr"}

	names := []string{*which}
	if *which == "all" {
		names = order
	}
	for _, name := range names {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "hmcsim: unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		result := run()
		fmt.Println(result)
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
