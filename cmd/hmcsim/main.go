// Command hmcsim regenerates the tables and figures of "Performance
// Implications of NoCs on 3D-Stacked Memories: Insights from the Hybrid
// Memory Cube" (ISPASS 2018) on the cycle-level simulator in this
// repository. Experiments come from the internal/exp registry, so a
// newly registered runner appears here (and in -list) automatically.
//
// Usage:
//
//	hmcsim [-exp name[,name...]|all] [-quick] [-seed N] [-workers N] [-format text|json] [-list]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hmcsim"
	"hmcsim/internal/exp"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hmcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	which := fs.String("exp", "all", "experiment(s) to run: a registered name, a comma-separated list, or \"all\"")
	quick := fs.Bool("quick", false, "reduced sweeps and windows")
	seed := fs.Uint64("seed", 0, "workload seed override")
	workers := fs.Int("workers", 0, "sweep fan-out; 0 = NumCPU, 1 = sequential (results are identical either way)")
	format := fs.String("format", "text", "output format: text or json")
	list := fs.Bool("list", false, "list registered experiments and exit")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *list {
		for _, r := range exp.Runners() {
			fmt.Fprintf(stdout, "%-8s %s\n", r.Name(), r.Describe())
		}
		return 0
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "hmcsim: unknown format %q (want text or json)\n", *format)
		return 2
	}

	names := strings.Split(*which, ",")
	if *which == "all" {
		names = exp.Names()
	}
	// Resolve every name before running anything: a typo late in the
	// list must fail fast, not discard minutes of completed sweeps.
	for i, name := range names {
		names[i] = strings.TrimSpace(name)
		if _, err := exp.Runner(names[i]); err != nil {
			fmt.Fprintln(stderr, "hmcsim:", err)
			return 2
		}
	}
	o := exp.Options{Quick: *quick, Seed: *seed, Workers: *workers}

	var results []hmcsim.Result
	for _, name := range names {
		start := time.Now()
		res, err := exp.Run(name, o)
		if err != nil {
			fmt.Fprintln(stderr, "hmcsim:", err)
			return 2
		}
		if *format == "text" {
			fmt.Fprintln(stdout, res)
			fmt.Fprintf(stdout, "[%s took %v]\n\n", res.Name, time.Since(start).Round(time.Millisecond))
		} else {
			results = append(results, res)
		}
	}
	if *format == "json" {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(stderr, "hmcsim:", err)
			return 1
		}
	}
	return 0
}
