// Command hmcsim regenerates the tables and figures of "Performance
// Implications of NoCs on 3D-Stacked Memories: Insights from the Hybrid
// Memory Cube" (ISPASS 2018) on the cycle-level simulator in this
// repository. Experiments come from the internal/exp registry, so a
// newly registered runner appears here (and in -list) automatically.
//
// With -server the same commands run against one or more hmcsimd
// daemons instead of simulating locally: specs are submitted in batches
// and polled until done, so repeated runs of the same spec come back
// instantly from the daemon's result cache. A comma-separated -server
// list shards the experiments across the daemons, keeps each daemon's
// worker pool full, and fails a dead daemon's unfinished work over to
// its peers; results print in submission order either way.
//
// Usage:
//
//	hmcsim [-exp name[,name...]|all] [-quick] [-seed N] [-workers N]
//	       [-shards N] [-format text|json] [-traffic spec] [-trace]
//	       [-timeline file] [-shardstats] [-spans] [-list]
//	       [-server URL[,URL...]] [-cpuprofile file] [-memprofile file]
//
// -trace (local runs only) compiles per-component tracers into every
// simulated system and dumps their aggregate summary — vault queue
// occupancy, link utilization, NoC hops, host tag-pool pressure —
// after the results (text) or as a "trace" field wrapping them (json).
//
// -timeline file (local runs only) additionally samples per-component
// activity — vault accepts, link flits, NoC hops, host tag traffic —
// over simulated time and writes the run's timeline as Chrome
// trace_event JSON, loadable at https://ui.perfetto.dev.
//
// -shardstats (local runs only, with -shards) attaches the lockstep
// observatory to every sharded engine group and prints a per-shard
// imbalance report — busy vs barrier time, events per window, mailbox
// pressure — plus a suggested shard count, after each experiment. The
// snapshot also rides the Result JSON as a "group" field.
//
// -spans (-server runs only) fetches each completed job's lifecycle
// stage breakdown (received, queued, cache-check, running, marshal,
// done) from its daemon and prints the per-job spans plus a per-daemon
// aggregate after the results; every job in the run shares one trace
// ID, also usable to correlate the daemons' /v1/flight records.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hmcsim"
	"hmcsim/internal/exp"
	"hmcsim/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hmcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	which := fs.String("exp", "all", "experiment(s) to run: a registered name, a comma-separated list, or \"all\"")
	quick := fs.Bool("quick", false, "reduced sweeps and windows")
	seed := fs.Uint64("seed", 0, "workload seed override")
	workers := fs.Int("workers", 0, "sweep fan-out; 0 = NumCPU, 1 = sequential (results are identical either way)")
	shards := fs.Int("shards", 0, "parallel engine shards per simulation; 0 = serial reference engine (results are identical either way)")
	format := fs.String("format", "text", "output format: text or json")
	trafficSpec := fs.String("traffic", "", "synthetic traffic spec for the \"traffic\" experiment: a pattern name or a JSON TrafficSpec")
	trace := fs.Bool("trace", false, "collect and dump per-component tracer summaries (local runs only)")
	timeline := fs.String("timeline", "", "write a Chrome trace_event timeline of per-component activity to this file (local runs only)")
	shardStats := fs.Bool("shardstats", false, "collect and print a per-shard lockstep report (local runs only; needs -shards >= 1)")
	spans := fs.Bool("spans", false, "print per-job lifecycle spans and per-daemon aggregates (-server runs only)")
	list := fs.Bool("list", false, "list registered experiments and exit")
	server := fs.String("server", "", "comma-separated hmcsimd base URL(s); run remotely instead of simulating locally")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "hmcsim:", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "hmcsim:", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "hmcsim:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "hmcsim:", err)
			}
		}()
	}
	var fleet *service.Fleet
	if *server != "" {
		fleet = service.NewFleet(*server)
		fleet.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, "hmcsim: "+format+"\n", args...)
		}
	}

	// -list ignores -format, so it is handled before format validation
	// (long-standing behavior scripts may rely on).
	if *list {
		return runList(ctx, fleet, stdout, stderr)
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "hmcsim: unknown format %q (want text or json)\n", *format)
		return 2
	}

	// "all" expands against whichever registry will actually run the
	// experiments: the daemon's in -server mode (the two binaries may
	// not be the same build), the local one otherwise.
	var names []string
	if *which != "all" {
		names = strings.Split(*which, ",")
		for i, name := range names {
			names[i] = strings.TrimSpace(name)
		}
	}
	o := exp.Options{Quick: *quick, Seed: *seed, Workers: *workers, Shards: *shards}
	if *trafficSpec != "" {
		// Only the generic "traffic" experiment consumes the spec. For
		// any other selection the flag would be silently ignored — and,
		// in -server mode, needlessly fork the daemon's cache keys — so
		// reject the combination instead.
		if len(names) != 1 || names[0] != hmcsim.TrafficExp {
			fmt.Fprintln(stderr, `hmcsim: -traffic only applies to the "traffic" experiment (use -exp traffic)`)
			return 2
		}
		ts, err := parseTraffic(*trafficSpec)
		if err != nil {
			fmt.Fprintln(stderr, "hmcsim:", err)
			return 2
		}
		o.Traffic = ts
	}
	if fleet != nil {
		if *workers != 0 {
			fmt.Fprintln(stderr, "hmcsim: -workers is local-only; the daemon runs each job on one single-threaded engine")
		}
		if *trace {
			// Tracers change what the simulation records, not what it
			// computes, but they are not part of the spec — a daemon job
			// would silently ignore the flag, so reject it instead.
			fmt.Fprintln(stderr, "hmcsim: -trace is local-only; daemons expose aggregate metrics at /metrics instead")
			return 2
		}
		if *timeline != "" {
			// Same reasoning as -trace: the sampler rides inside the local
			// simulation contexts and has no remote equivalent.
			fmt.Fprintln(stderr, "hmcsim: -timeline is local-only; use -spans for per-job breakdowns of remote runs")
			return 2
		}
		if *shardStats {
			// Same reasoning again; daemons surface per-shard detail at
			// /v1/stats and /metrics instead.
			fmt.Fprintln(stderr, "hmcsim: -shardstats is local-only; daemons expose per-shard detail at /v1/stats and /metrics")
			return 2
		}
		return runRemote(ctx, fleet, names, o, *format, *spans, stdout, stderr)
	}
	if *spans {
		fmt.Fprintln(stderr, "hmcsim: -spans requires -server; local runs have no serving stages (use -trace or -timeline)")
		return 2
	}
	if *shardStats && *shards < 1 {
		fmt.Fprintln(stderr, "hmcsim: -shardstats needs a sharded engine; add -shards N (N >= 1)")
		return 2
	}
	if names == nil {
		names = exp.Names()
	}
	return runLocal(ctx, names, o, *format, *trace, *timeline, *shardStats, stdout, stderr)
}

// parseTraffic turns the -traffic flag into a validated spec. The flag
// accepts either a bare pattern name ("zipf") or a full JSON
// TrafficSpec ({"pattern": "zipf", "zipfTheta": 1.2, ...}); an unknown
// pattern fails fast here with the same valid-name listing the daemon
// returns as HTTP 400.
func parseTraffic(arg string) (*hmcsim.TrafficSpec, error) {
	var spec hmcsim.TrafficSpec
	if strings.HasPrefix(strings.TrimSpace(arg), "{") {
		dec := json.NewDecoder(strings.NewReader(arg))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return nil, fmt.Errorf("bad -traffic JSON: %w", err)
		}
		if dec.More() {
			return nil, fmt.Errorf("bad -traffic JSON: trailing data after the spec object")
		}
	} else {
		spec.Pattern = arg
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// runList prints the experiment registry — the local one, or the
// fleet's when -server is set.
func runList(ctx context.Context, fleet *service.Fleet, stdout, stderr io.Writer) int {
	if fleet == nil {
		for _, r := range exp.Runners() {
			fmt.Fprintf(stdout, "%-14s %s\n", r.Name(), r.Describe())
		}
		return 0
	}
	exps, err := fleet.Experiments(ctx)
	if err != nil {
		fmt.Fprintln(stderr, "hmcsim:", err)
		return 1
	}
	for _, e := range exps {
		fmt.Fprintf(stdout, "%-14s %s\n", e.Name, e.Title)
	}
	return 0
}

// runLocal simulates in this process, exactly the pre-daemon behavior.
// With trace set, every system the experiments build carries
// per-component tracers, and their aggregate summary prints after the
// results (text) or wraps them as a "trace" field (json). With timeline
// set, the systems additionally sample per-component activity over
// simulated time, written as Chrome trace_event JSON after the run.
// With shardStats set, each experiment's sharded systems report
// lockstep telemetry, folded into its Result and rendered as a
// per-shard imbalance report.
func runLocal(ctx context.Context, names []string, o exp.Options, format string, trace bool, timeline string, shardStats bool, stdout, stderr io.Writer) int {
	// Resolve every name before running anything: a typo late in the
	// list must fail fast, not discard minutes of completed sweeps.
	for _, name := range names {
		if _, err := exp.Runner(name); err != nil {
			fmt.Fprintln(stderr, "hmcsim:", err)
			return 2
		}
	}
	var col *hmcsim.TraceCollector
	if trace {
		ctx, col = hmcsim.WithTrace(ctx)
	}
	var tlc *hmcsim.TimelineCollector
	if timeline != "" {
		// Fail on an unwritable path before simulating, not after.
		f, err := os.Create(timeline)
		if err != nil {
			fmt.Fprintln(stderr, "hmcsim:", err)
			return 2
		}
		ctx, tlc = hmcsim.WithTimeline(ctx)
		defer func() {
			err := tlc.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(stderr, "hmcsim: write timeline:", err)
				return
			}
			fmt.Fprintf(stderr, "hmcsim: timeline written to %s (load it at https://ui.perfetto.dev)\n", timeline)
		}()
	}
	var results []hmcsim.Result
	for _, name := range names {
		start := time.Now()
		// A fresh collector per experiment keeps each Result's folded
		// snapshot scoped to the systems that experiment built.
		runCtx := ctx
		var ssc *hmcsim.ShardStatsCollector
		if shardStats {
			runCtx, ssc = hmcsim.WithShardStats(ctx)
		}
		res, err := exp.Run(runCtx, name, o)
		if ctx.Err() != nil {
			fmt.Fprintln(stderr, "hmcsim: interrupted")
			return 1
		}
		if err != nil {
			fmt.Fprintln(stderr, "hmcsim:", err)
			return 2
		}
		if ssc != nil {
			gs := ssc.Stats()
			res.Group = &gs
		}
		if format == "text" {
			fmt.Fprintln(stdout, res)
			if res.Group != nil {
				fmt.Fprintln(stdout, res.Group.Report())
			}
			fmt.Fprintf(stdout, "[%s took %v]\n\n", res.Name, time.Since(start).Round(time.Millisecond))
		} else {
			results = append(results, res)
		}
	}
	if format == "json" {
		if col != nil {
			return emitJSON(stdout, stderr, tracedResults{Results: results, Trace: col})
		}
		return emitJSON(stdout, stderr, results)
	}
	if col != nil {
		fmt.Fprintln(stdout, col)
	}
	return 0
}

// tracedResults is the -format json envelope when -trace is on: the
// plain results array becomes {"results": [...], "trace": {...}}.
type tracedResults struct {
	Results []hmcsim.Result        `json:"results"`
	Trace   *hmcsim.TraceCollector `json:"trace"`
}

// runRemote submits one spec per experiment to the daemon fleet in a
// batch, which shards them across the daemons and keeps every remote
// worker busy; results print in submission order. A nil names slice
// means every experiment the fleet registers. With spans set, every
// job's lifecycle breakdown is fetched from its daemon as it completes
// and printed — per job and aggregated per daemon — after the results.
func runRemote(ctx context.Context, fleet *service.Fleet, names []string, o exp.Options, format string, spans bool, stdout, stderr io.Writer) int {
	// Resolve every name against the fleet's registry before submitting
	// anything, mirroring runLocal's fail-fast contract: a typo late in
	// the list must not discard completed simulations.
	exps, err := fleet.Experiments(ctx)
	if err != nil {
		fmt.Fprintln(stderr, "hmcsim:", err)
		return 1
	}
	known := make(map[string]bool, len(exps))
	for _, e := range exps {
		known[e.Name] = true
	}
	if names == nil {
		for _, e := range exps {
			names = append(names, e.Name)
		}
	}
	for _, name := range names {
		if !known[name] {
			fmt.Fprintf(stderr, "hmcsim: unknown experiment %q on the fleet\n", name)
			return 2
		}
	}

	specs := make([]hmcsim.Spec, len(names))
	for i, name := range names {
		specs[i] = hmcsim.Spec{Exp: name, Options: o}
	}
	var spanReports []spanReport
	if spans {
		// One trace ID for the whole run stamps every job it creates, so
		// the daemons' span views and flight records correlate back to
		// this invocation. OnSpans calls are serialized by the fleet.
		fleet.TraceID = service.NewTraceID()
		fleet.OnSpans = func(daemon string, spec hmcsim.Spec, sv service.SpanView) {
			spanReports = append(spanReports, spanReport{Exp: spec.Exp, Daemon: daemon, Spans: sv})
		}
	}
	if format == "text" {
		// Batched runs complete out of order, so stdout keeps the
		// ordered rendering below; a progress line per completion keeps
		// a long fleet run from sitting silent for minutes.
		fleet.OnDone = func(spec hmcsim.Spec, v service.JobView) {
			fmt.Fprintf(stderr, "hmcsim: %s %s\n", spec.Exp, jobOutcome(v))
		}
		// Between completions, stream each running job's live headway
		// (SSE from the daemon), rate-limited so a chatty fleet does not
		// flood the terminal. OnProgress calls are serialized, so the
		// timestamp needs no lock.
		var lastLine time.Time
		fleet.OnProgress = func(spec hmcsim.Spec, p service.JobProgress) {
			if p.State.Terminal() || time.Since(lastLine) < 500*time.Millisecond {
				return // OnDone reports terminal outcomes
			}
			lastLine = time.Now()
			fmt.Fprintf(stderr, "hmcsim: %s running: %d/%d points, %.0f us simulated\n",
				spec.Exp, p.Done, p.Total, float64(p.SimTimePs)/1e6)
		}
	}
	views, err := fleet.Run(ctx, specs)
	if err != nil {
		if ctx.Err() != nil {
			// The fleet has already canceled its in-flight jobs (and
			// reported each through Logf) on the way out.
			fmt.Fprintln(stderr, "hmcsim: interrupted")
			return 1
		}
		// Salvage what finished before the failure: in text mode the
		// completed results still print (as the old one-job-at-a-time
		// path would have), so a sweep that dies on its last experiment
		// does not discard hours of finished simulations.
		if format == "text" {
			for i, job := range views {
				if job.State == service.StateDone {
					fmt.Fprintln(stdout, job.Text)
					fmt.Fprintf(stdout, "[%s %s]\n\n", names[i], jobOutcome(job))
				}
			}
		}
		fmt.Fprintln(stderr, "hmcsim:", err)
		return 1
	}
	var results []json.RawMessage
	for i, job := range views {
		if format == "text" {
			fmt.Fprintln(stdout, job.Text)
			fmt.Fprintf(stdout, "[%s %s]\n\n", names[i], jobOutcome(job))
		} else {
			results = append(results, job.Result)
		}
	}
	if format == "json" {
		if spans {
			return emitJSON(stdout, stderr, spannedResults{Results: results, TraceID: fleet.TraceID, Spans: spanReports})
		}
		return emitJSON(stdout, stderr, results)
	}
	if spans {
		printSpans(stdout, fleet.TraceID, spanReports)
	}
	return 0
}

// spanReport pairs one remote job's span view with the experiment and
// daemon it ran on, for the -spans rendering.
type spanReport struct {
	Exp    string           `json:"exp"`
	Daemon string           `json:"daemon"`
	Spans  service.SpanView `json:"spans"`
}

// spannedResults is the -format json envelope when -spans is on.
type spannedResults struct {
	Results []json.RawMessage `json:"results"`
	TraceID string            `json:"traceId"`
	Spans   []spanReport      `json:"spans"`
}

// printSpans renders the per-job breakdowns in completion order, then
// aggregates them per daemon so a sharded run shows at a glance where
// time went and which daemon served which share.
func printSpans(stdout io.Writer, traceID string, reports []spanReport) {
	fmt.Fprintf(stdout, "spans (trace %s):\n", traceID)
	type agg struct {
		daemon  string
		jobs    int
		cached  int
		totalMs float64
	}
	var order []string
	byDaemon := map[string]*agg{}
	for _, r := range reports {
		var b strings.Builder
		for i, st := range r.Spans.Stages {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %.1fms", st.Name, st.DurMs)
		}
		cached := ""
		if r.Spans.Cached {
			cached = " (cached)"
		}
		fmt.Fprintf(stdout, "  %-14s %s @ %s%s: total %.1fms: %s\n",
			r.Exp, r.Spans.ID, r.Daemon, cached, r.Spans.TotalMs, b.String())
		a := byDaemon[r.Daemon]
		if a == nil {
			a = &agg{daemon: r.Daemon}
			byDaemon[r.Daemon] = a
			order = append(order, r.Daemon)
		}
		a.jobs++
		if r.Spans.Cached {
			a.cached++
		}
		a.totalMs += r.Spans.TotalMs
	}
	for _, d := range order {
		a := byDaemon[d]
		fmt.Fprintf(stdout, "  %s: %d job(s), %d cached, %.1fms total latency\n",
			a.daemon, a.jobs, a.cached, a.totalMs)
	}
}

// jobOutcome renders how a remote job finished and how long it took,
// shared by the live progress lines and the final ordered output.
func jobOutcome(v service.JobView) string {
	how := "simulated"
	if v.Cached {
		how = "served from cache"
	}
	elapsed := time.Duration(v.ElapsedMs * float64(time.Millisecond))
	return fmt.Sprintf("%s in %v", how, elapsed.Round(time.Millisecond))
}

func emitJSON[T any](stdout, stderr io.Writer, results T) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(stderr, "hmcsim:", err)
		return 1
	}
	return 0
}
