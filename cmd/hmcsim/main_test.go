package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hmcsim"
	"hmcsim/internal/exp"
	"hmcsim/internal/service"
)

// newDaemon serves the real experiment registry the way cmd/hmcsimd
// does, over httptest.
func newDaemon(t *testing.T) string {
	t.Helper()
	svc := service.New(service.Config{Workers: 2}, exp.Runners())
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return ts.URL
}

func TestListLocalAndRemote(t *testing.T) {
	url := newDaemon(t)
	var local, remote bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &local, &local); code != 0 {
		t.Fatalf("local -list exited %d: %s", code, local.String())
	}
	if code := run(context.Background(), []string{"-server", url, "-list"}, &remote, &remote); code != 0 {
		t.Fatalf("remote -list exited %d: %s", code, remote.String())
	}
	// The daemon serves the same registry, so the listings agree.
	if local.String() != remote.String() {
		t.Fatalf("listings differ:\nlocal:\n%s\nremote:\n%s", local.String(), remote.String())
	}
	if !strings.Contains(local.String(), "fig6") || !strings.Contains(local.String(), "Figure 6") {
		t.Fatalf("listing missing fig6 row:\n%s", local.String())
	}
}

func TestRemoteRunMatchesLocal(t *testing.T) {
	url := newDaemon(t)
	args := []string{"-exp", "table1", "-format", "json"}

	var localOut, remoteOut, stderr bytes.Buffer
	if code := run(context.Background(), args, &localOut, &stderr); code != 0 {
		t.Fatalf("local run exited %d: %s", code, stderr.String())
	}
	remoteArgs := append([]string{"-server", url}, args...)
	if code := run(context.Background(), remoteArgs, &remoteOut, &stderr); code != 0 {
		t.Fatalf("remote run exited %d: %s", code, stderr.String())
	}

	var localRes, remoteRes []hmcsim.Result
	if err := json.Unmarshal(localOut.Bytes(), &localRes); err != nil {
		t.Fatalf("local output: %v", err)
	}
	if err := json.Unmarshal(remoteOut.Bytes(), &remoteRes); err != nil {
		t.Fatalf("remote output: %v", err)
	}
	if len(localRes) != 1 || len(remoteRes) != 1 {
		t.Fatalf("result counts %d / %d, want 1 / 1", len(localRes), len(remoteRes))
	}
	if localRes[0].Name != remoteRes[0].Name || len(localRes[0].Series) != len(remoteRes[0].Series) {
		t.Fatalf("remote result diverges from local:\nlocal: %+v\nremote: %+v", localRes[0], remoteRes[0])
	}

	// A second remote run of the identical spec is a cache hit and
	// byte-identical output.
	var again bytes.Buffer
	if code := run(context.Background(), remoteArgs, &again, &stderr); code != 0 {
		t.Fatalf("second remote run exited %d: %s", code, stderr.String())
	}
	if !bytes.Equal(again.Bytes(), remoteOut.Bytes()) {
		t.Fatal("cached remote rerun not byte-identical")
	}
}

func TestRemoteTextOutput(t *testing.T) {
	url := newDaemon(t)
	var out, stderr bytes.Buffer
	code := run(context.Background(), []string{"-server", url, "-exp", "eq1"}, &out, &stderr)
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(out.String(), "BWpeak") {
		t.Fatalf("remote text output missing the rendered table:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "simulated in") {
		t.Fatalf("remote text output missing timing line:\n%s", out.String())
	}
}

// TestTrafficLocalRemoteByteIdentical is the traffic acceptance path:
// `hmcsim -exp traffic-zipf -format json` and the identical spec
// submitted through hmcsimd must emit byte-identical JSON, and the
// repeated daemon submission must be served from the cache.
func TestTrafficLocalRemoteByteIdentical(t *testing.T) {
	svc := service.New(service.Config{Workers: 2}, exp.Runners())
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })

	args := []string{"-exp", "traffic-zipf", "-quick", "-format", "json"}
	var localOut, remoteOut, again, stderr bytes.Buffer
	if code := run(context.Background(), args, &localOut, &stderr); code != 0 {
		t.Fatalf("local run exited %d: %s", code, stderr.String())
	}
	remoteArgs := append([]string{"-server", ts.URL}, args...)
	if code := run(context.Background(), remoteArgs, &remoteOut, &stderr); code != 0 {
		t.Fatalf("remote run exited %d: %s", code, stderr.String())
	}
	if !bytes.Equal(localOut.Bytes(), remoteOut.Bytes()) {
		t.Fatal("daemon-served traffic-zipf JSON differs from the local run")
	}
	hitsBefore := svc.Snapshot().Cache.Hits
	if code := run(context.Background(), remoteArgs, &again, &stderr); code != 0 {
		t.Fatalf("repeat remote run exited %d: %s", code, stderr.String())
	}
	if !bytes.Equal(again.Bytes(), remoteOut.Bytes()) {
		t.Fatal("cached traffic rerun not byte-identical")
	}
	if hits := svc.Snapshot().Cache.Hits; hits <= hitsBefore {
		t.Fatalf("repeat submission was not a cache hit (hits %d -> %d)", hitsBefore, hits)
	}
}

// TestTrafficFlag: -traffic accepts a pattern name or JSON and rejects
// unknown patterns before any simulation (or submission) happens.
func TestTrafficFlag(t *testing.T) {
	var out, stderr bytes.Buffer
	args := []string{"-exp", "traffic", "-quick", "-traffic", `{"pattern":"chase","chaseNodes":256}`}
	if code := run(context.Background(), args, &out, &stderr); code != 0 {
		t.Fatalf("JSON -traffic run exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(out.String(), "chase") {
		t.Fatalf("output does not name the chase pattern:\n%s", out.String())
	}

	out.Reset()
	stderr.Reset()
	if code := run(context.Background(), []string{"-exp", "traffic", "-traffic", "zipfian"}, &out, &stderr); code != 2 {
		t.Fatalf("unknown pattern exited %d, want 2", code)
	}
	for _, name := range hmcsim.TrafficPatterns() {
		if !strings.Contains(stderr.String(), name) {
			t.Errorf("error output %q does not list pattern %q", stderr.String(), name)
		}
	}

	// Trailing JSON after the spec object must not be silently dropped.
	stderr.Reset()
	badJSON := []string{"-exp", "traffic", "-traffic", `{"pattern":"zipf"}{"zipfTheta":1.8}`}
	if code := run(context.Background(), badJSON, &out, &stderr); code != 2 {
		t.Fatalf("trailing JSON exited %d, want 2: %s", code, stderr.String())
	}

	// The flag only parameterizes the generic "traffic" experiment; any
	// other selection would silently ignore it (and fork daemon cache
	// keys), so it is rejected.
	stderr.Reset()
	if code := run(context.Background(), []string{"-exp", "fig6", "-traffic", "zipf"}, &out, &stderr); code != 2 {
		t.Fatalf("-traffic with fig6 exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-exp traffic") {
		t.Fatalf("error %q does not point at -exp traffic", stderr.String())
	}
}

func TestUnknownExperimentFailsFast(t *testing.T) {
	var out, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-exp", "fig99"}, &out, &stderr); code != 2 {
		t.Fatalf("exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "fig99") {
		t.Fatalf("stderr %q does not name the typo", stderr.String())
	}
}

func TestRemoteFailsFastOnUnknownName(t *testing.T) {
	svc := service.New(service.Config{Workers: 1}, exp.Runners())
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })

	var out, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-server", ts.URL, "-exp", "table1,fig99"}, &out, &stderr)
	if code != 2 {
		t.Fatalf("exited %d, want 2: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "fig99") {
		t.Fatalf("stderr %q does not name the typo", stderr.String())
	}
	// Fail-fast means nothing was submitted — not even the valid name.
	if n := len(svc.Snapshot().Jobs); n != 0 {
		t.Fatalf("daemon received %d jobs despite the typo", n)
	}
}

// TestFleetRunAllMatchesLocal is the batching acceptance path: against
// a 4-worker daemon, `hmcsim -exp all -server URL` must complete the
// whole registry with at least two jobs simulating concurrently (the
// batch submission fills the worker pool instead of trickling one job
// per round-trip), and the JSON output must be byte-identical to the
// local run.
func TestFleetRunAllMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick registry twice")
	}
	svc := service.New(service.Config{Workers: 4}, exp.Runners())
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { ts.Close(); svc.Close() })

	args := []string{"-exp", "all", "-quick", "-format", "json"}
	var localOut, remoteOut, stderr bytes.Buffer
	if code := run(context.Background(), args, &localOut, &stderr); code != 0 {
		t.Fatalf("local run exited %d: %s", code, stderr.String())
	}
	remoteArgs := append([]string{"-server", ts.URL}, args...)
	if code := run(context.Background(), remoteArgs, &remoteOut, &stderr); code != 0 {
		t.Fatalf("fleet run exited %d: %s", code, stderr.String())
	}
	if !bytes.Equal(localOut.Bytes(), remoteOut.Bytes()) {
		t.Fatal("fleet-run -exp all JSON differs from the local run")
	}

	st := svc.Snapshot()
	if st.InflightPeak < 2 {
		t.Fatalf("inflight peak %d, want >= 2: the batch path left the worker pool idle", st.InflightPeak)
	}
	if st.Batches == 0 {
		t.Fatal("the CLI never used the batch endpoint")
	}
	if done, want := st.Jobs[service.StateDone], len(exp.Names()); done < want {
		t.Fatalf("daemon completed %d jobs, want >= %d", done, want)
	}
}

// TestRemoteRunSpansDaemons: a comma-separated -server list shards the
// experiment list across every daemon while output stays identical to a
// single-daemon run.
func TestRemoteRunSpansDaemons(t *testing.T) {
	var services []*service.Server
	var urls []string
	for i := 0; i < 2; i++ {
		svc := service.New(service.Config{Workers: 2}, exp.Runners())
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(func() { ts.Close(); svc.Close() })
		services = append(services, svc)
		urls = append(urls, ts.URL)
	}

	args := []string{
		"-server", strings.Join(urls, ","),
		"-exp", "table1,eq1,fig6,fig14", "-quick", "-format", "json",
	}
	var out, stderr bytes.Buffer
	if code := run(context.Background(), args, &out, &stderr); code != 0 {
		t.Fatalf("multi-daemon run exited %d: %s", code, stderr.String())
	}
	var results []hmcsim.Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for i, want := range []string{"table1", "eq1", "fig6", "fig14"} {
		if results[i].Name != want {
			t.Fatalf("result %d is %q, want %q (submission order lost)", i, results[i].Name, want)
		}
	}
	// Every job ran somewhere on the fleet, exactly once each. (That
	// every daemon receives a share of a large-enough backlog is pinned
	// deterministically in internal/service's TestFleetShardsAcrossDaemons;
	// with four fast specs the split here is scheduler-dependent.)
	total := 0
	for i, svc := range services {
		n := svc.Snapshot().Jobs[service.StateDone]
		total += n
		t.Logf("daemon %d completed %d jobs", i, n)
	}
	if total != 4 {
		t.Fatalf("fleet daemons completed %d jobs in total, want 4", total)
	}
}

// blockingRunner parks until its context is canceled, standing in for a
// long simulation.
type blockingRunner struct{ started chan struct{} }

func (b *blockingRunner) Name() string     { return "block" }
func (b *blockingRunner) Describe() string { return "blocks until canceled" }
func (b *blockingRunner) Run(ctx context.Context, o hmcsim.Options) (hmcsim.Result, error) {
	close(b.started)
	<-ctx.Done()
	return hmcsim.Result{}, ctx.Err()
}

// TestRemoteInterruptCancelsJob: Ctrl-C mid-poll must not orphan the
// simulation on the daemon — the CLI cancels its job on the way out.
func TestRemoteInterruptCancelsJob(t *testing.T) {
	br := &blockingRunner{started: make(chan struct{})}
	svc := service.New(service.Config{Workers: 1}, []hmcsim.Runner{br})
	// Observe the CLI's first status poll, proving it has read the
	// submit response (and so holds the job ID) before the "Ctrl-C".
	polled := make(chan struct{})
	var pollOnce sync.Once
	handler := svc.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
			pollOnce.Do(func() { close(polled) })
		}
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { ts.Close(); svc.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-br.started // the job is running on the daemon
		<-polled     // the CLI is in its polling loop
		cancel()     // "Ctrl-C"
	}()
	var out, stderr bytes.Buffer
	code := run(ctx, []string{"-server", ts.URL, "-exp", "block"}, &out, &stderr)
	if code != 1 {
		t.Fatalf("exited %d, want 1: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "canceled job") {
		t.Fatalf("stderr %q missing cancellation notice", stderr.String())
	}
	// The daemon-side job must reach canceled, freeing its worker.
	j, ok := svc.Job("j000001")
	if !ok {
		t.Fatal("daemon lost the job record")
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("daemon job never terminated")
	}
	if st := j.View().State; st != service.StateCanceled {
		t.Fatalf("daemon job state %s, want canceled", st)
	}
}
