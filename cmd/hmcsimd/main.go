// Command hmcsimd serves the experiment registry over an HTTP JSON API:
// submitted specs flow through a bounded queue into a worker pool (one
// single-threaded deterministic engine per worker), and finished
// results are cached content-addressed by their canonical spec hash, so
// resubmitting an identical spec is served instantly.
//
// Usage:
//
//	hmcsimd [-addr :8080] [-workers N] [-queue N] [-cache N]
//	        [-flight N] [-slowjob 10s] [-log-format text|json]
//
// The daemon logs structured job-lifecycle records (admission and
// completion, each carrying the submission's X-Hmcsim-Trace-Id) to
// stderr; -log-format json switches them to one-JSON-object-per-line
// for log shippers.
//
// Endpoints:
//
//	POST   /v1/jobs        submit {"exp": "fig6", "options": {"quick": true}}
//	POST   /v1/batch       submit a JSON array of specs; admission is
//	                       all-or-nothing against the queue bound
//	GET    /v1/jobs/{id}   status; includes result and text when done
//	GET    /v1/jobs/{id}/progress
//	                       live progress as Server-Sent Events: sweep
//	                       points done/total and simulation headway,
//	                       ending with the terminal event
//	GET    /v1/jobs/{id}/spans
//	                       the job's lifecycle stage breakdown (received,
//	                       queued, cache-check, running, marshal, done)
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /v1/flight      flight recorder: the last -flight completed
//	                       jobs with stage durations, worker and cache
//	                       attribution, plus latency histograms
//	GET    /v1/experiments registry listing
//	GET    /v1/stats       queue, worker, job, cache, batch, inflight,
//	                       uptime, version and per-worker statistics
//	GET    /v1/healthz     liveness probe
//	GET    /metrics        Prometheus text exposition of the same
//	                       counters, plus per-worker busy time,
//	                       aggregate simulation headway, and queue-wait /
//	                       end-to-end latency histograms
//	GET    /debug/pprof/   runtime profiles (CPU, heap, ...; requires -pprof)
//
// With -pprof the endpoints profile the daemon under live load:
//
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
//	go tool pprof http://localhost:8080/debug/pprof/heap
//
// They are opt-in because profiling is itself a workload (a CPU profile
// pins a core for its duration) and dumps expose internals; only enable
// them where the listen address is trusted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hmcsim/internal/exp"
	"hmcsim/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations; 0 = NumCPU")
	shards := flag.Int("shards", 0, "parallel engine shards per simulation; 0 = serial reference engine (results are identical either way)")
	queue := flag.Int("queue", 64, "queued-job bound; submissions beyond it get 503")
	cache := flag.Int("cache", 256, "result-cache entries (LRU)")
	maxJobs := flag.Int("maxjobs", 1024, "retained job records; oldest terminal records beyond this are dropped")
	flight := flag.Int("flight", 0, "flight-recorder entries (last N completed jobs at /v1/flight); 0 = default 128")
	slowJob := flag.Duration("slowjob", 0, "flag completed jobs slower than this in the flight recorder; 0 = default 10s, negative disables")
	withPprof := flag.Bool("pprof", false, "serve /debug/pprof/ profiling endpoints (expose only on trusted addresses)")
	logFormat := flag.String("log-format", "text", "structured log format on stderr: text or json")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "hmcsimd: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	svc := service.New(service.Config{
		Workers:       *workers,
		Shards:        *shards,
		QueueDepth:    *queue,
		CacheEntries:  *cache,
		MaxJobs:       *maxJobs,
		FlightEntries: *flight,
		SlowJob:       *slowJob,
		Logger:        logger,
	}, exp.Runners())

	// The service handler owns the API routes; with -pprof the profiling
	// handlers mount beside it so the simulation hot paths can be
	// profiled in service mode, under the traffic that actually stresses
	// them.
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("hmcsimd serving", "experiments", len(exp.Names()), "addr", *addr)

	select {
	case <-ctx.Done():
		logger.Info("hmcsimd shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("hmcsimd shutdown", "error", err.Error())
		}
		svc.Close()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "hmcsimd:", err)
			os.Exit(1)
		}
	}
}
