// Command hmcsimvet runs the project's static-analysis suite
// (internal/analysis): determinism, nilhook, speckey and hotpath.
//
// It speaks the `go vet -vettool=` driver protocol, so the usual way to
// run it over the whole tree is:
//
//	go install ./cmd/hmcsimvet
//	go vet -vettool=$(go env GOPATH)/bin/hmcsimvet ./...
//
// It can also run standalone, loading packages itself:
//
//	go run ./cmd/hmcsimvet ./...
//
// Diagnostics print in file:line:col form; the exit status is 1 when
// there are findings.
package main

import (
	"fmt"
	"os"
	"strings"

	"hmcsim/internal/analysis"
)

func main() {
	args := os.Args[1:]

	// `go vet` probes its vettool before use: `-V=full` for the tool ID
	// that keys the build cache, `-flags` for the JSON list of flags the
	// tool accepts (this suite has none — configuration is source
	// annotations, not flags).
	for _, a := range args {
		switch {
		case a == "-V" || strings.HasPrefix(a, "-V="):
			fmt.Println("hmcsimvet version v1.0.0")
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}

	// Driver mode: a single *.cfg argument describing one compilation
	// unit, per the vet driver protocol.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(analysis.RunUnit(args[0]))
	}

	// Standalone mode: load the named patterns (default ./...) and run
	// the whole suite.
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := analysis.RunStandalone(os.Stdout, ".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmcsimvet: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}
