// Command hmctrace generates memory trace files for the multi-port
// stream firmware model: random or sequential reads/writes confined to a
// structural subset of the cube.
//
// Usage:
//
//	hmctrace -n 1000 -size 64 -vaults 4 [-banks 2] [-writes 0.25] [-seq] [-seed 7] > trace.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"hmcsim/internal/addr"
	"hmcsim/internal/host"
	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
	"hmcsim/internal/trace"
)

func main() {
	n := flag.Int("n", 1000, "number of requests")
	size := flag.Int("size", 64, "request size in bytes (16..128, flit multiple)")
	vaults := flag.Int("vaults", 16, "confine to the first N vaults (power of two)")
	banks := flag.Int("banks", 0, "confine to the first N banks of vault 0 (power of two; overrides -vaults)")
	writes := flag.Float64("writes", 0, "fraction of writes (0..1)")
	seq := flag.Bool("seq", false, "sequential instead of random addresses")
	seed := flag.Uint64("seed", 1, "RNG seed")
	block := flag.Int("block", 128, "address-interleave block size")
	flag.Parse()

	if !packet.ValidSize(*size) {
		fmt.Fprintln(os.Stderr, "hmctrace: size must be a multiple of 16 in [16,128]")
		os.Exit(2)
	}
	mapping, err := addr.NewMapping(*block)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hmctrace:", err)
		os.Exit(2)
	}
	mask := addr.AllAccess
	if *banks > 0 {
		mask, err = mapping.BanksMask(*banks)
	} else if *vaults != addr.Vaults {
		mask, err = mapping.VaultsMask(*vaults)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hmctrace:", err)
		os.Exit(2)
	}

	rng := sim.NewRand(*seed)
	reqs := make([]host.Request, *n)
	var cursor uint64
	for i := range reqs {
		var raw uint64
		if *seq {
			raw = cursor
			cursor += uint64(*size)
		} else {
			raw = rng.Uint64()
		}
		a := mask.Apply(raw&(addr.CubeBytes-1)) &^ uint64(*size-1)
		reqs[i] = host.Request{
			Addr:  a,
			Size:  *size,
			Write: rng.Float64() < *writes,
		}
	}
	if err := trace.Write(os.Stdout, reqs); err != nil {
		fmt.Fprintln(os.Stderr, "hmctrace:", err)
		os.Exit(1)
	}
}
