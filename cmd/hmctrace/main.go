// Command hmctrace generates memory trace files for the multi-port
// stream firmware model: random or sequential reads/writes confined to a
// structural subset of the cube. It is a thin flag wrapper over the
// public hmcsim.TraceSpec generator.
//
// Usage:
//
//	hmctrace -n 1000 -size 64 -vaults 4 [-banks 2] [-writes 0.25] [-seq] [-seed 7] > trace.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"hmcsim"
	"hmcsim/internal/trace"
)

func main() {
	n := flag.Int("n", 1000, "number of requests")
	size := flag.Int("size", 64, "request size in bytes (16..128, flit multiple)")
	vaults := flag.Int("vaults", 16, "confine to the first N vaults (power of two)")
	banks := flag.Int("banks", 0, "confine to the first N banks of vault 0 (power of two; overrides -vaults)")
	writes := flag.Float64("writes", 0, "fraction of writes (0..1)")
	seq := flag.Bool("seq", false, "sequential instead of random addresses")
	seed := flag.Uint64("seed", 1, "RNG seed")
	block := flag.Int("block", 128, "address-interleave block size")
	flag.Parse()

	reqs, err := hmcsim.TraceSpec{
		N:          *n,
		Size:       *size,
		Vaults:     *vaults,
		Banks:      *banks,
		Writes:     *writes,
		Sequential: *seq,
		Seed:       *seed,
		BlockSize:  *block,
	}.Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hmctrace:", err)
		os.Exit(2)
	}
	if err := trace.Write(os.Stdout, reqs); err != nil {
		fmt.Fprintln(os.Stderr, "hmctrace:", err)
		os.Exit(1)
	}
}
