// Client example: drive one or more running hmcsimd daemons, first with
// nothing but net/http — showing the wire protocol end to end — and
// then through the fleet scheduler, farming a seed-stability sweep out
// across every daemon with hmcsim.RemoteRunner.
//
// Part 1 lists the registry, submits a job, polls until it completes,
// and prints the result plus the daemon's cache statistics. Submit the
// same spec twice and the second run comes back instantly with
// "cached": true.
//
// Part 2 builds a service.Fleet over the -server list (comma-separated
// URLs shard across daemons) and runs the same experiment under four
// different seeds concurrently: hmcsim.RemoteRunner adapts the remote
// experiment to the hmcsim.Runner interface, so hmcsim.Sweep fans the
// points out exactly as it would fan out local systems — every daemon's
// worker pool fills, and identical specs are deduped and cache-served.
//
// Start one or more daemons first:
//
//	go run ./cmd/hmcsimd -addr :8080
//	go run ./cmd/hmcsimd -addr :8081
//	go run ./examples/client -server http://localhost:8080,http://localhost:8081 -exp eq1
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"hmcsim"
	"hmcsim/internal/service"
)

type job struct {
	ID        string          `json:"id"`
	State     string          `json:"state"`
	Cached    bool            `json:"cached"`
	Error     string          `json:"error"`
	Text      string          `json:"text"`
	Result    json.RawMessage `json:"result"`
	ElapsedMs float64         `json:"elapsedMs"`
}

func main() {
	servers := "http://localhost:8080"
	exp := "eq1"
	quick := true
	args := os.Args[1:]
	for i := 0; i < len(args)-1; i++ {
		switch args[i] {
		case "-server":
			servers = args[i+1]
		case "-exp":
			exp = args[i+1]
		}
	}
	first := strings.Split(servers, ",")[0]

	// ---- Part 1: the wire protocol, by hand against the first daemon.

	// GET /v1/experiments — what can this daemon run?
	var exps []struct{ Name, Title string }
	getJSON(first+"/v1/experiments", &exps)
	fmt.Printf("daemon serves %d experiments:\n", len(exps))
	for _, e := range exps {
		fmt.Printf("  %-8s %s\n", e.Name, e.Title)
	}

	// POST /v1/jobs — submit a spec. 202 means queued; 200 means the
	// result came straight from the content-addressed cache.
	spec := fmt.Sprintf(`{"exp": %q, "options": {"quick": %v}}`, exp, quick)
	resp, err := http.Post(first+"/v1/jobs", "application/json", bytes.NewBufferString(spec))
	if err != nil {
		fail(err)
	}
	var j job
	decodeInto(resp, &j)
	fmt.Printf("\nsubmitted %s: job %s is %s\n", exp, j.ID, j.State)

	// GET /v1/jobs/{id} — poll until terminal.
	for j.State == "queued" || j.State == "running" {
		time.Sleep(100 * time.Millisecond)
		getJSON(first+"/v1/jobs/"+j.ID, &j)
	}
	switch j.State {
	case "done":
		how := "simulated"
		if j.Cached {
			how = "served from cache"
		}
		fmt.Printf("job %s done (%s, %.1f ms):\n\n%s\n", j.ID, how, j.ElapsedMs, j.Text)
	case "failed":
		fail(fmt.Errorf("job failed: %s", j.Error))
	default:
		fail(fmt.Errorf("job ended %s", j.State))
	}

	// ---- Part 2: farm a seed sweep out across the whole fleet.
	//
	// RemoteRunner makes the daemon-served experiment a drop-in
	// hmcsim.Runner, so the fan-out below is byte-for-byte the shape of
	// a local sweep — except each point is batched to a daemon, deduped
	// by content key, and failed over if a daemon dies.
	fleet := service.NewFleet(servers)
	fleet.Logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, "fleet: "+format+"\n", a...) }
	remote := hmcsim.RemoteRunner{Exp: exp, On: fleet}

	seeds := []uint64{1, 2, 3, 4}
	fmt.Printf("sweeping %s over seeds %v across %d daemon(s)...\n", exp, seeds, len(fleet.Clients))
	start := time.Now()
	ctx := context.Background()
	type point struct {
		res hmcsim.Result
		err error
	}
	points := hmcsim.Sweep(ctx, len(seeds), len(seeds), func(i int) point {
		res, err := remote.Run(ctx, hmcsim.Options{Quick: quick, Seed: seeds[i]})
		return point{res, err}
	})
	for i, p := range points {
		if p.err != nil {
			fail(fmt.Errorf("seed %d: %w", seeds[i], p.err))
		}
		fmt.Printf("  seed %d: %s, %d series\n", seeds[i], p.res.Name, len(p.res.Series))
	}
	fmt.Printf("fleet sweep of %d points took %v\n\n", len(seeds), time.Since(start).Round(time.Millisecond))

	// GET /v1/stats — run this program twice and watch hits climb; the
	// batch and inflight counters show the fleet filling the pool.
	var stats struct {
		Cache struct {
			Hits, Misses, Entries uint64
		}
		Batches      uint64
		InflightPeak int
	}
	getJSON(first+"/v1/stats", &stats)
	fmt.Printf("cache: %d hits, %d misses, %d entries; %d batches, inflight peak %d\n",
		stats.Cache.Hits, stats.Cache.Misses, stats.Cache.Entries, stats.Batches, stats.InflightPeak)
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		fail(err)
	}
	decodeInto(resp, out)
}

func decodeInto(resp *http.Response, out any) {
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	if resp.StatusCode >= 300 {
		fail(fmt.Errorf("%s: %s: %s", resp.Request.URL, resp.Status, blob))
	}
	if err := json.Unmarshal(blob, out); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "client:", err)
	os.Exit(1)
}
