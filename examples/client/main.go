// Client example: talk to a running hmcsimd with nothing but net/http,
// showing the wire protocol end to end — list the registry, submit a
// job, poll until it completes, and print the result plus the daemon's
// cache statistics. Submit the same spec twice and the second run comes
// back instantly with "cached": true.
//
// Start a daemon first:
//
//	go run ./cmd/hmcsimd -addr :8080
//	go run ./examples/client -server http://localhost:8080 -exp eq1
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

type job struct {
	ID        string          `json:"id"`
	State     string          `json:"state"`
	Cached    bool            `json:"cached"`
	Error     string          `json:"error"`
	Text      string          `json:"text"`
	Result    json.RawMessage `json:"result"`
	ElapsedMs float64         `json:"elapsedMs"`
}

func main() {
	server := "http://localhost:8080"
	exp := "eq1"
	quick := true
	args := os.Args[1:]
	for i := 0; i < len(args)-1; i++ {
		switch args[i] {
		case "-server":
			server = args[i+1]
		case "-exp":
			exp = args[i+1]
		}
	}

	// GET /v1/experiments — what can this daemon run?
	var exps []struct{ Name, Title string }
	getJSON(server+"/v1/experiments", &exps)
	fmt.Printf("daemon serves %d experiments:\n", len(exps))
	for _, e := range exps {
		fmt.Printf("  %-8s %s\n", e.Name, e.Title)
	}

	// POST /v1/jobs — submit a spec. 202 means queued; 200 means the
	// result came straight from the content-addressed cache.
	spec := fmt.Sprintf(`{"exp": %q, "options": {"quick": %v}}`, exp, quick)
	resp, err := http.Post(server+"/v1/jobs", "application/json", bytes.NewBufferString(spec))
	if err != nil {
		fail(err)
	}
	var j job
	decodeInto(resp, &j)
	fmt.Printf("\nsubmitted %s: job %s is %s\n", exp, j.ID, j.State)

	// GET /v1/jobs/{id} — poll until terminal.
	for j.State == "queued" || j.State == "running" {
		time.Sleep(100 * time.Millisecond)
		getJSON(server+"/v1/jobs/"+j.ID, &j)
	}
	switch j.State {
	case "done":
		how := "simulated"
		if j.Cached {
			how = "served from cache"
		}
		fmt.Printf("job %s done (%s, %.1f ms):\n\n%s\n", j.ID, how, j.ElapsedMs, j.Text)
	case "failed":
		fail(fmt.Errorf("job failed: %s", j.Error))
	default:
		fail(fmt.Errorf("job ended %s", j.State))
	}

	// GET /v1/stats — run this program twice and watch hits climb.
	var stats struct {
		Cache struct {
			Hits, Misses, Entries uint64
		}
	}
	getJSON(server+"/v1/stats", &stats)
	fmt.Printf("cache: %d hits, %d misses, %d entries\n",
		stats.Cache.Hits, stats.Cache.Misses, stats.Cache.Entries)
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		fail(err)
	}
	decodeInto(resp, out)
}

func decodeInto(resp *http.Response, out any) {
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	if resp.StatusCode >= 300 {
		fail(fmt.Errorf("%s: %s: %s", resp.Request.URL, resp.Status, blob))
	}
	if err := json.Unmarshal(blob, out); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "client:", err)
	os.Exit(1)
}
