// Pagesweep example: demonstrate the address-interleaving insight of
// Sections II-A and IV-F. Sequentially streaming 4 KB OS pages spreads
// 128 B blocks over all sixteen vaults (vault-level parallelism first,
// then bank-level), so sequential traffic avoids the vault bandwidth
// bottleneck that a vault-confined sweep hits.
package main

import (
	"fmt"

	"hmcsim"
)

func main() {
	sys := hmcsim.NewSystem(hmcsim.DefaultConfig())

	// Show where one OS page lands.
	spread := sys.Map.PageVaults(0x4000_3000)
	fmt.Println("One 4 KB OS page maps to:")
	fmt.Printf("  %d vaults, %d banks in each (low-order interleaving, Figure 3)\n\n",
		len(spread), len(spread[0]))

	// Sequential GUPS sweep over the whole cube: pages naturally stripe
	// across vaults.
	seq := hmcsim.GUPS{
		Ports: 9, Size: 128, Pattern: hmcsim.AllVaults, Linear: true,
		Warmup: 30 * hmcsim.Microsecond, Window: 100 * hmcsim.Microsecond,
	}.Run(sys)

	// The anti-pattern: the same request stream forced into one vault
	// (e.g. a bad custom mapping), which serializes on the vault's
	// ~10 GB/s TSV data path.
	sys2 := hmcsim.NewSystem(hmcsim.DefaultConfig())
	confined := hmcsim.GUPS{
		Ports: 9, Size: 128, Pattern: hmcsim.PatternSpec{Name: "1 vault", Vaults: 1}, Linear: true,
		Warmup: 30 * hmcsim.Microsecond, Window: 100 * hmcsim.Microsecond,
	}.Run(sys2)

	fmt.Println("Sequential 128B streaming, nine ports:")
	fmt.Printf("  page-interleaved (all vaults): %.2f GB/s, avg latency %5.0f ns\n",
		seq.GBps, seq.AvgLatNs)
	fmt.Printf("  confined to one vault:         %.2f GB/s, avg latency %5.0f ns\n",
		confined.GBps, confined.AvgLatNs)
	fmt.Printf("  interleaving advantage:        %.1fx bandwidth\n",
		seq.GBps/confined.GBps)
	fmt.Println("\nMapping accesses across vaults first, then banks, is the key to")
	fmt.Println("bandwidth in NoC-based stacked memories (Section IV-F).")
}
