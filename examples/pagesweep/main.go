// Pagesweep example: demonstrate the address-interleaving insight of
// Sections II-A and IV-F. Sequentially streaming 4 KB OS pages spreads
// 128 B blocks over all sixteen vaults (vault-level parallelism first,
// then bank-level), so sequential traffic avoids the vault bandwidth
// bottleneck that a vault-confined sweep hits.
package main

import (
	"fmt"

	"hmcsim/internal/core"
	"hmcsim/internal/sim"
)

func main() {
	sys := core.NewSystem(core.DefaultConfig())

	// Show where one OS page lands.
	spread := sys.Map.PageVaults(0x4000_3000)
	fmt.Println("One 4 KB OS page maps to:")
	fmt.Printf("  %d vaults, %d banks in each (low-order interleaving, Figure 3)\n\n",
		len(spread), len(spread[0]))

	// Sequential GUPS sweep over the whole cube: pages naturally stripe
	// across vaults.
	seq := sys.RunGUPS(core.GUPSSpec{
		Ports: 9, Size: 128, Pattern: core.AllVaults(), Linear: true,
		Warmup: 30 * sim.Microsecond, Window: 100 * sim.Microsecond,
	})

	// The anti-pattern: the same request stream forced into one vault
	// (e.g. a bad custom mapping), which serializes on the vault's
	// ~10 GB/s TSV data path.
	sys2 := core.NewSystem(core.DefaultConfig())
	confined := sys2.RunGUPS(core.GUPSSpec{
		Ports: 9, Size: 128, Pattern: sys2.Vaults(1), Linear: true,
		Warmup: 30 * sim.Microsecond, Window: 100 * sim.Microsecond,
	})

	fmt.Println("Sequential 128B streaming, nine ports:")
	fmt.Printf("  page-interleaved (all vaults): %v, avg latency %5.0f ns\n",
		seq.Bandwidth, seq.AvgLat.Nanoseconds())
	fmt.Printf("  confined to one vault:         %v, avg latency %5.0f ns\n",
		confined.Bandwidth, confined.AvgLat.Nanoseconds())
	fmt.Printf("  interleaving advantage:        %.1fx bandwidth\n",
		seq.Bandwidth.GBpsValue()/confined.Bandwidth.GBpsValue())
	fmt.Println("\nMapping accesses across vaults first, then banks, is the key to")
	fmt.Println("bandwidth in NoC-based stacked memories (Section IV-F).")
}
