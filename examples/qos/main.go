// QoS example: reproduce the paper's Section IV-C scenario in miniature.
// A latency-sensitive stream shares the cube with three background
// streams. Mapping the sensitive stream to its own vault (the paper's
// recommendation) protects its tail latency; colliding with the
// background traffic inflates it.
package main

import (
	"fmt"

	"hmcsim"
)

func run(sensitiveVault int) (avgNs, maxNs float64) {
	sys := hmcsim.NewSystem(hmcsim.DefaultConfig())
	const backgroundVault = 2
	const n = 800

	traces := make([][]hmcsim.Request, 4)
	// Three background ports hammer vault 2 with large reads.
	for i := 0; i < 3; i++ {
		traces[i] = sys.RandomTrace(n, 128, sys.SingleVault(backgroundVault), uint64(i+1))
	}
	// The latency-sensitive stream uses small requests (better QoS per
	// Section IV-D) on its own vault - or collides, depending on the
	// argument.
	traces[3] = sys.RandomTrace(n, 16, sys.SingleVault(sensitiveVault), 99)

	m := hmcsim.Streams{Label: "qos", Traces: traces}.Run(sys)
	sensitive := m.Ports[3]
	return sensitive.AvgLatNs, sensitive.MaxLatNs
}

func main() {
	collideAvg, collideMax := run(2) // shares the background vault
	privateAvg, privateMax := run(9) // private vault

	fmt.Println("Latency-sensitive 16B stream vs 3x 128B background streams:")
	fmt.Printf("  colliding on the background vault: avg %6.0f ns  max %6.0f ns\n", collideAvg, collideMax)
	fmt.Printf("  mapped to a private vault:         avg %6.0f ns  max %6.0f ns\n", privateAvg, privateMax)
	fmt.Printf("  tail-latency protection:           %.1fx\n", collideMax/privateMax)
	fmt.Println("\nAs Section IV-C concludes, reserving vaults for high-priority")
	fmt.Println("traffic is an effective QoS lever in packet-switched memories.")
}
