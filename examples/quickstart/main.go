// Quickstart: build the AC-510 + HMC 1.1 system, blast it with random
// reads from all nine GUPS ports, and print what the monitoring logic
// sees. This is the smallest end-to-end use of the library.
package main

import (
	"fmt"

	"hmcsim/internal/core"
	"hmcsim/internal/sim"
)

func main() {
	sys := core.NewSystem(core.DefaultConfig())

	res := sys.RunGUPS(core.GUPSSpec{
		Ports:   9,                // all nine FPGA ports
		Size:    128,              // 128 B read requests
		Pattern: core.AllVaults(), // random over the whole 4 GB cube
		Warmup:  30 * sim.Microsecond,
		Window:  100 * sim.Microsecond,
	})

	fmt.Println("HMC 1.1 under full random read load:")
	fmt.Printf("  reads completed:      %d in %v\n", res.Reads, res.Window)
	fmt.Printf("  counted bandwidth:    %v (request+response bytes)\n", res.Bandwidth)
	fmt.Printf("  read latency:         avg %.0f ns  min %.0f ns  max %.0f ns\n",
		res.AvgLat.Nanoseconds(), res.MinLat.Nanoseconds(), res.MaxLat.Nanoseconds())
	fmt.Printf("  in-flight inside cube: %.0f transactions (time-averaged)\n",
		res.HMCOutstanding)

	// The same traffic confined to a single vault hits the ~10 GB/s
	// internal vault bandwidth instead of the external link ceiling.
	sys2 := core.NewSystem(core.DefaultConfig())
	one := sys2.RunGUPS(core.GUPSSpec{
		Ports:   9,
		Size:    128,
		Pattern: sys2.Vaults(1),
		Warmup:  30 * sim.Microsecond,
		Window:  100 * sim.Microsecond,
	})
	fmt.Println("\nSame load confined to one vault:")
	fmt.Printf("  counted bandwidth:    %v (vault TSV bound)\n", one.Bandwidth)
	fmt.Printf("  read latency:         avg %.0f ns\n", one.AvgLat.Nanoseconds())
}
