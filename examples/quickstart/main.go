// Quickstart: build the AC-510 + HMC 1.1 system, blast it with random
// reads from all nine GUPS ports via the public Workload API, and print
// what the monitoring logic sees. This is the smallest end-to-end use
// of the library.
package main

import (
	"fmt"

	"hmcsim"
)

func main() {
	sys := hmcsim.NewSystem(hmcsim.DefaultConfig())

	m := hmcsim.GUPS{
		Ports:   9,                // all nine FPGA ports
		Size:    128,              // 128 B read requests
		Pattern: hmcsim.AllVaults, // random over the whole 4 GB cube
		Warmup:  30 * hmcsim.Microsecond,
		Window:  100 * hmcsim.Microsecond,
	}.Run(sys)

	fmt.Println("HMC 1.1 under full random read load:")
	fmt.Printf("  reads completed:      %d in %.0f us\n", m.Reads, m.WindowNs/1000)
	fmt.Printf("  counted bandwidth:    %.2f GB/s (request+response bytes)\n", m.GBps)
	fmt.Printf("  read latency:         avg %.0f ns  min %.0f ns  max %.0f ns\n",
		m.AvgLatNs, m.MinLatNs, m.MaxLatNs)
	fmt.Printf("  in-flight inside cube: %.0f transactions (time-averaged)\n",
		m.HMCOutstanding)

	// The same traffic confined to a single vault hits the ~10 GB/s
	// internal vault bandwidth instead of the external link ceiling.
	sys2 := hmcsim.NewSystem(hmcsim.DefaultConfig())
	one := hmcsim.GUPS{
		Ports:   9,
		Size:    128,
		Pattern: hmcsim.PatternSpec{Name: "1 vault", Vaults: 1},
		Warmup:  30 * hmcsim.Microsecond,
		Window:  100 * hmcsim.Microsecond,
	}.Run(sys2)
	fmt.Println("\nSame load confined to one vault:")
	fmt.Printf("  counted bandwidth:    %.2f GB/s (vault TSV bound)\n", one.GBps)
	fmt.Printf("  read latency:         avg %.0f ns\n", one.AvgLatNs)
}
