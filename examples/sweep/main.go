// Sweep example: fan independent simulations out across every CPU and
// emit a machine-readable JSON result. Each job builds its own System,
// so results are bit-identical to a sequential run — rerun with
// -workers 1 and diff the output to check.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"hmcsim"
)

func main() {
	workers := flag.Int("workers", 0, "fan-out; 0 = NumCPU, 1 = sequential")
	flag.Parse()

	// Ctrl-C stops the sweep from scheduling further points.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sizes := []int{16, 32, 64, 128}
	patterns := []hmcsim.PatternSpec{
		{Name: "1 bank", Banks: 1},
		{Name: "16 vaults"},
	}

	// One independent system per (size, pattern) cell.
	points := hmcsim.Sweep2(ctx, *workers, sizes, patterns, func(size int, ps hmcsim.PatternSpec) hmcsim.Point {
		sys := hmcsim.NewSystem(hmcsim.DefaultConfig())
		m := hmcsim.GUPS{
			Ports: 9, Size: size, Pattern: ps,
			Warmup: 15 * hmcsim.Microsecond, Window: 40 * hmcsim.Microsecond,
		}.Run(sys)
		return hmcsim.Point{Label: ps.Name, X: float64(size), Y: m.GBps}
	})

	res := hmcsim.Result{
		Name:   "sweep-example",
		Title:  "Bandwidth of the best and worst access pattern per request size",
		Series: []hmcsim.Series{{Name: "bandwidth", Unit: "GB/s", Points: points}},
	}
	out, err := res.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}
