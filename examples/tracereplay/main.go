// Tracereplay: drive the multi-port stream model from trace files, the
// workflow of the paper's Figure 5b. Generates a trace (or reads the one
// you pass as an argument), replays it on four ports, and prints the
// monitoring statistics.
//
//	go run ./examples/tracereplay            # synthetic traces
//	go run ./examples/tracereplay trace.txt  # your trace on every port
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"hmcsim/internal/core"
	"hmcsim/internal/host"
	"hmcsim/internal/trace"
)

func main() {
	sys := core.NewSystem(core.DefaultConfig())

	var traces [][]host.Request
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		reqs, err := trace.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			traces = append(traces, reqs)
		}
		fmt.Printf("Replaying %s (%d requests) on 4 ports\n\n", os.Args[1], len(reqs))
	} else {
		// Synthetic: each port reads 64 B blocks from two vaults, with a
		// quarter writes — then round-trip the trace through the file
		// format to exercise it.
		for i := 0; i < 4; i++ {
			reqs := sys.RandomTrace(500, 64, sys.Vaults(2), uint64(i+1))
			for j := range reqs {
				reqs[j].Write = j%4 == 0
			}
			var buf strings.Builder
			if err := trace.Write(&buf, reqs); err != nil {
				log.Fatal(err)
			}
			parsed, err := trace.Read(strings.NewReader(buf.String()))
			if err != nil {
				log.Fatal(err)
			}
			traces = append(traces, parsed)
		}
		fmt.Println("Replaying 4 synthetic traces (500 x 64B, 25% writes, 2 vaults)")
	}

	ports := sys.PlayStreams(traces)
	fmt.Println("\nPer-port monitoring (as the firmware reports back to the host):")
	for i, p := range ports {
		fmt.Printf("  port %d: reads=%-5d writes=%-5d lat avg/min/max = %6.0f/%6.0f/%6.0f ns\n",
			i, p.Mon.Reads, p.Mon.Writes,
			p.Mon.AvgLat().Nanoseconds(), p.Mon.MinLat.Nanoseconds(), p.Mon.MaxLat.Nanoseconds())
	}
	fmt.Printf("\nSimulated time: %v\n", sys.Eng.Now())
}
