// Traffic example: sweep zipf skew against a single cube and find the
// latency knee — the skew at which the hottest blocks stop fitting the
// cube's bank-level parallelism and read latency takes off. Each point
// is an independent seeded System, so the sweep parallelizes across
// CPUs with bit-identical results.
//
//	go run ./examples/traffic [-workers N] [-ports N] [-size B]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"hmcsim"
)

func main() {
	workers := flag.Int("workers", 0, "fan-out; 0 = NumCPU, 1 = sequential")
	ports := flag.Int("ports", 9, "active traffic ports")
	size := flag.Int("size", 128, "request size in bytes")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Fail fast on invalid flags instead of panicking mid-sweep.
	if *ports < 1 || *ports > 9 {
		fmt.Fprintf(os.Stderr, "-ports %d out of range [1, 9]\n", *ports)
		os.Exit(2)
	}
	probe := hmcsim.TrafficWorkload{Traffic: hmcsim.TrafficSpec{Pattern: hmcsim.TrafficZipf}, Size: *size}
	if err := probe.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// 0.01 stands in for "uniform": a literal 0 would compile as the
	// 0.99 library default.
	thetas := []float64{0.01, 0.3, 0.6, 0.9, 1.1, 1.3, 1.5, 1.7, 1.9}

	type point struct {
		Theta    float64
		GBps     float64
		AvgLatNs float64
	}
	points := hmcsim.Sweep(ctx, *workers, len(thetas), func(i int) point {
		sys := hmcsim.NewSystem(hmcsim.DefaultConfig())
		m := hmcsim.TrafficWorkload{
			Traffic: hmcsim.TrafficSpec{Pattern: hmcsim.TrafficZipf, ZipfTheta: thetas[i]},
			Ports:   *ports,
			Size:    *size,
			Warmup:  15 * hmcsim.Microsecond,
			Window:  60 * hmcsim.Microsecond,
		}.Run(sys)
		return point{Theta: thetas[i], GBps: m.GBps, AvgLatNs: m.AvgLatNs}
	})
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted")
		os.Exit(1)
	}

	fmt.Printf("zipf skew sweep: %d ports x %d B, one 4 GB cube\n\n", *ports, *size)
	fmt.Printf("%-6s  %-10s  %-12s\n", "theta", "BW (GB/s)", "avg lat (ns)")
	base := points[0].AvgLatNs
	knee := -1.0
	for _, p := range points {
		marker := ""
		if knee < 0 && p.AvgLatNs > 1.5*base {
			knee = p.Theta
			marker = "  <- latency knee"
		}
		fmt.Printf("%-6.2f  %-10.2f  %-12.0f%s\n", p.Theta, p.GBps, p.AvgLatNs, marker)
	}
	fmt.Println()
	if knee < 0 {
		fmt.Println("no knee: latency stayed within 1.5x of the uniform baseline")
		return
	}
	fmt.Printf("latency knee at theta ~ %.2f: beyond it the hot blocks' banks\n", knee)
	fmt.Println("saturate and queueing dominates, the skew analogue of the paper's")
	fmt.Println("bank-mask patterns (Figure 6).")
}
