module hmcsim

go 1.22
