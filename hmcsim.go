// Package hmcsim is the public API of the HMC reproduction: a
// cycle-level model of the AC-510 (FPGA host + HMC 1.1 cube) system of
// "Performance Implications of NoCs on 3D-Stacked Memories: Insights
// from the Hybrid Memory Cube" (ISPASS 2018).
//
// The package is organized around three seams:
//
//   - Workload: something that generates traffic against a System's
//     port fabric and reports what the monitors saw. GUPS, Streams and
//     TraceReplay adapt the paper's two firmware personalities;
//     TrafficWorkload drives a composable synthetic TrafficSpec
//     (pattern library, read/write mixer, phase scripts, closed- or
//     open-loop injection) from internal/traffic.
//   - Backend: an attachable memory device under test. HMCDevice and
//     DDRChannel implement it, so device comparisons are plain sweeps.
//   - Runner: a named, self-describing experiment returning a
//     structured, JSON-marshalable Result. The paper's tables and
//     figures register themselves in internal/exp's registry.
//
// Spec makes experiment requests serializable and content-addressable:
// its canonical JSON hash is how the hmcsimd service (cmd/hmcsimd,
// internal/service) caches results.
//
// Sweep fans independent simulations out across CPUs; every engine
// stays single-threaded, so parallel results are bit-identical to
// sequential ones. Sweeps observe a context.Context between points, so
// abandoned runs stop scheduling work.
//
// Quickstart:
//
//	sys := hmcsim.NewSystem(hmcsim.DefaultConfig())
//	m := hmcsim.GUPS{
//	    Ports: 9, Size: 128, Pattern: hmcsim.AllVaults,
//	    Warmup: 30 * hmcsim.Microsecond, Window: 100 * hmcsim.Microsecond,
//	}.Run(sys)
//	fmt.Println(m.GBps, m.AvgLatNs)
package hmcsim

import (
	"context"
	"fmt"
	"runtime"

	"hmcsim/internal/core"
	"hmcsim/internal/host"
	"hmcsim/internal/obs"
	"hmcsim/internal/sim"
)

// Time is simulated time in integer picoseconds, re-exported from the
// simulation kernel.
type Time = sim.Time

// Durations for building warm-up and measurement windows.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
)

// Config assembles a full system; DefaultConfig is the paper's AC-510 +
// 4 GB HMC 1.1 setup.
type Config = core.Config

// Request is one trace entry: an address, a size, and a direction.
type Request = host.Request

// DefaultConfig returns the paper's system configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// System is an assembled simulation: engine, cube, controller and
// address mapping. It embeds the core engine, so all low-level drivers
// (RunGUPS, PlayStreams, RandomTrace, ...) remain reachable.
type System struct {
	*core.System
}

// NewSystem builds a system from cfg.
func NewSystem(cfg Config) *System { return &System{core.NewSystem(cfg)} }

// Options tune how much work experiments do. The zero value is the full
// paper-fidelity configuration.
type Options struct {
	// Quick cuts windows and sample counts for use inside tests and
	// benchmarks.
	//hmcsim:speckey-ok founding key field: every cached result already keys on it
	Quick bool `json:"quick"`
	// Seed perturbs all workload RNGs (0 keeps the config default),
	// letting callers check that conclusions are seed-stable.
	//hmcsim:speckey-ok founding key field: every cached result already keys on it
	Seed uint64 `json:"seed"`
	// Traffic carries a synthetic traffic spec for the experiments that
	// consume one (the generic "traffic" runner); nil runs their
	// defaults. It is omitted from JSON when nil, so specs predating
	// the traffic subsystem keep their cache keys.
	Traffic *TrafficSpec `json:"traffic,omitempty"`
	// Workers bounds Sweep fan-out: 0 means runtime.NumCPU(), 1 forces
	// sequential execution. Excluded from JSON because it must never
	// change results, only wall-clock time.
	Workers int `json:"-"`
	// Shards runs each simulation on a vault-partitioned lockstep
	// engine group of this many shards instead of the serial reference
	// engine (0, the default). Results are byte-identical at every
	// shard count; like Workers it trades only wall-clock time, so it
	// is omitted from JSON and never perturbs cached spec keys.
	Shards int `json:"-"`
}

// SweepWorkers resolves the sweep fan-out the experiment runners pass
// to Sweep: Workers when the caller set it, otherwise the machine's
// core count divided by the per-run shard count, so a sharded sweep
// does not oversubscribe the machine with shards*jobs goroutines.
func (o Options) SweepWorkers() int {
	if o.Workers != 0 || o.Shards <= 1 {
		return o.Workers // Sweep turns 0 into runtime.NumCPU()
	}
	if w := runtime.NumCPU() / o.Shards; w > 1 {
		return w
	}
	return 1
}

// Validate rejects option values that cannot run: currently a traffic
// spec naming an unknown pattern or out-of-range parameters. The CLI
// and the hmcsimd submit path both call it, so the same helpful error
// (listing the valid pattern names) appears locally and as HTTP 400.
func (o Options) Validate() error {
	if o.Traffic != nil {
		return o.Traffic.Validate()
	}
	return nil
}

// NewSystem builds a default system with the option seed and engine
// sharding applied.
func (o Options) NewSystem() *System {
	cfg := DefaultConfig()
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.Shards = o.Shards
	return NewSystem(cfg)
}

// checkpointEvery is how many retired events pass between engine
// checkpoints in systems built by NewSystemCtx. Large enough that the
// countdown branch is noise in the event loop, small enough that
// cancellation lands within a few hundred microseconds of wall clock.
// It matches the engine's own default cadence.
const checkpointEvery = sim.DefaultCheckpointEvery

// NewSystemCtx builds a system like NewSystem but wired to ctx:
//
//   - If ctx can be cancelled, the engine checks it at periodic
//     checkpoints in its event loop, so Run and Drain return early
//     (mid-simulation, deterministically up to that point) once the
//     context is done.
//   - If ctx carries a WithProgress sink, the same checkpoints report
//     simulation headway (events retired, simulated time advanced).
//   - If ctx carries a WithTrace collector, the system is assembled
//     with per-component tracers feeding that collector.
//   - If ctx carries a WithTimeline collector, those tracers also
//     record per-component activity over simulated time, for Chrome
//     trace_event export.
//   - If ctx carries a WithShardStats collector (or a timeline) and the
//     options shard the engine, the group gets a lockstep observatory:
//     barrier-wait, window and mailbox telemetry, merged by the
//     collector and exported as barrier-stall slices on the timeline.
//
// A background context with no sink and no collector yields a system
// identical to NewSystem, with zero checkpoint overhead.
func (o Options) NewSystemCtx(ctx context.Context) *System {
	cfg := DefaultConfig()
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.Shards = o.Shards
	tc := collectorFrom(ctx)
	tlc := timelineFrom(ctx)
	ssc := shardStatsFrom(ctx)
	switch {
	case tlc != nil:
		// One SystemTracer can serve both collectors; the timeline
		// collector owns it so trace summaries stay unchanged.
		st := tlc.col.NewSystem()
		st.EnableTimeline(obs.NewTimeline(0))
		if tc != nil {
			tc.col.Register(st)
		}
		cfg.Trace = st
	case tc != nil:
		cfg.Trace = tc.col.NewSystem()
	}
	if o.Shards >= 1 && (ssc != nil || tlc != nil) {
		cfg.GroupTrace = &sim.GroupTracer{}
	}
	sys := NewSystem(cfg)
	if cfg.GroupTrace != nil && ssc != nil {
		if g := sys.Eng.Group(); g != nil {
			ssc.register(g, cfg.GroupTrace)
		}
	}
	attachCheckpoint(ctx, sys.Eng)
	return sys
}

// attachCheckpoint wires an engine's event-loop checkpoint to ctx: the
// engine stops early once ctx is done, and reports simulation headway
// to the ctx progress sink if one is attached. A background context
// with no sink leaves the engine checkpoint-free.
func attachCheckpoint(ctx context.Context, eng *sim.Engine) {
	sink := sinkFrom(ctx)
	if sink == nil && ctx.Done() == nil {
		return
	}
	var lastEvents uint64
	var lastNow Time
	eng.SetCheckpoint(checkpointEvery, func() bool {
		if sink != nil {
			ev, now := eng.Fired(), eng.Now()
			sink.engineTick(ev-lastEvents, int64(now-lastNow))
			lastEvents, lastNow = ev, now
		}
		return ctx.Err() == nil
	})
}

// Warmup returns the traffic time before counters reset.
func (o Options) Warmup() Time {
	if o.Quick {
		return 15 * Microsecond
	}
	return 30 * Microsecond
}

// Window returns the measurement window after warm-up.
func (o Options) Window() Time {
	if o.Quick {
		return 40 * Microsecond
	}
	return 120 * Microsecond
}

// PatternSpec names an address-restriction pattern structurally, so it
// can be declared before any System exists. The zero value (no banks,
// no vaults) is the unrestricted whole-cube pattern.
type PatternSpec struct {
	Name   string `json:"name"`
	Banks  int    `json:"banks,omitempty"`  // >0: confined to this many banks of vault 0
	Vaults int    `json:"vaults,omitempty"` // >0: confined to the first n vaults
}

// AllVaults is the unrestricted pattern: random over the whole cube.
var AllVaults = PatternSpec{Name: "16 vaults"}

// Patterns is the pattern sweep of the paper's Figures 6 and 13: banks
// within vault 0, then vault groups.
var Patterns = []PatternSpec{
	{Name: "1 bank", Banks: 1},
	{Name: "2 banks", Banks: 2},
	{Name: "4 banks", Banks: 4},
	{Name: "8 banks", Banks: 8},
	{Name: "1 vault", Vaults: 1},
	{Name: "2 vaults", Vaults: 2},
	{Name: "4 vaults", Vaults: 4},
	{Name: "8 vaults", Vaults: 8},
	{Name: "16 vaults", Vaults: 16},
}

// Build materializes the pattern against a system's address mapping.
func (p PatternSpec) Build(sys *System) core.Pattern {
	switch {
	case p.Banks > 0:
		pat := sys.Banks(p.Banks)
		if p.Name != "" {
			pat.Name = p.Name
		}
		return pat
	case p.Vaults > 0:
		pat := sys.Vaults(p.Vaults)
		if p.Name != "" {
			pat.Name = p.Name
		}
		return pat
	}
	pat := core.AllVaults()
	if p.Name != "" {
		pat.Name = p.Name
	}
	return pat
}

// String returns the pattern's display name.
func (p PatternSpec) String() string {
	if p.Name != "" {
		return p.Name
	}
	switch {
	case p.Banks > 0:
		return fmt.Sprintf("%d banks", p.Banks)
	case p.Vaults > 0:
		return fmt.Sprintf("%d vaults", p.Vaults)
	}
	return "16 vaults"
}
