// Package addr implements the HMC 1.1 internal address mapping of
// Figure 3: low-order interleaving of sequential blocks first across
// vaults, then across banks within a vault.
//
// For the default 128 B block size in a 4 GB cube the 34-bit request
// address decomposes as (bit ranges inclusive-exclusive, LSB first):
//
//	[0,  4)   byte within a 16 B flit (ignored by the device)
//	[4,  b)   block address: flit within the block, b = log2(blockSize)
//	[b,  b+2) vault ID within a quadrant
//	[b+2,b+4) quadrant ID
//	[b+4,b+8) bank ID within the vault
//	[b+8,32)  DRAM row/column remainder
//	[32, 34)  ignored in a 4 GB cube
package addr

import (
	"fmt"
	"math/bits"
)

// Geometry of a 4 GB HMC 1.1 (Gen2) cube.
const (
	Vaults          = 16
	Quadrants       = 4
	VaultsPerQuad   = Vaults / Quadrants
	BanksPerVault   = 16
	Banks           = Vaults * BanksPerVault // 256
	VaultBytes      = 256 << 20              // 256 MB
	BankBytes       = 16 << 20               // 16 MB
	CubeBytes       = 4 << 30                // 4 GB
	AddressBits     = 34                     // request header field width
	UsedAddressBits = 32                     // 4 GB cube ignores the top two
)

// Location is a decoded physical address inside the cube.
type Location struct {
	Vault    int // 0..15
	Quadrant int // 0..3
	Bank     int // bank within the vault, 0..15
	Row      uint64
	Offset   uint64 // byte offset within the block
}

// Mapping decodes and encodes addresses for a given block size.
type Mapping struct {
	blockSize int
	blockBits uint // log2(blockSize)
}

// NewMapping returns the mapping for a power-of-two block size between
// 16 and 128 bytes (the sizes HMC 1.1 supports).
func NewMapping(blockSize int) (*Mapping, error) {
	switch blockSize {
	case 16, 32, 64, 128:
		return &Mapping{blockSize: blockSize, blockBits: uint(bits.TrailingZeros(uint(blockSize)))}, nil
	}
	return nil, fmt.Errorf("addr: unsupported block size %d (want 16, 32, 64 or 128)", blockSize)
}

// MustMapping is NewMapping for known-good sizes; it panics on error.
func MustMapping(blockSize int) *Mapping {
	m, err := NewMapping(blockSize)
	if err != nil {
		panic(err)
	}
	return m
}

// BlockSize returns the configured block size in bytes.
func (m *Mapping) BlockSize() int { return m.blockSize }

// Decode splits a byte address into its physical location. Address bits
// above bit 31 are ignored, as in a 4 GB cube.
func (m *Mapping) Decode(a uint64) Location {
	a &= 1<<UsedAddressBits - 1
	b := m.blockBits
	vaultInQuad := int(a >> b & 0x3)
	quad := int(a >> (b + 2) & 0x3)
	bank := int(a >> (b + 4) & 0xF)
	row := a >> (b + 8)
	return Location{
		Vault:    quad*VaultsPerQuad + vaultInQuad,
		Quadrant: quad,
		Bank:     bank,
		Row:      row,
		Offset:   a & (1<<b - 1),
	}
}

// Encode is the inverse of Decode: it builds the byte address of the given
// location.
func (m *Mapping) Encode(loc Location) uint64 {
	b := m.blockBits
	quad := uint64(loc.Vault / VaultsPerQuad)
	viq := uint64(loc.Vault % VaultsPerQuad)
	return loc.Offset |
		viq<<b |
		quad<<(b+2) |
		uint64(loc.Bank)<<(b+4) |
		loc.Row<<(b+8)
}

// VaultOf is a shorthand for Decode(a).Vault.
func (m *Mapping) VaultOf(a uint64) int { return m.Decode(a).Vault }

// BankOf returns the global bank number (vault*16 + bank) of an address.
func (m *Mapping) BankOf(a uint64) int {
	l := m.Decode(a)
	return l.Vault*BanksPerVault + l.Bank
}

// Mask is the GUPS address mask / anti-mask pair (Section III-B): after a
// random address is generated, bits set in AntiMask are forced to one and
// bits cleared in Mask are forced to zero. Restricting the vault and bank
// fields this way confines traffic to any structural subset of the cube,
// from one bank to the whole device.
type Mask struct {
	Mask     uint64 // AND mask: zeros force bits to zero
	AntiMask uint64 // OR mask: ones force bits to one
}

// AllAccess is the identity mask: the full cube.
var AllAccess = Mask{Mask: ^uint64(0), AntiMask: 0}

// Apply clamps a raw generated address.
func (k Mask) Apply(a uint64) uint64 {
	return a&k.Mask | k.AntiMask
}

// VaultsMask returns a Mask confining accesses to the first n vaults
// (n must be a power of two between 1 and 16). With low-order
// interleaving this pins the vault-selection bits while leaving bank and
// row bits random.
func (m *Mapping) VaultsMask(n int) (Mask, error) {
	if n <= 0 || n > Vaults || n&(n-1) != 0 {
		return Mask{}, fmt.Errorf("addr: vault count %d not a power of two in [1,16]", n)
	}
	fixed := uint(bits.TrailingZeros(uint(Vaults / n))) // high vault bits to pin
	// Vault field occupies bits [b, b+4). Pin its top `fixed` bits to zero.
	var mask uint64 = ^uint64(0)
	for i := uint(0); i < fixed; i++ {
		bit := m.blockBits + 4 - 1 - i
		mask &^= 1 << bit
	}
	return Mask{Mask: mask, AntiMask: 0}, nil
}

// BanksMask returns a Mask confining accesses to n banks (power of two
// in [1,16]) of vault 0: the vault field is pinned to zero and the top
// bank bits are pinned to zero.
func (m *Mapping) BanksMask(n int) (Mask, error) {
	if n <= 0 || n > BanksPerVault || n&(n-1) != 0 {
		return Mask{}, fmt.Errorf("addr: bank count %d not a power of two in [1,16]", n)
	}
	var mask uint64 = ^uint64(0)
	// Pin all four vault bits to zero.
	for i := uint(0); i < 4; i++ {
		mask &^= 1 << (m.blockBits + i)
	}
	fixed := uint(bits.TrailingZeros(uint(BanksPerVault / n)))
	for i := uint(0); i < fixed; i++ {
		bit := m.blockBits + 8 - 1 - i
		mask &^= 1 << bit
	}
	return Mask{Mask: mask, AntiMask: 0}, nil
}

// SingleVaultMask returns a Mask confining accesses to exactly vault v
// (all 16 banks of it).
func (m *Mapping) SingleVaultMask(v int) (Mask, error) {
	if v < 0 || v >= Vaults {
		return Mask{}, fmt.Errorf("addr: vault %d out of range", v)
	}
	var mask uint64 = ^uint64(0)
	var anti uint64
	quad := uint64(v / VaultsPerQuad)
	viq := uint64(v % VaultsPerQuad)
	field := viq | quad<<2
	for i := uint(0); i < 4; i++ {
		bit := m.blockBits + i
		if field>>i&1 == 1 {
			anti |= 1 << bit
		} else {
			mask &^= 1 << bit
		}
	}
	return Mask{Mask: mask, AntiMask: anti}, nil
}

// PageVaults returns the set of vaults touched by one naturally aligned
// 4 KB OS page, demonstrating the interleaving property of Figure 3: with
// 128 B blocks a page covers two banks in every one of the 16 vaults.
func (m *Mapping) PageVaults(pageAddr uint64) map[int][]int {
	out := make(map[int][]int)
	base := pageAddr &^ uint64(4096-1)
	for off := uint64(0); off < 4096; off += uint64(m.blockSize) {
		l := m.Decode(base + off)
		banks := out[l.Vault]
		found := false
		for _, b := range banks {
			if b == l.Bank {
				found = true
				break
			}
		}
		if !found {
			out[l.Vault] = append(banks, l.Bank)
		}
	}
	return out
}
