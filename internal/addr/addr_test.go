package addr

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	// Section II-A: 4 GB cube, 16 vaults of 256 MB, 16 MB banks,
	// 16 banks per vault, 256 banks total.
	if Vaults*VaultBytes != CubeBytes {
		t.Error("vaults x vault size != cube size")
	}
	if BanksPerVault*BankBytes != VaultBytes {
		t.Error("banks x bank size != vault size")
	}
	if Banks != 256 {
		t.Errorf("Banks = %d, want 256", Banks)
	}
}

func TestDecodeFieldPositions(t *testing.T) {
	m := MustMapping(128)
	// Bit 7 is the low vault-in-quadrant bit for 128 B blocks.
	l := m.Decode(1 << 7)
	if l.Vault != 1 || l.Quadrant != 0 || l.Bank != 0 {
		t.Errorf("bit7 -> %+v, want vault 1", l)
	}
	// Bit 9 is the low quadrant bit: vault jumps by 4.
	l = m.Decode(1 << 9)
	if l.Vault != 4 || l.Quadrant != 1 {
		t.Errorf("bit9 -> %+v, want vault 4 quadrant 1", l)
	}
	// Bit 11 is the low bank bit.
	l = m.Decode(1 << 11)
	if l.Bank != 1 || l.Vault != 0 {
		t.Errorf("bit11 -> %+v, want bank 1", l)
	}
	// Bit 15 starts the row field.
	l = m.Decode(1 << 15)
	if l.Row != 1 || l.Bank != 0 || l.Vault != 0 {
		t.Errorf("bit15 -> %+v, want row 1", l)
	}
	// Bits 32 and 33 are ignored.
	if m.Decode(1<<32|0x80) != m.Decode(0x80) {
		t.Error("bit 32 not ignored")
	}
}

func TestSequentialBlocksInterleaveVaultsFirst(t *testing.T) {
	m := MustMapping(128)
	// Figure 3: sequential 128 B blocks map to vaults 0..15, then wrap to
	// the next bank.
	for i := 0; i < 16; i++ {
		l := m.Decode(uint64(i) * 128)
		if l.Vault != i {
			t.Fatalf("block %d -> vault %d, want %d", i, l.Vault, i)
		}
		if l.Bank != 0 {
			t.Fatalf("block %d -> bank %d, want 0", i, l.Bank)
		}
	}
	l := m.Decode(16 * 128)
	if l.Vault != 0 || l.Bank != 1 {
		t.Fatalf("block 16 -> vault %d bank %d, want vault 0 bank 1", l.Vault, l.Bank)
	}
}

func TestOSPageCoversAllVaultsTwoBanks(t *testing.T) {
	// Section II-A: with 128 B blocks a 4 KB OS page maps to two banks
	// over all 16 vaults.
	m := MustMapping(128)
	spread := m.PageVaults(0x12345000)
	if len(spread) != 16 {
		t.Fatalf("page touches %d vaults, want 16", len(spread))
	}
	for v, banks := range spread {
		if len(banks) != 2 {
			t.Errorf("vault %d holds %d banks of the page, want 2", v, len(banks))
		}
	}
}

func TestEncodeDecodeInverse(t *testing.T) {
	for _, bs := range []int{16, 32, 64, 128} {
		m := MustMapping(bs)
		f := func(raw uint64) bool {
			a := raw & (1<<UsedAddressBits - 1)
			l := m.Decode(a)
			if l.Vault < 0 || l.Vault >= Vaults || l.Bank < 0 || l.Bank >= BanksPerVault {
				return false
			}
			if l.Quadrant != l.Vault/VaultsPerQuad {
				return false
			}
			return m.Encode(l) == a
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("block size %d: %v", bs, err)
		}
	}
}

func TestDecodeIsBalanced(t *testing.T) {
	// Every vault and bank owns the same number of addresses: walk all
	// blocks of a 1 MB region spaced to hit distinct (vault, bank) pairs.
	m := MustMapping(128)
	counts := make(map[int]int)
	for a := uint64(0); a < 1<<20; a += 128 {
		counts[m.BankOf(a)]++
	}
	if len(counts) != Banks {
		t.Fatalf("region touched %d banks, want %d", len(counts), Banks)
	}
	want := (1 << 20) / 128 / Banks // every global bank equally loaded
	for bank, c := range counts {
		if c != want {
			t.Fatalf("bank %d got %d blocks, want %d", bank, c, want)
		}
	}
}

func TestNewMappingRejectsBadSizes(t *testing.T) {
	for _, bad := range []int{0, 8, 24, 256, -128} {
		if _, err := NewMapping(bad); err == nil {
			t.Errorf("NewMapping(%d) succeeded, want error", bad)
		}
	}
}

func TestVaultsMask(t *testing.T) {
	m := MustMapping(128)
	for _, n := range []int{1, 2, 4, 8, 16} {
		k, err := m.VaultsMask(n)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		for i := uint64(0); i < 1<<16; i += 97 {
			a := k.Apply(i * 131)
			v := m.VaultOf(a)
			if v >= n {
				t.Fatalf("VaultsMask(%d): address maps to vault %d", n, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Fatalf("VaultsMask(%d): only %d vaults reached", n, len(seen))
		}
	}
	if _, err := m.VaultsMask(3); err == nil {
		t.Error("VaultsMask(3) succeeded, want error")
	}
}

func TestBanksMask(t *testing.T) {
	m := MustMapping(128)
	for _, n := range []int{1, 2, 4, 8, 16} {
		k, err := m.BanksMask(n)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		for i := uint64(0); i < 1<<16; i += 89 {
			a := k.Apply(i * 127)
			l := m.Decode(a)
			if l.Vault != 0 {
				t.Fatalf("BanksMask(%d): address maps to vault %d", n, l.Vault)
			}
			if l.Bank >= n {
				t.Fatalf("BanksMask(%d): address maps to bank %d", n, l.Bank)
			}
			seen[l.Bank] = true
		}
		if len(seen) != n {
			t.Fatalf("BanksMask(%d): only %d banks reached", n, len(seen))
		}
	}
}

func TestSingleVaultMask(t *testing.T) {
	m := MustMapping(128)
	for v := 0; v < Vaults; v++ {
		k, err := m.SingleVaultMask(v)
		if err != nil {
			t.Fatal(err)
		}
		banks := make(map[int]bool)
		for i := uint64(0); i < 1<<15; i += 61 {
			a := k.Apply(i * 257)
			l := m.Decode(a)
			if l.Vault != v {
				t.Fatalf("SingleVaultMask(%d): address maps to vault %d", v, l.Vault)
			}
			banks[l.Bank] = true
		}
		if len(banks) != BanksPerVault {
			t.Fatalf("SingleVaultMask(%d): only %d banks reached", v, len(banks))
		}
	}
	if _, err := m.SingleVaultMask(16); err == nil {
		t.Error("SingleVaultMask(16) succeeded, want error")
	}
}

func TestMaskComposition(t *testing.T) {
	// AntiMask bits always win over random bits; Mask zeros always win.
	k := Mask{Mask: ^uint64(0x0F0), AntiMask: 0xF00}
	f := func(a uint64) bool {
		got := k.Apply(a)
		return got&0x0F0 == 0 && got&0xF00 == 0xF00
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
