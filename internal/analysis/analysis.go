// Package analysis is hmcsimvet: a project-specific static-analysis
// suite that machine-checks the four load-bearing invariants the rest
// of the repository only enforces at runtime.
//
//   - determinism: kernel packages must not read wall clocks, use the
//     process-global math/rand generator, spawn goroutines or select
//     outside the sim.Group lockstep machinery, or let map iteration
//     order leak into event schedules or ordered output. The runtime
//     counterpart is the byte-identity A/B guard (PR 8); this analyzer
//     catches the drift before it costs a golden-regeneration hunt.
//   - nilhook: every exported method on a pointer-receiver tracer type
//     must begin with a nil-receiver guard, so a new observability hook
//     can never panic a tracerless build. Runtime counterpart:
//     TestNilTracersAreNoOps.
//   - speckey: fields added to the Spec content-key closure must be
//     json:"-" or omitempty, so specs predating the field keep their
//     cache keys. Runtime counterpart: the key-stability tests.
//   - hotpath: functions annotated //hmcsim:hotpath must not build
//     capturing closures, call fmt, concatenate strings, or box values
//     into interfaces. Runtime counterpart: the 0 allocs/op bench-smoke
//     CI steps.
//
// The suite is framework-compatible with go/analysis in spirit, but is
// implemented on the standard library alone (go/ast, go/types,
// go/importer): this module deliberately has no dependencies, and the
// golang.org/x/tools module is not available in the build image. The
// cmd/hmcsimvet binary speaks the `go vet -vettool=` protocol (see
// unit.go) and also loads packages itself when given patterns (see
// load.go).
//
// Escape hatches are comment directives that always carry a reason:
//
//	//hmcsim:nondet-ok <why order/time cannot affect results>
//	//hmcsim:speckey-ok <why the field is part of the founding key>
//
// A directive suppresses diagnostics on its own line and the line
// below, so it works both as a trailing comment and as the last line of
// a doc comment. A directive with no reason suppresses nothing: the
// diagnostic is reported with a note asking for the reason, so silent
// waivers cannot accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer so the suite could migrate
// onto the real framework if the dependency ever becomes available.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "determinism"
	Doc  string // one-paragraph description shown by `hmcsimvet help`
	Run  func(*Pass) error
}

// A Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	dirs map[string]map[int][]directive // filename → line → directives
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// pkgPath returns the package's import path with the " [pkg.test]"
// suffix the vet driver appends to test variants stripped off.
func (p *Pass) pkgPath() string {
	pkgPath := p.Pkg.Path()
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	return pkgPath
}

// Segment returns the last element of the package path, which is how
// analyzers decide whether a package is in their scope.
func (p *Pass) Segment() string {
	return path.Base(p.pkgPath())
}

// InKernelScope reports whether the package is part of the simulator
// proper: the module root package or anything under internal/. The
// examples and cmd trees reuse kernel segment names (examples/traffic,
// cmd/hmcsim) but are demo/wiring code outside the invariants' scope.
func (p *Pass) InKernelScope() bool {
	pkgPath := p.pkgPath()
	return pkgPath == "hmcsim" || strings.Contains(pkgPath, "/internal/")
}

// IsTestFile reports whether file is a _test.go file. The invariants
// this suite enforces are about production kernel code; tests
// legitimately use goroutines, wall clocks and unordered maps.
func (p *Pass) IsTestFile(file *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(file.Pos()).Filename, "_test.go")
}

// directive is one //hmcsim:<name> <reason> comment.
type directive struct {
	name   string
	reason string
	pos    token.Pos
}

// directivePrefix introduces every escape-hatch and annotation comment.
const directivePrefix = "//hmcsim:"

// parseDirective splits a raw comment into a directive, if it is one.
func parseDirective(c *ast.Comment) (directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	name, reason, _ := strings.Cut(rest, " ")
	if name == "" {
		return directive{}, false
	}
	return directive{name: name, reason: strings.TrimSpace(reason), pos: c.Pos()}, true
}

// buildDirectives indexes every //hmcsim: comment by file and line.
func (p *Pass) buildDirectives() {
	p.dirs = make(map[string]map[int][]directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.dirs[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]directive)
					p.dirs[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
}

// directiveAt returns the named directive covering pos: one on the same
// line (trailing comment) or on the line directly above (doc-comment
// style).
func (p *Pass) directiveAt(name string, pos token.Pos) (directive, bool) {
	if p.dirs == nil {
		p.buildDirectives()
	}
	at := p.Fset.Position(pos)
	byLine := p.dirs[at.Filename]
	for _, line := range [2]int{at.Line, at.Line - 1} {
		for _, d := range byLine[line] {
			if d.name == name {
				return d, true
			}
		}
	}
	return directive{}, false
}

// suppress decides the fate of a diagnostic that the named directive
// may waive. With a reasoned directive present the diagnostic is
// dropped; with a reasonless directive it is reported with a note
// demanding the reason; with no directive it is reported as given.
func (p *Pass) suppress(name string, d Diagnostic) {
	dir, ok := p.directiveAt(name, d.Pos)
	if ok && dir.reason != "" {
		return
	}
	if ok {
		d.Message += fmt.Sprintf(" (the %s%s directive needs a reason to suppress this)", directivePrefix, name)
	}
	p.Report(d)
}

// hasHotpathDirective reports whether a function declaration's doc
// comment carries the //hmcsim:hotpath annotation.
func hasHotpathDirective(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if d, ok := parseDirective(c); ok && d.name == "hotpath" {
			return true
		}
	}
	return false
}

// All returns the full hmcsimvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, NilHook, SpecKey, HotPath}
}

// RunPackage runs every analyzer over one type-checked package and
// returns the findings sorted by position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
