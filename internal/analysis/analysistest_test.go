package analysis

// The fixture harness mirrors golang.org/x/tools/go/analysis/analysistest:
// fixture packages under testdata/src/ carry trailing
//
//	// want `regexp`
//
// comments on the lines where an analyzer must report (several
// backquoted regexps may share one comment when a line gets several
// findings), and the test fails on any unexpected diagnostic and any
// unmatched expectation. The fixtures are real compilable packages —
// the loader typechecks them with full export data — because the
// analyzers are type-driven.

import (
	"regexp"
	"strings"
	"testing"
)

var wantPatternRE = regexp.MustCompile("`([^`]+)`")

type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, pkg *Package) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				specs := wantPatternRE.FindAllStringSubmatch(c.Text[i:], -1)
				if len(specs) == 0 {
					t.Fatalf("%s: want comment carries no backquoted pattern: %s", pos, c.Text)
				}
				for _, m := range specs {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runFixture checks one analyzer against one fixture package pattern.
func runFixture(t *testing.T, a *Analyzer, pattern string) {
	t.Helper()
	pkgs, err := Load(".", pattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %s", pattern)
	}
	for _, pkg := range pkgs {
		wants := collectWants(t, pkg)
		diags, err := RunPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, []*Analyzer{a})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			matched := false
			for _, w := range wants {
				if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
					w.matched = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("unexpected diagnostic at %s: %s", pos, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.re)
			}
		}
	}
}

func TestDeterminism(t *testing.T) { runFixture(t, Determinism, "./testdata/src/sim") }

func TestNilHook(t *testing.T) { runFixture(t, NilHook, "./testdata/src/obs") }

func TestSpecKey(t *testing.T) {
	runFixture(t, SpecKey, "./testdata/src/hmcsim")
	runFixture(t, SpecKey, "./testdata/src/traffic")
}

func TestHotPath(t *testing.T) { runFixture(t, HotPath, "./testdata/src/hot") }

// TestCleanTree runs the whole suite over the whole module the same way
// CI's `go vet -vettool` step does, and requires zero findings. Any new
// violation in the tree fails here first, with the same message the vet
// step would print.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the entire module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s", pkg.Fset.Position(d.Pos), d.Message)
		}
	}
}
