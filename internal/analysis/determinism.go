package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// kernelPackages names the simulation-kernel packages (by final import
// path element) whose results must be bit-identical across runs,
// machines and shard counts. Anything that perturbs event order or
// injects wall-clock state into these packages silently invalidates the
// A/B byte-identity guarantee the caches and golden tests rest on.
var kernelPackages = map[string]bool{
	"sim":     true,
	"noc":     true,
	"vault":   true,
	"link":    true,
	"host":    true,
	"hmc":     true,
	"traffic": true,
	"addr":    true,
	"packet":  true,
}

// wallClockFuncs are the package time functions that read or wait on
// the wall clock. Pure arithmetic on time.Duration values is fine; the
// kernel's simulated clock is integer picoseconds owned by the engine.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// orderedSinkCalls are method/function names that feed an ordered
// schedule or stream: reaching one of these from inside a map-range
// body means random iteration order became event order.
var orderedSinkCalls = map[string]bool{
	"Schedule": true,
	"At":       true,
	"AtKey":    true,
	"After":    true,
	"CrossAt":  true,
	"Push":     true,
	"Send":     true,
	"Post":     true,
	"Enqueue":  true,
	"Fire":     true,
}

// Determinism enforces the kernel's bit-for-bit reproducibility
// contract statically.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: `forbid nondeterminism sources in simulation-kernel packages

In kernel packages (internal/sim, noc, vault, link, host, hmc, traffic,
addr, packet) this analyzer flags wall-clock reads (time.Now, time.Since
and friends), imports of math/rand (whose global generator is seeded per
process), go statements and select statements (concurrency outside the
sim.Group lockstep machinery breaks deterministic event order), and
ranging over a map where the body schedules events or appends to ordered
output. Suppress a finding with a trailing or preceding
//hmcsim:nondet-ok <reason> comment; the reason is mandatory.`,
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !pass.InKernelScope() || !kernelPackages[pass.Segment()] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				checkRandImport(pass, n)
			case *ast.SelectorExpr:
				checkWallClock(pass, n)
			case *ast.GoStmt:
				pass.suppress("nondet-ok", Diagnostic{
					Pos: n.Pos(),
					Message: "determinism: go statement in a kernel package; " +
						"concurrency outside the sim.Group lockstep machinery breaks deterministic event order",
				})
			case *ast.SelectStmt:
				pass.suppress("nondet-ok", Diagnostic{
					Pos: n.Pos(),
					Message: "determinism: select statement in a kernel package; " +
						"case choice is runtime-random and breaks deterministic event order",
				})
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkRandImport flags math/rand imports. The kernel carries its own
// seeded, replayable generator (internal/sim/rand.go) precisely so that
// no component ever reaches for the process-global one.
func checkRandImport(pass *Pass, spec *ast.ImportSpec) {
	p, err := strconv.Unquote(spec.Path.Value)
	if err != nil {
		return
	}
	if p == "math/rand" || p == "math/rand/v2" {
		pass.suppress("nondet-ok", Diagnostic{
			Pos: spec.Pos(),
			Message: "determinism: kernel packages must not import " + p +
				"; use the engine's seeded RNG (internal/sim/rand.go) so runs replay bit-identically",
		})
	}
}

// checkWallClock flags selector uses resolving to wall-clock functions
// of package time. Checking the use (not just calls) also catches the
// method-value form `fn := time.Now`.
func checkWallClock(pass *Pass, sel *ast.SelectorExpr) {
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return
	}
	if !wallClockFuncs[obj.Name()] {
		return
	}
	pass.suppress("nondet-ok", Diagnostic{
		Pos: sel.Pos(),
		Message: "determinism: time." + obj.Name() + " reads the wall clock; " +
			"kernel code must take time from the engine's simulated clock",
	})
}

// checkMapRange flags map-range loops whose body schedules events or
// appends to ordered output: both turn Go's randomized iteration order
// into observable result order.
func checkMapRange(pass *Pass, loop *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[loop.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	sink := ""
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" {
				if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
					sink = "appends to ordered output"
				}
			} else if orderedSinkCalls[fun.Name] {
				sink = "calls " + fun.Name
			}
		case *ast.SelectorExpr:
			if orderedSinkCalls[fun.Sel.Name] {
				sink = "calls " + fun.Sel.Name
			}
		}
		return true
	})
	if sink == "" {
		return
	}
	pass.suppress("nondet-ok", Diagnostic{
		Pos: loop.Pos(),
		Message: "determinism: map iteration order is randomized and this loop body " + sink +
			"; iterate a sorted copy of the keys instead",
	})
}
