package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPath is the static complement of the 0 allocs/op bench-smoke CI
// steps: where the benchmarks prove the annotated paths do not allocate
// today, this analyzer names the construct that would make them
// allocate tomorrow, at the line that introduces it.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: `forbid allocating constructs in //hmcsim:hotpath functions

A function whose doc comment carries //hmcsim:hotpath declares itself
part of an allocation-free steady-state path (event fire, ring and
queue operations, cross-shard mailboxes, tracer hooks). Inside such
functions this analyzer flags: closure literals that capture variables
(a heap allocation per call — bind the callback once, as sim.Timer
does), calls into package fmt, string concatenation, and implicit
boxing of concrete values into interface types (call arguments,
assignments, returns). panic(...) arguments are exempt: panics are cold
by definition, and hoisting their formatting into a separate unannotated
function is the idiomatic fix for everything else they pull in.`,
	Run: runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasHotpathDirective(fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	// Calls whose arguments should not also be reported for boxing:
	// panic (cold path) and fmt calls (already flagged wholesale).
	skipArgs := make(map[*ast.CallExpr]bool)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCapture(pass, fn, n)
		case *ast.CallExpr:
			checkHotCall(pass, n, skipArgs)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass, n) {
				pass.Reportf(n.OpPos, "hotpath: string concatenation allocates; "+
					"hot paths must not build strings")
			}
		case *ast.AssignStmt:
			checkAssignBoxing(pass, n)
		case *ast.ValueSpec:
			checkValueSpecBoxing(pass, n)
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, fn, n)
		}
		return true
	})
}

// checkCapture flags closure literals that capture variables declared
// in the enclosing function (receiver, parameters or locals): each such
// literal is a fresh heap allocation every time the hot path reaches
// it. Literals that capture nothing compile to a static function value
// and are fine.
func checkCapture(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) {
	captured := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing function but
		// outside the literal itself.
		if obj.Pos() >= fn.Pos() && obj.Pos() < fn.End() &&
			(obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			captured[obj.Name()] = true
		}
		return true
	})
	if len(captured) == 0 {
		return
	}
	names := make([]string, 0, len(captured))
	for name := range captured {
		names = append(names, name)
	}
	sort.Strings(names)
	pass.Reportf(lit.Pos(), "hotpath: closure captures %s and allocates per call; "+
		"bind the callback once (sim.Timer, pre-bound stage functions) instead",
		strings.Join(names, ", "))
}

// checkHotCall flags fmt calls and interface-boxing arguments.
func checkHotCall(pass *Pass, call *ast.CallExpr, skipArgs map[*ast.CallExpr]bool) {
	// Builtins: panic's arguments are cold; the others (append, len,
	// copy, ...) never box.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			skipArgs[call] = true
			return
		}
	}
	// Conversions are not calls.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		skipArgs[call] = true
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			skipArgs[call] = true
			pass.Reportf(call.Pos(), "hotpath: fmt.%s allocates (formatting state and boxed arguments); "+
				"hot paths must not format", obj.Name())
			return
		}
	}
	if skipArgs[call] {
		return
	}
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // arg... passes the slice through, no boxing here
			}
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			paramType = slice.Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		reportBoxing(pass, arg, paramType, "argument")
	}
}

// checkAssignBoxing flags `ifaceVar = concreteValue` assignments.
// Define (:=) never boxes: the variable takes the value's own type.
func checkAssignBoxing(pass *Pass, assign *ast.AssignStmt) {
	if assign.Tok != token.ASSIGN || len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		lhsType := pass.TypesInfo.TypeOf(lhs)
		if lhsType == nil {
			continue
		}
		reportBoxing(pass, assign.Rhs[i], lhsType, "assignment")
	}
}

// checkValueSpecBoxing flags `var x InterfaceType = concreteValue`.
func checkValueSpecBoxing(pass *Pass, spec *ast.ValueSpec) {
	if spec.Type == nil {
		return
	}
	declType := pass.TypesInfo.TypeOf(spec.Type)
	if declType == nil {
		return
	}
	for _, v := range spec.Values {
		reportBoxing(pass, v, declType, "declaration")
	}
}

// checkReturnBoxing flags returning a concrete value from a function
// whose result type is an interface.
func checkReturnBoxing(pass *Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	if fn.Type.Results == nil {
		return
	}
	var resultTypes []types.Type
	for _, field := range fn.Type.Results.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // bare return or single-call multi-value form
	}
	for i, r := range ret.Results {
		reportBoxing(pass, r, resultTypes[i], "return")
	}
}

// reportBoxing reports expr if converting it to target boxes a concrete
// value into an interface. nil literals and values already of interface
// type convert without allocating.
func reportBoxing(pass *Pass, expr ast.Expr, target types.Type, context string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if isUntypedNil(tv.Type) || types.IsInterface(tv.Type) {
		return
	}
	pass.Reportf(expr.Pos(), "hotpath: %s boxes %s into %s, which allocates; "+
		"keep hot-path data concretely typed", context, tv.Type.String(), target.String())
}

func isStringType(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	return ok && basic.Kind() == types.UntypedNil
}
