package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
}

// Load type-checks the packages matching patterns (resolved in dir) and
// returns them ready for analysis. It shells out to `go list -export
// -deps`, which compiles export data for every dependency into the
// build cache, then type-checks only the target packages from source —
// the same division of labor the `go vet` driver uses, without needing
// golang.org/x/tools/go/packages. Works fully offline: this module has
// no dependencies outside the standard library.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, p := range targets {
		filenames := make([]string, len(p.GoFiles))
		for i, name := range p.GoFiles {
			filenames[i] = filepath.Join(p.Dir, name)
		}
		pkg, err := typecheck(fset, p.ImportPath, filenames, imp, "")
		if err != nil {
			return nil, err
		}
		pkg.Dir = p.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter builds a types.Importer that reads gc export data
// located by the lookup function, handling "unsafe" specially (it has
// no export data; its types are wired into go/types).
func exportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// typecheck parses and type-checks one package. Comments are kept: the
// suite's directives live in them.
func typecheck(fset *token.FileSet, importPath string, filenames []string, imp types.Importer, goVersion string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Fset:  fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}, nil
}

// RunStandalone loads patterns, runs the whole suite, and prints
// findings to w in the canonical file:line:col form. It returns the
// number of findings.
func RunStandalone(w io.Writer, dir string, patterns []string) (int, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, All())
		if err != nil {
			return count, err
		}
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s\n", pkg.Fset.Position(d.Pos), d.Message)
			count++
		}
	}
	return count, nil
}
