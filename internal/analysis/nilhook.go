package analysis

import (
	"go/ast"
	"strings"
)

// tracerPackages names (by final import path element) the packages
// whose tracer types are compiled into kernel hot paths as
// possibly-nil pointers.
var tracerPackages = map[string]bool{
	"obs": true,
	"sim": true,
}

// NilHook enforces the zero-cost-when-off tracing convention: kernel
// components hold plain possibly-nil tracer pointers and call hooks
// unconditionally, so every exported method on a tracer type must be
// safe on a nil receiver.
var NilHook = &Analyzer{
	Name: "nilhook",
	Doc: `require nil-receiver guards on tracer hook methods

In internal/obs and internal/sim, every exported method on a pointer
receiver whose type is a tracer (name ending in Tracer, Trace or Track,
or the Timeline type) must begin with

	if t == nil { return ... }

(possibly as one arm of a compound condition such as t == nil || x ==
nil). Components call these hooks unconditionally on possibly-nil
pointers; a single unguarded method turns every tracerless build into a
panic. There is no escape hatch: the guard is always correct.`,
	Run: runNilHook,
}

// isTracerTypeName reports whether a receiver base type is covered by
// the nil-hook convention.
func isTracerTypeName(name string) bool {
	return strings.HasSuffix(name, "Tracer") ||
		strings.HasSuffix(name, "Trace") ||
		strings.HasSuffix(name, "Track") ||
		name == "Timeline"
}

func runNilHook(pass *Pass) error {
	if !pass.InKernelScope() || !tracerPackages[pass.Segment()] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recvName, typeName, ptr := receiver(fn)
			if !ptr || recvName == "" || recvName == "_" || !isTracerTypeName(typeName) {
				continue
			}
			if beginsWithNilGuard(fn.Body, recvName) {
				continue
			}
			pass.Reportf(fn.Name.Pos(),
				"nilhook: exported method (*%s).%s must begin with `if %s == nil { return ... }`; "+
					"tracer hooks are called unconditionally on possibly-nil receivers",
				typeName, fn.Name.Name, recvName)
		}
	}
	return nil
}

// receiver extracts the receiver name, base type name, and whether the
// receiver is a pointer.
func receiver(fn *ast.FuncDecl) (recvName, typeName string, ptr bool) {
	if len(fn.Recv.List) != 1 {
		return "", "", false
	}
	field := fn.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = star.X
	}
	// Tracer types are plain (non-generic) structs; an IndexExpr
	// receiver would be a generic type, which the convention does not
	// cover.
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return recvName, typeName, ptr
}

// beginsWithNilGuard reports whether the first statement of body is an
// if whose condition checks recvName == nil (alone or as an || arm) and
// whose block ends in a return.
func beginsWithNilGuard(body *ast.BlockStmt, recvName string) bool {
	if len(body.List) == 0 {
		return false
	}
	guard, ok := body.List[0].(*ast.IfStmt)
	if !ok || guard.Init != nil {
		return false
	}
	if !condChecksNil(guard.Cond, recvName) {
		return false
	}
	n := len(guard.Body.List)
	if n == 0 {
		return false
	}
	_, returns := guard.Body.List[n-1].(*ast.ReturnStmt)
	return returns
}

// condChecksNil walks || chains looking for `recvName == nil` (either
// operand order). A guard that also checks other pointers, like
// `t == nil || tl == nil`, still protects the receiver: any true arm
// returns.
func condChecksNil(cond ast.Expr, recvName string) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condChecksNil(e.X, recvName)
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "||":
			return condChecksNil(e.X, recvName) || condChecksNil(e.Y, recvName)
		case "==":
			return isIdentNamed(e.X, recvName) && isNilIdent(e.Y) ||
				isIdentNamed(e.Y, recvName) && isNilIdent(e.X)
		}
	}
	return false
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
