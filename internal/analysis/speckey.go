package analysis

import (
	"go/ast"
	"reflect"
	"strconv"
	"strings"
)

// specKeyRoots names, per package (by final import path element), the
// struct types whose canonical JSON is the fleet cache's content key.
// The analyzer walks the closure of same-package struct types reachable
// from these roots; hmcsim.TrafficSpec is an alias for traffic.Spec, so
// the traffic half of the closure is checked in its home package, where
// its escape-hatch directives live.
var specKeyRoots = map[string][]string{
	"hmcsim":  {"Spec", "Options"},
	"traffic": {"Spec", "Phase"},
}

// SpecKey protects the content-addressed result cache: the SHA-256 of a
// Spec's canonical JSON is the key every daemon and the whole fleet
// shard on, so a new always-serialized field silently changes the key
// of every spec that predates it — a fleet-wide cold cache with no
// error anywhere.
var SpecKey = &Analyzer{
	Name: "speckey",
	Doc: `require json:"-" or omitempty on fields in the Spec cache-key closure

Every field of hmcsim.Spec, hmcsim.Options, traffic.Spec, traffic.Phase
— and of any same-package struct reachable from them through exported
fields — must carry a json tag that is either "-" (excluded from the
key) or contains omitempty (absent from the key until a caller sets it,
so pre-existing specs keep their keys). Founding fields that have always
been part of the key carry a //hmcsim:speckey-ok <reason> directive.`,
	Run: runSpecKey,
}

func runSpecKey(pass *Pass) error {
	if !pass.InKernelScope() {
		return nil
	}
	roots := specKeyRoots[pass.Segment()]
	if len(roots) == 0 {
		return nil
	}

	// Index the package's struct type declarations by name.
	structs := make(map[string]*ast.StructType)
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					structs[ts.Name.Name] = st
				}
			}
		}
	}

	// Walk the closure of key-contributing structs from the roots.
	seen := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if seen[name] {
			continue
		}
		seen[name] = true
		st, ok := structs[name]
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			queue = append(queue, checkSpecField(pass, name, field)...)
		}
	}
	return nil
}

// checkSpecField validates one struct field's json tag and returns the
// names of same-package struct types the field pulls into the key
// closure. Fields excluded from JSON contribute nothing.
func checkSpecField(pass *Pass, structName string, field *ast.Field) (reach []string) {
	// Embedded fields inline their type's fields into the JSON object;
	// the embedded struct joins the closure and the embed itself needs
	// no tag.
	if len(field.Names) == 0 {
		return structFieldTypes(pass, field.Type)
	}
	exported := false
	for _, name := range field.Names {
		if name.IsExported() {
			exported = true
		}
	}
	if !exported {
		return nil // unexported fields never marshal
	}

	jsonTag, ok := "", false
	if field.Tag != nil {
		if raw, err := strconv.Unquote(field.Tag.Value); err == nil {
			jsonTag, ok = reflect.StructTag(raw).Lookup("json")
		}
	}
	if jsonTag == "-" {
		return nil // excluded from the key entirely
	}
	_, opts, _ := strings.Cut(jsonTag, ",")
	omitempty := false
	for _, opt := range strings.Split(opts, ",") {
		if opt == "omitempty" {
			omitempty = true
		}
	}
	if !ok || !omitempty {
		pass.suppress("speckey-ok", Diagnostic{
			Pos: field.Pos(),
			Message: "speckey: field " + structName + "." + field.Names[0].Name +
				" is in the Spec cache-key closure and is always serialized; tag it json:\"-\" or " +
				"omitempty so existing specs keep their content keys",
		})
	}
	return structFieldTypes(pass, field.Type)
}

// structFieldTypes returns the same-package named struct types that a
// field type references, looking through pointers, slices, arrays and
// map values.
func structFieldTypes(pass *Pass, t ast.Expr) []string {
	switch t := t.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[t]; obj != nil && obj.Pkg() == pass.Pkg {
			return []string{t.Name}
		}
	case *ast.StarExpr:
		return structFieldTypes(pass, t.X)
	case *ast.ArrayType:
		return structFieldTypes(pass, t.Elt)
	case *ast.MapType:
		return append(structFieldTypes(pass, t.Key), structFieldTypes(pass, t.Value)...)
	}
	return nil
}
