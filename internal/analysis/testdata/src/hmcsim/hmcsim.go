// Package hmcsim is the analysistest fixture for the speckey analyzer:
// fields in the closure of the Spec/Options cache-key structs must be
// json:"-" or omitempty, with //hmcsim:speckey-ok <reason> as the
// founding-field escape hatch.
package hmcsim

// Spec is a key root.
type Spec struct {
	Base

	//hmcsim:speckey-ok founding key field, serialized since the first release
	Name string `json:"name"`

	Workers  int     `json:"-"`
	Label    string  `json:"label,omitempty"`
	Options  Options `json:"options,omitempty"`
	Bad      int     `json:"bad"` // want `speckey: field Spec\.Bad is in the Spec cache-key closure`
	Untagged int     // want `speckey: field Spec\.Untagged is in the Spec cache-key closure`
	hidden   int
	Nested   *Nested `json:"nested,omitempty"`

	//hmcsim:speckey-ok
	Legacy int `json:"legacy"` // want `needs a reason to suppress`
}

// Options is a key root.
type Options struct {
	Depth int  `json:"depth"` // want `speckey: field Options\.Depth is in the Spec cache-key closure`
	Quick bool `json:"quick,omitempty"`
}

// Base joins the closure as an embedded field of Spec: its fields
// inline into Spec's JSON object.
type Base struct {
	Core int `json:"core"` // want `speckey: field Base\.Core is in the Spec cache-key closure`
}

// Nested joins the closure through Spec.Nested.
type Nested struct {
	Inner int `json:"inner"` // want `speckey: field Nested\.Inner is in the Spec cache-key closure`
	Fine  int `json:"fine,omitempty"`
}

// Unreachable is not part of any key; its always-serialized field is
// its own business.
type Unreachable struct {
	Field int `json:"field"`
}
