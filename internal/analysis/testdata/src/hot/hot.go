// Package hot is the analysistest fixture for the hotpath analyzer:
// functions annotated //hmcsim:hotpath must not build capturing
// closures, call fmt, concatenate strings, or box concrete values into
// interfaces. Unannotated functions may do all of it.
package hot

import "fmt"

type sink interface{ Accept(int) }

type counter int

func (c counter) Accept(int) {}

type ring struct {
	buf      []int
	callback func()
	out      any
}

func box(v any) { _ = v }

//hmcsim:hotpath
func (r *ring) push(v int) {
	r.buf = append(r.buf, v)
	f := func() { r.buf = r.buf[:0] } // want `hotpath: closure captures r and allocates per call`
	r.callback = f
	fmt.Println(v) // want `hotpath: fmt\.Println allocates`
}

//hmcsim:hotpath
func label(name, id string) string {
	return name + id // want `hotpath: string concatenation allocates`
}

//hmcsim:hotpath
func (r *ring) record(v int) {
	box(v)    // want `hotpath: argument boxes int into`
	r.out = v // want `hotpath: assignment boxes int into`
}

//hmcsim:hotpath
func declare(c counter) {
	var s sink = c // want `hotpath: declaration boxes`
	_ = s
}

//hmcsim:hotpath
func wrap(c counter) sink {
	return c // want `hotpath: return boxes`
}

// bind installs a non-capturing closure: those compile to a static
// function value and do not allocate.
//
//hmcsim:hotpath
func (r *ring) bind() {
	r.callback = func() {}
}

// check exercises the exemptions: builtins (panic is cold by
// definition), conversions, untyped nil, and interface-to-interface
// assignment never box.
//
//hmcsim:hotpath
func (r *ring) check(i int, s sink) {
	if i < 0 {
		panic(i)
	}
	_ = int64(i)
	r.out = nil
	r.out = s
}

// cold has every violation but no annotation, so nothing is reported.
func cold(r *ring, v int) {
	fmt.Println(v)
	box(v)
	r.out = v
	f := func() { r.buf = nil }
	f()
}
