// Package obs is the analysistest fixture for the nilhook analyzer:
// exported pointer-receiver methods on tracer-named types must begin
// with a nil-receiver guard. There is no escape hatch.
package obs

// VaultTracer matches the *Tracer naming convention.
type VaultTracer struct {
	n  int
	tl *Timeline
}

// Timeline is covered by name.
type Timeline struct{ n int }

// Collector does not match any tracer naming convention, so its
// methods are exempt.
type Collector struct{ n int }

// OnRead is correctly guarded.
func (t *VaultTracer) OnRead(addr uint64) {
	if t == nil {
		return
	}
	t.n++
}

func (t *VaultTracer) OnWrite(addr uint64) { // want `nilhook: exported method \(\*VaultTracer\)\.OnWrite must begin with`
	t.n++
}

// OnFlush guards two pointers in one condition; any true arm returns,
// so the receiver is protected.
func (t *VaultTracer) OnFlush() {
	if t == nil || t.tl == nil {
		return
	}
	t.tl.n++
}

func (t *VaultTracer) OnEvict(addr uint64) { // want `nilhook: exported method \(\*VaultTracer\)\.OnEvict must begin with`
	t.n++
	if t == nil {
		return
	}
}

func (t *VaultTracer) OnReset() { // want `nilhook: exported method \(\*VaultTracer\)\.OnReset must begin with`
	if t == nil {
		println("nil tracer")
	}
	t.n = 0
}

// Snapshot has a value receiver: nil cannot reach it.
func (t VaultTracer) Snapshot() int { return t.n }

// bump is unexported: only package-internal callers, which hold the
// guard obligation themselves.
func (t *VaultTracer) bump() { t.n++ }

// Count guards and returns a zero value, the accessor form of the
// convention.
func (tl *Timeline) Count() int {
	if tl == nil {
		return 0
	}
	return tl.n
}

func (tl *Timeline) Add(v int) { // want `nilhook: exported method \(\*Timeline\)\.Add must begin with`
	tl.n += v
}

// Inc is exported on a non-tracer type; the convention does not apply.
func (c *Collector) Inc() { c.n++ }
