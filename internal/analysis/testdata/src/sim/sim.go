// Package sim is the analysistest fixture for the determinism
// analyzer: it reproduces, in miniature, each construct the analyzer
// must flag in kernel packages, the constructs it must leave alone, and
// both the reasoned and reasonless forms of the //hmcsim:nondet-ok
// escape hatch.
package sim

import (
	"math/rand" // want `determinism: kernel packages must not import math/rand`
	"time"
)

var _ = rand.Int

// engine stands in for the real event engine: Schedule is an ordered
// sink, so reaching it from a map range is a finding.
type engine struct {
	events []int
}

func (e *engine) Schedule(v int) { e.events = append(e.events, v) }

func wallClock() {
	_ = time.Now() // want `determinism: time\.Now reads the wall clock`
	t0 := time.Unix(0, 0)
	_ = time.Since(t0) // want `determinism: time\.Since reads the wall clock`
}

func wallClockWaived() time.Duration {
	start := time.Now()      //hmcsim:nondet-ok telemetry only, never feeds simulated state
	return time.Since(start) //hmcsim:nondet-ok telemetry only, never feeds simulated state
}

func wallClockBadWaiver() {
	//hmcsim:nondet-ok
	_ = time.Now() // want `needs a reason to suppress`
}

func spawn() {
	go wallClock() // want `determinism: go statement in a kernel package`
}

func spawnWaived() {
	go wallClock() //hmcsim:nondet-ok lockstep worker, joined at the window barrier
}

func choose(a, b chan int) {
	select { // want `determinism: select statement in a kernel package`
	case <-a:
	case <-b:
	}
}

func mapRangeAppend(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `map iteration order is randomized and this loop body appends to ordered output`
		out = append(out, v)
	}
	return out
}

func mapRangeSchedule(e *engine, m map[string]int) {
	for _, v := range m { // want `map iteration order is randomized and this loop body calls Schedule`
		e.Schedule(v)
	}
}

// A read-only reduction over a map is order-insensitive and fine.
func mapRangeReadOnly(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func mapRangeWaived(e *engine, m map[string]int) {
	//hmcsim:nondet-ok values are commutative counters; order cannot affect results
	for _, v := range m {
		e.Schedule(v)
	}
}

// Ranging a slice is ordered; appending from it is fine.
func sliceRangeAppend(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
