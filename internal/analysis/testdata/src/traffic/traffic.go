// Package traffic is the analysistest fixture for the speckey
// analyzer's traffic-package root set (Spec, Phase). The real
// hmcsim.TrafficSpec is an alias for traffic.Spec, so this half of the
// key closure is checked in its home package.
package traffic

// Spec is a key root.
type Spec struct {
	Phases []Phase `json:"phases,omitempty"`
}

// Phase is a key root (and also reachable through Spec.Phases).
type Phase struct {
	Pattern string `json:"pattern,omitempty"`

	//hmcsim:speckey-ok founding field; every stored spec already carries it
	DurationUs float64 `json:"durationUs"`

	Rate float64 `json:"rate"` // want `speckey: field Phase\.Rate is in the Spec cache-key closure`
}
