package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
)

// unitConfig mirrors the JSON config file `go vet -vettool=` hands the
// analysis tool for each compilation unit. The field set is the
// (unpublished but stable) vet driver protocol, as implemented by
// cmd/go and golang.org/x/tools/go/analysis/unitchecker; only the
// fields this suite consumes are listed.
type unitConfig struct {
	ID                        string
	Compiler                  string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string // import path as written → package path
	PackageFile               map[string]string // package path → export data file
	VetxOnly                  bool              // facts-only run on a dependency
	VetxOutput                string            // where the driver expects the facts file
	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes the single compilation unit described by cfgFile
// (the `go vet -vettool=` protocol), printing diagnostics to stderr in
// file:line:col form. It returns the process exit code: 1 if there were
// findings, 0 otherwise. The suite carries no cross-package facts, so
// the facts output the driver expects is written empty, and VetxOnly
// runs (dependencies vetted purely for facts) do no analysis at all.
func RunUnit(cfgFile string) int {
	cfg, err := readUnitConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmcsimvet: %v\n", err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "hmcsimvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	// Imports in source are spelled as import paths; the export data is
	// keyed by resolved package path.
	resolving := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return imp.Import(path)
	})
	pkg, err := typecheck(fset, cfg.ImportPath, cfg.GoFiles, resolving, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0 // the compiler proper will report this better
		}
		fmt.Fprintf(os.Stderr, "hmcsimvet: %v\n", err)
		return 1
	}
	diags, err := RunPackage(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmcsimvet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func readUnitConfig(cfgFile string) (*unitConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", filepath.Base(cfgFile), err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package %s has no files", cfg.ImportPath)
	}
	return cfg, nil
}
