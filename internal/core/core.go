// Package core assembles the host FPGA model and the HMC cube into a
// System and provides the two low-level experiment drivers the paper
// uses — free-running GUPS traffic and finite multi-port streams —
// returning the same statistics the paper's monitoring logic reports
// (access counts, min/avg/max read latency, and counted
// request+response bandwidth).
//
// Deprecated entry point: core used to be the repository's public face.
// New code should use the top-level hmcsim package — its Workload
// adapters (hmcsim.GUPS, hmcsim.Streams, hmcsim.TraceReplay) wrap the
// drivers here, hmcsim.System embeds *core.System, and experiments
// register as hmcsim.Runners in internal/exp. RunGUPS and PlayStreams
// remain as the engine layer those adapters call into.
//
// Typical use (via the public API):
//
//	sys := hmcsim.NewSystem(hmcsim.DefaultConfig())
//	m := hmcsim.GUPS{
//	    Ports: 9, Size: 128, Pattern: hmcsim.AllVaults,
//	    Warmup: 20 * hmcsim.Microsecond, Window: 200 * hmcsim.Microsecond,
//	}.Run(sys)
//	fmt.Println(m.GBps, m.AvgLatNs)
package core

import (
	"fmt"

	"hmcsim/internal/addr"
	"hmcsim/internal/hmc"
	"hmcsim/internal/host"
	"hmcsim/internal/noc"
	"hmcsim/internal/obs"
	"hmcsim/internal/packet"
	"hmcsim/internal/phys"
	"hmcsim/internal/sim"
)

// Config assembles a full system.
type Config struct {
	Host      host.Config
	HMC       hmc.Config
	BlockSize int    // address-interleave block size (Figure 3); 128 default
	Seed      uint64 // base RNG seed for all ports

	// Shards selects the intra-run engine. 0 (the default) runs the
	// serial reference engine. n >= 1 runs a sim.Group of n lockstep
	// shards: shard 0 (the hub) carries the links, host controller and
	// monitors, and the cube's quadrants spread round-robin over the
	// remaining shards (so values above 1+quadrants clamp). Results are
	// byte-identical to serial at every shard count; only wall-clock
	// time changes.
	Shards int

	// Trace, when non-nil, threads per-component tracers through the
	// cube and host as the system is assembled. Nil keeps every kernel
	// hot path on its untraced fast path.
	Trace *obs.SystemTracer

	// GroupTrace, when non-nil on a sharded build, is installed as the
	// engine group's lockstep observatory (barrier waits, window
	// utilization, mailbox traffic); with Trace also set, each shard's
	// samples land on that shard's timeline. Ignored on serial builds.
	GroupTrace *sim.GroupTracer
}

// quadShard maps quadrant q to its group shard: everything on the hub
// for a 1-shard group, round-robin over shards 1..n-1 otherwise. The
// quadrant granularity keeps each router and its vaults on one engine,
// which is what lets the vault-facing fast path stay the serial one.
func quadShard(q, shards int) int {
	if shards <= 1 {
		return 0
	}
	return 1 + q%(shards-1)
}

// DefaultConfig returns the AC-510 + 4 GB HMC 1.1 system of the paper.
func DefaultConfig() Config {
	return Config{
		Host:      host.DefaultConfig(),
		HMC:       hmc.DefaultConfig(),
		BlockSize: 128,
		Seed:      1,
	}
}

// System is an assembled simulation: engine, cube, controller and address
// mapping. Ports are created per experiment.
type System struct {
	Cfg  Config
	Eng  *sim.Engine
	HMC  *hmc.HMC
	Ctrl *host.Controller
	Map  *addr.Mapping

	portsMade   int
	streamPorts []*host.StreamPort
}

// NewSystem builds a system from cfg.
func NewSystem(cfg Config) *System {
	var eng *sim.Engine
	var engs noc.Engines
	if cfg.Shards >= 1 {
		shards := cfg.Shards
		if max := 1 + addr.Quadrants; shards > max {
			shards = max // one shard per quadrant plus the hub
		}
		g := sim.NewGroup(shards)
		eng = g.Engine(0)
		engs = noc.Engines{Hub: eng, Quad: make([]*sim.Engine, addr.Quadrants)}
		for q := range engs.Quad {
			engs.Quad[q] = g.Engine(quadShard(q, shards))
		}
	} else {
		eng = sim.NewEngine()
		engs = noc.SingleEngine(eng, addr.Quadrants)
	}
	if cfg.Trace != nil {
		cfg.Trace.SetClock(func() int64 { return int64(eng.Now()) })
		cfg.HMC.Trace = cfg.Trace
		cfg.Host.Trace = &cfg.Trace.Host
	}
	s := &System{Cfg: cfg, Eng: eng, Map: addr.MustMapping(cfg.BlockSize)}
	var ctrl *host.Controller
	s.HMC = hmc.New(engs, cfg.HMC, func(p *packet.Packet) { ctrl.OnResponse(p) })
	ctrl = host.NewController(eng, cfg.Host, s.HMC)
	s.Ctrl = ctrl
	// Install the lockstep observatory last: hmc.New registered the
	// shard clocks/timelines the per-shard tracks attach to.
	if cfg.GroupTrace != nil {
		if g := eng.Group(); g != nil {
			if cfg.Trace != nil {
				for i := 0; i < g.Shards(); i++ {
					cfg.GroupTrace.AttachTimeline(i, cfg.Trace.ShardTimeline(i))
				}
			}
			g.SetTrace(cfg.GroupTrace)
		}
	}
	return s
}

// Pattern is a named address-restriction, wrapping the GUPS mask machinery
// of Section III-B.
type Pattern struct {
	Name string
	Mask addr.Mask
}

// AllVaults returns the unrestricted pattern: the whole cube.
func AllVaults() Pattern { return Pattern{Name: "16 vaults", Mask: addr.AllAccess} }

// Vaults returns a pattern confined to the first n vaults (n a power of
// two up to 16).
func (s *System) Vaults(n int) Pattern {
	if n == addr.Vaults {
		return AllVaults()
	}
	m, err := s.Map.VaultsMask(n)
	if err != nil {
		panic(err)
	}
	name := fmt.Sprintf("%d vaults", n)
	if n == 1 {
		name = "1 vault"
	}
	return Pattern{Name: name, Mask: m}
}

// Banks returns a pattern confined to n banks of vault 0.
func (s *System) Banks(n int) Pattern {
	m, err := s.Map.BanksMask(n)
	if err != nil {
		panic(err)
	}
	name := fmt.Sprintf("%d banks", n)
	if n == 1 {
		name = "1 bank"
	}
	return Pattern{Name: name, Mask: m}
}

// SingleVault returns the pattern for exactly vault v.
func (s *System) SingleVault(v int) Pattern {
	m, err := s.Map.SingleVaultMask(v)
	if err != nil {
		panic(err)
	}
	return Pattern{Name: fmt.Sprintf("vault %d", v), Mask: m}
}

// GUPSSpec configures a GUPS measurement run.
type GUPSSpec struct {
	Ports   int              // active ports, 1..9
	Size    int              // request size in bytes
	Kind    host.RequestKind // read-only by default
	Pattern Pattern
	Linear  bool
	Warmup  sim.Time // traffic before counters reset
	Window  sim.Time // measurement window after warm-up
	Tags    int      // per-port override; 0 = config default
}

// Result aggregates what the monitoring logic reports for one run.
type Result struct {
	Spec         GUPSSpec
	Reads        uint64
	Writes       uint64
	AvgLat       sim.Time
	MinLat       sim.Time
	MaxLat       sim.Time
	CountedBytes uint64
	Window       sim.Time
	Bandwidth    phys.Bandwidth // counted request+response bytes per second

	// HMCOutstanding is the time-averaged number of transactions inside
	// the cube during the window, the quantity Figure 14 estimates with
	// Little's law.
	HMCOutstanding float64
	// AvgHMCLat is the mean time a read spends inside the cube (link
	// arrival to response injection); rate x AvgHMCLat is the paper's
	// Little's-law estimate.
	AvgHMCLat sim.Time
}

// ReadRate returns measured read transactions per second.
func (r Result) ReadRate() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.Reads) / r.Window.Seconds()
}

func (r Result) String() string {
	return fmt.Sprintf("%-9s size=%3dB ports=%d: BW=%6.2f GB/s lat(avg/min/max)=%8.0f/%6.0f/%8.0f ns",
		r.Spec.Pattern.Name, r.Spec.Size, r.Spec.Ports,
		r.Bandwidth.GBpsValue(),
		r.AvgLat.Nanoseconds(), r.MinLat.Nanoseconds(), r.MaxLat.Nanoseconds())
}

// RunGUPS performs one GUPS experiment on a fresh set of ports. The
// system must not have ports registered already; use a new System per
// call sequence (each call uses distinct port IDs, so repeated calls on
// one System are also fine until port IDs run out at MaxPorts).
func (s *System) RunGUPS(spec GUPSSpec) Result {
	if spec.Ports <= 0 || spec.Ports > MaxPorts {
		panic(fmt.Sprintf("core: %d ports out of range", spec.Ports))
	}
	if spec.Window <= 0 {
		panic("core: GUPS window must be positive")
	}
	var hmcLatSum sim.Time
	var hmcLatN uint64
	ports := make([]*host.GUPSPort, spec.Ports)
	for i := range ports {
		ports[i] = host.NewGUPSPort(s.Eng, s.Cfg.Host, s.Ctrl, s.Map, s.nextPortID(), host.GUPSConfig{
			Size:   spec.Size,
			Kind:   spec.Kind,
			Mask:   spec.Pattern.Mask,
			Linear: spec.Linear,
			Seed:   s.Cfg.Seed + uint64(i)*977,
			Tags:   spec.Tags,
		})
		ports[i].Mon.OnComplete = func(tr *packet.Transaction) {
			hmcLatSum += tr.HMCLatency()
			hmcLatN++
		}
		ports[i].Start()
	}

	mons := make([]*host.Monitor, len(ports))
	for i, p := range ports {
		mons[i] = &p.Mon
	}
	res := s.measureWindow(spec.Warmup, spec.Window, mons, func() { hmcLatSum, hmcLatN = 0, 0 })
	res.Spec = spec
	for _, p := range ports {
		p.Stop()
	}
	if hmcLatN > 0 {
		res.AvgHMCLat = hmcLatSum / sim.Time(hmcLatN)
	}
	return res
}

// measureWindow is the measurement protocol shared by the GUPS and
// traffic drivers: drive already-started ports through warm-up, clear
// the monitors (onReset lets the caller zero its own accumulators at
// the same instant), sample cube occupancy through the window for the
// Little's-law analysis, and aggregate the monitors into a Result.
func (s *System) measureWindow(warmup, window sim.Time, mons []*host.Monitor, onReset func()) Result {
	start := s.Eng.Now()
	s.Eng.Run(start + warmup)
	for _, m := range mons {
		m.Reset(s.Eng.Now())
	}
	onReset()

	occSamples := 0
	occSum := 0.0
	sampleEvery := window / 64
	if sampleEvery <= 0 {
		sampleEvery = window
	}
	var sample func()
	stopAt := start + warmup + window
	sample = func() {
		occSum += float64(s.HMC.InFlight())
		occSamples++
		if s.Eng.Now()+sampleEvery <= stopAt {
			s.Eng.Schedule(sampleEvery, sample)
		}
	}
	s.Eng.Schedule(sampleEvery, sample)

	s.Eng.Run(stopAt)
	res := Result{Window: window}
	for _, m := range mons {
		res.Reads += m.Reads
		res.Writes += m.Writes
		res.CountedBytes += m.CountedBytes
		res.AvgLat += m.AggLat
		if res.MinLat == 0 || (m.MinLat > 0 && m.MinLat < res.MinLat) {
			res.MinLat = m.MinLat
		}
		if m.MaxLat > res.MaxLat {
			res.MaxLat = m.MaxLat
		}
	}
	if res.Reads > 0 {
		res.AvgLat /= sim.Time(res.Reads)
	}
	res.Bandwidth = phys.Rate(res.CountedBytes, window)
	if occSamples > 0 {
		res.HMCOutstanding = occSum / float64(occSamples)
	}
	return res
}

// MaxPorts is the number of port module copies on the FPGA (Section
// III-B).
const MaxPorts = 9

var errNoPorts = fmt.Errorf("core: out of port IDs (max %d per system)", MaxPorts)

func (s *System) nextPortID() int {
	id := s.portsMade
	if id >= MaxPorts {
		panic(errNoPorts)
	}
	s.portsMade++
	return id
}
