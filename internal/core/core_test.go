package core

import (
	"testing"

	"hmcsim/internal/host"
	"hmcsim/internal/sim"
)

func quickSpec(sys *System, size int, pat Pattern) GUPSSpec {
	return GUPSSpec{
		Ports:   9,
		Size:    size,
		Pattern: pat,
		Warmup:  10 * sim.Microsecond,
		Window:  30 * sim.Microsecond,
	}
}

func TestRunGUPSBasics(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	res := sys.RunGUPS(quickSpec(sys, 64, AllVaults()))
	if res.Reads == 0 {
		t.Fatal("no reads measured")
	}
	if res.Bandwidth.GBpsValue() <= 0 {
		t.Fatal("no bandwidth measured")
	}
	if res.AvgLat < res.MinLat || res.AvgLat > res.MaxLat {
		t.Fatalf("avg latency %v outside [%v, %v]", res.AvgLat, res.MinLat, res.MaxLat)
	}
	if res.AvgHMCLat <= 0 || res.AvgHMCLat >= res.AvgLat {
		t.Fatalf("in-cube latency %v not inside round trip %v", res.AvgHMCLat, res.AvgLat)
	}
}

func TestRunGUPSDeterminism(t *testing.T) {
	run := func() Result {
		sys := NewSystem(DefaultConfig())
		return sys.RunGUPS(quickSpec(sys, 32, AllVaults()))
	}
	a, b := run(), run()
	if a.Reads != b.Reads || a.AvgLat != b.AvgLat || a.MaxLat != b.MaxLat {
		t.Fatalf("identical configs diverged: %+v vs %+v", a, b)
	}
}

func TestRunGUPSSeedSensitivity(t *testing.T) {
	cfg := DefaultConfig()
	sysA := NewSystem(cfg)
	a := sysA.RunGUPS(quickSpec(sysA, 32, AllVaults()))
	cfg.Seed = 999
	sysB := NewSystem(cfg)
	b := sysB.RunGUPS(quickSpec(sysB, 32, AllVaults()))
	if a.Reads == b.Reads && a.AggLatEqual(b) {
		t.Fatal("different seeds produced identical traffic")
	}
	// Conclusions must still agree within a few percent.
	ra, rb := a.Bandwidth.GBpsValue(), b.Bandwidth.GBpsValue()
	if ra/rb > 1.05 || rb/ra > 1.05 {
		t.Fatalf("seed changed bandwidth conclusion: %v vs %v", ra, rb)
	}
}

// AggLatEqual is a test helper comparing latency aggregates.
func (r Result) AggLatEqual(o Result) bool {
	return r.AvgLat == o.AvgLat && r.MaxLat == o.MaxLat && r.MinLat == o.MinLat
}

func TestVaultCapObserved(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	res := sys.RunGUPS(quickSpec(sys, 32, sys.Vaults(1)))
	bw := res.Bandwidth.GBpsValue()
	if bw < 9 || bw > 10.5 {
		t.Fatalf("single-vault counted bandwidth = %.2f GB/s, want ~10", bw)
	}
}

func TestSpreadBeatsBankBound(t *testing.T) {
	sysA := NewSystem(DefaultConfig())
	all := sysA.RunGUPS(quickSpec(sysA, 128, AllVaults()))
	sysB := NewSystem(DefaultConfig())
	one := sysB.RunGUPS(quickSpec(sysB, 128, sysB.Banks(1)))
	if all.Bandwidth.GBpsValue() < 4*one.Bandwidth.GBpsValue() {
		t.Fatalf("spread (%v) not >> single bank (%v)", all.Bandwidth, one.Bandwidth)
	}
	if one.AvgLat < 2*all.AvgLat {
		t.Fatalf("single-bank latency (%v) not >> spread (%v)", one.AvgLat, all.AvgLat)
	}
}

func TestPatternBuilders(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	if got := sys.Vaults(16).Name; got != "16 vaults" {
		t.Errorf("Vaults(16).Name = %q", got)
	}
	if got := sys.Vaults(1).Name; got != "1 vault" {
		t.Errorf("Vaults(1).Name = %q", got)
	}
	if got := sys.Banks(1).Name; got != "1 bank" {
		t.Errorf("Banks(1).Name = %q", got)
	}
	if got := sys.SingleVault(7).Name; got != "vault 7" {
		t.Errorf("SingleVault(7).Name = %q", got)
	}
}

func TestRunGUPSPanicsOnBadSpec(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	for _, spec := range []GUPSSpec{
		{Ports: 0, Size: 16, Pattern: AllVaults(), Window: sim.Microsecond},
		{Ports: 10, Size: 16, Pattern: AllVaults(), Window: sim.Microsecond},
		{Ports: 1, Size: 16, Pattern: AllVaults(), Window: 0},
	} {
		spec := spec
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %+v did not panic", spec)
				}
			}()
			sys.RunGUPS(spec)
		}()
	}
}

func TestPortIDExhaustion(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	sys.StreamPorts(MaxPorts)
	defer func() {
		if recover() == nil {
			t.Error("10th port did not panic")
		}
	}()
	sys.RunGUPS(GUPSSpec{Ports: 1, Size: 16, Pattern: AllVaults(), Window: sim.Microsecond})
}

func TestPlayStreamsIsolatedMeasurements(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	t1 := sys.RandomTrace(30, 64, sys.SingleVault(0), 1)
	p1 := sys.PlayStreams([][]host.Request{t1})
	first := p1[0].Mon.Reads
	t2 := sys.RandomTrace(10, 64, sys.SingleVault(1), 2)
	p2 := sys.PlayStreams([][]host.Request{t2})
	if first != 30 || p2[0].Mon.Reads != 10 {
		t.Fatalf("replay counts = %d then %d, want 30 then 10", first, p2[0].Mon.Reads)
	}
}

func TestRandomTraceRespectsPattern(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	trace := sys.RandomTrace(500, 32, sys.SingleVault(9), 77)
	for _, req := range trace {
		if v := sys.Map.VaultOf(req.Addr); v != 9 {
			t.Fatalf("trace address %#x maps to vault %d, want 9", req.Addr, v)
		}
		if req.Addr%32 != 0 {
			t.Fatalf("trace address %#x not size-aligned", req.Addr)
		}
	}
}

func TestRandomTraceVaults(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	combo := []int{2, 5, 11, 14}
	trace := sys.RandomTraceVaults(2000, 64, combo, 3)
	counts := map[int]int{}
	for _, req := range trace {
		counts[sys.Map.VaultOf(req.Addr)]++
	}
	if len(counts) != 4 {
		t.Fatalf("trace covers %d vaults, want 4: %v", len(counts), counts)
	}
	for _, v := range combo {
		if counts[v] < 300 {
			t.Fatalf("vault %d underrepresented: %v", v, counts)
		}
	}
}

func TestResultString(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	res := sys.RunGUPS(GUPSSpec{Ports: 1, Size: 16, Pattern: AllVaults(),
		Warmup: sim.Microsecond, Window: 5 * sim.Microsecond})
	s := res.String()
	if len(s) == 0 {
		t.Fatal("empty result string")
	}
}
