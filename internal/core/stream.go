package core

import (
	"fmt"

	"hmcsim/internal/host"
	"hmcsim/internal/sim"
)

// StreamPorts returns n trace-driven ports, creating them on first use.
// The same ports are reused across PlayStreams calls, mirroring how the
// multi-port stream firmware replays many traces without reconfiguring
// the FPGA.
func (s *System) StreamPorts(n int) []*host.StreamPort {
	if n <= 0 || n > MaxPorts {
		panic(fmt.Sprintf("core: %d stream ports out of range", n))
	}
	for len(s.streamPorts) < n {
		p := host.NewStreamPort(s.Eng, s.Cfg.Host, s.Ctrl, s.Map, s.nextPortID())
		s.streamPorts = append(s.streamPorts, p)
	}
	return s.streamPorts[:n]
}

// PlayStreams plays one trace per port simultaneously and runs the
// simulation until every port has drained. Monitors are reset at the
// start, so each call is an independent measurement.
func (s *System) PlayStreams(traces [][]host.Request) []*host.StreamPort {
	ports := s.StreamPorts(len(traces))
	for i, p := range ports {
		p.Mon.Reset(s.Eng.Now())
		p.Play(traces[i])
	}
	s.Eng.Drain()
	for _, p := range ports {
		if p.Busy() {
			panic("core: stream port still busy after drain")
		}
	}
	return ports
}

// RandomTrace builds n random read requests of the given size confined to
// the pattern, using the system's block mapping for alignment.
func (s *System) RandomTrace(n, size int, pattern Pattern, seed uint64) []host.Request {
	rng := sim.NewRand(seed)
	reqs := make([]host.Request, n)
	for i := range reqs {
		a := pattern.Mask.Apply(rng.Uint64()&(1<<32-1)) &^ uint64(size-1)
		reqs[i] = host.Request{Addr: a, Size: size}
	}
	return reqs
}

// RandomTraceVaults builds n random read requests spread uniformly over
// an arbitrary set of vaults (not necessarily a power-of-two group),
// as the four-vault combination study of Section IV-D requires.
func (s *System) RandomTraceVaults(n, size int, vaults []int, seed uint64) []host.Request {
	rng := sim.NewRand(seed)
	masks := make([]core2Mask, len(vaults))
	for i, v := range vaults {
		m, err := s.Map.SingleVaultMask(v)
		if err != nil {
			panic(err)
		}
		masks[i] = core2Mask{m.Mask, m.AntiMask}
	}
	reqs := make([]host.Request, n)
	for i := range reqs {
		m := masks[rng.Intn(len(masks))]
		a := (rng.Uint64()&(1<<32-1))&m.and | m.or
		a &^= uint64(size - 1)
		reqs[i] = host.Request{Addr: a, Size: size}
	}
	return reqs
}

// core2Mask is a flattened addr.Mask to keep the hot loop allocation-free.
type core2Mask struct{ and, or uint64 }
