package core

import (
	"fmt"

	"hmcsim/internal/host"
	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
	"hmcsim/internal/traffic"
)

// TrafficRunSpec configures a synthetic-traffic measurement run: Ports
// identical traffic ports, each driving an independent compiled copy of
// the same traffic.Spec (per-port seeds derive from the system seed,
// so ports decorrelate but the whole run replays from one seed).
type TrafficRunSpec struct {
	Ports   int          // active ports, 1..9
	Size    int          // request size in bytes
	Traffic traffic.Spec // pattern, mix, discipline, phases
	Warmup  sim.Time     // traffic before counters reset
	Window  sim.Time     // measurement window after warm-up
	Tags    int          // per-port override; 0 = config default
}

// RunTraffic performs one synthetic-traffic experiment on a fresh set
// of ports, sharing RunGUPS's measurement protocol (warm-up, counter
// reset, sampled cube occupancy, aggregate monitors). Unlike RunGUPS it
// returns an error instead of panicking on a bad spec, because traffic
// specs arrive from CLI flags and daemon submissions, not just code.
func (s *System) RunTraffic(spec TrafficRunSpec) (Result, error) {
	if spec.Ports <= 0 || spec.Ports > MaxPorts {
		return Result{}, fmt.Errorf("core: %d ports out of range [1, %d]", spec.Ports, MaxPorts)
	}
	if spec.Window <= 0 {
		return Result{}, fmt.Errorf("core: traffic window must be positive")
	}
	var hmcLatSum sim.Time
	var hmcLatN uint64
	ports := make([]*host.TrafficPort, spec.Ports)
	for i := range ports {
		gen, err := traffic.Compile(spec.Traffic, spec.Size, s.Cfg.Seed+uint64(i)*977)
		if err != nil {
			return Result{}, err
		}
		ports[i] = host.NewTrafficPort(s.Eng, s.Cfg.Host, s.Ctrl, s.Map, s.nextPortID(), host.TrafficConfig{
			Size: spec.Size,
			Gen:  gen,
			Tags: spec.Tags,
		})
		ports[i].Mon.OnComplete = func(tr *packet.Transaction) {
			hmcLatSum += tr.HMCLatency()
			hmcLatN++
		}
		ports[i].Start()
	}

	mons := make([]*host.Monitor, len(ports))
	for i, p := range ports {
		mons[i] = &p.Mon
	}
	res := s.measureWindow(spec.Warmup, spec.Window, mons, func() { hmcLatSum, hmcLatN = 0, 0 })
	for _, p := range ports {
		p.Stop()
	}
	if hmcLatN > 0 {
		res.AvgHMCLat = hmcLatSum / sim.Time(hmcLatN)
	}
	return res, nil
}
