package core

import (
	"math"
	"strings"
	"testing"

	"hmcsim/internal/sim"
	"hmcsim/internal/traffic"
)

func runTraffic(t *testing.T, spec TrafficRunSpec) Result {
	t.Helper()
	sys := NewSystem(DefaultConfig())
	res, err := sys.RunTraffic(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTrafficClosedLoopSaturates: the zero-value spec is the GUPS
// personality, so nine closed-loop uniform ports must reach the same
// controller-bound ceiling the paper's 16-vault pattern does.
func TestTrafficClosedLoopSaturates(t *testing.T) {
	res := runTraffic(t, TrafficRunSpec{
		Ports: 9, Size: 128,
		Warmup: 10 * sim.Microsecond, Window: 40 * sim.Microsecond,
	})
	if res.Reads == 0 {
		t.Fatal("no traffic issued")
	}
	if bw := res.Bandwidth.GBpsValue(); bw < 18 || bw > 26 {
		t.Errorf("closed-loop uniform bandwidth %.2f GB/s outside the controller-ceiling band", bw)
	}
}

// TestTrafficOpenLoopHitsTarget: a single open-loop port at a modest
// target must deliver that payload rate within a few percent — the
// token bucket is the rate law, not the tag pool.
func TestTrafficOpenLoopHitsTarget(t *testing.T) {
	const target = 1.0 // GB/s of request payload
	res := runTraffic(t, TrafficRunSpec{
		Ports: 1, Size: 128,
		Traffic: traffic.Spec{Discipline: traffic.DisciplineOpen, RateGBps: target},
		Warmup:  10 * sim.Microsecond, Window: 100 * sim.Microsecond,
	})
	payload := float64((res.Reads+res.Writes)*128) / res.Window.Seconds() / 1e9
	if math.Abs(payload-target) > 0.05*target {
		t.Errorf("open-loop payload rate %.3f GB/s, want %.1f +/- 5%%", payload, target)
	}
}

// TestTrafficBurstDutyCycle: a 50%-duty on/off script must deliver
// half the steady payload at the same on-rate.
func TestTrafficBurstDutyCycle(t *testing.T) {
	steady := runTraffic(t, TrafficRunSpec{
		Ports: 1, Size: 128,
		Traffic: traffic.Spec{Discipline: traffic.DisciplineOpen, RateGBps: 2},
		Warmup:  10 * sim.Microsecond, Window: 100 * sim.Microsecond,
	})
	burst := runTraffic(t, TrafficRunSpec{
		Ports: 1, Size: 128,
		Traffic: traffic.Spec{
			Discipline: traffic.DisciplineOpen,
			Phases: []traffic.Phase{
				{DurationUs: 5, RateGBps: 2},
				{DurationUs: 5, Off: true},
			},
		},
		Warmup: 10 * sim.Microsecond, Window: 100 * sim.Microsecond,
	})
	sn := steady.Reads + steady.Writes
	bn := burst.Reads + burst.Writes
	ratio := float64(bn) / float64(sn)
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("burst issued %.2fx the steady request count, want ~0.5 (%d vs %d)", ratio, bn, sn)
	}
}

// TestTrafficSpecErrors: RunTraffic must return (not panic) helpful
// errors for bad specs, since they arrive from CLI flags and daemon
// submissions.
func TestTrafficSpecErrors(t *testing.T) {
	sys := NewSystem(DefaultConfig())
	_, err := sys.RunTraffic(TrafficRunSpec{
		Ports: 1, Size: 128,
		Traffic: traffic.Spec{Pattern: "zipfian"},
		Window:  10 * sim.Microsecond,
	})
	if err == nil || !strings.Contains(err.Error(), "zipf") {
		t.Fatalf("bad pattern error %v does not list valid patterns", err)
	}
	if _, err := sys.RunTraffic(TrafficRunSpec{Ports: 99, Size: 128, Window: sim.Microsecond}); err == nil {
		t.Fatal("port overflow accepted")
	}
	if _, err := sys.RunTraffic(TrafficRunSpec{Ports: 1, Size: 128}); err == nil {
		t.Fatal("zero window accepted")
	}
}

// TestTrafficDeterministicAcrossSystems: two fresh systems with the
// same seed must measure byte-identical results, the property the
// daemon's content-addressed cache rests on.
func TestTrafficDeterministicAcrossSystems(t *testing.T) {
	spec := TrafficRunSpec{
		Ports: 4, Size: 64,
		Traffic: traffic.Spec{Pattern: traffic.PatternHotspot, WriteFraction: 0.25},
		Warmup:  5 * sim.Microsecond, Window: 20 * sim.Microsecond,
	}
	a := runTraffic(t, spec)
	b := runTraffic(t, spec)
	if a != b {
		t.Fatalf("same-seed runs diverged:\n a: %+v\n b: %+v", a, b)
	}
}
