// Package ddr models a traditional JEDEC bus-based memory channel
// (DDR3-1600-like) as the comparison baseline the paper refers to when it
// contrasts HMC behavior with "traditional DDRx systems": a single
// synchronous 64-bit channel with eight banks behind one shared command/
// data bus, no packetization and no NoC.
//
// The model deliberately mirrors the vault controller's structure so the
// ablation benches can attribute differences to the architecture rather
// than to modeling detail: per-bank timing state machines, a shared data
// bus, and a single request queue (DDR has one controller per channel, not
// one per vault).
package ddr

import (
	"fmt"

	"hmcsim/internal/dram"
	"hmcsim/internal/phys"
	"hmcsim/internal/sim"
)

// Config describes the channel.
type Config struct {
	Banks      int
	QueueDepth int
	Timing     dram.Timing
	// BusBandwidth is the channel's data-bus bandwidth: 64 bits at
	// 1600 MT/s = 12.8 GB/s.
	BusBandwidth phys.Bandwidth
	// BurstBytes is the minimum transfer: 64 B (BL8 on a 64-bit bus).
	BurstBytes int
	// CtrlLatency is the controller + PHY latency per direction.
	CtrlLatency sim.Time
}

// DefaultConfig returns a DDR3-1600-like channel.
func DefaultConfig() Config {
	return Config{
		Banks:      8,
		QueueDepth: 64,
		Timing: dram.Timing{
			TRCD:   13750 * sim.Picosecond,
			TCL:    13750 * sim.Picosecond,
			TRP:    13750 * sim.Picosecond,
			TRAS:   35000 * sim.Picosecond,
			TBurst: 5000 * sim.Picosecond, // 64 B burst at 12.8 GB/s
			TREFI:  7800 * sim.Nanosecond,
			TRFC:   260 * sim.Nanosecond,
		},
		BusBandwidth: phys.GBps(12.8),
		BurstBytes:   64,
		CtrlLatency:  15 * sim.Nanosecond,
	}
}

// Request is one channel transaction.
type Request struct {
	Addr  uint64
	Size  int
	Write bool

	Issued sim.Time
	Done   sim.Time
	fn     func(*Request)
}

// Channel is the DDR memory channel.
type Channel struct {
	eng   *sim.Engine
	cfg   Config
	banks []*dram.Bank
	queue *sim.Queue[*Request]
	bus   *sim.Server

	served   uint64
	busyBank []bool
	waiters  []func()
}

// New builds an idle channel.
func New(eng *sim.Engine, cfg Config) *Channel {
	if cfg.Banks <= 0 || cfg.QueueDepth <= 0 {
		panic(fmt.Sprintf("ddr: invalid config %+v", cfg))
	}
	c := &Channel{
		eng:      eng,
		cfg:      cfg,
		banks:    make([]*dram.Bank, cfg.Banks),
		queue:    sim.NewQueue[*Request](cfg.QueueDepth),
		bus:      sim.NewServer(eng),
		busyBank: make([]bool, cfg.Banks),
	}
	for i := range c.banks {
		c.banks[i] = dram.NewBank(cfg.Timing, dram.OpenPage)
		c.banks[i].SetRefreshPhase(sim.Time(i) * cfg.Timing.TREFI / sim.Time(cfg.Banks))
	}
	return c
}

// bankOf maps an address to a bank (low-order interleave on 64 B lines,
// row bits above).
func (c *Channel) bankOf(a uint64) int {
	return int(a>>6) % c.cfg.Banks
}

func (c *Channel) rowOf(a uint64) uint64 {
	return a >> 16 // 8 KB rows over 8 banks
}

// TryAccess enqueues a request; done fires when data completes. It
// reports false when the controller queue is full.
func (c *Channel) TryAccess(req *Request, done func(*Request)) bool {
	if !c.queue.Push(c.eng.Now(), req) {
		return false
	}
	req.fn = done
	c.pump()
	return true
}

// Notify registers a wake-up for queue space.
func (c *Channel) Notify(fn func()) { c.waiters = append(c.waiters, fn) }

// pump issues queued requests to idle banks, FR-FCFS-lite: the head
// request of each idle bank issues in arrival order.
func (c *Channel) pump() {
	now := c.eng.Now()
	for i := 0; i < c.queue.Len(); {
		req := c.queue.At(i)
		b := c.bankOf(req.Addr)
		if c.busyBank[b] {
			i++
			continue
		}
		c.queue.RemoveAt(now, i)
		c.busyBank[b] = true
		c.issue(req, b)
		w := c.waiters
		c.waiters = nil
		for _, fn := range w {
			fn()
		}
	}
}

func (c *Channel) issue(req *Request, b int) {
	now := c.eng.Now()
	req.Issued = now
	size := req.Size
	if size < c.cfg.BurstBytes {
		size = c.cfg.BurstBytes // DDR always moves full bursts
	}
	dataDone, bankReady := c.banks[b].Access(now+c.cfg.CtrlLatency, c.rowOf(req.Addr), size)
	c.eng.At(bankReady, func() {
		c.busyBank[b] = false
		c.pump()
	})
	c.eng.At(dataDone, func() {
		// The shared channel bus serializes the data transfer.
		c.bus.Reserve(c.cfg.BusBandwidth.TimeFor(size), func() {
			c.eng.Schedule(c.cfg.CtrlLatency, func() {
				req.Done = c.eng.Now()
				c.served++
				fn := req.fn
				req.fn = nil
				fn(req)
			})
		})
	})
}

// Served returns completed requests.
func (c *Channel) Served() uint64 { return c.served }

// Queued returns the controller queue occupancy.
func (c *Channel) Queued() int { return c.queue.Len() }

// BusUtilization reports the data bus busy fraction.
func (c *Channel) BusUtilization(now sim.Time) float64 { return c.bus.Utilization(now) }
