package ddr

import (
	"testing"

	"hmcsim/internal/phys"
	"hmcsim/internal/sim"
)

func TestSingleAccessLatency(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, DefaultConfig())
	var done *Request
	eng.Schedule(0, func() {
		ok := c.TryAccess(&Request{Addr: 0x1000, Size: 64}, func(r *Request) { done = r })
		if !ok {
			t.Error("idle channel rejected request")
		}
	})
	eng.Drain()
	if done == nil {
		t.Fatal("request never completed")
	}
	// Idle DDR latency: ~2x ctrl + tRCD + tCL + burst: roughly 65-80 ns —
	// notably lower than the HMC's packetized ~110+ ns device latency.
	lat := done.Done
	if lat < 50*sim.Nanosecond || lat > 100*sim.Nanosecond {
		t.Fatalf("idle latency = %v, want 50-100ns", lat)
	}
}

func TestRowHitsAccelerate(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, DefaultConfig())
	var times []sim.Time
	eng.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			// Same bank, same row: open-page hits after the first.
			c.TryAccess(&Request{Addr: uint64(i) * 0, Size: 64},
				func(r *Request) { times = append(times, r.Done) })
		}
	})
	eng.Drain()
	if len(times) != 4 {
		t.Fatalf("completed %d, want 4", len(times))
	}
	first := times[0]
	gap := times[1] - times[0]
	if gap >= first {
		t.Fatalf("row-hit gap %v not below cold latency %v", gap, first)
	}
}

func TestBusBandwidthCap(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	c := New(eng, cfg)
	const n = 3000
	completed := 0
	eng.Schedule(0, func() {
		var issue func(i int)
		issue = func(i int) {
			if i >= n {
				return
			}
			// Sequential lines spread across banks, same rows: bus-bound.
			req := &Request{Addr: uint64(i) * 64, Size: 64}
			if !c.TryAccess(req, func(*Request) { completed++ }) {
				c.Notify(func() { issue(i) })
				return
			}
			issue(i + 1)
		}
		issue(0)
	})
	eng.Drain()
	if completed != n {
		t.Fatalf("completed %d, want %d", completed, n)
	}
	bw := phys.Rate(uint64(n)*64, eng.Now())
	if bw.GBpsValue() > cfg.BusBandwidth.GBpsValue()*1.02 {
		t.Fatalf("bandwidth %v exceeds bus cap %v", bw, cfg.BusBandwidth)
	}
	if bw.GBpsValue() < cfg.BusBandwidth.GBpsValue()*0.5 {
		t.Fatalf("bandwidth %v far below bus cap %v", bw, cfg.BusBandwidth)
	}
}

func TestQueueBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	c := New(eng, cfg)
	eng.Schedule(0, func() {
		accepted := 0
		for i := 0; ; i++ {
			// All to one bank so nothing drains instantly.
			if !c.TryAccess(&Request{Addr: uint64(i) << 16, Size: 64}, func(*Request) {}) {
				break
			}
			accepted++
		}
		if accepted < cfg.QueueDepth || accepted > cfg.QueueDepth+2 {
			t.Errorf("accepted %d, want ~%d", accepted, cfg.QueueDepth)
		}
	})
	eng.Drain()
}

func TestSmallRequestsPayFullBurst(t *testing.T) {
	// A 16 B request occupies the bus like a 64 B one: DDR cannot do
	// sub-burst transfers, unlike the HMC's 16 B granularity packets.
	run := func(size int) sim.Time {
		eng := sim.NewEngine()
		c := New(eng, DefaultConfig())
		eng.Schedule(0, func() {
			for i := 0; i < 500; i++ {
				c.TryAccess(&Request{Addr: uint64(i) * 64, Size: size}, func(*Request) {})
			}
		})
		eng.Drain()
		return eng.Now()
	}
	if small, large := run(16), run(64); small != large {
		t.Fatalf("16B traffic (%v) should cost the same bus time as 64B (%v)", small, large)
	}
}

func TestBanksOverlap(t *testing.T) {
	run := func(sameBank bool) sim.Time {
		eng := sim.NewEngine()
		c := New(eng, DefaultConfig())
		eng.Schedule(0, func() {
			for i := 0; i < 64; i++ {
				a := uint64(i) << 16 // distinct rows, same bank
				if !sameBank {
					a = uint64(i)<<16 | uint64(i%8)<<6 // spread banks
				}
				c.TryAccess(&Request{Addr: a, Size: 64}, func(*Request) {})
			}
		})
		eng.Drain()
		return eng.Now()
	}
	same, spread := run(true), run(false)
	if spread >= same {
		t.Fatalf("bank-level parallelism did not help: %v vs %v", spread, same)
	}
}
