// Package dram models the timing of one DRAM bank inside an HMC vault.
//
// HMC DRAM arrays are smaller and faster than commodity DDR parts. The
// paper reports tRCD + tCL + tRP of roughly 41 ns (citing Rosenfeld's
// dissertation and [4]); the defaults here split that figure evenly and
// use a 32-byte data-bus granularity per beat, matching the vault's
// 32-TSV data bus (Section II-A).
package dram

import (
	"fmt"

	"hmcsim/internal/sim"
)

// PagePolicy selects what the controller does with the row after an access.
type PagePolicy int

const (
	// ClosedPage precharges immediately after every access; random traffic
	// (the paper's GUPS workloads) performs best with it and it is what
	// HMC vault controllers implement.
	ClosedPage PagePolicy = iota
	// OpenPage leaves the row open, betting on locality. Provided for the
	// ablation benchmarks.
	OpenPage
)

func (p PagePolicy) String() string {
	if p == OpenPage {
		return "open-page"
	}
	return "closed-page"
}

// Timing holds the bank timing parameters.
type Timing struct {
	TRCD   sim.Time // activate to column command
	TCL    sim.Time // column command to first data
	TRP    sim.Time // precharge period
	TRAS   sim.Time // activate to precharge minimum
	TRTP   sim.Time // read to precharge; lets precharge overlap the burst
	TBurst sim.Time // one 32-byte beat on the vault data bus

	// TREFI is the per-bank refresh interval and TRFC the refresh cycle
	// time. Accesses arriving during a refresh wait it out, which is one
	// of the latency-jitter sources behind the distributions of
	// Figure 10. A zero TREFI disables refresh.
	TREFI sim.Time
	TRFC  sim.Time
}

// DefaultTiming returns the HMC 1.1 vault DRAM timings used throughout
// the reproduction: tRCD+tCL+tRP ~= 41.25 ns, tRAS 21.6 ns, and 3.2 ns
// per 32 B beat (32 B every 3.2 ns = 10 GB/s, the vault's internal cap).
func DefaultTiming() Timing {
	return Timing{
		TRCD:   13750 * sim.Picosecond,
		TCL:    13750 * sim.Picosecond,
		TRP:    13750 * sim.Picosecond,
		TRAS:   21600 * sim.Picosecond,
		TRTP:   7500 * sim.Picosecond,
		TBurst: 3200 * sim.Picosecond,
		TREFI:  3900 * sim.Nanosecond,
		TRFC:   160 * sim.Nanosecond,
	}
}

// Validate reports an error for non-physical parameters.
func (t Timing) Validate() error {
	if t.TRCD <= 0 || t.TCL <= 0 || t.TRP <= 0 || t.TRAS <= 0 || t.TBurst <= 0 {
		return fmt.Errorf("dram: all timing parameters must be positive: %+v", t)
	}
	if t.TRAS < t.TRCD {
		return fmt.Errorf("dram: tRAS (%v) < tRCD (%v)", t.TRAS, t.TRCD)
	}
	return nil
}

// TRC returns the minimum activate-to-activate time for one bank.
func (t Timing) TRC() sim.Time { return t.TRAS + t.TRP }

// BeatBytes is the vault data bus granularity: payloads larger than one
// beat are split into multiple 32 B transfers (Section IV-A).
const BeatBytes = 32

// Beats returns how many data-bus beats a payload of n bytes needs.
func Beats(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + BeatBytes - 1) / BeatBytes
}

// Bank is the timing state machine of one DRAM bank. It is not
// concurrency-safe; the owning vault controller drives it from simulation
// events only.
type Bank struct {
	timing Timing
	policy PagePolicy

	nextActivate sim.Time // earliest start of the next activate
	busFree      sim.Time // earliest start of the next data burst
	openRow      uint64
	rowValid     bool
	nextRefresh  sim.Time

	accesses  uint64
	rowHits   uint64
	refreshes uint64
}

// NewBank returns an idle bank.
func NewBank(t Timing, p PagePolicy) *Bank {
	return &Bank{timing: t, policy: p, nextRefresh: t.TREFI}
}

// SetRefreshPhase offsets the bank's first refresh; vault controllers
// stagger their banks so the whole cube never refreshes at once.
func (b *Bank) SetRefreshPhase(phase sim.Time) {
	if b.timing.TREFI > 0 {
		b.nextRefresh = phase%b.timing.TREFI + b.timing.TREFI
	}
}

// refreshDelay advances the refresh schedule past start and returns the
// adjusted earliest start for an access arriving at start.
func (b *Bank) refreshDelay(start sim.Time) sim.Time {
	if b.timing.TREFI <= 0 {
		return start
	}
	// Refreshes whose window ended before start happened while idle.
	for b.nextRefresh+b.timing.TRFC <= start {
		b.nextRefresh += b.timing.TREFI
		b.refreshes++
	}
	// An access arriving inside the refresh window waits it out.
	if b.nextRefresh <= start {
		start = b.nextRefresh + b.timing.TRFC
		b.nextRefresh += b.timing.TREFI
		b.refreshes++
		b.rowValid = false
	}
	return start
}

// Access performs a read or write of size bytes against row at time now.
// It returns when the last data beat completes (dataDone) and when the
// bank can begin its next activate (bankReady). The caller serializes
// calls; passing a now earlier than the bank's ready time simply waits.
func (b *Bank) Access(now sim.Time, row uint64, size int) (dataDone, bankReady sim.Time) {
	beats := sim.Time(Beats(size))
	burst := beats * b.timing.TBurst
	b.accesses++

	now = b.refreshDelay(now)
	if b.policy == OpenPage && b.rowValid && b.openRow == row {
		// Row hit: column access only.
		b.rowHits++
		start := now
		if b.busFree > start {
			start = b.busFree
		}
		dataDone = start + b.timing.TCL + burst
		b.busFree = dataDone
		// The row stays open; the next activate (on a miss) must wait for
		// tRAS from the original activate, already satisfied here, plus
		// precharge on demand.
		if dataDone+b.timing.TRP > b.nextActivate {
			b.nextActivate = dataDone + b.timing.TRP
		}
		return dataDone, b.nextActivate
	}

	// Row miss (or closed-page): activate, read, precharge. With
	// auto-precharge the precharge begins tRTP after the column command
	// (but no earlier than tRAS from the activate) while the data burst
	// drains through the CAS pipeline — so the bank cycle time is
	// max(tRAS, tRCD+tRTP) + tRP regardless of burst length.
	start := now
	if b.nextActivate > start {
		start = b.nextActivate
	}
	dataStart := start + b.timing.TRCD + b.timing.TCL
	if b.busFree > dataStart {
		dataStart = b.busFree
	}
	dataDone = dataStart + burst
	b.busFree = dataDone

	preStart := start + b.timing.TRAS
	if rtp := start + b.timing.TRCD + b.timing.TRTP; rtp > preStart {
		preStart = rtp
	}
	if b.policy == ClosedPage {
		b.nextActivate = preStart + b.timing.TRP
		b.rowValid = false
	} else {
		b.openRow = row
		b.rowValid = true
		// Next activate only needed on a miss; model its earliest start as
		// after the precharge point.
		b.nextActivate = preStart + b.timing.TRP
	}
	return dataDone, b.nextActivate
}

// Ready returns the earliest time a new activate may start.
func (b *Bank) Ready() sim.Time { return b.nextActivate }

// Accesses returns the total access count.
func (b *Bank) Accesses() uint64 { return b.accesses }

// RowHits returns how many accesses hit an open row (open-page only).
func (b *Bank) RowHits() uint64 { return b.rowHits }

// Refreshes returns how many refresh cycles the bank has performed.
func (b *Bank) Refreshes() uint64 { return b.refreshes }

// Policy returns the bank's page policy.
func (b *Bank) Policy() PagePolicy { return b.policy }
