package dram

import (
	"testing"
	"testing/quick"

	"hmcsim/internal/sim"
)

func TestDefaultTimingMatchesPaper(t *testing.T) {
	tm := DefaultTiming()
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper: tRCD + tCL + tRP is around 41 ns for HMC.
	sum := tm.TRCD + tm.TCL + tm.TRP
	if sum < 40*sim.Nanosecond || sum > 43*sim.Nanosecond {
		t.Fatalf("tRCD+tCL+tRP = %v, want ~41ns", sum)
	}
	// 32 B per beat at 10 GB/s => 3.2 ns.
	if tm.TBurst != 3200*sim.Picosecond {
		t.Fatalf("tBurst = %v, want 3.2ns", tm.TBurst)
	}
}

func TestValidate(t *testing.T) {
	bad := DefaultTiming()
	bad.TRP = 0
	if bad.Validate() == nil {
		t.Error("zero tRP accepted")
	}
	bad = DefaultTiming()
	bad.TRAS = bad.TRCD - 1
	if bad.Validate() == nil {
		t.Error("tRAS < tRCD accepted")
	}
}

func TestBeats(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {16, 1}, {32, 1}, {33, 2}, {64, 2}, {128, 4},
	}
	for _, c := range cases {
		if got := Beats(c.n); got != c.want {
			t.Errorf("Beats(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestClosedPageSingleAccess(t *testing.T) {
	tm := DefaultTiming()
	b := NewBank(tm, ClosedPage)
	dataDone, ready := b.Access(0, 5, 32)
	wantData := tm.TRCD + tm.TCL + tm.TBurst
	if dataDone != wantData {
		t.Fatalf("dataDone = %v, want %v", dataDone, wantData)
	}
	// Auto-precharge begins at max(tRAS, tRCD+tRTP) while the burst
	// drains; the bank recycles after tRP more.
	wantReady := tm.TRAS + tm.TRP
	if rtp := tm.TRCD + tm.TRTP + tm.TRP; rtp > wantReady {
		wantReady = rtp
	}
	if ready != wantReady {
		t.Fatalf("ready = %v, want %v", ready, wantReady)
	}
}

func TestClosedPageBackToBackRate(t *testing.T) {
	// Successive random accesses to one bank are tRC-limited; a 128 B
	// access adds three extra beats. This is the mechanism behind the
	// "1 bank" points of Figure 6.
	tm := DefaultTiming()
	b := NewBank(tm, ClosedPage)
	var prev sim.Time
	var gaps []sim.Time
	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		dataDone, ready := b.Access(now, uint64(i*7), 128)
		if i > 0 {
			gaps = append(gaps, dataDone-prev)
		}
		prev = dataDone
		now = ready
	}
	// Steady-state gap = bank cycle time: with auto-precharge
	// overlapping the burst, max(tRAS, tRCD+tRTP) + tRP for every size.
	want := tm.TRAS + tm.TRP
	if rtp := tm.TRCD + tm.TRTP + tm.TRP; rtp > want {
		want = rtp
	}
	for i, g := range gaps {
		if g != want {
			t.Fatalf("gap %d = %v, want %v", i, g, want)
		}
	}
}

func TestClosedPageSmallAccessRate(t *testing.T) {
	// For small accesses the cycle is dominated by tRAS + tRP when
	// the data finishes before tRAS expires.
	tm := DefaultTiming()
	b := NewBank(tm, ClosedPage)
	_, ready := b.Access(0, 1, 16)
	want := tm.TRAS + tm.TRP
	if rtp := tm.TRCD + tm.TRTP + tm.TRP; rtp > want {
		want = rtp
	}
	if ready != want {
		t.Fatalf("ready = %v, want %v", ready, want)
	}
}

func TestOpenPageRowHit(t *testing.T) {
	tm := DefaultTiming()
	b := NewBank(tm, OpenPage)
	d1, _ := b.Access(0, 42, 32)
	d2, _ := b.Access(d1, 42, 32)
	// Hit skips tRCD: second access takes tCL + burst from the bus-free
	// point.
	want := d1 + tm.TCL + tm.TBurst
	if d2 != want {
		t.Fatalf("row hit dataDone = %v, want %v", d2, want)
	}
	if b.RowHits() != 1 {
		t.Fatalf("rowHits = %d, want 1", b.RowHits())
	}
}

func TestOpenPageMissSlowerThanHit(t *testing.T) {
	tm := DefaultTiming()
	hit := NewBank(tm, OpenPage)
	miss := NewBank(tm, OpenPage)
	d1, _ := hit.Access(0, 1, 32)
	dh, _ := hit.Access(d1, 1, 32)
	d2, _ := miss.Access(0, 1, 32)
	dm, _ := miss.Access(d2, 2, 32)
	if dh-d1 >= dm-d2 {
		t.Fatalf("row hit (%v) not faster than miss (%v)", dh-d1, dm-d2)
	}
	if miss.RowHits() != 0 {
		t.Fatalf("miss bank recorded %d row hits", miss.RowHits())
	}
}

func TestClosedPageNeverHits(t *testing.T) {
	tm := DefaultTiming()
	b := NewBank(tm, ClosedPage)
	now := sim.Time(0)
	for i := 0; i < 5; i++ {
		_, ready := b.Access(now, 42, 32) // same row every time
		now = ready
	}
	if b.RowHits() != 0 {
		t.Fatalf("closed-page bank recorded %d row hits", b.RowHits())
	}
	if b.Accesses() != 5 {
		t.Fatalf("accesses = %d, want 5", b.Accesses())
	}
}

// TestBankMonotonicProperty: regardless of access pattern, completions and
// ready times never move backwards and data completes after the request.
func TestBankMonotonicProperty(t *testing.T) {
	tm := DefaultTiming()
	f := func(rows []uint8, openPage bool, sizes []uint8) bool {
		policy := ClosedPage
		if openPage {
			policy = OpenPage
		}
		b := NewBank(tm, policy)
		now := sim.Time(0)
		var lastDone sim.Time
		for i, r := range rows {
			var sz uint8
			if len(sizes) > 0 {
				sz = sizes[i%len(sizes)]
			}
			size := 16 * (int(sz%8) + 1)
			dataDone, ready := b.Access(now, uint64(r%4), size)
			if dataDone <= now || ready < dataDone-16*tm.TBurst {
				return false
			}
			if dataDone < lastDone {
				return false // data bus went backwards
			}
			lastDone = dataDone
			// Next request arrives somewhere between immediately and
			// after the bank is ready.
			if r%2 == 0 {
				now = ready
			} else {
				now = dataDone
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBankRespectsTRC(t *testing.T) {
	// Activate-to-activate spacing is at least tRC for closed-page
	// back-to-back traffic.
	tm := DefaultTiming()
	b := NewBank(tm, ClosedPage)
	_, r1 := b.Access(0, 0, 16)
	if r1 < tm.TRC() {
		t.Fatalf("second activate allowed at %v, want >= %v", r1, tm.TRC())
	}
}
