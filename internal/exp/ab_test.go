package exp

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"hmcsim"
)

// TestABGuard is the kernel-rewrite safety net: every registered
// experiment's quick-mode Result JSON must be byte-identical to the
// golden snapshot in testdata/ab/, which was captured from the
// pre-optimization (container/heap + slice-FIFO + per-packet-alloc)
// kernel. Any change to event ordering, queue semantics, or packet
// lifetime that alters simulation results shows up here as a diff.
//
// Regenerate the snapshots (only when a result change is intended and
// understood) with:
//
//	HMCSIM_AB_UPDATE=1 go test ./internal/exp -run TestABGuard
func TestABGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("A/B guard runs every registered experiment; skipped with -short")
	}
	update := os.Getenv("HMCSIM_AB_UPDATE") != ""
	if update {
		if err := os.MkdirAll(filepath.Join("testdata", "ab"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			got := runJSON(t, name, Options{Quick: true})
			path := filepath.Join("testdata", "ab", name+".json")
			if update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with HMCSIM_AB_UPDATE=1 to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: Result JSON differs from the pre-optimization golden snapshot (%d vs %d bytes); the kernel change altered simulation behavior", name, len(got), len(want))
			}
		})
	}
}

// TestShardedABGuard is the determinism contract of the sharded engine:
// a vault-partitioned lockstep run must produce Result JSON
// byte-identical to the serial reference engine's golden snapshot, at
// every shard count and regardless of how much real parallelism the
// scheduler grants. GOMAXPROCS=1 forces maximal goroutine interleaving
// jitter (every barrier wakeup is a cooperative reschedule), while
// NumCPU exercises true concurrency; both must converge on the same
// bytes or the safety window / mailbox ordering is broken.
func TestShardedABGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded A/B guard runs full quick experiments; skipped with -short")
	}
	cases := []struct {
		name   string
		shards int
		procs  int
	}{
		{"fig6", 1, 1},
		{"fig6", 2, 1},
		{"fig6", 4, 1},
		{"fig6", 2, runtime.NumCPU()},
		{"fig6", 4, runtime.NumCPU()},
		{"traffic-zipf", 1, 1},
		{"traffic-zipf", 2, 1},
		{"traffic-zipf", 4, 1},
		{"traffic-zipf", 2, runtime.NumCPU()},
		{"traffic-zipf", 4, runtime.NumCPU()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/shards=%d/procs=%d", tc.name, tc.shards, tc.procs), func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "ab", tc.name+".json"))
			if err != nil {
				t.Fatalf("missing golden snapshot (run with HMCSIM_AB_UPDATE=1 to create): %v", err)
			}
			prev := runtime.GOMAXPROCS(tc.procs)
			defer runtime.GOMAXPROCS(prev)
			got := runJSON(t, tc.name, Options{Quick: true, Workers: 1, Shards: tc.shards})
			if !bytes.Equal(got, want) {
				t.Errorf("%s at %d shards (GOMAXPROCS=%d): Result JSON differs from the serial golden (%d vs %d bytes); the lockstep window or mailbox ordering leaked scheduling nondeterminism into results",
					tc.name, tc.shards, tc.procs, len(got), len(want))
			}
		})
	}
}

// TestTracedShardedABGuard is the observe-only contract of the lockstep
// observatory at the result level: a sharded run with every collector
// attached — trace summaries, timelines (which route barrier-stall
// slices and per-shard counters), and the shard-stats observatory —
// must still produce Result JSON byte-identical to the untraced serial
// golden. Telemetry that perturbed event ordering, or leaked into the
// Result, would diff here.
func TestTracedShardedABGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("traced sharded A/B guard runs full quick experiments; skipped with -short")
	}
	for _, name := range []string{"fig6", "traffic-zipf"} {
		for _, shards := range []int{1, 2, 4} {
			name, shards := name, shards
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				want, err := os.ReadFile(filepath.Join("testdata", "ab", name+".json"))
				if err != nil {
					t.Fatalf("missing golden snapshot (run with HMCSIM_AB_UPDATE=1 to create): %v", err)
				}
				ctx, _ := hmcsim.WithTrace(context.Background())
				ctx, _ = hmcsim.WithTimeline(ctx)
				ctx, ssc := hmcsim.WithShardStats(ctx)
				got := runJSONCtx(t, ctx, name, Options{Quick: true, Workers: 1, Shards: shards})
				if !bytes.Equal(got, want) {
					t.Errorf("%s at %d shards with observatory attached: Result JSON differs from the untraced serial golden (%d vs %d bytes); telemetry must observe, never perturb",
						name, shards, len(got), len(want))
				}
				if ssc.Systems() == 0 {
					t.Error("shard-stats collector saw no systems; the observatory was not wired")
				}
				if gs := ssc.Stats(); gs.Windows == 0 {
					t.Error("observatory recorded no window opens over a full experiment")
				}
			})
		}
	}
}
