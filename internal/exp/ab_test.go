package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestABGuard is the kernel-rewrite safety net: every registered
// experiment's quick-mode Result JSON must be byte-identical to the
// golden snapshot in testdata/ab/, which was captured from the
// pre-optimization (container/heap + slice-FIFO + per-packet-alloc)
// kernel. Any change to event ordering, queue semantics, or packet
// lifetime that alters simulation results shows up here as a diff.
//
// Regenerate the snapshots (only when a result change is intended and
// understood) with:
//
//	HMCSIM_AB_UPDATE=1 go test ./internal/exp -run TestABGuard
func TestABGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("A/B guard runs every registered experiment; skipped with -short")
	}
	update := os.Getenv("HMCSIM_AB_UPDATE") != ""
	if update {
		if err := os.MkdirAll(filepath.Join("testdata", "ab"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			got := runJSON(t, name, Options{Quick: true})
			path := filepath.Join("testdata", "ab", name+".json")
			if update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with HMCSIM_AB_UPDATE=1 to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: Result JSON differs from the pre-optimization golden snapshot (%d vs %d bytes); the kernel change altered simulation behavior", name, len(got), len(want))
			}
		})
	}
}
