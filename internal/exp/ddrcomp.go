package exp

import (
	"context"
	"fmt"

	"hmcsim"
	"hmcsim/internal/stats"
)

// BackendPoint is one device's row of the comparison sweep.
type BackendPoint struct {
	Backend    string
	IdleLatNs  float64
	RandomGBps float64
}

// DDRComparisonResult backs the paper's qualitative claims against
// traditional DDRx: the HMC's packetized path has a higher idle latency
// than a synchronous DDR channel, but vastly higher bandwidth under
// parallel random traffic.
type DDRComparisonResult struct {
	// Backends holds one row per compared device, in
	// hmcsim.ComparisonBackends order (DDR first).
	Backends []BackendPoint

	DDRIdleLatNs float64
	HMCIdleLatNs float64 // device-only latency (excluding host FPGA floor)

	DDRRandomGBps float64
	HMCRandomGBps float64 // data bytes through the host infrastructure
	// HMCInternalGBps is the cube's aggregate internal bandwidth
	// (16 vaults x 10 GB/s); the measured figure is capped by the two
	// half-width links and the FPGA controller, not by the memory.
	HMCInternalGBps float64
}

// DDRComparison measures every comparison backend on the same 64 B
// workloads — a plain sweep over the hmcsim.Backend list.
func DDRComparison(ctx context.Context, o Options) DDRComparisonResult {
	backends := hmcsim.ComparisonBackends()
	rows := hmcsim.Sweep(ctx, o.SweepWorkers(), len(backends), func(i int) BackendPoint {
		b := backends[i]
		return BackendPoint{
			Backend:    b.Name(),
			IdleLatNs:  b.IdleLatencyNs(ctx, o, 64),
			RandomGBps: b.RandomReadGBps(ctx, o, 64),
		}
	})
	res := DDRComparisonResult{Backends: rows}
	// Legacy headline fields: the sweep order is DDR first, HMC second.
	res.DDRIdleLatNs, res.DDRRandomGBps = rows[0].IdleLatNs, rows[0].RandomGBps
	res.HMCIdleLatNs, res.HMCRandomGBps = rows[1].IdleLatNs, rows[1].RandomGBps
	res.HMCInternalGBps = hmcsim.HMCDevice{}.InternalGBps()
	return res
}

func (r DDRComparisonResult) String() string {
	t := table{header: []string{"Metric", "DDR3-1600 channel", "HMC 1.1 (device)"}}
	t.addRow("Idle 64B read latency",
		fmt.Sprintf("%.0f ns", r.DDRIdleLatNs),
		fmt.Sprintf("%.0f ns", r.HMCIdleLatNs))
	t.addRow("Random 64B read data bandwidth",
		fmt.Sprintf("%.2f GB/s", r.DDRRandomGBps),
		fmt.Sprintf("%.2f GB/s", r.HMCRandomGBps))
	t.addRow("Aggregate internal bandwidth",
		fmt.Sprintf("%.2f GB/s", r.DDRRandomGBps),
		fmt.Sprintf("%.2f GB/s (16 vaults)", r.HMCInternalGBps))
	speedup := 0.0
	if r.DDRRandomGBps > 0 {
		speedup = r.HMCRandomGBps / r.DDRRandomGBps
	}
	return fmt.Sprintf("DDR baseline comparison (HMC random-bandwidth advantage: %.1fx)\n%s",
		speedup, t.String())
}

// Result converts to the structured form: idle latency and random
// bandwidth per backend, plus the cube-internal ceiling.
func (r DDRComparisonResult) Result() hmcsim.Result {
	idle := hmcsim.Series{Name: "idle-latency", Unit: "ns"}
	random := hmcsim.Series{Name: "random-read-bandwidth", Unit: "GB/s"}
	for _, row := range r.Backends {
		idle.Points = append(idle.Points, hmcsim.Point{Label: row.Backend, X: 64, Y: row.IdleLatNs})
		random.Points = append(random.Points, hmcsim.Point{Label: row.Backend, X: 64, Y: row.RandomGBps})
	}
	internal := hmcsim.Series{Name: "hmc-internal-bandwidth", Unit: "GB/s",
		Points: []hmcsim.Point{{Label: "HMC 1.1 (16 vaults)", X: 64, Y: r.HMCInternalGBps}}}
	return hmcsim.Result{Series: []hmcsim.Series{idle, random, internal}, Text: r.String()}
}

// Correlation quantifies the Figure 12 claim that vault position barely
// matters: the Pearson correlation between vault number and that vault's
// mean attributed latency should be near zero.
func (r VaultComboResult) Correlation(size int) float64 {
	var xs, ys []float64
	for v, samples := range r.SamplesByVault[size] {
		var s stats.Stream
		for _, x := range samples {
			s.Add(x)
		}
		xs = append(xs, float64(v))
		ys = append(ys, s.Mean())
	}
	return stats.Pearson(xs, ys)
}
