package exp

import (
	"fmt"

	"hmcsim/internal/core"
	"hmcsim/internal/ddr"
	"hmcsim/internal/host"
	"hmcsim/internal/sim"
	"hmcsim/internal/stats"
)

// DDRComparisonResult backs the paper's qualitative claims against
// traditional DDRx: the HMC's packetized path has a higher idle latency
// than a synchronous DDR channel, but vastly higher bandwidth under
// parallel random traffic.
type DDRComparisonResult struct {
	DDRIdleLatNs float64
	HMCIdleLatNs float64 // device-only latency (excluding host FPGA floor)

	DDRRandomGBps float64
	HMCRandomGBps float64 // data bytes through the host infrastructure
	// HMCInternalGBps is the cube's aggregate internal bandwidth
	// (16 vaults x 10 GB/s); the measured figure is capped by the two
	// half-width links and the FPGA controller, not by the memory.
	HMCInternalGBps float64
}

// DDRComparison measures both systems on the same workloads.
func DDRComparison(o Options) DDRComparisonResult {
	var res DDRComparisonResult

	// Idle latency: single 64 B read.
	{
		eng := sim.NewEngine()
		c := ddr.New(eng, ddr.DefaultConfig())
		eng.Schedule(0, func() {
			c.TryAccess(&ddr.Request{Addr: 0x40, Size: 64}, func(r *ddr.Request) {
				res.DDRIdleLatNs = r.Done.Nanoseconds()
			})
		})
		eng.Drain()
	}
	{
		sys := o.newSystem()
		trace := sys.RandomTrace(1, 64, sys.SingleVault(0), 1)
		ports := sys.PlayStreams([][]host.Request{trace})
		// Device latency = measured round trip minus the fixed FPGA
		// pipeline, exactly how the paper isolates the 100-180 ns HMC
		// contribution from the 547 ns infrastructure floor.
		floor := sys.Cfg.Host.TxLatency + sys.Cfg.Host.RxLatency
		res.HMCIdleLatNs = (ports[0].Mon.AvgLat() - floor).Nanoseconds()
	}

	// Loaded random bandwidth: data bytes per second.
	{
		eng := sim.NewEngine()
		c := ddr.New(eng, ddr.DefaultConfig())
		rng := sim.NewRand(o.Seed + 9)
		completed := 0
		n := 20000
		if o.Quick {
			n = 5000
		}
		var issue func(i int)
		issue = func(i int) {
			if i >= n {
				return
			}
			req := &ddr.Request{Addr: rng.Uint64() & (1<<32 - 1) &^ 63, Size: 64}
			if !c.TryAccess(req, func(*ddr.Request) { completed++ }) {
				c.Notify(func() { issue(i) })
				return
			}
			issue(i + 1)
		}
		eng.Schedule(0, func() { issue(0) })
		eng.Drain()
		res.DDRRandomGBps = float64(completed*64) / eng.Now().Seconds() / 1e9
	}
	{
		sys := o.newSystem()
		r := sys.RunGUPS(core.GUPSSpec{
			Ports: 9, Size: 64, Pattern: core.AllVaults(),
			Warmup: o.warmup(), Window: o.window(),
		})
		res.HMCRandomGBps = float64(r.Reads*64) / r.Window.Seconds() / 1e9
		res.HMCInternalGBps = 16 * sys.Cfg.HMC.Vault.TSVBandwidth.GBpsValue()
	}
	return res
}

// packet2 avoids importing packet twice under different names.
type packet2 = transaction

func (r DDRComparisonResult) String() string {
	t := table{header: []string{"Metric", "DDR3-1600 channel", "HMC 1.1 (device)"}}
	t.addRow("Idle 64B read latency",
		fmt.Sprintf("%.0f ns", r.DDRIdleLatNs),
		fmt.Sprintf("%.0f ns", r.HMCIdleLatNs))
	t.addRow("Random 64B read data bandwidth",
		fmt.Sprintf("%.2f GB/s", r.DDRRandomGBps),
		fmt.Sprintf("%.2f GB/s", r.HMCRandomGBps))
	t.addRow("Aggregate internal bandwidth",
		fmt.Sprintf("%.2f GB/s", r.DDRRandomGBps),
		fmt.Sprintf("%.2f GB/s (16 vaults)", r.HMCInternalGBps))
	speedup := 0.0
	if r.DDRRandomGBps > 0 {
		speedup = r.HMCRandomGBps / r.DDRRandomGBps
	}
	return fmt.Sprintf("DDR baseline comparison (HMC random-bandwidth advantage: %.1fx)\n%s",
		speedup, t.String())
}

// Correlation quantifies the Figure 12 claim that vault position barely
// matters: the Pearson correlation between vault number and that vault's
// mean attributed latency should be near zero.
func (r VaultComboResult) Correlation(size int) float64 {
	var xs, ys []float64
	for v, samples := range r.SamplesByVault[size] {
		var s stats.Stream
		for _, x := range samples {
			s.Add(x)
		}
		xs = append(xs, float64(v))
		ys = append(ys, s.Mean())
	}
	return stats.Pearson(xs, ys)
}
