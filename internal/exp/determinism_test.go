package exp

import (
	"bytes"
	"context"
	"testing"
)

// runJSON executes one registered experiment and returns its JSON bytes.
func runJSON(t *testing.T, name string, o Options) []byte {
	t.Helper()
	return runJSONCtx(t, context.Background(), name, o)
}

// runJSONCtx is runJSON over a caller-supplied context, for guards that
// attach observability collectors to the run.
func runJSONCtx(t *testing.T, ctx context.Context, name string, o Options) []byte {
	t.Helper()
	res, err := Run(ctx, name, o)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestDeterminism is the regression guard for the parallel sweep path:
// with a fixed seed, the JSON output must be byte-identical across
// repeated runs and across sequential vs. parallel execution. Workers
// is excluded from the marshaled options precisely so this holds.
func TestDeterminism(t *testing.T) {
	for _, name := range []string{"fig14", "ddr", "traffic-zipf", "traffic-burst"} {
		seq := Options{Quick: true, Seed: 7, Workers: 1}
		par := Options{Quick: true, Seed: 7, Workers: 4}

		first := runJSON(t, name, seq)
		again := runJSON(t, name, seq)
		if !bytes.Equal(first, again) {
			t.Errorf("%s: two sequential runs with the same seed differ", name)
		}
		parallel := runJSON(t, name, par)
		if !bytes.Equal(first, parallel) {
			t.Errorf("%s: parallel sweep output differs from sequential", name)
		}
	}
}
