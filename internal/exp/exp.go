// Package exp contains one runner per table and figure of the paper's
// evaluation (Section IV). Each runner builds fresh systems from a base
// configuration, drives the same workloads the paper describes, and
// returns a typed result whose String method prints the rows or series
// the paper reports. The bench harness in the repository root and the
// hmcsim CLI both call into this package.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"hmcsim/internal/core"
	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
)

// Sizes are the request sizes every experiment sweeps (Table I).
var Sizes = []int{16, 32, 64, 128}

// Options tune how much work the runners do. The zero value is the full
// paper-fidelity configuration; Quick cuts windows and sample counts for
// use inside `go test -bench`.
type Options struct {
	Quick bool
	// Seed perturbs all workload RNGs, letting the benches check that
	// conclusions are seed-stable.
	Seed uint64
}

func (o Options) warmup() sim.Time {
	if o.Quick {
		return 15 * sim.Microsecond
	}
	return 30 * sim.Microsecond
}

func (o Options) window() sim.Time {
	if o.Quick {
		return 40 * sim.Microsecond
	}
	return 120 * sim.Microsecond
}

// newSystem builds a default system with the option seed applied.
func (o Options) newSystem() *core.System {
	cfg := core.DefaultConfig()
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return core.NewSystem(cfg)
}

// PatternSpec names one of the paper's access patterns in the order the
// figures present them: banks within vault 0, then vault groups.
type PatternSpec struct {
	Name   string
	Banks  int // >0: confined to this many banks of vault 0
	Vaults int // >0: confined to this many vaults
}

// Patterns is the pattern sweep of Figures 6 and 13.
var Patterns = []PatternSpec{
	{Name: "1 bank", Banks: 1},
	{Name: "2 banks", Banks: 2},
	{Name: "4 banks", Banks: 4},
	{Name: "8 banks", Banks: 8},
	{Name: "1 vault", Vaults: 1},
	{Name: "2 vaults", Vaults: 2},
	{Name: "4 vaults", Vaults: 4},
	{Name: "8 vaults", Vaults: 8},
	{Name: "16 vaults", Vaults: 16},
}

// Build materializes the pattern against a system's address mapping.
func (p PatternSpec) Build(sys *core.System) core.Pattern {
	switch {
	case p.Banks > 0:
		pat := sys.Banks(p.Banks)
		pat.Name = p.Name
		return pat
	case p.Vaults > 0:
		pat := sys.Vaults(p.Vaults)
		pat.Name = p.Name
		return pat
	}
	panic(fmt.Sprintf("exp: empty pattern spec %+v", p))
}

// table is a tiny fixed-width text table builder shared by the results.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// sortedKeys returns map keys in ascending order; results use it to print
// deterministically.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// transaction aliases the packet transaction for result hooks.
type transaction = packet.Transaction
