// Package exp contains one runner per table and figure of the paper's
// evaluation (Section IV). Each runner builds fresh systems from a base
// configuration, drives the same workloads the paper describes, and
// returns a typed result whose String method prints the rows or series
// the paper reports.
//
// Every runner also registers itself (see registry.go) as a named
// hmcsim.Runner returning a structured, JSON-marshalable hmcsim.Result;
// the hmcsim CLI and the bench harness iterate that registry rather
// than hard-coding the experiment list.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"hmcsim"
)

// Sizes are the request sizes every experiment sweeps (Table I).
var Sizes = []int{16, 32, 64, 128}

// Options tune how much work the runners do; it is the public
// hmcsim.Options (Quick, Seed, Workers). The zero value is the full
// paper-fidelity configuration run sequentially-or-parallel per
// runtime.NumCPU().
type Options = hmcsim.Options

// PatternSpec names one of the paper's access patterns structurally; it
// is the public hmcsim.PatternSpec.
type PatternSpec = hmcsim.PatternSpec

// Patterns is the pattern sweep of Figures 6 and 13.
var Patterns = hmcsim.Patterns

// table is a tiny fixed-width text table builder shared by the results.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// sortedKeys returns map keys in ascending order; results use it to print
// deterministically.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
