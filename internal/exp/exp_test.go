package exp

import (
	"context"
	"math"
	"strings"
	"testing"

	"hmcsim/internal/stats"
)

// The tests in this file assert the paper's qualitative findings — curve
// orderings, plateaus, crossovers — on reduced (Quick) sweeps. Absolute
// numbers live in EXPERIMENTS.md.

var (
	quick = Options{Quick: true}
	ctx   = context.Background()
)

func TestTableIString(t *testing.T) {
	s := TableI().String()
	for _, want := range []string{"16B", "128B", "9 flits", "50%", "89%"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I output missing %q:\n%s", want, s)
		}
	}
}

func TestPeakBandwidth60(t *testing.T) {
	if got := PeakBandwidth().Peak.GBpsValue(); got != 60 {
		t.Fatalf("Equation 1 = %v GB/s, want 60", got)
	}
}

func TestFig6Shapes(t *testing.T) {
	r := Fig6(ctx, Options{Quick: true})

	// (1) One bank is the slowest pattern at every size; the paper's
	// lowest figure is ~2 GB/s at 32 B.
	for _, size := range Sizes {
		bank1, ok := r.Point("1 bank", size)
		if !ok {
			t.Fatalf("missing 1-bank point for %dB", size)
		}
		all, _ := r.Point("16 vaults", size)
		if bank1.GBps >= all.GBps {
			t.Errorf("%dB: 1 bank (%v) not slower than 16 vaults (%v)", size, bank1.GBps, all.GBps)
		}
		if bank1.AvgLatNs <= all.AvgLatNs {
			t.Errorf("%dB: 1 bank latency (%v) not above 16 vaults (%v)", size, bank1.AvgLatNs, all.AvgLatNs)
		}
	}

	// (2) The 8-bank and 1-vault patterns plateau at the ~10 GB/s vault
	// bandwidth for larger sizes.
	for _, size := range []int{32, 64, 128} {
		for _, pat := range []string{"8 banks", "1 vault"} {
			p, _ := r.Point(pat, size)
			if p.GBps < 8.5 || p.GBps > 10.5 {
				t.Errorf("%s %dB = %.2f GB/s, want ~10", pat, size, p.GBps)
			}
		}
	}

	// (3) Distributed 128 B accesses reach the low-20s GB/s external
	// ceiling (paper: 23 GB/s).
	for _, pat := range []string{"4 vaults", "8 vaults", "16 vaults"} {
		p, _ := r.Point(pat, 128)
		if p.GBps < 20 || p.GBps > 24 {
			t.Errorf("%s 128B = %.2f GB/s, want ~22", pat, p.GBps)
		}
	}

	// (4) Larger requests always achieve higher bandwidth within a
	// pattern (Section IV-A).
	for _, pat := range []string{"1 bank", "16 vaults"} {
		prev := 0.0
		for _, size := range Sizes {
			p, _ := r.Point(pat, size)
			if p.GBps < prev {
				t.Errorf("%s: bandwidth fell from %.2f to %.2f at %dB", pat, prev, p.GBps, size)
			}
			prev = p.GBps
		}
	}

	// (5) Small requests have lower latency than large within a pattern.
	for _, pat := range []string{"16 vaults", "1 vault"} {
		small, _ := r.Point(pat, 16)
		large, _ := r.Point(pat, 128)
		if small.AvgLatNs >= large.AvgLatNs {
			t.Errorf("%s: 16B latency (%v) not below 128B (%v)", pat, small.AvgLatNs, large.AvgLatNs)
		}
	}

	// (6) Headline latency range: ~2 us for spread small requests up to
	// tens of us for single-bank large requests.
	spread16, _ := r.Point("16 vaults", 16)
	if spread16.AvgLatNs < 1000 || spread16.AvgLatNs > 3000 {
		t.Errorf("16 vaults 16B latency = %.0f ns, want ~2000", spread16.AvgLatNs)
	}
	bank128, _ := r.Point("1 bank", 128)
	if bank128.AvgLatNs < 15000 || bank128.AvgLatNs > 40000 {
		t.Errorf("1 bank 128B latency = %.0f ns, want ~24000", bank128.AvgLatNs)
	}
}

func TestFig7Shapes(t *testing.T) {
	r := Fig7(ctx, quick)
	// No-load floor ~0.7 us for every size (547 ns infrastructure plus
	// 100-180 ns device).
	for _, size := range Sizes {
		p, ok := r.Point(size, 1)
		if !ok {
			t.Fatalf("missing n=1 point for %dB", size)
		}
		if p.AvgLatNs < 600 || p.AvgLatNs > 900 {
			t.Errorf("%dB no-load latency = %.0f ns, want ~700", size, p.AvgLatNs)
		}
	}
	// Latency grows with stream length, faster for larger requests.
	for _, size := range Sizes {
		ns, lat := r.Curve(size)
		slope, _ := stats.LinearFit(ns, lat)
		if slope <= 0 {
			t.Errorf("%dB: latency not increasing with stream length", size)
		}
	}
	ns16, lat16 := r.Curve(16)
	ns128, lat128 := r.Curve(128)
	s16, _ := stats.LinearFit(ns16, lat16)
	s128, _ := stats.LinearFit(ns128, lat128)
	if s128 <= 2*s16 {
		t.Errorf("128B slope (%v) not much steeper than 16B (%v)", s128, s16)
	}
}

func TestFig8LinearThenFlat(t *testing.T) {
	r := Fig8(ctx, quick)
	for _, size := range []int{16, 128} {
		ns, lat := r.Curve(size)
		if len(ns) < 6 {
			t.Fatalf("curve too short: %d points", len(ns))
		}
		// Early slope (first half) must greatly exceed late slope (last
		// third): the linear region then the full-queue plateau.
		mid := len(ns) / 2
		tail := 2 * len(ns) / 3
		early, _ := stats.LinearFit(ns[:mid], lat[:mid])
		late, _ := stats.LinearFit(ns[tail:], lat[tail:])
		if early <= 0 {
			t.Errorf("%dB: no linear region", size)
		}
		if late > early/3 {
			t.Errorf("%dB: no plateau: early slope %v, late slope %v", size, early, late)
		}
	}
}

func TestFig9CollisionPenalty(t *testing.T) {
	r := Fig9(ctx, quick)
	for _, pinned := range []int{1, 5} {
		for _, size := range []int{16, 128} {
			pen := r.CollisionPenalty(pinned, size)
			if pen < 1.15 {
				t.Errorf("pinned %d, %dB: collision penalty %.2f, want >= 1.15", pinned, size, pen)
			}
			if pen > 2.0 {
				t.Errorf("pinned %d, %dB: collision penalty %.2f implausibly high", pinned, size, pen)
			}
		}
	}
}

func TestFig10Findings(t *testing.T) {
	r := Fig10(ctx, Options{Quick: true})
	// Means grow with request size and sit in the paper's ballpark
	// (1.6-4.3 us on hardware; the simulator runs a little faster).
	prevMean := 0.0
	for _, size := range Sizes {
		mean, sigma := r.Stats(size)
		if mean <= prevMean {
			t.Errorf("%dB: mean %.0f not above previous size's %.0f", size, mean, prevMean)
		}
		prevMean = mean
		if sigma <= 0 {
			t.Errorf("%dB: zero latency variance", size)
		}
	}
	// The paper's key claim: vault position contributes almost nothing —
	// correlation between vault number and mean latency is weak.
	for _, size := range Sizes {
		if c := math.Abs(r.Correlation(size)); c > 0.8 {
			t.Errorf("%dB: |corr(vault, latency)| = %.2f; position should not dominate", size, c)
		}
	}
	// Every vault received samples.
	for _, size := range Sizes {
		for v, samples := range r.SamplesByVault[size] {
			if len(samples) == 0 {
				t.Errorf("%dB: vault %d never sampled", size, v)
			}
		}
	}
}

func TestFig10Heatmaps(t *testing.T) {
	r := Fig10(ctx, Options{Quick: true})
	hm := r.Heatmap(64).Render()
	if !strings.Contains(hm, "vault") {
		t.Fatalf("heatmap missing label:\n%s", hm)
	}
	tm := r.TransposeHeatmap(64).Render()
	if len(strings.Split(tm, "\n")) < 10 {
		t.Fatalf("transpose heatmap too small:\n%s", tm)
	}
}

func TestFig13Shapes(t *testing.T) {
	r := Fig13(ctx, Options{Quick: true})
	// Bank-limited patterns are flat (saturated from few ports); spread
	// patterns grow with port count.
	for _, size := range Sizes {
		pts, bw := r.Series(size, "1 bank")
		if len(pts) == 0 {
			t.Fatal("missing 1-bank series")
		}
		if bw[len(bw)-1] > bw[0]*1.6 {
			t.Errorf("%dB 1 bank: bandwidth grew %vx with ports; expected flat", size, bw[len(bw)-1]/bw[0])
		}
		// Spread patterns grow with port count until the external
		// ceiling; 128 B nearly saturates from one port (the paper's
		// "quickly reach the bottleneck" note for Figure 13d), so the
		// growth requirement is modest.
		_, spread := r.Series(size, "16 vaults")
		if spread[len(spread)-1] < spread[0]*1.2 {
			t.Errorf("%dB 16 vaults: bandwidth did not grow with ports (%v -> %v)",
				size, spread[0], spread[len(spread)-1])
		}
	}
	// 16/32 B saturate the vault at 8 banks; 64/128 B already at 4 banks
	// (Section IV-F).
	for _, size := range []int{64, 128} {
		p, ok := r.SaturatedPoint(size, "4 banks")
		if !ok || p.GBps < 8.5 {
			t.Errorf("%dB 4 banks saturated at %.2f GB/s, want ~10", size, p.GBps)
		}
	}
	for _, size := range []int{16, 32} {
		p, _ := r.SaturatedPoint(size, "4 banks")
		if p.GBps > 8.5 {
			t.Errorf("%dB 4 banks reached %.2f GB/s; should be bank-bound below the vault cap", size, p.GBps)
		}
	}
}

func TestFig14Linearity(t *testing.T) {
	r := Fig14(ctx, quick)
	two, four := r.Average(2), r.Average(4)
	if two < 200 || two > 400 {
		t.Errorf("2-bank outstanding = %.0f, want ~290 (paper: 288)", two)
	}
	if four < 400 || four > 600 {
		t.Errorf("4-bank outstanding = %.0f, want ~500 (paper: 535)", four)
	}
	ratio := four / two
	if ratio < 1.4 || ratio > 2.1 {
		t.Errorf("outstanding ratio 4:2 banks = %.2f, want ~1.7 (queue per bank)", ratio)
	}
	// Size independence: every size's estimate within 15% of the mean.
	for _, p := range r.Points {
		avg := r.Average(p.Banks)
		if p.LittleN < avg*0.85 || p.LittleN > avg*1.15 {
			t.Errorf("%d banks %dB: outstanding %.0f deviates from mean %.0f", p.Banks, p.Size, p.LittleN, avg)
		}
	}
}

func TestDDRComparison(t *testing.T) {
	r := DDRComparison(ctx, quick)
	if r.DDRIdleLatNs <= 0 || r.HMCIdleLatNs <= 0 {
		t.Fatal("missing idle latencies")
	}
	// Packetized memory has higher idle latency than the synchronous bus
	// (Section IV-B)...
	if r.HMCIdleLatNs <= r.DDRIdleLatNs {
		t.Errorf("HMC idle latency (%v) not above DDR (%v)", r.HMCIdleLatNs, r.DDRIdleLatNs)
	}
	// ...but higher random-access bandwidth even through the two
	// half-width links, and an order of magnitude more inside the cube.
	if r.HMCRandomGBps < 1.2*r.DDRRandomGBps {
		t.Errorf("HMC random bandwidth (%v) not above DDR (%v)", r.HMCRandomGBps, r.DDRRandomGBps)
	}
	if r.HMCInternalGBps < 10*r.DDRRandomGBps {
		t.Errorf("HMC internal bandwidth (%v) not >> DDR (%v)", r.HMCInternalGBps, r.DDRRandomGBps)
	}
}

func TestOptionsSeedStability(t *testing.T) {
	// Conclusions survive a different workload seed.
	a := Fig14(ctx, Options{Quick: true, Seed: 0})
	b := Fig14(ctx, Options{Quick: true, Seed: 12345})
	for _, banks := range []int{2, 4} {
		ra, rb := a.Average(banks), b.Average(banks)
		if ra/rb > 1.2 || rb/ra > 1.2 {
			t.Errorf("%d banks: seed changed outstanding estimate %v -> %v", banks, ra, rb)
		}
	}
}

func TestCombinations4(t *testing.T) {
	combos := Combinations4()
	if len(combos) != 1820 {
		t.Fatalf("C(16,4) = %d, want 1820", len(combos))
	}
	seen := map[[4]int]bool{}
	for _, c := range combos {
		if !(c[0] < c[1] && c[1] < c[2] && c[2] < c[3]) {
			t.Fatalf("combo %v not strictly increasing", c)
		}
		if seen[c] {
			t.Fatalf("duplicate combo %v", c)
		}
		seen[c] = true
	}
}

func TestResultStringers(t *testing.T) {
	// All result types print non-empty, labeled tables.
	if s := Fig14(ctx, quick).String(); !strings.Contains(s, "Figure 14") {
		t.Error("Fig14 string unlabeled")
	}
	if s := Fig7(ctx, quick).String(); !strings.Contains(s, "Figure 7") {
		t.Error("Fig7 string unlabeled")
	}
	if s := PeakBandwidth().String(); !strings.Contains(s, "60.00GB/s") {
		t.Error("Eq1 string missing value")
	}
}
