package exp

import (
	"context"
	"fmt"

	"hmcsim"
	"hmcsim/internal/addr"
	"hmcsim/internal/host"
	"hmcsim/internal/stats"
)

// VaultComboResult holds the four-vault combination study behind Figures
// 10, 11 and 12: for every combination of four distinct vaults, four
// stream ports each hammer one vault; the average latency of the run is
// attributed to every vault in the combination.
type VaultComboResult struct {
	// SamplesByVault[size][vault] lists the attributed combo-average
	// latencies (ns).
	SamplesByVault map[int][][]float64
	Combos         int
}

// Combinations4 enumerates all C(16,4) = 1820 four-vault combinations in
// lexicographic order.
func Combinations4() [][4]int {
	var out [][4]int
	for a := 0; a < addr.Vaults; a++ {
		for b := a + 1; b < addr.Vaults; b++ {
			for c := b + 1; c < addr.Vaults; c++ {
				for d := c + 1; d < addr.Vaults; d++ {
					out = append(out, [4]int{a, b, c, d})
				}
			}
		}
	}
	return out
}

// Fig10 runs the combination study. Quick mode subsamples the 1820
// combinations to keep bench times reasonable; the CLI runs the full set.
func Fig10(ctx context.Context, o Options) VaultComboResult {
	combos := Combinations4()
	stride := 1
	if o.Quick {
		stride = 16 // 114 combos
	}
	n := 256
	if o.Quick {
		n = 128
	}
	res := VaultComboResult{SamplesByVault: map[int][][]float64{}}
	// One shared system per size replays every combination; the sizes
	// are independent systems and fan out across workers.
	type sizeRun struct {
		perVault [][]float64
		combos   int
	}
	perSize := hmcsim.Sweep(ctx, o.SweepWorkers(), len(Sizes), func(si int) sizeRun {
		size := Sizes[si]
		run := sizeRun{perVault: make([][]float64, addr.Vaults)}
		sys := o.NewSystemCtx(ctx)
		for ci := 0; ci < len(combos); ci += stride {
			combo := combos[ci]
			// Every port spreads its reads over the whole four-vault
			// region ("accesses to four vaults, targeting 1 GB in
			// total"), so ports interleave at the vaults and the NoC.
			traces := make([][]host.Request, 4)
			for i := range traces {
				traces[i] = sys.RandomTraceVaults(n, size, combo[:],
					o.Seed+uint64(ci*7+i))
			}
			ports := sys.PlayStreams(traces)
			var agg float64
			var reads uint64
			for _, p := range ports {
				agg += p.Mon.AggLat.Nanoseconds()
				reads += p.Mon.Reads
			}
			avg := agg / float64(reads)
			for _, v := range combo {
				run.perVault[v] = append(run.perVault[v], avg)
			}
			run.combos++
		}
		return run
	})
	for si, size := range Sizes {
		res.SamplesByVault[size] = perSize[si].perVault
	}
	res.Combos = perSize[0].combos
	return res
}

// Stats returns the mean and standard deviation of all attributed
// latencies for one size — the bars of Figure 11.
func (r VaultComboResult) Stats(size int) (mean, sigma float64) {
	var s stats.Stream
	for _, vs := range r.SamplesByVault[size] {
		for _, x := range vs {
			s.Add(x)
		}
	}
	return s.Mean(), s.StdDev()
}

// Range returns the spread (max-min) of attributed latencies for a size,
// the "range of latency variations" quoted in Section IV-D.
func (r VaultComboResult) Range(size int) float64 {
	var s stats.Stream
	for _, vs := range r.SamplesByVault[size] {
		for _, x := range vs {
			s.Add(x)
		}
	}
	return s.Max() - s.Min()
}

// VaultHistograms builds the per-vault latency histograms of Figure 10
// for one size: one histogram per vault over nine bins spanning the
// observed range.
func (r VaultComboResult) VaultHistograms(size int) []*stats.Histogram {
	var all stats.Stream
	for _, vs := range r.SamplesByVault[size] {
		for _, x := range vs {
			all.Add(x)
		}
	}
	lo, hi := all.Min(), all.Max()
	if hi <= lo {
		hi = lo + 1
	}
	hists := make([]*stats.Histogram, addr.Vaults)
	for v := range hists {
		hists[v] = stats.NewHistogram(lo, hi, 9)
		for _, x := range r.SamplesByVault[size][v] {
			hists[v].Add(x)
		}
	}
	return hists
}

// Heatmap renders Figure 10 for one size: rows are vaults, columns are
// latency intervals, intensity is the per-vault normalized count.
func (r VaultComboResult) Heatmap(size int) stats.Heatmap {
	hists := r.VaultHistograms(size)
	m := stats.Heatmap{RowLabel: "vault", ColLabel: "latency (ns)"}
	for i := 0; i < 9; i++ {
		m.ColNames = append(m.ColNames, fmt.Sprintf("%5.0f", hists[0].BinCenter(i)))
	}
	for v, h := range hists {
		m.RowNames = append(m.RowNames, fmt.Sprintf("%d", v))
		m.Intensity = append(m.Intensity, h.Normalized())
	}
	return m
}

// TransposeHeatmap renders Figure 12 for one size: rows are latency
// intervals, columns are vaults, each row normalized by its own maximum
// (as the paper does).
func (r VaultComboResult) TransposeHeatmap(size int) stats.Heatmap {
	hists := r.VaultHistograms(size)
	m := stats.Heatmap{RowLabel: "lat (ns)", ColLabel: "vault"}
	for v := range hists {
		m.ColNames = append(m.ColNames, fmt.Sprintf("%2d", v))
	}
	for bin := 0; bin < 9; bin++ {
		m.RowNames = append(m.RowNames, fmt.Sprintf("%.0f", hists[0].BinCenter(bin)))
		row := make([]float64, len(hists))
		var max float64
		for v, h := range hists {
			row[v] = float64(h.Bins()[bin])
			if row[v] > max {
				max = row[v]
			}
		}
		if max > 0 {
			for v := range row {
				row[v] /= max
			}
		}
		m.Intensity = append(m.Intensity, row)
	}
	return m
}

func (r VaultComboResult) String() string {
	out := fmt.Sprintf("Figures 10-12: %d four-vault combinations per size\n", r.Combos)
	t := table{header: []string{"Size", "Mean (ns)", "StdDev (ns)", "Range (ns)"}}
	for _, size := range Sizes {
		mean, sigma := r.Stats(size)
		t.addRow(fmt.Sprintf("%dB", size),
			fmt.Sprintf("%.0f", mean),
			fmt.Sprintf("%.1f", sigma),
			fmt.Sprintf("%.0f", r.Range(size)))
	}
	out += "Figure 11: average and standard deviation across vaults\n" + t.String()
	for _, size := range Sizes {
		out += fmt.Sprintf("\nFigure 10 heatmap, %dB (rows=vaults, cols=latency bins):\n%s",
			size, r.Heatmap(size).Render())
	}
	for _, size := range Sizes {
		out += fmt.Sprintf("\nFigure 12 heatmap, %dB (rows=latency bins, cols=vaults):\n%s",
			size, r.TransposeHeatmap(size).Render())
	}
	return out
}

// Result converts to the structured form: per-size summary statistics
// plus the vault-position correlation, the paper's headline claim.
func (r VaultComboResult) Result() hmcsim.Result {
	mean := hmcsim.Series{Name: "mean-latency", Unit: "ns"}
	sigma := hmcsim.Series{Name: "stddev-latency", Unit: "ns"}
	span := hmcsim.Series{Name: "range-latency", Unit: "ns"}
	corr := hmcsim.Series{Name: "vault-position-correlation", Unit: "pearson"}
	for _, size := range Sizes {
		m, s := r.Stats(size)
		x := float64(size)
		mean.Points = append(mean.Points, hmcsim.Point{X: x, Y: m})
		sigma.Points = append(sigma.Points, hmcsim.Point{X: x, Y: s})
		span.Points = append(span.Points, hmcsim.Point{X: x, Y: r.Range(size)})
		corr.Points = append(corr.Points, hmcsim.Point{X: x, Y: r.Correlation(size)})
	}
	return hmcsim.Result{Series: []hmcsim.Series{mean, sigma, span, corr}, Text: r.String()}
}
