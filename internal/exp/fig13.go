package exp

import (
	"context"
	"fmt"

	"hmcsim"
	"hmcsim/internal/core"
)

// Fig13Point is one (size, pattern, ports) point: bi-directional counted
// bandwidth as the number of active GUPS ports scales.
type Fig13Point struct {
	Size      int
	Pattern   string
	Ports     int
	GBps      float64
	AvgLatNs  float64
	AvgHMCNs  float64
	ReadRate  float64
	HMCOutst  float64
	Saturated bool // filled by the analysis pass
}

// Fig13Result holds the sweep.
type Fig13Result struct {
	Points []Fig13Point
}

// Fig13 reproduces the bandwidth-vs-active-ports sweep of Figure 13: the
// number of active ports is the proxy for requested bandwidth; sloped
// series are bottleneck-free, flat ones have hit a structural limit.
func Fig13(ctx context.Context, o Options) Fig13Result {
	ports := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if o.Quick {
		ports = []int{1, 3, 5, 7, 9}
	}
	type job struct {
		size int
		ps   PatternSpec
		np   int
	}
	var jobs []job
	for _, size := range Sizes {
		for _, ps := range Patterns {
			for _, np := range ports {
				jobs = append(jobs, job{size, ps, np})
			}
		}
	}
	points := hmcsim.Sweep(ctx, o.SweepWorkers(), len(jobs), func(i int) Fig13Point {
		j := jobs[i]
		sys := o.NewSystemCtx(ctx)
		r := sys.RunGUPS(core.GUPSSpec{
			Ports:   j.np,
			Size:    j.size,
			Pattern: j.ps.Build(sys),
			Warmup:  o.Warmup(),
			Window:  o.Window(),
		})
		return Fig13Point{
			Size:     j.size,
			Pattern:  j.ps.Name,
			Ports:    j.np,
			GBps:     r.Bandwidth.GBpsValue(),
			AvgLatNs: r.AvgLat.Nanoseconds(),
			AvgHMCNs: r.AvgHMCLat.Nanoseconds(),
			ReadRate: r.ReadRate(),
			HMCOutst: r.HMCOutstanding,
		}
	})
	res := Fig13Result{Points: points}
	res.markSaturation()
	return res
}

// markSaturation flags points whose bandwidth is within 5% of the
// series' maximum — the flat region of each curve.
func (r *Fig13Result) markSaturation() {
	maxOf := map[string]float64{}
	key := func(p Fig13Point) string { return fmt.Sprintf("%d/%s", p.Size, p.Pattern) }
	for _, p := range r.Points {
		if p.GBps > maxOf[key(p)] {
			maxOf[key(p)] = p.GBps
		}
	}
	for i := range r.Points {
		r.Points[i].Saturated = r.Points[i].GBps >= 0.95*maxOf[key(r.Points[i])]
	}
}

// Series returns (ports, GB/s) for one size and pattern.
func (r Fig13Result) Series(size int, pattern string) (ports []float64, gbps []float64) {
	for _, p := range r.Points {
		if p.Size == size && p.Pattern == pattern {
			ports = append(ports, float64(p.Ports))
			gbps = append(gbps, p.GBps)
		}
	}
	return ports, gbps
}

// SaturatedPoint returns the highest-port point of a series, which in
// every pattern of the paper is in the saturated region at nine ports.
func (r Fig13Result) SaturatedPoint(size int, pattern string) (Fig13Point, bool) {
	var best Fig13Point
	found := false
	for _, p := range r.Points {
		if p.Size == size && p.Pattern == pattern && (!found || p.Ports > best.Ports) {
			best = p
			found = true
		}
	}
	return best, found
}

func (r Fig13Result) String() string {
	out := ""
	for _, size := range Sizes {
		t := table{header: []string{"Pattern \\ Ports"}}
		seen := map[int]bool{}
		for _, p := range r.Points {
			if p.Size == size && !seen[p.Ports] {
				seen[p.Ports] = true
				t.header = append(t.header, fmt.Sprintf("%d", p.Ports))
			}
		}
		for _, ps := range Patterns {
			row := []string{ps.Name}
			for _, p := range r.Points {
				if p.Size == size && p.Pattern == ps.Name {
					cell := fmt.Sprintf("%.1f", p.GBps)
					if p.Saturated {
						cell += "*"
					}
					row = append(row, cell)
				}
			}
			t.addRow(row...)
		}
		out += fmt.Sprintf("Figure 13 (%dB): bandwidth (GB/s) vs active ports (* = saturated)\n%s\n", size, t.String())
	}
	return out
}

// Result converts to the structured form: one bandwidth series with
// points labeled "pattern/sizeB" and X = active ports, plus matching
// latency and occupancy series.
func (r Fig13Result) Result() hmcsim.Result {
	bw := hmcsim.Series{Name: "bandwidth", Unit: "GB/s"}
	lat := hmcsim.Series{Name: "avg-latency", Unit: "ns"}
	outst := hmcsim.Series{Name: "hmc-outstanding", Unit: "transactions"}
	for _, p := range r.Points {
		label := fmt.Sprintf("%s/%dB", p.Pattern, p.Size)
		x := float64(p.Ports)
		bw.Points = append(bw.Points, hmcsim.Point{Label: label, X: x, Y: p.GBps})
		lat.Points = append(lat.Points, hmcsim.Point{Label: label, X: x, Y: p.AvgLatNs})
		outst.Points = append(outst.Points, hmcsim.Point{Label: label, X: x, Y: p.HMCOutst})
	}
	return hmcsim.Result{Series: []hmcsim.Series{bw, lat, outst}, Text: r.String()}
}
