package exp

import (
	"context"
	"fmt"

	"hmcsim"
	"hmcsim/internal/core"
	"hmcsim/internal/stats"
)

// Fig14Point is one bar of Figure 14: the estimated number of
// outstanding requests inside the cube for a bank-limited pattern at
// saturation.
type Fig14Point struct {
	Banks int
	Size  int
	// LittleN is the paper's estimate: measured request rate times the
	// time a request spends inside the memory (Little's law).
	LittleN float64
	// SampledN is the simulator's ground truth: the time-averaged
	// in-flight count inside the cube.
	SampledN float64
}

// Fig14Result holds the bars plus the per-bank averages.
type Fig14Result struct {
	Points []Fig14Point
}

// Fig14 reproduces the Little's-law analysis of Section IV-F: saturate
// the two- and four-bank patterns with all nine ports, estimate the
// outstanding requests, and observe the roughly linear growth with bank
// count that implies a queue per bank in the vault controller.
func Fig14(ctx context.Context, o Options) Fig14Result {
	points := hmcsim.Sweep2(ctx, o.SweepWorkers(), []int{2, 4}, Sizes, func(banks, size int) Fig14Point {
		sys := o.NewSystemCtx(ctx)
		pat := sys.Banks(banks)
		r := sys.RunGUPS(core.GUPSSpec{
			Ports:   9,
			Size:    size,
			Pattern: pat,
			Warmup:  o.Warmup() * 2, // bank queues take longer to fill
			Window:  o.Window(),
		})
		return Fig14Point{
			Banks:    banks,
			Size:     size,
			LittleN:  stats.Little(r.ReadRate(), r.AvgHMCLat.Seconds()),
			SampledN: r.HMCOutstanding,
		}
	})
	return Fig14Result{Points: points}
}

// Average returns the mean LittleN across sizes for a bank count, the
// "288 for two banks and 535 for four banks, in average" figure.
func (r Fig14Result) Average(banks int) float64 {
	var sum float64
	var n int
	for _, p := range r.Points {
		if p.Banks == banks {
			sum += p.LittleN
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (r Fig14Result) String() string {
	t := table{header: []string{"Size", "2 banks (Little)", "2 banks (sampled)", "4 banks (Little)", "4 banks (sampled)"}}
	bySize := map[int][4]float64{}
	for _, p := range r.Points {
		e := bySize[p.Size]
		if p.Banks == 2 {
			e[0], e[1] = p.LittleN, p.SampledN
		} else {
			e[2], e[3] = p.LittleN, p.SampledN
		}
		bySize[p.Size] = e
	}
	for _, size := range sortedKeys(bySize) {
		e := bySize[size]
		t.addRow(fmt.Sprintf("%dB", size),
			fmt.Sprintf("%.0f", e[0]), fmt.Sprintf("%.0f", e[1]),
			fmt.Sprintf("%.0f", e[2]), fmt.Sprintf("%.0f", e[3]))
	}
	return fmt.Sprintf(
		"Figure 14: estimated outstanding requests (avg: 2 banks=%.0f, 4 banks=%.0f)\n%s",
		r.Average(2), r.Average(4), t.String())
}

// Result converts to the structured form: the Little's-law estimate and
// the simulator's sampled ground truth, labeled by bank count with
// X = request size.
func (r Fig14Result) Result() hmcsim.Result {
	little := hmcsim.Series{Name: "little-outstanding", Unit: "transactions"}
	sampled := hmcsim.Series{Name: "sampled-outstanding", Unit: "transactions"}
	for _, p := range r.Points {
		label := fmt.Sprintf("%dbanks", p.Banks)
		little.Points = append(little.Points, hmcsim.Point{Label: label, X: float64(p.Size), Y: p.LittleN})
		sampled.Points = append(sampled.Points, hmcsim.Point{Label: label, X: float64(p.Size), Y: p.SampledN})
	}
	return hmcsim.Result{Series: []hmcsim.Series{little, sampled}, Text: r.String()}
}
