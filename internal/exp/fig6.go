package exp

import (
	"context"
	"fmt"

	"hmcsim"
	"hmcsim/internal/core"
)

// Fig6Point is one (pattern, size) point of Figure 6: the latency/
// bandwidth position of read-only GUPS traffic from all nine ports.
type Fig6Point struct {
	Pattern   string
	Size      int
	GBps      float64
	AvgLatNs  float64
	MinLatNs  float64
	MaxLatNs  float64
	ReadsPerS float64
}

// Fig6Result holds the full sweep.
type Fig6Result struct {
	Points []Fig6Point
}

// Fig6 sweeps every access pattern and request size with nine GUPS ports
// issuing read-only random traffic, reproducing the latency-vs-bandwidth
// scatter of Figure 6. Each (size, pattern) cell is an independent
// system, so the sweep fans out across workers.
func Fig6(ctx context.Context, o Options) Fig6Result {
	points := hmcsim.Sweep2(ctx, o.SweepWorkers(), Sizes, Patterns, func(size int, ps PatternSpec) Fig6Point {
		sys := o.NewSystemCtx(ctx)
		r := sys.RunGUPS(core.GUPSSpec{
			Ports:   9,
			Size:    size,
			Pattern: ps.Build(sys),
			Warmup:  o.Warmup(),
			Window:  o.Window(),
		})
		return Fig6Point{
			Pattern:   ps.Name,
			Size:      size,
			GBps:      r.Bandwidth.GBpsValue(),
			AvgLatNs:  r.AvgLat.Nanoseconds(),
			MinLatNs:  r.MinLat.Nanoseconds(),
			MaxLatNs:  r.MaxLat.Nanoseconds(),
			ReadsPerS: r.ReadRate(),
		}
	})
	return Fig6Result{Points: points}
}

// Point returns the entry for a pattern/size pair.
func (r Fig6Result) Point(pattern string, size int) (Fig6Point, bool) {
	for _, p := range r.Points {
		if p.Pattern == pattern && p.Size == size {
			return p, true
		}
	}
	return Fig6Point{}, false
}

func (r Fig6Result) String() string {
	t := table{header: []string{"Pattern", "Size", "BW (GB/s)", "Avg lat (ns)", "Max lat (ns)"}}
	for _, p := range r.Points {
		t.addRow(p.Pattern,
			fmt.Sprintf("%dB", p.Size),
			fmt.Sprintf("%.2f", p.GBps),
			fmt.Sprintf("%.0f", p.AvgLatNs),
			fmt.Sprintf("%.0f", p.MaxLatNs))
	}
	return "Figure 6: read latency vs bi-directional bandwidth per access pattern\n" + t.String()
}

// Result converts to the structured form: one series per metric, points
// labeled by pattern with X = request size.
func (r Fig6Result) Result() hmcsim.Result {
	bw := hmcsim.Series{Name: "bandwidth", Unit: "GB/s"}
	avg := hmcsim.Series{Name: "avg-latency", Unit: "ns"}
	max := hmcsim.Series{Name: "max-latency", Unit: "ns"}
	for _, p := range r.Points {
		x := float64(p.Size)
		bw.Points = append(bw.Points, hmcsim.Point{Label: p.Pattern, X: x, Y: p.GBps})
		avg.Points = append(avg.Points, hmcsim.Point{Label: p.Pattern, X: x, Y: p.AvgLatNs})
		max.Points = append(max.Points, hmcsim.Point{Label: p.Pattern, X: x, Y: p.MaxLatNs})
	}
	return hmcsim.Result{Series: []hmcsim.Series{bw, avg, max}, Text: r.String()}
}
