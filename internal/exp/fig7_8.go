package exp

import (
	"context"
	"fmt"

	"hmcsim"
	"hmcsim/internal/addr"
	"hmcsim/internal/host"
)

// LowLoadPoint is one (size, n) point of the low-contention latency
// curves: the average latency of a stream of n random reads confined to
// the sixteen banks of one vault, averaged over all vaults (Section
// IV-B).
type LowLoadPoint struct {
	Size     int
	N        int
	AvgLatNs float64
	MaxLatNs float64
}

// LowLoadResult holds one curve family (Figure 7 or Figure 8).
type LowLoadResult struct {
	Figure string
	Points []LowLoadPoint
}

// Fig7 reproduces Figure 7: stream lengths one to 55.
func Fig7(ctx context.Context, o Options) LowLoadResult {
	ns := make([]int, 0, 55)
	step := 1
	if o.Quick {
		step = 6
	}
	for n := 1; n <= 55; n += step {
		ns = append(ns, n)
	}
	return lowLoad(ctx, o, "Figure 7", ns)
}

// Fig8 reproduces Figure 8: stream lengths one to 350, showing the
// linear region and the saturated plateau.
func Fig8(ctx context.Context, o Options) LowLoadResult {
	step := 10
	if o.Quick {
		step = 35
	}
	ns := []int{1}
	for n := step; n <= 350; n += step {
		ns = append(ns, n)
	}
	return lowLoad(ctx, o, "Figure 8", ns)
}

func lowLoad(ctx context.Context, o Options, figure string, ns []int) LowLoadResult {
	res := LowLoadResult{Figure: figure}
	vaults := addr.Vaults
	if o.Quick {
		vaults = 4
	}
	// One system per size; bursts replay back-to-back on one port, each
	// fully draining before the next starts, as the multi-port stream
	// software does. Sizes are independent systems, so they fan out.
	perSize := hmcsim.Sweep(ctx, o.SweepWorkers(), len(Sizes), func(si int) []LowLoadPoint {
		size := Sizes[si]
		sys := o.NewSystemCtx(ctx)
		points := make([]LowLoadPoint, 0, len(ns))
		for _, n := range ns {
			var agg, max float64
			for v := 0; v < vaults; v++ {
				trace := sys.RandomTrace(n, size, sys.SingleVault(v),
					o.Seed+uint64(1000*n+v))
				ports := sys.PlayStreams([][]host.Request{trace})
				agg += ports[0].Mon.AvgLat().Nanoseconds()
				if m := ports[0].Mon.MaxLat.Nanoseconds(); m > max {
					max = m
				}
			}
			points = append(points, LowLoadPoint{
				Size:     size,
				N:        n,
				AvgLatNs: agg / float64(vaults),
				MaxLatNs: max,
			})
		}
		return points
	})
	for _, pts := range perSize {
		res.Points = append(res.Points, pts...)
	}
	return res
}

// Point returns the entry for a size/n pair.
func (r LowLoadResult) Point(size, n int) (LowLoadPoint, bool) {
	for _, p := range r.Points {
		if p.Size == size && p.N == n {
			return p, true
		}
	}
	return LowLoadPoint{}, false
}

// Curve returns the (n, avg latency) series for one size.
func (r LowLoadResult) Curve(size int) (ns []float64, lat []float64) {
	for _, p := range r.Points {
		if p.Size == size {
			ns = append(ns, float64(p.N))
			lat = append(lat, p.AvgLatNs)
		}
	}
	return ns, lat
}

func (r LowLoadResult) String() string {
	t := table{header: []string{"#Requests", "16B (ns)", "32B (ns)", "64B (ns)", "128B (ns)"}}
	byN := map[int][4]float64{}
	for _, p := range r.Points {
		e := byN[p.N]
		for i, s := range Sizes {
			if p.Size == s {
				e[i] = p.AvgLatNs
			}
		}
		byN[p.N] = e
	}
	for _, n := range sortedKeys(byN) {
		e := byN[n]
		t.addRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", e[0]), fmt.Sprintf("%.0f", e[1]),
			fmt.Sprintf("%.0f", e[2]), fmt.Sprintf("%.0f", e[3]))
	}
	return r.Figure + ": average low-load latency vs stream length\n" + t.String()
}

// Result converts to the structured form: latency series with points
// labeled by request size and X = stream length.
func (r LowLoadResult) Result() hmcsim.Result {
	avg := hmcsim.Series{Name: "avg-latency", Unit: "ns"}
	max := hmcsim.Series{Name: "max-latency", Unit: "ns"}
	for _, p := range r.Points {
		label := fmt.Sprintf("%dB", p.Size)
		avg.Points = append(avg.Points, hmcsim.Point{Label: label, X: float64(p.N), Y: p.AvgLatNs})
		max.Points = append(max.Points, hmcsim.Point{Label: label, X: float64(p.N), Y: p.MaxLatNs})
	}
	return hmcsim.Result{Series: []hmcsim.Series{avg, max}, Text: r.String()}
}
