package exp

import (
	"context"
	"fmt"

	"hmcsim"
	"hmcsim/internal/addr"
	"hmcsim/internal/host"
)

// Fig9Point is one bar of Figure 9: the maximum latency observed across
// four stream ports when three of them are pinned to one vault and the
// fourth targets SweepVault.
type Fig9Point struct {
	PinnedVault int
	SweepVault  int
	Size        int
	MaxLatNs    float64
	AvgLatNs    float64
}

// Fig9Result holds both series (pinned vault 1 and pinned vault 5).
type Fig9Result struct {
	Points []Fig9Point
}

// Fig9 reproduces the QoS case study of Section IV-C: four stream ports
// generate reads, three always to the pinned vault, the fourth sweeping
// every vault. When the fourth collides with the pinned vault the
// maximum latency jumps; elsewhere it varies with NoC position and
// traffic interleaving.
func Fig9(ctx context.Context, o Options) Fig9Result {
	n := 600
	if o.Quick {
		n = 200
	}
	sweep := addr.Vaults
	pinnedVaults := []int{1, 5}
	// Each (pinned, size) pair replays its sixteen sweep positions on
	// one shared system; the pairs themselves are independent.
	perJob := hmcsim.Sweep2(ctx, o.SweepWorkers(), pinnedVaults, Sizes, func(pinned, size int) []Fig9Point {
		sys := o.NewSystemCtx(ctx)
		points := make([]Fig9Point, 0, sweep)
		for sv := 0; sv < sweep; sv++ {
			traces := make([][]host.Request, 4)
			for i := 0; i < 3; i++ {
				traces[i] = sys.RandomTrace(n, size, sys.SingleVault(pinned),
					o.Seed+uint64(i*37+sv))
			}
			traces[3] = sys.RandomTrace(n, size, sys.SingleVault(sv),
				o.Seed+uint64(991+sv))
			ports := sys.PlayStreams(traces)
			var max, agg float64
			var reads uint64
			for _, p := range ports {
				if m := p.Mon.MaxLat.Nanoseconds(); m > max {
					max = m
				}
				agg += p.Mon.AggLat.Nanoseconds()
				reads += p.Mon.Reads
			}
			points = append(points, Fig9Point{
				PinnedVault: pinned,
				SweepVault:  sv,
				Size:        size,
				MaxLatNs:    max,
				AvgLatNs:    agg / float64(reads),
			})
		}
		return points
	})
	var res Fig9Result
	for _, pts := range perJob {
		res.Points = append(res.Points, pts...)
	}
	return res
}

// Series returns max-latency bars indexed by sweep vault for one pinned
// vault and size.
func (r Fig9Result) Series(pinned, size int) []float64 {
	out := make([]float64, addr.Vaults)
	for _, p := range r.Points {
		if p.PinnedVault == pinned && p.Size == size {
			out[p.SweepVault] = p.MaxLatNs
		}
	}
	return out
}

// CollisionPenalty returns maxLat(sweep==pinned) divided by the mean of
// maxLat over non-colliding sweep vaults, the "up to 40%" headline.
func (r Fig9Result) CollisionPenalty(pinned, size int) float64 {
	series := r.Series(pinned, size)
	var others float64
	var collide float64
	for v, m := range series {
		if v == pinned {
			collide = m
		} else {
			others += m
		}
	}
	mean := others / float64(len(series)-1)
	if mean == 0 {
		return 0
	}
	return collide / mean
}

func (r Fig9Result) String() string {
	var out string
	for _, pinned := range []int{1, 5} {
		t := table{header: []string{"Sweep vault", "16B (ns)", "32B (ns)", "64B (ns)", "128B (ns)"}}
		for v := 0; v < addr.Vaults; v++ {
			row := []string{fmt.Sprintf("%d", v)}
			for _, size := range Sizes {
				for _, p := range r.Points {
					if p.PinnedVault == pinned && p.SweepVault == v && p.Size == size {
						mark := ""
						if v == pinned {
							mark = "*"
						}
						row = append(row, fmt.Sprintf("%.0f%s", p.MaxLatNs, mark))
					}
				}
			}
			t.addRow(row...)
		}
		out += fmt.Sprintf("Figure 9: maximum latency, 3 ports pinned to vault %d (* = collision)\n%s\n", pinned, t.String())
	}
	return out
}

// Result converts to the structured form: max-latency series with
// points labeled "pinnedN/sizeB" and X = sweep vault, plus the derived
// collision penalties.
func (r Fig9Result) Result() hmcsim.Result {
	max := hmcsim.Series{Name: "max-latency", Unit: "ns"}
	for _, p := range r.Points {
		max.Points = append(max.Points, hmcsim.Point{
			Label: fmt.Sprintf("pinned%d/%dB", p.PinnedVault, p.Size),
			X:     float64(p.SweepVault),
			Y:     p.MaxLatNs,
		})
	}
	pen := hmcsim.Series{Name: "collision-penalty", Unit: "x"}
	for _, pinned := range []int{1, 5} {
		for _, size := range Sizes {
			pen.Points = append(pen.Points, hmcsim.Point{
				Label: fmt.Sprintf("pinned%d", pinned),
				X:     float64(size),
				Y:     r.CollisionPenalty(pinned, size),
			})
		}
	}
	return hmcsim.Result{Series: []hmcsim.Series{max, pen}, Text: r.String()}
}
