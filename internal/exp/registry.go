package exp

import (
	"context"
	"fmt"

	"hmcsim"
)

// Meta describes a registered experiment for listings and result
// titles.
type Meta struct {
	// Title is the human headline, e.g. "Figure 6: read latency vs
	// bandwidth per access pattern".
	Title string
}

// entry implements hmcsim.Runner for one registered experiment.
type entry struct {
	name string
	meta Meta
	fn   func(context.Context, Options) hmcsim.Result
}

func (e entry) Name() string     { return e.name }
func (e entry) Describe() string { return e.meta.Title }

// Run executes the experiment and stamps the registry metadata and the
// options onto the result. Cancelling ctx aborts between sweep points;
// the partial result must then be discarded.
func (e entry) Run(ctx context.Context, o Options) hmcsim.Result {
	res := e.fn(ctx, o)
	res.Name = e.name
	res.Title = e.meta.Title
	res.Options = o
	return res
}

var (
	registry []entry
	byName   = map[string]int{}
)

// Register adds a named experiment. Names must be unique; registration
// order is the presentation order of `-exp all`.
func Register(name string, meta Meta, fn func(context.Context, Options) hmcsim.Result) {
	if _, dup := byName[name]; dup {
		panic(fmt.Sprintf("exp: duplicate runner %q", name))
	}
	byName[name] = len(registry)
	registry = append(registry, entry{name: name, meta: meta, fn: fn})
}

// Runners returns every registered experiment in registration order.
func Runners() []hmcsim.Runner {
	out := make([]hmcsim.Runner, len(registry))
	for i, e := range registry {
		out[i] = e
	}
	return out
}

// Names returns the registered names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Runner looks one registered experiment up by name without running
// it, so callers can validate a whole selection before starting work.
func Runner(name string) (hmcsim.Runner, error) {
	i, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", name, Names())
	}
	return registry[i], nil
}

// Run executes one registered experiment by name.
func Run(ctx context.Context, name string, o Options) (hmcsim.Result, error) {
	r, err := Runner(name)
	if err != nil {
		return hmcsim.Result{}, err
	}
	return r.Run(ctx, o), nil
}

// The paper's tables and figures, in presentation order. Each closure
// defers to the typed runner and converts to the structured result, so
// the typed APIs (Fig6, TableI, ...) remain available to tests that
// assert on curve shapes.
func init() {
	Register("table1", Meta{Title: "Table I: HMC request/response read/write sizes"},
		func(ctx context.Context, o Options) hmcsim.Result { return TableI().Result() })
	Register("eq1", Meta{Title: "Equation 1: peak bi-directional link bandwidth"},
		func(ctx context.Context, o Options) hmcsim.Result { return PeakBandwidth().Result() })
	Register("fig6", Meta{Title: "Figure 6: read latency vs bi-directional bandwidth per access pattern"},
		func(ctx context.Context, o Options) hmcsim.Result { return Fig6(ctx, o).Result() })
	Register("fig7", Meta{Title: "Figure 7: low-load latency vs stream length (1-55)"},
		func(ctx context.Context, o Options) hmcsim.Result { return Fig7(ctx, o).Result() })
	Register("fig8", Meta{Title: "Figure 8: low-load latency vs stream length (1-350)"},
		func(ctx context.Context, o Options) hmcsim.Result { return Fig8(ctx, o).Result() })
	Register("fig9", Meta{Title: "Figure 9: QoS collision study, 3 pinned ports + 1 sweeping port"},
		func(ctx context.Context, o Options) hmcsim.Result { return Fig9(ctx, o).Result() })
	Register("fig10", Meta{Title: "Figures 10-12: four-vault combination latency study"},
		func(ctx context.Context, o Options) hmcsim.Result { return Fig10(ctx, o).Result() })
	Register("fig13", Meta{Title: "Figure 13: bandwidth vs active ports per access pattern"},
		func(ctx context.Context, o Options) hmcsim.Result { return Fig13(ctx, o).Result() })
	Register("fig14", Meta{Title: "Figure 14: outstanding requests via Little's law"},
		func(ctx context.Context, o Options) hmcsim.Result { return Fig14(ctx, o).Result() })
	Register("ddr", Meta{Title: "DDR3 baseline comparison (Section IV-B)"},
		func(ctx context.Context, o Options) hmcsim.Result { return DDRComparison(ctx, o).Result() })
}
