package exp

import (
	"context"
	"fmt"

	"hmcsim"
)

// Meta describes a registered experiment for listings and result
// titles.
type Meta struct {
	// Title is the human headline, e.g. "Figure 6: read latency vs
	// bandwidth per access pattern".
	Title string
}

// RunnerFunc is a registered experiment body: it returns the structured
// result, or ctx's error when the run was cancelled mid-sweep. The
// typed and plain adapters build one from the common experiment shapes
// with the cancellation check already in place.
type RunnerFunc func(context.Context, Options) (hmcsim.Result, error)

// typed adapts an experiment returning a typed result (Fig6Result,
// TableIResult, ...). The Result() conversion runs only after the
// cancellation check: a cancelled sweep leaves zero-valued slots that
// must never reach the conversion — they would serialize as real data
// points, or crash conversions that compute on them (fig10's Pearson
// correlation over empty samples, for one).
func typed[T interface{ Result() hmcsim.Result }](fn func(context.Context, Options) T) RunnerFunc {
	return func(ctx context.Context, o Options) (hmcsim.Result, error) {
		r := fn(ctx, o)
		if err := ctx.Err(); err != nil {
			return hmcsim.Result{}, err
		}
		return r.Result(), nil
	}
}

// plain adapts an experiment that already returns the structured form,
// applying the same after-sweep cancellation check as typed.
func plain(fn func(context.Context, Options) hmcsim.Result) RunnerFunc {
	return func(ctx context.Context, o Options) (hmcsim.Result, error) {
		r := fn(ctx, o)
		if err := ctx.Err(); err != nil {
			return hmcsim.Result{}, err
		}
		return r, nil
	}
}

// entry implements hmcsim.Runner for one registered experiment.
type entry struct {
	name string
	meta Meta
	fn   RunnerFunc
}

func (e entry) Name() string     { return e.name }
func (e entry) Describe() string { return e.meta.Title }

// Run executes the experiment and stamps the registry metadata and the
// options onto the result. Cancelling ctx aborts between sweep points;
// the partially-zeroed sweep output is then discarded — every
// registered experiment returns ctx's error rather than a Result whose
// unscheduled slots silently serialize as real zero-valued data points.
func (e entry) Run(ctx context.Context, o Options) (hmcsim.Result, error) {
	res, err := e.fn(ctx, o)
	if err == nil {
		err = ctx.Err() // belt and braces for hand-rolled RunnerFuncs
	}
	if err != nil {
		return hmcsim.Result{}, err
	}
	res.Name = e.name
	res.Title = e.meta.Title
	res.Options = o
	return res, nil
}

var (
	registry []entry
	byName   = map[string]int{}
)

// Register adds a named experiment. Names must be unique; registration
// order is the presentation order of `-exp all`.
func Register(name string, meta Meta, fn RunnerFunc) {
	if _, dup := byName[name]; dup {
		panic(fmt.Sprintf("exp: duplicate runner %q", name))
	}
	byName[name] = len(registry)
	registry = append(registry, entry{name: name, meta: meta, fn: fn})
}

// Runners returns every registered experiment in registration order.
func Runners() []hmcsim.Runner {
	out := make([]hmcsim.Runner, len(registry))
	for i, e := range registry {
		out[i] = e
	}
	return out
}

// Names returns the registered names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// Runner looks one registered experiment up by name without running
// it, so callers can validate a whole selection before starting work.
func Runner(name string) (hmcsim.Runner, error) {
	i, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", name, Names())
	}
	return registry[i], nil
}

// Run executes one registered experiment by name. Cancelling ctx makes
// it return the context's error instead of a partial result.
func Run(ctx context.Context, name string, o Options) (hmcsim.Result, error) {
	r, err := Runner(name)
	if err != nil {
		return hmcsim.Result{}, err
	}
	return r.Run(ctx, o)
}

// The paper's tables and figures, in presentation order. Each defers to
// the typed runner, so the typed APIs (Fig6, TableI, ...) remain
// available to tests that assert on curve shapes; the typed adapter
// holds the conversion back until the sweep is known to have completed.
func init() {
	Register("table1", Meta{Title: "Table I: HMC request/response read/write sizes"},
		typed(func(ctx context.Context, o Options) TableIResult { return TableI() }))
	Register("eq1", Meta{Title: "Equation 1: peak bi-directional link bandwidth"},
		typed(func(ctx context.Context, o Options) PeakBandwidthResult { return PeakBandwidth() }))
	Register("fig6", Meta{Title: "Figure 6: read latency vs bi-directional bandwidth per access pattern"},
		typed(Fig6))
	Register("fig7", Meta{Title: "Figure 7: low-load latency vs stream length (1-55)"},
		typed(Fig7))
	Register("fig8", Meta{Title: "Figure 8: low-load latency vs stream length (1-350)"},
		typed(Fig8))
	Register("fig9", Meta{Title: "Figure 9: QoS collision study, 3 pinned ports + 1 sweeping port"},
		typed(Fig9))
	Register("fig10", Meta{Title: "Figures 10-12: four-vault combination latency study"},
		typed(Fig10))
	Register("fig13", Meta{Title: "Figure 13: bandwidth vs active ports per access pattern"},
		typed(Fig13))
	Register("fig14", Meta{Title: "Figure 14: outstanding requests via Little's law"},
		typed(Fig14))
	Register("ddr", Meta{Title: "DDR3 baseline comparison (Section IV-B)"},
		typed(DDRComparison))
}
