package exp

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"hmcsim"
)

// TestRegistryNames pins the registered set and its presentation order.
func TestRegistryNames(t *testing.T) {
	want := []string{
		"table1", "eq1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig13", "fig14", "ddr",
		"traffic-zipf", "traffic-mix", "traffic-burst", "traffic",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d runners %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("runner %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestRunUnknown asserts experiment selection is an error, not an exit.
func TestRunUnknown(t *testing.T) {
	_, err := Run(ctx, "fig99", Options{Quick: true})
	if err == nil {
		t.Fatal("Run(fig99) succeeded, want error")
	}
	if !strings.Contains(err.Error(), "fig99") {
		t.Errorf("error %q does not name the unknown experiment", err)
	}
}

// TestRunCanceledMidSweepReturnsError is the regression test for the
// partial-result bug: a context cancelled mid-sweep used to yield a
// Result whose unscheduled sweep slots were zero values, which `-format
// json` then serialized as real data points. Every registered
// experiment now returns the context's error instead.
func TestRunCanceledMidSweepReturnsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// An entry whose sweep cancels itself partway: points 0 and 1 run,
	// the rest keep their zero values — exactly the shape a Ctrl-C
	// leaves behind.
	e := entry{name: "cancelcheck", meta: Meta{Title: "cancels itself mid-sweep"},
		fn: plain(func(ctx context.Context, o Options) hmcsim.Result {
			vals := hmcsim.Sweep(ctx, 1, 8, func(i int) float64 {
				if i == 1 {
					cancel()
				}
				return float64(i + 1)
			})
			s := hmcsim.Series{Name: "vals"}
			for i, v := range vals {
				s.Points = append(s.Points, hmcsim.Point{X: float64(i), Y: v})
			}
			return hmcsim.Result{Series: []hmcsim.Series{s}}
		})}
	res, err := e.Run(ctx, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Series) != 0 {
		t.Fatalf("partially-zeroed result returned alongside the error: %+v", res)
	}
}

// TestAllRegisteredRunnersObserveCancellation: the central check covers
// every registered experiment — a pre-cancelled context means an error,
// never a zero-filled Result.
func TestAllRegisteredRunnersObserveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, r := range Runners() {
		res, err := Run(ctx, r.Name(), Options{Quick: true, Workers: 1})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", r.Name(), err)
		}
		if len(res.Series) != 0 {
			t.Errorf("%s: cancelled run returned %d series", r.Name(), len(res.Series))
		}
	}
}

// TestAllRunnersQuick runs every registered experiment through the
// registry under quick options and checks each result is well-formed
// and JSON-marshalable — the contract `hmcsim -exp all -format json`
// relies on.
func TestAllRunnersQuick(t *testing.T) {
	o := Options{Quick: true}
	for _, r := range Runners() {
		res, err := Run(ctx, r.Name(), o)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if res.Name != r.Name() {
			t.Errorf("%s: result name %q", r.Name(), res.Name)
		}
		if res.Title != r.Describe() {
			t.Errorf("%s: result title %q != %q", r.Name(), res.Title, r.Describe())
		}
		if len(res.Series) == 0 {
			t.Errorf("%s: no series", r.Name())
		}
		for _, s := range res.Series {
			if len(s.Points) == 0 {
				t.Errorf("%s: series %q empty", r.Name(), s.Name)
			}
		}
		if res.String() == "" {
			t.Errorf("%s: empty text rendering", r.Name())
		}
		blob, err := res.JSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", r.Name(), err)
		}
		var back hmcsim.Result
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: round-trip: %v", r.Name(), err)
		}
		if back.Name != res.Name || len(back.Series) != len(res.Series) {
			t.Errorf("%s: JSON round-trip lost data", r.Name())
		}
	}
}
