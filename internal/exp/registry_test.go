package exp

import (
	"encoding/json"
	"strings"
	"testing"

	"hmcsim"
)

// TestRegistryNames pins the registered set and its presentation order.
func TestRegistryNames(t *testing.T) {
	want := []string{
		"table1", "eq1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig13", "fig14", "ddr",
		"traffic-zipf", "traffic-mix", "traffic-burst", "traffic",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d runners %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("runner %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestRunUnknown asserts experiment selection is an error, not an exit.
func TestRunUnknown(t *testing.T) {
	_, err := Run(ctx, "fig99", Options{Quick: true})
	if err == nil {
		t.Fatal("Run(fig99) succeeded, want error")
	}
	if !strings.Contains(err.Error(), "fig99") {
		t.Errorf("error %q does not name the unknown experiment", err)
	}
}

// TestAllRunnersQuick runs every registered experiment through the
// registry under quick options and checks each result is well-formed
// and JSON-marshalable — the contract `hmcsim -exp all -format json`
// relies on.
func TestAllRunnersQuick(t *testing.T) {
	o := Options{Quick: true}
	for _, r := range Runners() {
		res, err := Run(ctx, r.Name(), o)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if res.Name != r.Name() {
			t.Errorf("%s: result name %q", r.Name(), res.Name)
		}
		if res.Title != r.Describe() {
			t.Errorf("%s: result title %q != %q", r.Name(), res.Title, r.Describe())
		}
		if len(res.Series) == 0 {
			t.Errorf("%s: no series", r.Name())
		}
		for _, s := range res.Series {
			if len(s.Points) == 0 {
				t.Errorf("%s: series %q empty", r.Name(), s.Name)
			}
		}
		if res.String() == "" {
			t.Errorf("%s: empty text rendering", r.Name())
		}
		blob, err := res.JSON()
		if err != nil {
			t.Fatalf("%s: marshal: %v", r.Name(), err)
		}
		var back hmcsim.Result
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: round-trip: %v", r.Name(), err)
		}
		if back.Name != res.Name || len(back.Series) != len(res.Series) {
			t.Errorf("%s: JSON round-trip lost data", r.Name())
		}
	}
}
