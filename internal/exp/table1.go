package exp

import (
	"fmt"

	"hmcsim"
	"hmcsim/internal/packet"
	"hmcsim/internal/phys"
)

// TableIResult reproduces Table I: request/response sizes in flits for
// reads and writes at every payload size, plus the derived link
// efficiency figures quoted in Section IV-A.
type TableIResult struct {
	Rows []TableIRow
}

// TableIRow is one payload size's entry.
type TableIRow struct {
	Size                int
	ReadReq, ReadResp   int // flits
	WriteReq, WriteResp int // flits
	ReadEfficiency      float64
}

// TableI computes the table from the packet model.
func TableI() TableIResult {
	var res TableIResult
	for _, size := range Sizes {
		res.Rows = append(res.Rows, TableIRow{
			Size:           size,
			ReadReq:        packet.RequestFlits(false, size),
			ReadResp:       packet.ResponseFlits(false, size),
			WriteReq:       packet.RequestFlits(true, size),
			WriteResp:      packet.ResponseFlits(true, size),
			ReadEfficiency: packet.Efficiency(size),
		})
	}
	return res
}

func (r TableIResult) String() string {
	t := table{header: []string{"Size", "RD req", "RD resp", "WR req", "WR resp", "RD efficiency"}}
	for _, row := range r.Rows {
		t.addRow(
			fmt.Sprintf("%dB", row.Size),
			fmt.Sprintf("%d flit", row.ReadReq),
			fmt.Sprintf("%d flits", row.ReadResp),
			fmt.Sprintf("%d flits", row.WriteReq),
			fmt.Sprintf("%d flit", row.WriteResp),
			fmt.Sprintf("%.0f%%", row.ReadEfficiency*100),
		)
	}
	return "Table I: HMC request/response read/write sizes\n" + t.String()
}

// PeakBandwidthResult reproduces Equation 1.
type PeakBandwidthResult struct {
	Links    int
	Lanes    int
	LaneGbps float64
	Peak     phys.Bandwidth
}

// PeakBandwidth evaluates Equation 1 for the AC-510 configuration.
func PeakBandwidth() PeakBandwidthResult {
	return PeakBandwidthResult{
		Links:    2,
		Lanes:    8,
		LaneGbps: 15,
		Peak:     phys.PeakBidirectional(2, 8, phys.Gbps(15)),
	}
}

func (r PeakBandwidthResult) String() string {
	return fmt.Sprintf(
		"Equation 1: BWpeak = %d links x %d lanes/link x %.0f Gb/s x 2 duplex = %s",
		r.Links, r.Lanes, r.LaneGbps, r.Peak)
}

// Result converts Table I to the structured form: packet sizes in flits
// and the derived read efficiency, X = request size.
func (r TableIResult) Result() hmcsim.Result {
	mk := func(name, unit string, get func(TableIRow) float64) hmcsim.Series {
		s := hmcsim.Series{Name: name, Unit: unit}
		for _, row := range r.Rows {
			s.Points = append(s.Points, hmcsim.Point{X: float64(row.Size), Y: get(row)})
		}
		return s
	}
	return hmcsim.Result{
		Series: []hmcsim.Series{
			mk("read-req-flits", "flits", func(r TableIRow) float64 { return float64(r.ReadReq) }),
			mk("read-resp-flits", "flits", func(r TableIRow) float64 { return float64(r.ReadResp) }),
			mk("write-req-flits", "flits", func(r TableIRow) float64 { return float64(r.WriteReq) }),
			mk("write-resp-flits", "flits", func(r TableIRow) float64 { return float64(r.WriteResp) }),
			mk("read-efficiency", "fraction", func(r TableIRow) float64 { return r.ReadEfficiency }),
		},
		Text: r.String(),
	}
}

// Result converts Equation 1 to the structured form.
func (r PeakBandwidthResult) Result() hmcsim.Result {
	return hmcsim.Result{
		Series: []hmcsim.Series{{
			Name: "peak-bandwidth", Unit: "GB/s",
			Points: []hmcsim.Point{{Label: "bi-directional", X: float64(r.Links), Y: r.Peak.GBpsValue()}},
		}},
		Text: r.String(),
	}
}
