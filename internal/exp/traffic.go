package exp

import (
	"context"
	"fmt"

	"hmcsim"
)

// trafficPoint is one measured traffic configuration.
type trafficPoint struct {
	Label    string
	X        float64
	GBps     float64
	AvgLatNs float64
	MaxLatNs float64
}

// runTraffic measures one traffic workload on a fresh system.
func runTraffic(ctx context.Context, o Options, spec hmcsim.TrafficSpec, label string, x float64) trafficPoint {
	sys := o.NewSystemCtx(ctx)
	m := hmcsim.TrafficWorkload{
		Traffic: spec,
		Ports:   9,
		Size:    128,
		Warmup:  o.Warmup(),
		Window:  o.Window(),
	}.Run(sys)
	return trafficPoint{Label: label, X: x, GBps: m.GBps, AvgLatNs: m.AvgLatNs, MaxLatNs: m.MaxLatNs}
}

// trafficResult renders a slice of points as the standard two series
// (bandwidth, avg-latency) plus the text table.
func trafficResult(title, xHeader string, points []trafficPoint) hmcsim.Result {
	bw := hmcsim.Series{Name: "bandwidth", Unit: "GB/s"}
	avg := hmcsim.Series{Name: "avg-latency", Unit: "ns"}
	tab := table{header: []string{xHeader, "Traffic", "BW (GB/s)", "Avg lat (ns)", "Max lat (ns)"}}
	for _, p := range points {
		bw.Points = append(bw.Points, hmcsim.Point{Label: p.Label, X: p.X, Y: p.GBps})
		avg.Points = append(avg.Points, hmcsim.Point{Label: p.Label, X: p.X, Y: p.AvgLatNs})
		tab.addRow(
			fmt.Sprintf("%g", p.X),
			p.Label,
			fmt.Sprintf("%.2f", p.GBps),
			fmt.Sprintf("%.0f", p.AvgLatNs),
			fmt.Sprintf("%.0f", p.MaxLatNs))
	}
	return hmcsim.Result{Series: []hmcsim.Series{bw, avg}, Text: title + "\n" + tab.String()}
}

// TrafficZipfThetas is the skew sweep of the traffic-zipf experiment.
// It starts at 0.01 (an explicit near-uniform point — a literal 0 would
// compile as the 0.99 default) and runs past 1.5, where the hottest
// block alone draws a bank-saturating share of the traffic.
var TrafficZipfThetas = []float64{0.01, 0.5, 0.9, 1.2, 1.5, 1.8}

// TrafficZipf sweeps zipf skew at full port count: theta 0 is uniform
// over the working set, and as theta grows the hot ranks concentrate
// onto ever fewer blocks — and, through the cube's low-order
// interleaving, onto ever fewer banks — reproducing the pattern-mask
// latency knee of Figure 6 from a popularity distribution instead of
// an address mask.
func TrafficZipf(ctx context.Context, o Options) hmcsim.Result {
	points := hmcsim.Sweep(ctx, o.SweepWorkers(), len(TrafficZipfThetas), func(i int) trafficPoint {
		theta := TrafficZipfThetas[i]
		return runTraffic(ctx, o, hmcsim.TrafficSpec{Pattern: hmcsim.TrafficZipf, ZipfTheta: theta},
			fmt.Sprintf("zipf %.2f", theta), theta)
	})
	return trafficResult("Synthetic traffic: read latency and bandwidth vs zipf skew", "Theta", points)
}

// TrafficMixFractions is the write-fraction sweep of traffic-mix.
var TrafficMixFractions = []float64{0, 0.25, 0.5, 0.75, 1}

// TrafficMix sweeps the markov read/write mix from read-only to
// write-only uniform traffic, revisiting Section IV-F's bi-directional
// link asymmetry with a scripted mixer instead of the GUPS alternator.
func TrafficMix(ctx context.Context, o Options) hmcsim.Result {
	points := hmcsim.Sweep(ctx, o.SweepWorkers(), len(TrafficMixFractions), func(i int) trafficPoint {
		frac := TrafficMixFractions[i]
		return runTraffic(ctx, o, hmcsim.TrafficSpec{
			Pattern:       hmcsim.TrafficUniform,
			WriteFraction: frac,
			MixRunLength:  8,
		}, fmt.Sprintf("wr %.2f", frac), frac)
	})
	return trafficResult("Synthetic traffic: markov read/write mix sweep", "WriteFrac", points)
}

// TrafficBurstRates is the per-port average offered load sweep (GB/s)
// of traffic-burst.
var TrafficBurstRates = []float64{0.5, 1, 1.5, 2, 2.5}

// TrafficBurst compares steady open-loop injection against 50%-duty
// on/off bursts at the same average offered load: the burst's on-phase
// runs at twice the steady rate, so equal X positions carry equal
// offered bytes but the bursty series pays queueing latency as its
// peaks cross the controller ceiling.
func TrafficBurst(ctx context.Context, o Options) hmcsim.Result {
	points := hmcsim.Sweep2(ctx, o.SweepWorkers(), TrafficBurstRates, []bool{false, true},
		func(rate float64, burst bool) trafficPoint {
			offered := 9 * rate // aggregate across the nine ports
			if !burst {
				return runTraffic(ctx, o, hmcsim.TrafficSpec{
					Discipline: hmcsim.TrafficOpenLoop,
					RateGBps:   rate,
				}, "steady", offered)
			}
			return runTraffic(ctx, o, hmcsim.TrafficSpec{
				Discipline: hmcsim.TrafficOpenLoop,
				Phases: []hmcsim.TrafficPhase{
					{DurationUs: 10, RateGBps: 2 * rate},
					{DurationUs: 10, Off: true},
				},
			}, "burst", offered)
		})
	return trafficResult("Synthetic traffic: steady vs 50%-duty burst injection", "Offered GB/s", points)
}

// DefaultTrafficSpec is what the generic "traffic" runner executes
// when options carry no spec: the zero value, i.e. uniform random
// read-only closed-loop traffic over the whole cube.
var DefaultTrafficSpec = hmcsim.TrafficSpec{}

// Traffic runs exactly the traffic spec in options (or the default),
// making arbitrary user-composed traffic a first-class experiment:
// submittable to hmcsimd, cached under its Spec key, and sweepable by
// seed like any figure.
func Traffic(ctx context.Context, o Options) hmcsim.Result {
	spec := DefaultTrafficSpec
	if o.Traffic != nil {
		spec = *o.Traffic
	}
	p := runTraffic(ctx, o, spec, spec.Name(), 0)
	title := fmt.Sprintf("Synthetic traffic: %s, 9 ports x 128 B", spec.Name())
	return trafficResult(title, "X", []trafficPoint{p})
}

func init() {
	Register("traffic-zipf", Meta{Title: "Synthetic traffic: latency/bandwidth vs zipf skew"},
		plain(TrafficZipf))
	Register("traffic-mix", Meta{Title: "Synthetic traffic: markov read/write mix sweep"},
		plain(TrafficMix))
	Register("traffic-burst", Meta{Title: "Synthetic traffic: steady vs bursty open-loop injection"},
		plain(TrafficBurst))
	Register(hmcsim.TrafficExp, Meta{Title: "Synthetic traffic: run the spec in options.traffic"},
		plain(Traffic))
}
