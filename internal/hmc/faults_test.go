package hmc

import (
	"testing"

	"hmcsim/internal/addr"
	"hmcsim/internal/sim"
)

// TestNoisyLinksStillConserve injects CRC errors on every link direction
// and checks that retry keeps the system lossless: every transaction
// completes exactly once, just later.
func TestNoisyLinksStillConserve(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkCfg.ErrorRate = 0.05
	ha := newHarness(t, cfg)
	m := addr.MustMapping(128)
	rng := sim.NewRand(17)
	const n = 1500
	ha.eng.Schedule(0, func() {
		for i := 0; i < n; i++ {
			a := (rng.Uint64() % addr.CubeBytes) &^ 0x7F
			ha.send(makeRead(uint64(i), m, a, 16*(rng.Intn(8)+1), rng.Intn(2)))
		}
	})
	ha.eng.Drain()
	if len(ha.done) != n {
		t.Fatalf("completed %d of %d with noisy links", len(ha.done), n)
	}
	var retries uint64
	for l := 0; l < cfg.Links; l++ {
		retries += ha.h.Link(l).Req.Retries() + ha.h.Link(l).Resp.Retries()
	}
	if retries == 0 {
		t.Fatal("5% error rate produced no retries")
	}
	seen := map[uint64]bool{}
	for _, tr := range ha.done {
		if seen[tr.ID] {
			t.Fatalf("transaction %d delivered twice", tr.ID)
		}
		seen[tr.ID] = true
	}
}

// TestNoisyLinksRaiseLatency confirms retry shows up as latency, not
// loss.
func TestNoisyLinksRaiseLatency(t *testing.T) {
	run := func(errRate float64) sim.Time {
		cfg := DefaultConfig()
		cfg.LinkCfg.ErrorRate = errRate
		ha := newHarness(t, cfg)
		m := addr.MustMapping(128)
		rng := sim.NewRand(5)
		const n = 400
		ha.eng.Schedule(0, func() {
			for i := 0; i < n; i++ {
				a := (rng.Uint64() % addr.CubeBytes) &^ 0x7F
				ha.send(makeRead(uint64(i), m, a, 64, i%2))
			}
		})
		ha.eng.Drain()
		var sum sim.Time
		for _, tr := range ha.done {
			sum += tr.TDone - tr.TLinkTx
		}
		return sum / sim.Time(len(ha.done))
	}
	clean := run(0)
	noisy := run(0.2)
	if noisy <= clean {
		t.Fatalf("20%% error rate did not raise latency: %v vs %v", noisy, clean)
	}
}
