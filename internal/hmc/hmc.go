// Package hmc assembles the full Hybrid Memory Cube model: external
// serial links, the logic-layer NoC, and sixteen vault controllers with
// their DRAM banks. It is the device under study; the host-side FPGA
// model in internal/host drives it.
package hmc

import (
	"fmt"

	"hmcsim/internal/addr"
	"hmcsim/internal/link"
	"hmcsim/internal/noc"
	"hmcsim/internal/obs"
	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
	"hmcsim/internal/vault"
)

// Config describes one cube and its link attach points.
type Config struct {
	Links    int   // external links (the AC-510 uses 2)
	LinkHome []int // quadrant where each link enters the fabric
	LinkCfg  link.Config

	// ReqRxBufFlits sizes the cube-side link input buffer. It is
	// deliberately modest: when vault queues fill, back-pressure must
	// reach the host quickly so excess requests queue on the FPGA, as the
	// paper's Little's-law analysis (Figure 14) implies.
	ReqRxBufFlits int
	// RespRxBufFlits sizes the host-side response buffer (the link's
	// other direction); the host releases it as its controller drains
	// responses.
	RespRxBufFlits int

	NoC   noc.Config
	Vault vault.Config // template; ID is overwritten per vault

	// Trace, when non-nil, hands each vault, link direction and the
	// fabric a tracer from this system-level aggregate. Nil (the
	// default) builds an untraced cube.
	Trace *obs.SystemTracer
}

// DefaultConfig returns the 4 GB HMC 1.1 Gen2 configuration on an
// AC-510: two half-width 15 Gbps links entering quadrants 0 and 2.
func DefaultConfig() Config {
	return Config{
		Links:          2,
		LinkHome:       []int{0, 2},
		LinkCfg:        link.DefaultConfig(),
		ReqRxBufFlits:  12,
		RespRxBufFlits: 5184, // 576 max-size (9-flit) responses
		NoC:            noc.DefaultConfig(),
		Vault:          vault.DefaultConfig(0),
	}
}

// HMC is the assembled cube.
type HMC struct {
	eng    *sim.Engine
	cfg    Config
	links  []*link.Link
	fabric *noc.Fabric
	vaults []*vault.Vault

	deliverResp func(*packet.Packet)

	reqsIn   uint64
	respsOut uint64
}

// New builds the cube across the given engines: links and the host-
// facing glue on engs.Hub, each quadrant's routers and vaults on
// engs.Quad[q] (all the same engine in a serial build). deliverResp
// receives response packets on the host side of the links; the host
// must call ReleaseResp when it drains each packet from the link's
// receive buffer.
func New(engs noc.Engines, cfg Config, deliverResp func(*packet.Packet)) *HMC {
	if cfg.Links != len(cfg.LinkHome) {
		panic(fmt.Sprintf("hmc: %d links but %d homes", cfg.Links, len(cfg.LinkHome)))
	}
	eng := engs.Hub
	h := &HMC{
		eng:         eng,
		cfg:         cfg,
		links:       make([]*link.Link, cfg.Links),
		vaults:      make([]*vault.Vault, addr.Vaults),
		deliverResp: deliverResp,
	}

	// Tracer plumbing for quadrants on non-hub engines: each such shard
	// gets its own clock (and, with a timeline enabled, its own
	// timeline), so tracer state is never shared across engines.
	if cfg.Trace != nil {
		for q := 0; q < addr.Quadrants; q++ {
			if qe := engs.Quad[q]; qe != eng {
				qe := qe
				cfg.Trace.ShardClock(qe.Shard(), func() int64 { return int64(qe.Now()) })
			}
		}
	}

	// Links: the request direction's receive buffer is the cube's input
	// buffer; the response direction's receive buffer belongs to the
	// host.
	for l := 0; l < cfg.Links; l++ {
		l := l
		reqCfg := cfg.LinkCfg
		reqCfg.RxBufFlits = cfg.ReqRxBufFlits
		reqCfg.Seed = cfg.LinkCfg.Seed + uint64(l)*16 + 1
		respCfg := cfg.LinkCfg
		respCfg.RxBufFlits = cfg.RespRxBufFlits
		respCfg.Seed = cfg.LinkCfg.Seed + uint64(l)*16 + 2
		if cfg.Trace != nil {
			reqCfg.Trace = cfg.Trace.Link(fmt.Sprintf("link%d.req", l))
			respCfg.Trace = cfg.Trace.Link(fmt.Sprintf("link%d.resp", l))
		}
		h.links[l] = &link.Link{
			ID:   l,
			Req:  link.NewDir(eng, fmt.Sprintf("link%d.req", l), reqCfg, func(p *packet.Packet) { h.receiveRequest(l, p) }),
			Resp: link.NewDir(eng, fmt.Sprintf("link%d.resp", l), respCfg, deliverResp),
		}
	}

	// Vault controllers and their fabric adapters. The vault is the end
	// of the request packet's life: once the controller accepts the
	// transaction, the wire packet and its fabric message go back to
	// their free lists.
	vaultOutlets := make([]noc.Outlet, addr.Vaults)
	for v := 0; v < addr.Vaults; v++ {
		v := v
		quad := v / addr.VaultsPerQuad
		qe := engs.Quad[quad]
		vcfg := cfg.Vault
		vcfg.ID = v
		if cfg.Trace != nil {
			if qe != eng {
				vcfg.Trace = cfg.Trace.ShardVault(v, qe.Shard())
			} else {
				vcfg.Trace = cfg.Trace.Vault(v)
			}
		}
		vlt := vault.New(qe, vcfg, &respAdapter{h: h, quad: quad})
		h.vaults[v] = vlt
		vaultOutlets[v] = noc.FuncOutlet{
			Try: func(m *noc.Message) bool {
				if !vlt.TryAccept(m.Tr) {
					return false
				}
				packet.PutPacket(m.Pkt)
				noc.PutMessage(m)
				return true
			},
			Notify: func(_ *noc.Message, fn func()) { vlt.NotifyAccept(fn) },
		}
	}

	// Link egress adapters: responses leave through the links' response
	// direction, flow-controlled by the host-side buffer tokens. The
	// packet rides the link onward; the fabric message ends here.
	linkEgress := make([]noc.Outlet, cfg.Links)
	for l := 0; l < cfg.Links; l++ {
		l := l
		linkEgress[l] = noc.FuncOutlet{
			Try: func(m *noc.Message) bool {
				if !h.links[l].Resp.TrySend(m.Pkt) {
					return false
				}
				h.respsOut++
				noc.PutMessage(m)
				return true
			},
			Notify: func(_ *noc.Message, fn func()) { h.links[l].Resp.NotifyTokens(fn) },
		}
	}

	nocCfg := cfg.NoC
	if cfg.Trace != nil {
		nocCfg.Trace = &cfg.Trace.NoC
		for q := 0; q < addr.Quadrants; q++ {
			if qe := engs.Quad[q]; qe != eng {
				if nocCfg.QuadTrace == nil {
					nocCfg.QuadTrace = make([]*obs.NoCTracer, addr.Quadrants)
				}
				nocCfg.QuadTrace[q] = cfg.Trace.ShardNoC(qe.Shard())
			}
		}
	}
	h.fabric = noc.NewFabric(engs, nocCfg, addr.Quadrants, addr.VaultsPerQuad,
		cfg.LinkHome, cfg.ReqRxBufFlits, vaultOutlets, linkEgress)

	// Returning cube-side link tokens once a request leaves the ingress
	// staging node is what lets the next request deserialize.
	for l := 0; l < cfg.Links; l++ {
		l := l
		h.fabric.ReqIngress[l].OnForward = func(flits int) {
			h.links[l].Req.Release(flits)
		}
	}
	return h
}

// respAdapter injects vault completions into the response network.
type respAdapter struct {
	h    *HMC
	quad int
}

func (a *respAdapter) TryOut(tr *packet.Transaction) bool {
	m := noc.GetMessage(tr, tr.ResponsePacket(tr.Tag))
	if !a.h.fabric.RespIngress(a.quad).TryOut(m) {
		// Rejected: the fabric did not take ownership, so the speculative
		// response packet and its message go straight back to the free
		// lists instead of becoming garbage on every congested attempt.
		packet.PutPacket(m.Pkt)
		noc.PutMessage(m)
		return false
	}
	return true
}

func (a *respAdapter) NotifyOut(tr *packet.Transaction, fn func()) {
	// NotifyOut only routes the message to find the right credit pool; it
	// does not retain it, so a transient pooled message (no packet
	// needed: response routing reads only the transaction) suffices.
	m := noc.GetMessage(tr, nil)
	a.h.fabric.RespIngress(a.quad).NotifyOut(m, fn)
	noc.PutMessage(m)
}

// receiveRequest handles a request packet arriving on link l.
func (h *HMC) receiveRequest(l int, p *packet.Packet) {
	tr := p.Tr
	if tr == nil {
		panic("hmc: request packet without transaction")
	}
	h.reqsIn++
	tr.TLinkTx = h.eng.Now()
	h.fabric.InjectRequest(l, noc.GetMessage(tr, p))
}

// ReqDir returns the request direction of link l; the host controller
// sends request packets into it with TrySend.
func (h *HMC) ReqDir(l int) *link.Dir { return h.links[l].Req }

// ReleaseResp returns host-side response-buffer space after the host has
// consumed a packet of the given flit count from link l.
func (h *HMC) ReleaseResp(l, flits int) { h.links[l].Resp.Release(flits) }

// Vault returns vault v for statistics and tests.
func (h *HMC) Vault(v int) *vault.Vault { return h.vaults[v] }

// Fabric exposes the NoC for statistics and tests.
func (h *HMC) Fabric() *noc.Fabric { return h.fabric }

// Link returns link l.
func (h *HMC) Link(l int) *link.Link { return h.links[l] }

// Links returns the number of external links.
func (h *HMC) Links() int { return h.cfg.Links }

// RequestsIn returns the number of request packets accepted from the
// links.
func (h *HMC) RequestsIn() uint64 { return h.reqsIn }

// ResponsesOut returns the number of response packets sent to the host.
func (h *HMC) ResponsesOut() uint64 { return h.respsOut }

// InFlight returns the number of transactions currently inside the cube:
// accepted from the links but not yet sent back. It is the quantity the
// paper estimates with Little's law in Figure 14.
func (h *HMC) InFlight() int { return int(h.reqsIn - h.respsOut) }
