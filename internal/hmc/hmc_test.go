package hmc

import (
	"testing"

	"hmcsim/internal/addr"
	"hmcsim/internal/noc"
	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
)

// harness drives an HMC directly at its links, standing in for the host.
type harness struct {
	eng  *sim.Engine
	h    *HMC
	done []*packet.Transaction
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	ha := &harness{eng: sim.NewEngine()}
	ha.h = New(noc.SingleEngine(ha.eng, addr.Quadrants), cfg, func(p *packet.Packet) {
		// Consume immediately: release buffer space and record.
		ha.h.ReleaseResp(p.Link, p.Flits())
		p.Tr.TDone = ha.eng.Now()
		ha.done = append(ha.done, p.Tr)
	})
	return ha
}

// send issues a read transaction on the given link, retrying on link
// token exhaustion.
func (ha *harness) send(tr *packet.Transaction) {
	pkt := tr.RequestPacket(tr.Tag)
	var try func()
	try = func() {
		if !ha.h.ReqDir(tr.Link).TrySend(pkt) {
			ha.h.ReqDir(tr.Link).NotifyTokens(try)
		}
	}
	try()
}

func makeRead(id uint64, m *addr.Mapping, a uint64, size, linkID int) *packet.Transaction {
	loc := m.Decode(a)
	return &packet.Transaction{
		ID: id, Addr: a, Size: size, Link: linkID, Tag: uint16(id % 512),
		Vault: loc.Vault, Quadrant: loc.Quadrant, Bank: loc.Bank, Row: loc.Row,
	}
}

func TestSingleReadRoundTrip(t *testing.T) {
	ha := newHarness(t, DefaultConfig())
	m := addr.MustMapping(128)
	tr := makeRead(1, m, 0x1234580, 64, 0)
	ha.eng.Schedule(0, func() { ha.send(tr) })
	ha.eng.Drain()
	if len(ha.done) != 1 {
		t.Fatalf("completed %d, want 1", len(ha.done))
	}
	// Timestamps must be ordered through every stage.
	if !(tr.TLinkTx < tr.TVaultIn && tr.TVaultIn <= tr.TIssued &&
		tr.TIssued < tr.TVaultOut && tr.TVaultOut < tr.TDone) {
		t.Fatalf("timestamps out of order: %+v", tr)
	}
	// No-load latency through the cube: DRAM floor is ~31 ns; with NoC
	// and link it must be in the 50-250 ns range the paper attributes to
	// the device ("100 to 180 ns" plus serialization).
	lat := tr.TDone - tr.TLinkTx
	if lat < 40*sim.Nanosecond || lat > 300*sim.Nanosecond {
		t.Fatalf("device round trip = %v, want 40-300ns", lat)
	}
}

func TestAllVaultsReachable(t *testing.T) {
	ha := newHarness(t, DefaultConfig())
	m := addr.MustMapping(128)
	ha.eng.Schedule(0, func() {
		for v := 0; v < addr.Vaults; v++ {
			a := m.Encode(addr.Location{Vault: v, Bank: 3, Row: 9})
			ha.send(makeRead(uint64(v), m, a, 32, v%2))
		}
	})
	ha.eng.Drain()
	if len(ha.done) != addr.Vaults {
		t.Fatalf("completed %d, want %d", len(ha.done), addr.Vaults)
	}
	seen := map[int]bool{}
	for _, tr := range ha.done {
		seen[tr.Vault] = true
	}
	if len(seen) != addr.Vaults {
		t.Fatalf("only %d distinct vaults served", len(seen))
	}
}

func TestConservationUnderRandomLoad(t *testing.T) {
	ha := newHarness(t, DefaultConfig())
	m := addr.MustMapping(128)
	rng := sim.NewRand(3)
	const n = 3000
	ha.eng.Schedule(0, func() {
		for i := 0; i < n; i++ {
			a := (rng.Uint64() % addr.CubeBytes) &^ 0x7F
			size := 16 * (rng.Intn(8) + 1)
			tr := makeRead(uint64(i), m, a, size, rng.Intn(2))
			tr.Write = rng.Intn(4) == 0
			ha.send(tr)
		}
	})
	ha.eng.Drain()
	if len(ha.done) != n {
		t.Fatalf("completed %d, want %d", len(ha.done), n)
	}
	if ha.h.InFlight() != 0 {
		t.Fatalf("in-flight = %d after drain", ha.h.InFlight())
	}
	if q := ha.h.Fabric().QueuedMessages(); q != 0 {
		t.Fatalf("%d messages stuck in fabric", q)
	}
	ids := map[uint64]bool{}
	for _, tr := range ha.done {
		if ids[tr.ID] {
			t.Fatalf("transaction %d completed twice", tr.ID)
		}
		ids[tr.ID] = true
	}
}

func TestVaultBandwidthCapUnderSpray(t *testing.T) {
	// Saturating a single vault from both links must not exceed the TSV
	// counted-byte bandwidth.
	cfg := DefaultConfig()
	ha := newHarness(t, cfg)
	m := addr.MustMapping(128)
	const n = 2000
	ha.eng.Schedule(0, func() {
		for i := 0; i < n; i++ {
			a := m.Encode(addr.Location{Vault: 0, Bank: i % 16, Row: uint64(i)})
			ha.send(makeRead(uint64(i), m, a, 64, i%2))
		}
	})
	ha.eng.Drain()
	counted := uint64(n) * uint64(packet.RoundTripBytes(false, 64))
	gbps := float64(counted) / ha.eng.Now().Seconds() / 1e9
	if gbps > cfg.Vault.TSVBandwidth.GBpsValue()*1.05 {
		t.Fatalf("single-vault counted bandwidth %.2f GB/s exceeds TSV cap", gbps)
	}
}

func TestSpreadFasterThanSingleVault(t *testing.T) {
	run := func(spread bool) sim.Time {
		ha := newHarness(t, DefaultConfig())
		m := addr.MustMapping(128)
		ha.eng.Schedule(0, func() {
			for i := 0; i < 1500; i++ {
				v := 0
				if spread {
					v = i % addr.Vaults
				}
				a := m.Encode(addr.Location{Vault: v, Bank: i % 16, Row: uint64(i / 16)})
				ha.send(makeRead(uint64(i), m, a, 64, i%2))
			}
		})
		ha.eng.Drain()
		return ha.eng.Now()
	}
	single := run(false)
	spread := run(true)
	if spread >= single {
		t.Fatalf("spread (%v) not faster than single vault (%v)", spread, single)
	}
	if single < 3*spread {
		t.Fatalf("single-vault slowdown only %.1fx, expected >=3x", float64(single)/float64(spread))
	}
}

func TestBackpressureBoundsInFlight(t *testing.T) {
	// Hammer one bank; the cube must bound its internal occupancy at
	// roughly one bank queue plus buffers, pushing the rest back to the
	// sender (Figure 14's per-bank queue inference).
	cfg := DefaultConfig()
	ha := newHarness(t, cfg)
	m := addr.MustMapping(128)
	const n = 2000
	maxInFlight := 0
	ha.eng.Schedule(0, func() {
		for i := 0; i < n; i++ {
			a := m.Encode(addr.Location{Vault: 0, Bank: 0, Row: uint64(i)})
			ha.send(makeRead(uint64(i), m, a, 16, i%2))
		}
	})
	// Sample occupancy periodically.
	var sample func()
	sample = func() {
		if f := ha.h.InFlight(); f > maxInFlight {
			maxInFlight = f
		}
		if len(ha.done) < n {
			ha.eng.Schedule(sim.Microsecond, sample)
		}
	}
	ha.eng.Schedule(sim.Microsecond, sample)
	ha.eng.Drain()
	// Bound: bank queue (128) + TSV window + NoC + both link input
	// buffers (64 flits each) + slack.
	bound := cfg.Vault.BankQueueDepth + cfg.Vault.TSVWindow +
		2*cfg.ReqRxBufFlits + 2*cfg.NoC.InputBuffer + 32
	if maxInFlight > bound {
		t.Fatalf("in-flight peaked at %d, bound %d", maxInFlight, bound)
	}
	if maxInFlight < cfg.Vault.BankQueueDepth {
		t.Fatalf("in-flight peaked at %d, expected at least a full bank queue (%d)",
			maxInFlight, cfg.Vault.BankQueueDepth)
	}
}

func TestWritesUseRequestBandwidth(t *testing.T) {
	// A 128 B write's request is 9 flits and its response 1; the link
	// TX direction should carry ~9x the flits of the RX direction.
	ha := newHarness(t, DefaultConfig())
	m := addr.MustMapping(128)
	const n = 200
	ha.eng.Schedule(0, func() {
		for i := 0; i < n; i++ {
			a := (uint64(i) * 8192) % addr.CubeBytes
			tr := makeRead(uint64(i), m, a, 128, 0)
			tr.Write = true
			ha.send(tr)
		}
	})
	ha.eng.Drain()
	tx := ha.h.Link(0).Req.Flits()
	rx := ha.h.Link(0).Resp.Flits()
	if tx != uint64(n*9) || rx != uint64(n) {
		t.Fatalf("tx/rx flits = %d/%d, want %d/%d", tx, rx, n*9, n)
	}
}

func TestLinkChoiceRoutesResponseBack(t *testing.T) {
	ha := newHarness(t, DefaultConfig())
	m := addr.MustMapping(128)
	ha.eng.Schedule(0, func() {
		ha.send(makeRead(1, m, 0x100, 32, 1)) // link 1 only
	})
	ha.eng.Drain()
	if got := ha.h.Link(1).Resp.Packets(); got != 1 {
		t.Fatalf("link 1 carried %d responses, want 1", got)
	}
	if got := ha.h.Link(0).Resp.Packets(); got != 0 {
		t.Fatalf("link 0 carried %d responses, want 0", got)
	}
}
