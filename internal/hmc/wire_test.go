package hmc

import (
	"testing"

	"hmcsim/internal/addr"
	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
)

// TestWireFormatCarriesSimTraffic encodes every request and response the
// simulator produces during a run through the 128-bit flit codec and
// checks the decode recovers the same transaction fields — i.e. the
// timing model and the wire format agree on what is representable.
func TestWireFormatCarriesSimTraffic(t *testing.T) {
	ha := newHarness(t, DefaultConfig())
	m := addr.MustMapping(128)
	rng := sim.NewRand(23)
	const n = 300
	ha.eng.Schedule(0, func() {
		for i := 0; i < n; i++ {
			a := (rng.Uint64() % addr.CubeBytes) &^ 0x7F
			tr := makeRead(uint64(i), m, a, 16*(rng.Intn(8)+1), rng.Intn(2))
			tr.Write = rng.Intn(3) == 0
			ha.send(tr)
		}
	})
	ha.eng.Drain()
	if len(ha.done) != n {
		t.Fatalf("completed %d of %d", len(ha.done), n)
	}
	for _, tr := range ha.done {
		for _, pkt := range []*packet.Packet{tr.RequestPacket(tr.Tag), tr.ResponsePacket(tr.Tag)} {
			words, err := packet.Encode(pkt, packet.Tail{RTC: 1}, nil)
			if err != nil {
				t.Fatalf("encode %v: %v", pkt, err)
			}
			got, _, _, err := packet.Decode(words)
			if err != nil {
				t.Fatalf("decode %v: %v", pkt, err)
			}
			if got.Cmd != pkt.Cmd || got.Tag != pkt.Tag || got.Size != pkt.Size {
				t.Fatalf("wire round trip %v -> %v", pkt, got)
			}
			if got.Addr != pkt.Addr&(1<<34-1) {
				t.Fatalf("address %#x -> %#x", pkt.Addr, got.Addr)
			}
			// The decoded address must land on the same vault and bank.
			loc := m.Decode(got.Addr)
			if loc.Vault != tr.Vault || loc.Bank != tr.Bank {
				t.Fatalf("decoded address routes to %d/%d, want %d/%d",
					loc.Vault, loc.Bank, tr.Vault, tr.Bank)
			}
		}
	}
}

// TestEndToEndDeterminism re-runs an identical workload and requires
// bit-identical completion timestamps.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() []sim.Time {
		ha := newHarness(t, DefaultConfig())
		m := addr.MustMapping(128)
		rng := sim.NewRand(77)
		ha.eng.Schedule(0, func() {
			for i := 0; i < 500; i++ {
				a := (rng.Uint64() % addr.CubeBytes) &^ 0x7F
				ha.send(makeRead(uint64(i), m, a, 64, i%2))
			}
		})
		ha.eng.Drain()
		out := make([]sim.Time, len(ha.done))
		for i, tr := range ha.done {
			out[i] = tr.TDone
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
