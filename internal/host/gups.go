package host

import (
	"hmcsim/internal/addr"
	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
)

// RequestKind selects what a GUPS port issues.
type RequestKind int

const (
	// ReadOnly issues only reads; the paper's default ("the type of
	// requests are read only, unless stated otherwise").
	ReadOnly RequestKind = iota
	// WriteOnly issues only writes.
	WriteOnly
	// ReadWriteMix alternates reads and writes evenly, the balanced
	// traffic Section IV-F recommends for bi-directional links.
	ReadWriteMix
)

// GUPSConfig shapes one GUPS port's traffic.
type GUPSConfig struct {
	Size   int         // request data size in bytes (16..128)
	Kind   RequestKind // read/write mix
	Mask   addr.Mask   // address mask / anti-mask restricting the pattern
	Linear bool        // linear instead of random addressing
	Seed   uint64      // RNG seed (ignored for linear mode)
	Tags   int         // outstanding-request bound; 0 means the config default
}

// GUPSPort is the vendor-style traffic generator: every FPGA cycle it
// issues one request to a masked random (or linear) address, as long as a
// tag is free. Requests run for as long as the port is started.
type GUPSPort struct {
	id    int
	eng   *sim.Engine
	ctrl  *Controller
	clock sim.Clock
	cfg   GUPSConfig
	mapp  *addr.Mapping
	rng   *sim.Rand
	tags  *tagPool

	Mon Monitor

	tickT     *sim.Timer // reusable clock-tick event
	unblockFn func()     // pre-bound tag-pool waiter

	active  bool
	next    uint64 // linear-mode cursor
	issued  uint64
	blocked bool
}

// NewGUPSPort builds GUPS port id and registers it with the controller.
func NewGUPSPort(eng *sim.Engine, hostCfg Config, ctrl *Controller, mapp *addr.Mapping, id int, cfg GUPSConfig) *GUPSPort {
	if !packet.ValidSize(cfg.Size) {
		panic("host: invalid GUPS request size")
	}
	tags := cfg.Tags
	if tags <= 0 {
		tags = hostCfg.GUPSTagsPerPort
	}
	p := &GUPSPort{
		id:    id,
		eng:   eng,
		ctrl:  ctrl,
		clock: hostCfg.Clock(),
		cfg:   cfg,
		mapp:  mapp,
		rng:   sim.NewRand(cfg.Seed + uint64(id)*0x9E3779B9 + 1),
		tags:  newTagPool(id, tags, hostCfg.Trace),
	}
	p.tickT = eng.NewTimer(p.tick)
	p.unblockFn = func() {
		p.blocked = false
		if p.active {
			p.tickT.At(p.clock.Next(p.eng.Now()))
		}
	}
	ctrl.register(id, p)
	return p
}

// ID returns the port number.
func (p *GUPSPort) ID() int { return p.id }

// Start activates the port at the current simulation time.
func (p *GUPSPort) Start() {
	if p.active {
		return
	}
	p.active = true
	p.tickT.At(p.clock.Next(p.eng.Now()))
}

// Stop deactivates the port; in-flight requests still complete.
func (p *GUPSPort) Stop() { p.active = false }

// Outstanding returns the number of requests in flight.
func (p *GUPSPort) Outstanding() int { return p.tags.outstanding() }

// Issued returns the number of requests generated since Start.
func (p *GUPSPort) Issued() uint64 { return p.issued }

func (p *GUPSPort) tick() {
	if !p.active {
		return
	}
	tag, ok := p.tags.take()
	if !ok {
		if !p.blocked {
			p.blocked = true
			p.tags.notify(p.unblockFn)
		}
		return
	}
	tr := p.generate(tag)
	p.issued++
	p.ctrl.Submit(tr)
	p.tickT.At(p.clock.Next(p.eng.Now() + 1))
}

// generate builds the next transaction.
func (p *GUPSPort) generate(tag uint16) *packet.Transaction {
	var raw uint64
	if p.cfg.Linear {
		raw = p.next
		p.next += uint64(p.cfg.Size)
	} else {
		raw = p.rng.Uint64()
	}
	a := p.cfg.Mask.Apply(raw&(addr.CubeBytes-1)) &^ uint64(p.cfg.Size-1)
	write := false
	switch p.cfg.Kind {
	case WriteOnly:
		write = true
	case ReadWriteMix:
		write = p.issued%2 == 1
	}
	loc := p.mapp.Decode(a)
	tr := packet.GetTransaction()
	tr.ID = p.issued | uint64(p.id)<<56
	tr.Write = write
	tr.Addr = a
	tr.Size = p.cfg.Size
	tr.Port = p.id
	tr.Tag = tag
	tr.Vault, tr.Quadrant, tr.Bank, tr.Row = loc.Vault, loc.Quadrant, loc.Bank, loc.Row
	tr.TGen = p.eng.Now()
	return tr
}

// complete implements the controller callback: GUPS discards response
// data on the FPGA, so the transaction retires as soon as the controller
// hands it over.
func (p *GUPSPort) complete(tr *packet.Transaction) {
	tr.TDone = p.eng.Now()
	p.Mon.record(tr)
	p.tags.put(tr.Tag)
	packet.PutTransaction(tr)
}
