// Package host models the FPGA side of the AC-510 evaluation system
// (Section III of the paper): up to nine traffic-generating ports, the
// Micron HMC controller they share, tag pools bounding outstanding
// requests, and the monitoring logic that records read latencies.
//
// Two firmware personalities are provided, matching the paper's Figure 5:
//
//   - GUPSPort: a free-running address generator issuing random or linear
//     requests shaped by an address mask/anti-mask (Figure 5a).
//   - StreamPort: a trace-driven port that issues a finite burst of
//     requests and streams response data back to the host over a
//     dedicated per-port channel (Figure 5b).
package host

import (
	"fmt"

	"hmcsim/internal/link"
	"hmcsim/internal/obs"
	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
)

// Config holds the host-side calibration constants. They are the single
// source of truth for the FPGA model and are documented in DESIGN.md.
type Config struct {
	// FPGAClockHz is the fabric clock; the AC-510 design runs at
	// 187.5 MHz, which is why nine parallel ports are needed to source
	// enough requests (Section III-B).
	FPGAClockHz float64

	// CtrlFlitSlotsPerCycle is the HMC controller's aggregate flit
	// throughput per FPGA cycle, shared between the transmit and receive
	// paths. Together with CtrlPacketOverheadSlots it sets the
	// controller-bound saturation bandwidth (the ~23 GB/s ceiling of
	// Figures 6 and 13d).
	CtrlFlitSlotsPerCycle float64
	// CtrlPacketOverheadSlots is the fixed per-packet processing cost in
	// flit slots; it penalizes small packets, reproducing the paper's
	// observation that small requests cannot reach the large-packet
	// bandwidth even at full port count.
	CtrlPacketOverheadSlots float64

	// TxLatency and RxLatency are the fixed pipeline latencies between a
	// port and the link SerDes in each direction. Together with link and
	// cube latencies they make up the ~547 ns infrastructure floor the
	// paper carries over from [18].
	TxLatency sim.Time
	RxLatency sim.Time

	// GUPSTagsPerPort and StreamTagsPerPort bound outstanding requests
	// per port; the read tag pool of Figure 5.
	GUPSTagsPerPort   int
	StreamTagsPerPort int

	// StreamChanBytesPerCycle is the width of a stream port's dedicated
	// response channel to the host (PicoStream). Reading one 16-byte
	// word per cycle is what makes large responses pile up in Figures 7
	// and 8.
	StreamChanBytesPerCycle int

	// Trace, when non-nil, observes the port tag pools (outstanding
	// counts, empty-pool stalls) across every port built from this
	// config. Nil keeps the issue-path hooks single branches.
	Trace *obs.HostTracer
}

// DefaultConfig returns the AC-510 host calibration.
func DefaultConfig() Config {
	return Config{
		FPGAClockHz:             187.5e6,
		CtrlFlitSlotsPerCycle:   8,
		CtrlPacketOverheadSlots: 0.5,
		TxLatency:               300 * sim.Nanosecond,
		RxLatency:               300 * sim.Nanosecond,
		GUPSTagsPerPort:         80,
		StreamTagsPerPort:       96,
		StreamChanBytesPerCycle: 16,
	}
}

// Clock returns the FPGA clock domain.
func (c Config) Clock() sim.Clock { return sim.NewClockHz(c.FPGAClockHz) }

// Device is the slice of the HMC the controller drives: request links in,
// response buffer releases out.
type Device interface {
	ReqDir(l int) *link.Dir
	ReleaseResp(l, flits int)
	Links() int
}

// completer receives finished transactions back at their issuing port.
type completer interface {
	complete(tr *packet.Transaction)
}

// Controller models the Micron HMC controller on the FPGA: a shared
// packet-processing engine in front of the link SerDes. Its throughput is
// a budget of flit slots per cycle plus a per-packet overhead, consumed by
// both directions.
//
// Packets move through fixed-order stages — the shared packet engine,
// then the Tx or Rx pipeline — each backed by a ring of in-flight work
// and a callback bound once at construction, so steady-state request and
// response processing allocates nothing.
type Controller struct {
	eng   *sim.Engine
	cfg   Config
	dev   Device
	ports map[int]completer

	engine   *sim.Server
	slotTime sim.Time
	rr       int

	jobs     sim.Ring[ctrlJob] // on the packet engine, FIFO by Reserve order
	engineFn func()
	txq      sim.Ring[*packet.Packet] // in the Tx pipeline (constant TxLatency)
	txFn     func()
	rxq      sim.Ring[*packet.Transaction] // in the Rx pipeline (constant RxLatency)
	rxFn     func()

	// blockedq[l] holds requests that found every link full, parked on
	// link l's token pool (the first link their attempt round-robin
	// tried). Each park pairs one ring push with one waiter registration
	// on the same pool, and both fire in FIFO order, so retryFns[l]
	// always pops the packet whose registration woke it.
	blockedq []sim.Ring[*packet.Packet]
	retryFns []func()

	reqsSent  uint64
	respsRecv uint64
}

// ctrlJob is one packet occupying the shared engine: a request on its
// way out or a response on its way in.
type ctrlJob struct {
	pkt  *packet.Packet
	resp bool
}

// NewController builds the controller for the given device.
func NewController(eng *sim.Engine, cfg Config, dev Device) *Controller {
	if cfg.CtrlFlitSlotsPerCycle <= 0 {
		panic("host: CtrlFlitSlotsPerCycle must be positive")
	}
	period := cfg.Clock().Period
	c := &Controller{
		eng:      eng,
		cfg:      cfg,
		dev:      dev,
		ports:    make(map[int]completer),
		engine:   sim.NewServer(eng),
		slotTime: sim.Time(float64(period)/cfg.CtrlFlitSlotsPerCycle + 0.5),
	}
	c.engineFn = c.engineDone
	c.txFn = c.txDone
	c.rxFn = c.rxDone
	c.blockedq = make([]sim.Ring[*packet.Packet], dev.Links())
	c.retryFns = make([]func(), dev.Links())
	for l := range c.retryFns {
		l := l
		c.retryFns[l] = func() { c.sendReq(c.blockedq[l].Pop()) }
	}
	return c
}

// service returns the controller processing time for one packet.
func (c *Controller) service(p *packet.Packet) sim.Time {
	slots := float64(p.Flits()) + c.cfg.CtrlPacketOverheadSlots
	return sim.Time(slots*float64(c.slotTime) + 0.5)
}

// register attaches a port for completion callbacks.
func (c *Controller) register(id int, p completer) {
	if _, dup := c.ports[id]; dup {
		panic(fmt.Sprintf("host: duplicate port id %d", id))
	}
	c.ports[id] = p
}

// Submit accepts a transaction from a port, processes the request packet,
// and pushes it onto a link. Ports bound their own submissions with tag
// pools, so Submit never rejects.
func (c *Controller) Submit(tr *packet.Transaction) {
	tr.TPortOut = c.eng.Now()
	pkt := tr.RequestPacket(tr.Tag)
	c.jobs.Push(ctrlJob{pkt: pkt})
	c.engine.Reserve(c.service(pkt), c.engineFn)
}

// engineDone fires when the packet engine finishes its oldest
// reservation; reservations complete in Reserve order, so the head of
// the job ring is the packet that just finished processing.
func (c *Controller) engineDone() {
	j := c.jobs.Pop()
	if j.resp {
		tr := j.pkt.Tr
		// Only now does the packet leave the link receive buffer; it has
		// served its purpose, so it goes back to the free list.
		c.dev.ReleaseResp(j.pkt.Link, j.pkt.Flits())
		packet.PutPacket(j.pkt)
		c.rxq.Push(tr)
		c.eng.Schedule(c.cfg.RxLatency, c.rxFn)
		return
	}
	c.txq.Push(j.pkt)
	c.eng.Schedule(c.cfg.TxLatency, c.txFn)
}

// txDone fires TxLatency after a request finished the packet engine.
func (c *Controller) txDone() { c.sendReq(c.txq.Pop()) }

// rxDone fires RxLatency after a response left the link buffer: the
// transaction returns to its issuing port.
func (c *Controller) rxDone() {
	tr := c.rxq.Pop()
	port, ok := c.ports[tr.Port]
	if !ok {
		panic(fmt.Sprintf("host: response for unknown port %d", tr.Port))
	}
	port.complete(tr)
}

// sendReq pushes the packet onto a link, round-robining across links and
// waiting for link tokens when the cube exerts back-pressure.
func (c *Controller) sendReq(pkt *packet.Packet) {
	links := c.dev.Links()
	first := c.rr
	c.rr = (c.rr + 1) % links
	for i := 0; i < links; i++ {
		l := (first + i) % links
		pkt.Link = l
		pkt.Tr.Link = l
		if c.dev.ReqDir(l).TrySend(pkt) {
			c.reqsSent++
			return
		}
	}
	c.blockedq[first].Push(pkt)
	c.dev.ReqDir(first).NotifyTokens(c.retryFns[first])
}

// OnResponse is wired as the cube's response delivery callback.
func (c *Controller) OnResponse(pkt *packet.Packet) {
	pkt.Tr.TLinkRx = c.eng.Now()
	c.respsRecv++
	c.jobs.Push(ctrlJob{pkt: pkt, resp: true})
	c.engine.Reserve(c.service(pkt), c.engineFn)
}

// RequestsSent returns the number of request packets pushed to links.
func (c *Controller) RequestsSent() uint64 { return c.reqsSent }

// ResponsesReceived returns the number of responses taken off the links.
func (c *Controller) ResponsesReceived() uint64 { return c.respsRecv }

// Utilization reports the packet engine's busy fraction.
func (c *Controller) Utilization(now sim.Time) float64 { return c.engine.Utilization(now) }

// tagPool is the port-level pool of transaction tags (Rd.Tag Pool in
// Figure 5). Tags are small integers unique per port so the wire format's
// 11-bit field can address them.
type tagPool struct {
	free    []uint16
	waiters sim.Waiters
	size    int
	trace   *obs.HostTracer
}

func newTagPool(port, n int, trace *obs.HostTracer) *tagPool {
	p := &tagPool{size: n, trace: trace}
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, uint16((port*n+i)%2048))
	}
	return p
}

func (p *tagPool) take() (uint16, bool) {
	if len(p.free) == 0 {
		p.trace.OnTagWait()
		return 0, false
	}
	t := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.trace.OnTagTake(p.size - len(p.free))
	return t, true
}

func (p *tagPool) put(t uint16) {
	p.free = append(p.free, t)
	p.waiters.Fire()
}

func (p *tagPool) notify(fn func()) { p.waiters.Add(fn) }

func (p *tagPool) outstanding() int { return p.size - len(p.free) }

// Monitor is the per-port monitoring logic (Section III-B): total reads
// and writes, aggregate/minimum/maximum read latency. It sits outside the
// critical path; recording costs no simulated time.
type Monitor struct {
	Reads, Writes uint64
	AggLat        sim.Time
	MinLat        sim.Time
	MaxLat        sim.Time
	CountedBytes  uint64

	windowStart sim.Time

	// OnComplete, when non-nil, observes every completed transaction;
	// experiments hook histograms here.
	OnComplete func(tr *packet.Transaction)
}

// Reset clears the window counters; experiments call it after warm-up.
func (m *Monitor) Reset(now sim.Time) {
	m.Reads, m.Writes = 0, 0
	m.AggLat, m.MinLat, m.MaxLat = 0, 0, 0
	m.CountedBytes = 0
	m.windowStart = now
}

// WindowStart returns the time of the last Reset.
func (m *Monitor) WindowStart() sim.Time { return m.windowStart }

func (m *Monitor) record(tr *packet.Transaction) {
	lat := tr.Latency()
	if tr.Write {
		m.Writes++
	} else {
		// As in the firmware, latency statistics cover reads.
		m.Reads++
		m.AggLat += lat
		if m.MinLat == 0 || lat < m.MinLat {
			m.MinLat = lat
		}
		if lat > m.MaxLat {
			m.MaxLat = lat
		}
	}
	m.CountedBytes += uint64(tr.RoundTripBytes())
	if m.OnComplete != nil {
		m.OnComplete(tr)
	}
}

// AvgLat returns the mean read latency since the last reset.
func (m *Monitor) AvgLat() sim.Time {
	if m.Reads == 0 {
		return 0
	}
	return m.AggLat / sim.Time(m.Reads)
}
