package host

import (
	"testing"

	"hmcsim/internal/addr"
	"hmcsim/internal/hmc"
	"hmcsim/internal/noc"
	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
)

// rig wires a real cube behind a controller for integration-style tests.
type rig struct {
	eng  *sim.Engine
	cube *hmc.HMC
	ctrl *Controller
	mapp *addr.Mapping
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(), mapp: addr.MustMapping(128)}
	var ctrl *Controller
	r.cube = hmc.New(noc.SingleEngine(r.eng, addr.Quadrants), hmc.DefaultConfig(), func(p *packet.Packet) { ctrl.OnResponse(p) })
	ctrl = NewController(r.eng, DefaultConfig(), r.cube)
	r.ctrl = ctrl
	return r
}

func TestGUPSPortIssuesAndCompletes(t *testing.T) {
	r := newRig(t)
	p := NewGUPSPort(r.eng, DefaultConfig(), r.ctrl, r.mapp, 0, GUPSConfig{
		Size: 32, Mask: addr.AllAccess, Seed: 5,
	})
	r.eng.Schedule(0, func() { p.Start() })
	r.eng.Schedule(20*sim.Microsecond, func() { p.Stop() })
	r.eng.Drain()
	if p.Mon.Reads == 0 {
		t.Fatal("no reads completed")
	}
	if p.Outstanding() != 0 {
		t.Fatalf("%d requests still outstanding after drain", p.Outstanding())
	}
	if p.Mon.MinLat <= 0 || p.Mon.MaxLat < p.Mon.MinLat {
		t.Fatalf("latency stats inconsistent: min=%v max=%v", p.Mon.MinLat, p.Mon.MaxLat)
	}
	if p.Mon.AvgLat() < p.Mon.MinLat || p.Mon.AvgLat() > p.Mon.MaxLat {
		t.Fatalf("avg %v outside [min,max]", p.Mon.AvgLat())
	}
}

func TestGUPSTagPoolBoundsOutstanding(t *testing.T) {
	r := newRig(t)
	cfg := DefaultConfig()
	p := NewGUPSPort(r.eng, cfg, r.ctrl, r.mapp, 0, GUPSConfig{
		Size: 16, Mask: addr.AllAccess, Seed: 1, Tags: 8,
	})
	maxOut := 0
	r.eng.Schedule(0, func() { p.Start() })
	var watch func()
	watch = func() {
		if o := p.Outstanding(); o > maxOut {
			maxOut = o
		}
		if r.eng.Now() < 10*sim.Microsecond {
			r.eng.Schedule(100*sim.Nanosecond, watch)
		} else {
			p.Stop()
		}
	}
	r.eng.Schedule(0, watch)
	r.eng.Drain()
	if maxOut > 8 {
		t.Fatalf("outstanding peaked at %d with 8 tags", maxOut)
	}
	if maxOut < 8 {
		t.Fatalf("outstanding peaked at %d; pool never saturated", maxOut)
	}
}

func TestGUPSIssueRateOnePerCycle(t *testing.T) {
	// With abundant tags, a port issues at most one request per FPGA
	// cycle.
	r := newRig(t)
	cfg := DefaultConfig()
	p := NewGUPSPort(r.eng, cfg, r.ctrl, r.mapp, 0, GUPSConfig{
		Size: 16, Mask: addr.AllAccess, Seed: 1, Tags: 4096,
	})
	r.eng.Schedule(0, func() { p.Start() })
	window := 10 * sim.Microsecond
	r.eng.Run(window)
	p.Stop()
	r.eng.Drain()
	cycles := uint64(window / cfg.Clock().Period)
	if p.Issued() > cycles+1 {
		t.Fatalf("issued %d in %d cycles", p.Issued(), cycles)
	}
	if p.Issued() < cycles/2 {
		t.Fatalf("issued only %d in %d cycles", p.Issued(), cycles)
	}
}

func TestGUPSMaskConfinesTraffic(t *testing.T) {
	r := newRig(t)
	mask, err := r.mapp.BanksMask(2)
	if err != nil {
		t.Fatal(err)
	}
	p := NewGUPSPort(r.eng, DefaultConfig(), r.ctrl, r.mapp, 0, GUPSConfig{
		Size: 64, Mask: mask, Seed: 3,
	})
	banks := map[int]bool{}
	p.Mon.OnComplete = func(tr *packet.Transaction) {
		if tr.Vault != 0 {
			t.Errorf("masked access reached vault %d", tr.Vault)
		}
		banks[tr.Bank] = true
	}
	r.eng.Schedule(0, func() { p.Start() })
	r.eng.Schedule(20*sim.Microsecond, func() { p.Stop() })
	r.eng.Drain()
	if len(banks) != 2 {
		t.Fatalf("reached %d banks, want 2", len(banks))
	}
}

func TestGUPSWriteOnlyUsesRequestDirection(t *testing.T) {
	r := newRig(t)
	p := NewGUPSPort(r.eng, DefaultConfig(), r.ctrl, r.mapp, 0, GUPSConfig{
		Size: 128, Kind: WriteOnly, Mask: addr.AllAccess, Seed: 2,
	})
	r.eng.Schedule(0, func() { p.Start() })
	r.eng.Schedule(10*sim.Microsecond, func() { p.Stop() })
	r.eng.Drain()
	if p.Mon.Writes == 0 || p.Mon.Reads != 0 {
		t.Fatalf("reads/writes = %d/%d, want only writes", p.Mon.Reads, p.Mon.Writes)
	}
	tx := r.cube.Link(0).Req.Flits() + r.cube.Link(1).Req.Flits()
	rx := r.cube.Link(0).Resp.Flits() + r.cube.Link(1).Resp.Flits()
	if tx < 8*rx {
		t.Fatalf("write traffic tx/rx flits = %d/%d; expected strong asymmetry", tx, rx)
	}
}

func TestGUPSReadWriteMix(t *testing.T) {
	r := newRig(t)
	p := NewGUPSPort(r.eng, DefaultConfig(), r.ctrl, r.mapp, 0, GUPSConfig{
		Size: 64, Kind: ReadWriteMix, Mask: addr.AllAccess, Seed: 2,
	})
	r.eng.Schedule(0, func() { p.Start() })
	r.eng.Schedule(20*sim.Microsecond, func() { p.Stop() })
	r.eng.Drain()
	ratio := float64(p.Mon.Reads) / float64(p.Mon.Reads+p.Mon.Writes)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("read fraction = %v, want ~0.5", ratio)
	}
}

func TestGUPSLinearMode(t *testing.T) {
	r := newRig(t)
	p := NewGUPSPort(r.eng, DefaultConfig(), r.ctrl, r.mapp, 0, GUPSConfig{
		Size: 128, Linear: true, Mask: addr.AllAccess,
	})
	var addrs []uint64
	p.Mon.OnComplete = func(tr *packet.Transaction) { addrs = append(addrs, tr.Addr) }
	r.eng.Schedule(0, func() { p.Start() })
	r.eng.Schedule(5*sim.Microsecond, func() { p.Stop() })
	r.eng.Drain()
	if len(addrs) < 10 {
		t.Fatalf("only %d completions", len(addrs))
	}
	// Linear addresses are sequential at generation; completions may
	// reorder slightly, so check the set covers a contiguous range.
	seen := map[uint64]bool{}
	var max uint64
	for _, a := range addrs {
		seen[a] = true
		if a > max {
			max = a
		}
	}
	for a := uint64(0); a <= max; a += 128 {
		if !seen[a] {
			t.Fatalf("linear stream skipped address %#x", a)
		}
	}
}

func TestStreamPortPlaysTraceToCompletion(t *testing.T) {
	r := newRig(t)
	p := NewStreamPort(r.eng, DefaultConfig(), r.ctrl, r.mapp, 0)
	trace := make([]Request, 50)
	for i := range trace {
		trace[i] = Request{Addr: uint64(i) * 4096, Size: 64}
	}
	idled := false
	p.OnIdle = func() { idled = true }
	r.eng.Schedule(0, func() { p.Play(trace) })
	r.eng.Drain()
	if !idled {
		t.Fatal("OnIdle never fired")
	}
	if p.Mon.Reads != 50 {
		t.Fatalf("completed %d reads, want 50", p.Mon.Reads)
	}
	if p.Busy() {
		t.Fatal("port still busy after drain")
	}
}

func TestStreamPortChannelSerializesResponses(t *testing.T) {
	// Two trace lengths: doubling the burst roughly doubles the tail
	// latency once the response channel saturates.
	run := func(n int) sim.Time {
		r := newRig(t)
		p := NewStreamPort(r.eng, DefaultConfig(), r.ctrl, r.mapp, 0)
		trace := make([]Request, n)
		for i := range trace {
			trace[i] = Request{Addr: uint64(i*128) % (1 << 28), Size: 128}
		}
		r.eng.Schedule(0, func() { p.Play(trace) })
		r.eng.Drain()
		return p.Mon.MaxLat
	}
	small, large := run(20), run(40)
	if large <= small {
		t.Fatalf("max latency did not grow with burst: %v vs %v", small, large)
	}
}

func TestStreamPortRejectsOverlappingPlay(t *testing.T) {
	r := newRig(t)
	p := NewStreamPort(r.eng, DefaultConfig(), r.ctrl, r.mapp, 0)
	r.eng.Schedule(0, func() {
		p.Play([]Request{{Addr: 0, Size: 16}})
		defer func() {
			if recover() == nil {
				t.Error("overlapping Play did not panic")
			}
		}()
		p.Play([]Request{{Addr: 128, Size: 16}})
	})
	r.eng.Drain()
}

func TestStreamPortReplays(t *testing.T) {
	r := newRig(t)
	p := NewStreamPort(r.eng, DefaultConfig(), r.ctrl, r.mapp, 0)
	total := uint64(0)
	var playNext func(round int)
	playNext = func(round int) {
		if round >= 3 {
			return
		}
		p.Mon.Reset(r.eng.Now())
		p.OnIdle = func() {
			total += p.Mon.Reads
			playNext(round + 1)
		}
		p.Play([]Request{{Addr: 0, Size: 32}, {Addr: 4096, Size: 32}})
	}
	r.eng.Schedule(0, func() { playNext(0) })
	r.eng.Drain()
	if total != 6 {
		t.Fatalf("three replays completed %d reads, want 6", total)
	}
}

func TestControllerSharedBudgetOrdersThroughput(t *testing.T) {
	// The controller's per-packet cost grows with flit count, so pure
	// 128B read traffic completes fewer packets per second than 16B
	// traffic through the same engine.
	rate := func(size int) float64 {
		r := newRig(t)
		p := NewGUPSPort(r.eng, DefaultConfig(), r.ctrl, r.mapp, 0, GUPSConfig{
			Size: size, Mask: addr.AllAccess, Seed: 7, Tags: 1024,
		})
		r.eng.Schedule(0, func() { p.Start() })
		window := 50 * sim.Microsecond
		r.eng.Run(window)
		p.Stop()
		reads := p.Mon.Reads
		r.eng.Drain()
		return float64(reads) / window.Seconds()
	}
	small, large := rate(16), rate(128)
	if small <= large {
		t.Fatalf("16B rate %v not above 128B rate %v", small, large)
	}
}

func TestMonitorReset(t *testing.T) {
	var m Monitor
	tr := &packet.Transaction{Size: 16, TGen: 0, TDone: 100 * sim.Nanosecond}
	m.record(tr)
	if m.Reads != 1 {
		t.Fatal("record did not count")
	}
	m.Reset(5 * sim.Microsecond)
	if m.Reads != 0 || m.AggLat != 0 || m.MinLat != 0 || m.CountedBytes != 0 {
		t.Fatal("reset left residue")
	}
	if m.WindowStart() != 5*sim.Microsecond {
		t.Fatalf("window start = %v", m.WindowStart())
	}
}

func TestTagPoolRoundTrip(t *testing.T) {
	p := newTagPool(3, 16, nil)
	seen := map[uint16]bool{}
	for i := 0; i < 16; i++ {
		tag, ok := p.take()
		if !ok {
			t.Fatalf("take %d failed", i)
		}
		if seen[tag] {
			t.Fatalf("duplicate tag %d", tag)
		}
		seen[tag] = true
	}
	if _, ok := p.take(); ok {
		t.Fatal("take succeeded on empty pool")
	}
	woken := false
	p.notify(func() { woken = true })
	p.put(42)
	if !woken {
		t.Fatal("waiter not woken")
	}
	if p.outstanding() != 15 {
		t.Fatalf("outstanding = %d, want 15", p.outstanding())
	}
}

func TestConfigClock(t *testing.T) {
	if got := DefaultConfig().Clock().Period; got != 5333 {
		t.Fatalf("FPGA period = %dps, want 5333", got)
	}
}
