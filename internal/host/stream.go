package host

import (
	"hmcsim/internal/addr"
	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
)

// Request is one entry of a memory trace driven through a StreamPort.
type Request struct {
	Addr  uint64
	Size  int
	Write bool
}

// StreamPort is the multi-port stream firmware personality (Figure 5b):
// it plays a finite trace, one request per FPGA cycle while tags last,
// and streams each response's data back to the host over a dedicated
// channel that moves StreamChanBytesPerCycle per cycle. That readback
// serialization is the dominant queuing term in the paper's low-load
// latency curves (Figures 7 and 8).
type StreamPort struct {
	id    int
	eng   *sim.Engine
	ctrl  *Controller
	clock sim.Clock
	cfg   Config
	mapp  *addr.Mapping
	tags  *tagPool

	Mon Monitor

	channel *sim.Server
	chanq   sim.Ring[*packet.Transaction] // on the readback channel, FIFO
	chanFn  func()

	tickT    *sim.Timer // reusable clock-tick event
	resumeFn func()     // pre-bound tag-pool waiter

	trace   []Request
	cursor  int
	pending int // issued but not yet retired
	running bool
	issued  uint64

	// OnIdle, when non-nil, fires once the current trace is fully issued
	// and every response has drained. Experiments chain bursts with it.
	OnIdle func()
}

// NewStreamPort builds stream port id and registers it with the
// controller.
func NewStreamPort(eng *sim.Engine, hostCfg Config, ctrl *Controller, mapp *addr.Mapping, id int) *StreamPort {
	p := &StreamPort{
		id:      id,
		eng:     eng,
		ctrl:    ctrl,
		clock:   hostCfg.Clock(),
		cfg:     hostCfg,
		mapp:    mapp,
		tags:    newTagPool(id, hostCfg.StreamTagsPerPort, hostCfg.Trace),
		channel: sim.NewServer(eng),
	}
	p.chanFn = p.chanDone
	p.tickT = eng.NewTimer(p.tick)
	p.resumeFn = func() {
		if p.running {
			p.tickT.At(p.clock.Next(p.eng.Now()))
		}
	}
	ctrl.register(id, p)
	return p
}

// ID returns the port number.
func (p *StreamPort) ID() int { return p.id }

// Play starts issuing the given trace. It panics if the port is still
// draining a previous trace.
func (p *StreamPort) Play(trace []Request) {
	if p.running || p.pending > 0 {
		panic("host: StreamPort.Play while busy")
	}
	p.trace = trace
	p.cursor = 0
	p.running = true
	p.tickT.At(p.clock.Next(p.eng.Now()))
}

// Busy reports whether the port still has work in flight.
func (p *StreamPort) Busy() bool { return p.running || p.pending > 0 }

// Outstanding returns the number of requests in flight.
func (p *StreamPort) Outstanding() int { return p.tags.outstanding() }

func (p *StreamPort) tick() {
	if !p.running {
		return
	}
	if p.cursor >= len(p.trace) {
		p.running = false
		p.maybeIdle()
		return
	}
	tag, ok := p.tags.take()
	if !ok {
		p.tags.notify(p.resumeFn)
		return
	}
	req := p.trace[p.cursor]
	p.cursor++
	loc := p.mapp.Decode(req.Addr)
	tr := packet.GetTransaction()
	tr.ID = p.issued | uint64(p.id)<<56
	tr.Write = req.Write
	tr.Addr = req.Addr
	tr.Size = req.Size
	tr.Port = p.id
	tr.Tag = tag
	tr.Vault, tr.Quadrant, tr.Bank, tr.Row = loc.Vault, loc.Quadrant, loc.Bank, loc.Row
	tr.TGen = p.eng.Now()
	p.issued++
	p.pending++
	p.ctrl.Submit(tr)
	p.tickT.At(p.clock.Next(p.eng.Now() + 1))
}

// complete streams the response data to the host over the port's channel
// before retiring the transaction.
func (p *StreamPort) complete(tr *packet.Transaction) {
	flits := packet.ResponseFlits(tr.Write, tr.Size)
	perCycleBytes := p.cfg.StreamChanBytesPerCycle
	cycles := (flits*packet.FlitBytes + perCycleBytes - 1) / perCycleBytes
	p.chanq.Push(tr)
	p.channel.Reserve(p.clock.Cycles(int64(cycles)), p.chanFn)
}

// chanDone fires when the readback channel finishes its oldest transfer;
// transfers complete in Reserve order, so the head of the ring is the
// transaction whose response just finished streaming to the host.
func (p *StreamPort) chanDone() {
	tr := p.chanq.Pop()
	tr.TDone = p.eng.Now()
	p.Mon.record(tr)
	p.tags.put(tr.Tag)
	packet.PutTransaction(tr)
	p.pending--
	p.maybeIdle()
}

func (p *StreamPort) maybeIdle() {
	if !p.running && p.pending == 0 && p.OnIdle != nil {
		fn := p.OnIdle
		fn()
	}
}
