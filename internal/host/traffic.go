package host

import (
	"hmcsim/internal/addr"
	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
	"hmcsim/internal/traffic"
)

// TrafficConfig shapes one synthetic-traffic port.
type TrafficConfig struct {
	Size int          // request data size in bytes (16..128)
	Gen  *traffic.Gen // compiled traffic generator (pattern, mix, phases)
	Tags int          // outstanding-request bound; 0 means the config default
}

// TrafficPort drives a compiled traffic.Gen against the controller. It
// is the third firmware personality beside GUPSPort and StreamPort:
// like GUPS it free-runs on the FPGA clock, but the address stream, the
// read/write mix, the phase script, and the injection discipline all
// come from the generator — closed-loop ports issue every cycle while a
// tag is free, open-loop ports meter issues through a token bucket
// toward a target GB/s.
//
// The steady-state issue path allocates nothing: the tick and phase
// callbacks are bound once in Timers, transactions come from the packet
// free lists, and Gen.Next is allocation-free by contract.
type TrafficPort struct {
	id    int
	eng   *sim.Engine
	ctrl  *Controller
	clock sim.Clock
	size  int
	gen   *traffic.Gen
	mapp  *addr.Mapping
	tags  *tagPool

	Mon Monitor

	tickT     *sim.Timer // reusable clock-tick event
	phaseT    *sim.Timer // reusable phase-boundary event
	unblockFn func()     // pre-bound tag-pool waiter

	closed bool
	phases []traffic.PhaseInfo
	phase  int

	// Open-loop token bucket in 1/65536-byte fixed point. Tokens accrue
	// once per tick; the cap bounds the burst a stall can bank.
	bucket    int64
	perTick   int64
	sizeFP    int64
	bucketCap int64

	active  bool
	off     bool // inside an Off phase
	ticking bool // a tick event is scheduled
	blocked bool // parked on the tag pool
	issued  uint64
}

// NewTrafficPort builds traffic port id and registers it with the
// controller.
func NewTrafficPort(eng *sim.Engine, hostCfg Config, ctrl *Controller, mapp *addr.Mapping, id int, cfg TrafficConfig) *TrafficPort {
	if !packet.ValidSize(cfg.Size) {
		panic("host: invalid traffic request size")
	}
	if cfg.Gen == nil {
		panic("host: traffic port needs a compiled generator")
	}
	tags := cfg.Tags
	if tags <= 0 {
		tags = hostCfg.GUPSTagsPerPort
	}
	p := &TrafficPort{
		id:     id,
		eng:    eng,
		ctrl:   ctrl,
		clock:  hostCfg.Clock(),
		size:   cfg.Size,
		gen:    cfg.Gen,
		mapp:   mapp,
		tags:   newTagPool(id, tags, hostCfg.Trace),
		closed: cfg.Gen.Closed(),
		phases: cfg.Gen.Phases(),
		sizeFP: int64(cfg.Size) << 16,
	}
	p.bucketCap = 8 * p.sizeFP
	p.tickT = eng.NewTimer(p.tick)
	p.phaseT = eng.NewTimer(p.phaseAdvance)
	p.unblockFn = func() {
		p.blocked = false
		if p.active && !p.off && !p.ticking {
			p.armTick(p.clock.Next(p.eng.Now()))
		}
	}
	ctrl.register(id, p)
	return p
}

// ID returns the port number.
func (p *TrafficPort) ID() int { return p.id }

// Start activates the port (and its phase script) at the current
// simulation time.
func (p *TrafficPort) Start() {
	if p.active {
		return
	}
	p.active = true
	if len(p.phases) > 0 {
		p.phase = 0
		p.applyPhase()
		p.phaseT.After(p.phases[0].Duration)
		return
	}
	p.setRate(p.gen.RateGBps())
	p.armTick(p.clock.Next(p.eng.Now()))
}

// Stop deactivates the port; in-flight requests still complete.
func (p *TrafficPort) Stop() { p.active = false }

// Outstanding returns the number of requests in flight.
func (p *TrafficPort) Outstanding() int { return p.tags.outstanding() }

// Issued returns the number of requests generated since Start.
func (p *TrafficPort) Issued() uint64 { return p.issued }

// armTick schedules the tick callback; the flag keeps the chain single
// so a phase boundary and a tag release cannot double-issue.
func (p *TrafficPort) armTick(at sim.Time) {
	p.ticking = true
	p.tickT.At(at)
}

// setRate converts an open-loop GB/s target into token-bucket credit
// per FPGA cycle (closed-loop ports never consult the bucket).
func (p *TrafficPort) setRate(gbps float64) {
	if p.closed {
		return
	}
	// bytes/cycle = GB/s * 1e9 * period_ps * 1e-12; in fixed point that
	// is gbps * period / 1000 * 65536.
	p.perTick = int64(gbps*float64(p.clock.Period)/1000*65536 + 0.5)
}

// phaseAdvance fires at each phase boundary; the script repeats.
func (p *TrafficPort) phaseAdvance() {
	if !p.active {
		return
	}
	p.phase = (p.phase + 1) % len(p.phases)
	p.applyPhase()
	p.phaseT.After(p.phases[p.phase].Duration)
}

// applyPhase installs the current phase's pattern, rate, and on/off
// state, restarting the tick chain when a silent phase ends.
func (p *TrafficPort) applyPhase() {
	info := p.phases[p.phase]
	p.gen.UsePhase(p.phase)
	p.off = info.Off
	p.setRate(info.RateGBps)
	if !p.off && !p.ticking && !p.blocked {
		p.armTick(p.clock.Next(p.eng.Now()))
	}
}

func (p *TrafficPort) tick() {
	p.ticking = false
	if !p.active || p.off {
		return
	}
	if p.closed {
		tag, ok := p.tags.take()
		if !ok {
			p.park()
			return
		}
		p.issue(tag)
		p.armTick(p.clock.Next(p.eng.Now() + 1))
		return
	}
	p.bucket += p.perTick
	if p.bucket > p.bucketCap {
		p.bucket = p.bucketCap
	}
	for p.bucket >= p.sizeFP {
		tag, ok := p.tags.take()
		if !ok {
			p.park()
			return
		}
		p.bucket -= p.sizeFP
		p.issue(tag)
	}
	p.armTick(p.clock.Next(p.eng.Now() + 1))
}

// park registers the port on the tag pool; the tick chain resumes when
// a tag frees.
func (p *TrafficPort) park() {
	if !p.blocked {
		p.blocked = true
		p.tags.notify(p.unblockFn)
	}
}

// issue builds and submits the next transaction from the generator.
func (p *TrafficPort) issue(tag uint16) {
	a, write := p.gen.Next()
	a &= addr.CubeBytes - 1
	loc := p.mapp.Decode(a)
	tr := packet.GetTransaction()
	tr.ID = p.issued | uint64(p.id)<<56
	tr.Write = write
	tr.Addr = a
	tr.Size = p.size
	tr.Port = p.id
	tr.Tag = tag
	tr.Vault, tr.Quadrant, tr.Bank, tr.Row = loc.Vault, loc.Quadrant, loc.Bank, loc.Row
	tr.TGen = p.eng.Now()
	p.issued++
	p.ctrl.Submit(tr)
}

// complete implements the controller callback: like GUPS, response data
// is discarded on the FPGA, so the transaction retires immediately.
func (p *TrafficPort) complete(tr *packet.Transaction) {
	tr.TDone = p.eng.Now()
	p.Mon.record(tr)
	p.tags.put(tr.Tag)
	packet.PutTransaction(tr)
}
