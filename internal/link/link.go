// Package link models the HMC external serial links: full-duplex lane
// bundles that serialize 16-byte flits, token-based flow control into the
// receiver's input buffer, and CRC-triggered retransmission from a retry
// buffer.
//
// A 15 Gbps half-width link (8 lanes) moves one flit every ~1.07 ns per
// direction, 15 GB/s raw. Two such links give the 60 GB/s peak
// bi-directional figure of Equation 1 in the paper.
package link

import (
	"fmt"

	"hmcsim/internal/obs"
	"hmcsim/internal/packet"
	"hmcsim/internal/phys"
	"hmcsim/internal/sim"
)

// Config describes one direction of a serial link.
type Config struct {
	Lanes        int           // 8 = half width, 16 = full width
	LaneRate     phys.LaneRate // e.g. 15 Gbps
	WireLatency  sim.Time      // SerDes + propagation delay per packet
	RxBufFlits   int           // receiver input buffer, in flits (token pool)
	ErrorRate    float64       // per-packet corruption probability
	RetryLatency sim.Time      // IRTRY round trip before retransmission
	Seed         uint64        // RNG seed for error injection

	// Trace, when non-nil, observes transmissions, retries and
	// serializer busy time for this direction. Nil keeps the egress hook
	// a single predictable branch.
	Trace *obs.LinkTracer
}

// DefaultConfig returns the AC-510 link configuration: half-width,
// 15 Gbps, clean channel.
func DefaultConfig() Config {
	return Config{
		Lanes:        8,
		LaneRate:     phys.Gbps(15),
		WireLatency:  12 * sim.Nanosecond,
		RxBufFlits:   512,
		ErrorRate:    0,
		RetryLatency: 80 * sim.Nanosecond,
		Seed:         1,
	}
}

// Bandwidth returns the raw per-direction bandwidth of the configured
// lane bundle.
func (c Config) Bandwidth() phys.Bandwidth {
	return phys.LinkBandwidth(c.Lanes, c.LaneRate)
}

// FlitTime returns the serialization time of one 16-byte flit.
func (c Config) FlitTime() sim.Time {
	return c.Bandwidth().TimeFor(packet.FlitBytes)
}

// Dir is one direction of a link: a serializer, the far side's input
// buffer tokens, and a delivery callback.
//
// Packets move through two fixed-order stages — the serializer, then the
// wire — each backed by a ring of in-flight packets and a callback bound
// once at construction, so steady-state transmission allocates nothing.
type Dir struct {
	name     string
	eng      *sim.Engine
	cfg      Config
	flitTime sim.Time
	ser      *sim.Server
	tokens   *sim.TokenPool
	rng      *sim.Rand
	deliver  func(*packet.Packet)

	serq   sim.Ring[*packet.Packet] // on the serializer, FIFO by Reserve order
	serFn  func()
	wireq  sim.Ring[*packet.Packet] // on the wire, FIFO by constant WireLatency
	wireFn func()

	packets uint64
	flits   uint64
	retries uint64
	trace   *obs.LinkTracer
}

// NewDir builds one link direction. deliver is invoked on the receiving
// side once a packet has fully deserialized and passed its CRC check.
// The receiver must call Release when it drains the packet from its input
// buffer, or the link will exhaust its tokens and stall — which is exactly
// how real back-pressure propagates to the host.
func NewDir(eng *sim.Engine, name string, cfg Config, deliver func(*packet.Packet)) *Dir {
	if cfg.Lanes <= 0 || cfg.LaneRate <= 0 {
		panic(fmt.Sprintf("link %s: invalid lane config %d x %v", name, cfg.Lanes, cfg.LaneRate))
	}
	if cfg.RxBufFlits <= 0 {
		panic(fmt.Sprintf("link %s: RxBufFlits must be positive", name))
	}
	d := &Dir{
		name:     name,
		eng:      eng,
		cfg:      cfg,
		flitTime: cfg.FlitTime(),
		ser:      sim.NewServer(eng),
		tokens:   sim.NewTokenPool(cfg.RxBufFlits),
		rng:      sim.NewRand(cfg.Seed),
		deliver:  deliver,
		trace:    cfg.Trace,
	}
	d.serFn = d.serDone
	d.wireFn = d.wireDone
	return d
}

// TrySend begins transmitting p if the receiver has buffer tokens for all
// of its flits. It reports false, leaving the link unchanged, when tokens
// are unavailable.
func (d *Dir) TrySend(p *packet.Packet) bool {
	if !d.tokens.TryAcquire(p.Flits()) {
		return false
	}
	d.transmit(p)
	return true
}

// NotifyTokens registers fn to run the next time tokens are released,
// letting a blocked sender retry without polling.
func (d *Dir) NotifyTokens(fn func()) { d.tokens.Notify(fn) }

// Release returns buffer space for n flits; the receiving component calls
// it when a packet leaves the link input buffer.
func (d *Dir) Release(n int) { d.tokens.Release(n) }

func (d *Dir) transmit(p *packet.Packet) {
	d.serq.Push(p)
	d.ser.Reserve(d.flitTime*sim.Time(p.Flits()), d.serFn)
}

// serDone fires when the serializer finishes its oldest reservation;
// reservations complete in Reserve order, so the head of serq is the
// packet that just finished.
func (d *Dir) serDone() {
	p := d.serq.Pop()
	flits := p.Flits()
	if d.cfg.ErrorRate > 0 && d.rng.Float64() < d.cfg.ErrorRate {
		// The receiver's CRC check fails; after the IRTRY exchange the
		// packet is retransmitted from the retry buffer. Tokens remain
		// held: the receiver reserved space for this packet. The retry
		// closure is the one allocation on this path; it only exists on
		// lossy-link configurations.
		d.retries++
		d.trace.OnRetry(int64(d.flitTime) * int64(flits))
		d.eng.Schedule(d.cfg.RetryLatency, func() { d.transmit(p) })
		return
	}
	d.packets++
	d.flits += uint64(flits)
	d.trace.OnTx(flits, int64(d.flitTime)*int64(flits))
	d.wireq.Push(p)
	d.eng.Schedule(d.cfg.WireLatency, d.wireFn)
}

// wireDone fires WireLatency after a packet finished serializing; the
// latency is constant, so deliveries complete in transmission order.
func (d *Dir) wireDone() { d.deliver(d.wireq.Pop()) }

// Name returns the direction's diagnostic name.
func (d *Dir) Name() string { return d.name }

// Packets returns the number of packets delivered (excluding retried
// transmissions).
func (d *Dir) Packets() uint64 { return d.packets }

// Flits returns the number of flits delivered.
func (d *Dir) Flits() uint64 { return d.flits }

// Bytes returns the number of bytes delivered.
func (d *Dir) Bytes() uint64 { return d.flits * packet.FlitBytes }

// Retries returns the number of CRC-triggered retransmissions.
func (d *Dir) Retries() uint64 { return d.retries }

// Utilization reports the serializer's busy fraction over [0, now].
func (d *Dir) Utilization(now sim.Time) float64 { return d.ser.Utilization(now) }

// TokensAvailable exposes the current free space in the far buffer.
func (d *Dir) TokensAvailable() int { return d.tokens.Available() }

// Link is a full-duplex link: a request direction (host to cube) and a
// response direction (cube to host).
type Link struct {
	ID   int
	Req  *Dir
	Resp *Dir
}

// New builds full-duplex link id with the same physical configuration in
// both directions.
func New(eng *sim.Engine, id int, cfg Config, deliverReq, deliverResp func(*packet.Packet)) *Link {
	reqCfg, respCfg := cfg, cfg
	reqCfg.Seed = cfg.Seed*2 + 1
	respCfg.Seed = cfg.Seed*2 + 2
	return &Link{
		ID:   id,
		Req:  NewDir(eng, fmt.Sprintf("link%d.req", id), reqCfg, deliverReq),
		Resp: NewDir(eng, fmt.Sprintf("link%d.resp", id), respCfg, deliverResp),
	}
}
