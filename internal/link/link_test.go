package link

import (
	"testing"

	"hmcsim/internal/packet"
	"hmcsim/internal/phys"
	"hmcsim/internal/sim"
)

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.WireLatency = 10 * sim.Nanosecond
	return cfg
}

func TestConfigBandwidth(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.Bandwidth().GBpsValue(); got != 15 {
		t.Fatalf("half-width 15Gbps bandwidth = %v GB/s, want 15", got)
	}
	// One flit at 15 GB/s is ~1067 ps.
	ft := cfg.FlitTime()
	if ft < 1066 || ft > 1068 {
		t.Fatalf("flit time = %dps, want ~1067", ft)
	}
}

func TestPeakBandwidthEquation(t *testing.T) {
	// Equation 1: 2 links x 8 lanes x 15 Gbps x 2 duplex = 60 GB/s.
	got := phys.PeakBidirectional(2, 8, phys.Gbps(15))
	if got.GBpsValue() != 60 {
		t.Fatalf("Equation 1 = %v GB/s, want 60", got.GBpsValue())
	}
}

func TestDirDeliversAfterSerializationAndWire(t *testing.T) {
	eng := sim.NewEngine()
	var deliveredAt sim.Time
	d := NewDir(eng, "t", testCfg(), func(p *packet.Packet) { deliveredAt = eng.Now() })
	p := &packet.Packet{Cmd: packet.CmdReadResp, Size: 128} // 9 flits
	eng.Schedule(0, func() {
		if !d.TrySend(p) {
			t.Error("send rejected on idle link")
		}
	})
	eng.Drain()
	// 9 flits x 1067ps = 9603ps, + 10ns wire.
	want := 9*testCfg().FlitTime() + 10*sim.Nanosecond
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestDirSerializesBackToBack(t *testing.T) {
	eng := sim.NewEngine()
	var times []sim.Time
	d := NewDir(eng, "t", testCfg(), func(p *packet.Packet) { times = append(times, eng.Now()) })
	eng.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			d.TrySend(&packet.Packet{Cmd: packet.CmdRead, Size: 16}) // 1 flit each
		}
	})
	eng.Drain()
	if len(times) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(times))
	}
	ft := testCfg().FlitTime()
	for i, at := range times {
		want := sim.Time(i+1)*ft + 10*sim.Nanosecond
		if at != want {
			t.Fatalf("packet %d delivered at %v, want %v", i, at, want)
		}
	}
}

func TestDirTokenBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCfg()
	cfg.RxBufFlits = 10
	var got []*packet.Packet
	d := NewDir(eng, "t", cfg, func(p *packet.Packet) { got = append(got, p) })
	big := &packet.Packet{Cmd: packet.CmdReadResp, Size: 128}  // 9 flits
	small := &packet.Packet{Cmd: packet.CmdReadResp, Size: 32} // 3 flits
	eng.Schedule(0, func() {
		if !d.TrySend(big) {
			t.Error("first send rejected")
		}
		if d.TrySend(small) {
			t.Error("send accepted beyond rx buffer")
		}
		// Register retry; release tokens later as the receiver drains.
		d.NotifyTokens(func() {
			if !d.TrySend(small) {
				t.Error("send rejected after token release")
			}
		})
	})
	eng.Schedule(100*sim.Nanosecond, func() { d.Release(big.Flits()) })
	eng.Drain()
	if len(got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(got))
	}
}

func TestDirRetryOnError(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testCfg()
	cfg.ErrorRate = 1.0 // first attempts always fail...
	delivered := 0
	d := NewDir(eng, "t", cfg, func(p *packet.Packet) { delivered++ })
	eng.Schedule(0, func() {
		d.TrySend(&packet.Packet{Cmd: packet.CmdRead, Size: 16})
	})
	// ...so flip to a clean channel after the first corruption.
	eng.Schedule(2*sim.Nanosecond, func() { d.cfg.ErrorRate = 0 })
	eng.Drain()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 after retry", delivered)
	}
	if d.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", d.Retries())
	}
}

func TestDirRetryPreservesOrderEventually(t *testing.T) {
	// With a noisy channel every packet still arrives exactly once.
	eng := sim.NewEngine()
	cfg := testCfg()
	cfg.ErrorRate = 0.3
	cfg.Seed = 99
	seen := map[uint16]int{}
	d := NewDir(eng, "t", cfg, func(p *packet.Packet) { seen[p.Tag]++ })
	eng.Schedule(0, func() {
		for i := 0; i < 50; i++ {
			tag := uint16(i)
			send := func() {}
			send = func() {
				if !d.TrySend(&packet.Packet{Cmd: packet.CmdRead, Size: 16, Tag: tag}) {
					d.NotifyTokens(send)
				}
			}
			send()
		}
	})
	// Drain receiver continuously so tokens recycle.
	eng.Drain()
	if len(seen) != 50 {
		t.Fatalf("saw %d distinct packets, want 50", len(seen))
	}
	for tag, n := range seen {
		if n != 1 {
			t.Fatalf("tag %d delivered %d times", tag, n)
		}
	}
	if d.Retries() == 0 {
		t.Fatal("noisy link produced no retries")
	}
}

func TestDirStats(t *testing.T) {
	eng := sim.NewEngine()
	var d *Dir
	d = NewDir(eng, "t", testCfg(), func(p *packet.Packet) { d.Release(p.Flits()) })
	eng.Schedule(0, func() {
		d.TrySend(&packet.Packet{Cmd: packet.CmdReadResp, Size: 64}) // 5 flits
		d.TrySend(&packet.Packet{Cmd: packet.CmdRead, Size: 16})     // 1 flit
	})
	eng.Drain()
	if d.Packets() != 2 || d.Flits() != 6 {
		t.Fatalf("packets/flits = %d/%d, want 2/6", d.Packets(), d.Flits())
	}
	if d.Bytes() != 96 {
		t.Fatalf("bytes = %d, want 96", d.Bytes())
	}
	if d.TokensAvailable() != testCfg().RxBufFlits {
		t.Fatalf("tokens not fully recycled: %d", d.TokensAvailable())
	}
}

func TestLinkFullDuplex(t *testing.T) {
	eng := sim.NewEngine()
	var reqAt, respAt sim.Time
	l := New(eng, 0, testCfg(),
		func(p *packet.Packet) { reqAt = eng.Now() },
		func(p *packet.Packet) { respAt = eng.Now() })
	eng.Schedule(0, func() {
		l.Req.TrySend(&packet.Packet{Cmd: packet.CmdRead, Size: 128})
		l.Resp.TrySend(&packet.Packet{Cmd: packet.CmdReadResp, Size: 128})
	})
	eng.Drain()
	// Directions do not contend: the 1-flit request and the 9-flit
	// response serialize concurrently.
	ft := testCfg().FlitTime()
	if reqAt != ft+10*sim.Nanosecond {
		t.Fatalf("request delivered at %v, want %v", reqAt, ft+10*sim.Nanosecond)
	}
	if respAt != 9*ft+10*sim.Nanosecond {
		t.Fatalf("response delivered at %v, want %v", respAt, 9*ft+10*sim.Nanosecond)
	}
}

func TestDirUtilization(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDir(eng, "t", testCfg(), func(p *packet.Packet) {})
	eng.Schedule(0, func() {
		d.TrySend(&packet.Packet{Cmd: packet.CmdReadResp, Size: 128}) // 9 flits
	})
	eng.Drain()
	busy := 9 * testCfg().FlitTime()
	total := eng.Now()
	got := d.Utilization(total)
	want := float64(busy) / float64(total)
	if got < want*0.99 || got > want*1.01 {
		t.Fatalf("utilization = %v, want ~%v", got, want)
	}
}
