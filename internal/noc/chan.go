package noc

import (
	"fmt"

	"hmcsim/internal/obs"
	"hmcsim/internal/sim"
)

// Chan is a bridge edge of the fabric: a serializing channel whose two
// endpoints may live on different engines (shards). Three kinds of
// fabric edges are bridges — link ingress into a quadrant router, the
// quadrant-router full mesh, and quadrant router to link egress — and
// they are bridges in every build, serial or sharded, so both builds
// execute the identical event sequence.
//
// A bridge differs from the in-router output pipeline in two ways that
// make it shard-safe:
//
//   - Its events carry placement-independent ordering keys
//     (sim.ChanKey), so same-instant deliveries sort by the model's
//     wiring rather than by which engine's scheduling counter got there
//     first.
//   - Credits return over the wire: the sender learns of a delivery one
//     flit + one hop (the channel's reverse latency) after it happens,
//     instead of at the delivery instant. That reverse latency is what
//     gives the sharded group a non-zero lookahead window on every
//     cut edge.
//
// Message flow: accept reserves ser+hop on the channel's server — back
// to back reservations reproduce the in-router pipeline's pacing of one
// message per ser+hop — and schedules delivery on the destination
// engine at the reservation's end. Delivery hands the message to the
// downstream outlet (parking on it under back-pressure), then sends the
// credit back to the source engine after the reverse latency, where the
// credit pool, OnForward and the forwarded count are maintained.
//
// The SPSC rings carrying messages between the endpoints use plain
// fields: each index is written by exactly one endpoint, and slot
// handoff is ordered by the group's window barriers (a delivery event
// always crosses at least one barrier after the accept that filled the
// slot, and a slot is reused only after its credit came back).
type Chan struct {
	name     string
	src, dst *sim.Engine
	flitTime sim.Time
	hop      sim.Time
	retLat   sim.Time // credit-return wire latency: one flit + one hop

	credits *sim.TokenPool // nil when the caller owns admission control
	server  *sim.Server    // serialization pacing, on the source engine
	out     Outlet

	// OnForward, when non-nil, runs on the source engine as each
	// message's credit returns, with the message's flit count. Link
	// ingress uses it to return link-level tokens.
	OnForward func(flits int)

	// Trace, when non-nil, observes accepts at this channel (standalone
	// ingress channels only; router-owned bridge slots are traced by
	// their router).
	Trace *obs.NoCTracer

	// Stall, when non-nil, observes credit stalls: TryOut attempts
	// refused by an empty credit pool. Kept separate from Trace because
	// router-owned bridge slots must report stalls without re-counting
	// hops their router already counted. TryOut always runs on the
	// source engine, so the source shard's tracer is the race-free
	// attribution.
	Stall *obs.NoCTracer

	fwdID, retID   uint64 // channel IDs for the two event directions
	fwdSeq, retSeq uint64 // per-direction sequence numbers

	flight  msgRing // src pushes at accept, dst pops at delivery
	pending msgRing // dst-owned: delivered but not yet taken downstream
	await   intRing // src-owned: flit counts awaiting credit return

	received  uint64 // src-side: messages accepted
	forwarded uint64 // src-side: credits returned
	stalls    uint64 // src-side: TryOut refusals on an empty credit pool

	delivFn func() // delivery event, runs on dst
	retryFn func() // downstream freed up, runs on dst
	retFn   func() // credit return, runs on src
}

// NewChan builds a bridge from src to dst feeding out. credits > 0
// installs an admission pool of that many messages; credits == 0 leaves
// admission to the caller (Inject), bounded by bound messages in
// flight. The channel registers its reverse latency as cross-shard
// lookahead with src's group, if any.
func NewChan(src, dst *sim.Engine, name string, cfg Config, credits, bound int, out Outlet) *Chan {
	if credits > 0 {
		bound = credits
	}
	if bound <= 0 {
		panic(fmt.Sprintf("noc %s: channel needs a positive bound", name))
	}
	c := &Chan{
		name:     name,
		src:      src,
		dst:      dst,
		flitTime: cfg.FlitTime,
		hop:      cfg.HopLatency,
		retLat:   cfg.FlitTime + cfg.HopLatency,
		server:   sim.NewServer(src),
		out:      out,
		fwdID:    src.AllocChanID(),
		retID:    src.AllocChanID(),
		flight:   newMsgRing(bound),
		pending:  newMsgRing(bound),
		await:    newIntRing(bound),
	}
	if credits > 0 {
		c.credits = sim.NewTokenPool(credits)
	}
	// Both directions' minimum latency is one flit + one hop.
	src.ObserveLookahead(c.retLat)
	c.delivFn = c.deliver
	c.retryFn = c.drainPending
	c.retFn = c.creditReturn
	return c
}

// Name returns the channel's diagnostic name.
func (c *Chan) Name() string { return c.name }

// TryOut implements Outlet: admission against the credit pool, then
// acceptance. A true return transfers ownership of m to the channel.
func (c *Chan) TryOut(m *Message) bool {
	if c.credits != nil && !c.credits.TryAcquire(1) {
		c.stalls++
		c.Stall.OnCreditStall()
		return false
	}
	c.accept(m)
	return true
}

// NotifyOut implements Outlet: fn fires when a credit frees up.
func (c *Chan) NotifyOut(m *Message, fn func()) {
	if c.credits == nil {
		fn()
		return
	}
	c.credits.Notify(fn)
}

// Inject accepts m without consuming a credit; the caller owns the
// admission control (link ingress, where the link-level token pool is
// the real bound).
func (c *Chan) Inject(m *Message) { c.accept(m) }

func (c *Chan) accept(m *Message) {
	if c.await.len() == len(c.await.buf) {
		panic(fmt.Sprintf("noc %s: channel bound %d exceeded; the caller's admission control is broken", c.name, len(c.await.buf)))
	}
	c.received++
	flits := m.Flits()
	end := c.server.Reserve(c.flitTime*sim.Time(flits)+c.hop, nil)
	c.flight.push(m)
	c.await.push(flits)
	c.fwdSeq++
	c.src.CrossAt(c.dst, end, sim.ChanKey(c.fwdID, c.fwdSeq), c.delivFn)
	if c.Trace != nil {
		c.Trace.OnHop(c.Queued())
	}
}

// deliver runs on the destination engine when a message's ser+hop
// elapses. Messages of one channel deliver in accept order (the server
// end times are non-decreasing and the sequence keys break ties), so
// the flight ring's head is always the delivered message. Whenever
// pending is non-empty exactly one drain driver exists — a parked
// outlet registration, a scheduled continuation, or a running
// drainPending — so deliver only starts one when the queue was empty.
func (c *Chan) deliver() {
	idle := c.pending.len() == 0
	c.pending.push(c.flight.pop())
	if idle {
		c.drainPending()
	}
}

// drainPending hands the head pending message downstream, parking on
// the outlet under back-pressure, and sends its credit back to the
// source engine after the reverse latency.
//
// It makes at most one attempt per invocation: a further pending
// message is handed over in a fresh same-instant event rather than
// synchronously. Retrying in place would re-register on the downstream
// credit pool from inside its waiter fire, ahead of every other parked
// channel, permanently capturing the pool; one attempt per event keeps
// contending channels alternating, like the in-router pipeline whose
// next delivery is always a later event.
func (c *Chan) drainPending() {
	m := c.pending.peek()
	if !c.out.TryOut(m) {
		c.out.NotifyOut(m, c.retryFn)
		return
	}
	// The outlet owns m now; it must not be touched again.
	c.pending.pop()
	c.retSeq++
	c.dst.CrossAt(c.src, c.dst.Now()+c.retLat, sim.ChanKey(c.retID, c.retSeq), c.retFn)
	if c.pending.len() > 0 {
		c.dst.Schedule(0, c.retryFn)
	}
}

// creditReturn runs on the source engine as each delivery's credit
// arrives back. Returns ride the same FIFO wire, so the await ring's
// head is always the message being credited.
func (c *Chan) creditReturn() {
	flits := c.await.pop()
	c.forwarded++
	if c.credits != nil {
		c.credits.Release(1)
	}
	if c.OnForward != nil {
		c.OnForward(flits)
	}
}

// Received returns the number of messages accepted into the channel.
func (c *Chan) Received() uint64 { return c.received }

// Forwarded returns the number of messages whose downstream delivery
// has been credited back.
func (c *Chan) Forwarded() uint64 { return c.forwarded }

// Queued returns the source-side occupancy: messages accepted whose
// credit has not yet returned.
func (c *Chan) Queued() int { return c.await.len() }

// Stalls returns the number of TryOut attempts the credit pool refused:
// how often upstream traffic found this bridge full.
func (c *Chan) Stalls() uint64 { return c.stalls }

// msgRing is a fixed-capacity FIFO of messages with single-writer
// indices: only the producer touches tail, only the consumer touches
// head. Capacity is proven sufficient by the credit bound, so indexing
// is unchecked modular arithmetic.
type msgRing struct {
	buf        []*Message
	head, tail uint64
}

func newMsgRing(n int) msgRing { return msgRing{buf: make([]*Message, n)} }

func (r *msgRing) push(m *Message) {
	r.buf[r.tail%uint64(len(r.buf))] = m
	r.tail++
}

func (r *msgRing) pop() *Message {
	i := r.head % uint64(len(r.buf))
	m := r.buf[i]
	r.buf[i] = nil
	r.head++
	return m
}

func (r *msgRing) peek() *Message { return r.buf[r.head%uint64(len(r.buf))] }

// len is only meaningful on rings owned entirely by one endpoint
// (pending, await); it reads both indices.
func (r *msgRing) len() int { return int(r.tail - r.head) }

// intRing is msgRing's shape for flit counts.
type intRing struct {
	buf        []int
	head, tail uint64
}

func newIntRing(n int) intRing { return intRing{buf: make([]int, n)} }

func (r *intRing) push(v int) {
	r.buf[r.tail%uint64(len(r.buf))] = v
	r.tail++
}

func (r *intRing) pop() int {
	i := r.head % uint64(len(r.buf))
	v := r.buf[i]
	r.head++
	return v
}

func (r *intRing) len() int { return int(r.tail - r.head) }
