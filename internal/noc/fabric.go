package noc

import (
	"fmt"

	"hmcsim/internal/sim"
)

// FuncOutlet adapts a pair of closures to the Outlet interface; the glue
// layer uses it to splice vault controllers and link egress ports into the
// fabric.
type FuncOutlet struct {
	Try    func(m *Message) bool
	Notify func(m *Message, fn func())
}

// TryOut implements Outlet.
func (f FuncOutlet) TryOut(m *Message) bool { return f.Try(m) }

// NotifyOut implements Outlet.
func (f FuncOutlet) NotifyOut(m *Message, fn func()) { f.Notify(m, fn) }

// Engines names the engine each part of the fabric runs on. In the
// serial build every entry is the same engine; a sharded build assigns
// quadrants to a sim.Group's shards (Hub carries the links and host).
// Quadrant q's routers, its bridge-channel source sides and its vaults
// all live on Quad[q].
type Engines struct {
	Hub  *sim.Engine
	Quad []*sim.Engine
}

// SingleEngine places the whole fabric on one engine: the serial
// reference layout.
func SingleEngine(e *sim.Engine, nQuads int) Engines {
	engs := Engines{Hub: e, Quad: make([]*sim.Engine, nQuads)}
	for q := range engs.Quad {
		engs.Quad[q] = e
	}
	return engs
}

// Fabric is the assembled logic-layer network: a request network carrying
// host-to-vault traffic and a response network carrying vault-to-host
// traffic, each built from one router per quadrant plus an ingress
// channel per external link. Every edge that connects different
// quadrants — ingress into a home router, the quadrant full mesh, and
// router to link egress — is a bridge Chan in every build, so the
// sharded and serial engines execute the identical event sequence.
type Fabric struct {
	cfg           Config
	nQuads        int
	vaultsPerQuad int
	linkHome      []int

	// ReqIngress[l] is the entry channel for requests arriving on link l.
	ReqIngress []*Chan
	// ReqRouters[q] is the request-network router of quadrant q.
	ReqRouters []*Router
	// RespRouters[q] is the response-network router of quadrant q.
	// Vault adapters inject responses here via TryOut.
	RespRouters []*Router
}

// NewFabric builds the two networks.
//
//   - linkHome[l] gives the quadrant where external link l attaches.
//   - ingressBound caps messages in flight inside one ingress channel;
//     the caller's link-level token pool is the real admission control.
//   - vaultOutlets[v] consumes requests for vault v (length nQuads *
//     vaultsPerQuad).
//   - linkEgress[l] consumes responses leaving on link l.
func NewFabric(engs Engines, cfg Config, nQuads, vaultsPerQuad int,
	linkHome []int, ingressBound int, vaultOutlets []Outlet, linkEgress []Outlet) *Fabric {

	nVaults := nQuads * vaultsPerQuad
	if len(vaultOutlets) != nVaults {
		panic(fmt.Sprintf("noc: %d vault outlets for %d vaults", len(vaultOutlets), nVaults))
	}
	if len(linkEgress) != len(linkHome) {
		panic(fmt.Sprintf("noc: %d egress outlets for %d links", len(linkEgress), len(linkHome)))
	}
	for _, h := range linkHome {
		if h < 0 || h >= nQuads {
			panic(fmt.Sprintf("noc: link home quadrant %d out of range", h))
		}
	}
	if len(engs.Quad) != nQuads || engs.Hub == nil {
		panic(fmt.Sprintf("noc: engines for %d quadrants, want %d plus a hub", len(engs.Quad), nQuads))
	}
	nLinks := len(linkHome)
	f := &Fabric{
		cfg:           cfg,
		nQuads:        nQuads,
		vaultsPerQuad: vaultsPerQuad,
		linkHome:      append([]int(nil), linkHome...),
		ReqIngress:    make([]*Chan, nLinks),
		ReqRouters:    make([]*Router, nQuads),
		RespRouters:   make([]*Router, nQuads),
	}

	// quadCfg gives quadrant q's routers their own tracer when the build
	// provides per-quadrant ones (sharded engines must not share tracer
	// counters).
	quadCfg := func(q int) Config {
		c := cfg
		if q < len(cfg.QuadTrace) && cfg.QuadTrace[q] != nil {
			c.Trace = cfg.QuadTrace[q]
		}
		return c
	}

	// Request network. Router q's outlets: [0, vaultsPerQuad) local
	// vaults, then one slot per quadrant for the full-mesh peer bridges
	// (the self slot stays empty and is never routed to).
	for q := 0; q < nQuads; q++ {
		q := q
		outlets := make([]Outlet, vaultsPerQuad+nQuads)
		for i := 0; i < vaultsPerQuad; i++ {
			outlets[i] = vaultOutlets[q*vaultsPerQuad+i]
		}
		f.ReqRouters[q] = NewRouter(engs.Quad[q], fmt.Sprintf("req.q%d", q), quadCfg(q),
			func(m *Message) int {
				if m.Tr.Quadrant == q {
					return m.Tr.Vault % vaultsPerQuad
				}
				return vaultsPerQuad + m.Tr.Quadrant
			}, outlets)
	}
	for q := 0; q < nQuads; q++ {
		for p := 0; p < nQuads; p++ {
			if p != q {
				ch := NewChan(
					engs.Quad[q], engs.Quad[p], fmt.Sprintf("req.q%d-q%d", q, p),
					cfg, cfg.InputBuffer, 0, f.ReqRouters[p])
				// Stall attribution goes to the source quadrant's tracer:
				// TryOut runs on the source engine, and hops stay counted
				// by the owning router (Stall, not Trace, avoids doubling).
				ch.Stall = quadCfg(q).Trace
				f.ReqRouters[q].SetChan(vaultsPerQuad+p, ch)
			}
		}
	}

	// Link ingress channels: requests deserialize on the hub (link side)
	// and bridge into the home quadrant's router. Occupancy is bounded
	// by the link-level token pool, not by channel credits (callers use
	// Inject and wire OnForward to return tokens).
	for l := 0; l < nLinks; l++ {
		home := linkHome[l]
		f.ReqIngress[l] = NewChan(engs.Hub, engs.Quad[home],
			fmt.Sprintf("req.in%d", l), cfg, 0, ingressBound, f.ReqRouters[home])
		f.ReqIngress[l].Trace = cfg.Trace
	}

	// Response network. Router q's outlets: [0, nLinks) egress bridges
	// back to the hub (only wired for links homed at q), then one slot
	// per quadrant for peer bridges.
	for q := 0; q < nQuads; q++ {
		q := q
		outlets := make([]Outlet, nLinks+nQuads)
		f.RespRouters[q] = NewRouter(engs.Quad[q], fmt.Sprintf("resp.q%d", q), quadCfg(q),
			func(m *Message) int {
				home := f.linkHome[m.Tr.Link]
				if home == q {
					return m.Tr.Link
				}
				return nLinks + home
			}, outlets)
	}
	for q := 0; q < nQuads; q++ {
		for l := 0; l < nLinks; l++ {
			if linkHome[l] == q {
				ch := NewChan(
					engs.Quad[q], engs.Hub, fmt.Sprintf("resp.q%d-out%d", q, l),
					cfg, cfg.InputBuffer, 0, linkEgress[l])
				ch.Stall = quadCfg(q).Trace
				f.RespRouters[q].SetChan(l, ch)
			}
		}
		for p := 0; p < nQuads; p++ {
			if p != q {
				ch := NewChan(
					engs.Quad[q], engs.Quad[p], fmt.Sprintf("resp.q%d-q%d", q, p),
					cfg, cfg.InputBuffer, 0, f.RespRouters[p])
				ch.Stall = quadCfg(q).Trace
				f.RespRouters[q].SetChan(nLinks+p, ch)
			}
		}
	}
	return f
}

// InjectRequest places a request arriving on link l into the fabric. The
// caller is responsible for bounding in-flight requests (the link RX
// token pool does this) and should set ReqIngress[l].OnForward to return
// those tokens.
func (f *Fabric) InjectRequest(l int, m *Message) {
	f.ReqIngress[l].Inject(m)
}

// RespIngress returns the Outlet a vault in quadrant q uses to inject
// responses; injection is credit-checked against the router's input pool.
func (f *Fabric) RespIngress(q int) Outlet { return f.RespRouters[q] }

// QueuedMessages returns the total occupancy of every router and ingress
// channel, a debugging aid for conservation checks. Call it only when
// the fabric is quiescent (between runs); it reads every shard's state.
func (f *Fabric) QueuedMessages() int {
	n := 0
	for _, c := range f.ReqIngress {
		n += c.Queued()
	}
	for _, r := range f.ReqRouters {
		n += r.Queued()
	}
	for _, r := range f.RespRouters {
		n += r.Queued()
	}
	return n
}
