package noc

import (
	"fmt"

	"hmcsim/internal/sim"
)

// FuncOutlet adapts a pair of closures to the Outlet interface; the glue
// layer uses it to splice vault controllers and link egress ports into the
// fabric.
type FuncOutlet struct {
	Try    func(m *Message) bool
	Notify func(m *Message, fn func())
}

// TryOut implements Outlet.
func (f FuncOutlet) TryOut(m *Message) bool { return f.Try(m) }

// NotifyOut implements Outlet.
func (f FuncOutlet) NotifyOut(m *Message, fn func()) { f.Notify(m, fn) }

// Fabric is the assembled logic-layer network: a request network carrying
// host-to-vault traffic and a response network carrying vault-to-host
// traffic, each built from one router per quadrant plus a small ingress
// node per external link.
type Fabric struct {
	cfg           Config
	nQuads        int
	vaultsPerQuad int
	linkHome      []int

	// ReqIngress[l] is the entry node for requests arriving on link l.
	ReqIngress []*Router
	// ReqRouters[q] is the request-network router of quadrant q.
	ReqRouters []*Router
	// RespRouters[q] is the response-network router of quadrant q.
	// Vault adapters inject responses here via TryOut.
	RespRouters []*Router
}

// NewFabric builds the two networks.
//
//   - linkHome[l] gives the quadrant where external link l attaches.
//   - vaultOutlets[v] consumes requests for vault v (length nQuads *
//     vaultsPerQuad).
//   - linkEgress[l] consumes responses leaving on link l.
func NewFabric(eng *sim.Engine, cfg Config, nQuads, vaultsPerQuad int,
	linkHome []int, vaultOutlets []Outlet, linkEgress []Outlet) *Fabric {

	nVaults := nQuads * vaultsPerQuad
	if len(vaultOutlets) != nVaults {
		panic(fmt.Sprintf("noc: %d vault outlets for %d vaults", len(vaultOutlets), nVaults))
	}
	if len(linkEgress) != len(linkHome) {
		panic(fmt.Sprintf("noc: %d egress outlets for %d links", len(linkEgress), len(linkHome)))
	}
	for _, h := range linkHome {
		if h < 0 || h >= nQuads {
			panic(fmt.Sprintf("noc: link home quadrant %d out of range", h))
		}
	}
	nLinks := len(linkHome)
	f := &Fabric{
		cfg:           cfg,
		nQuads:        nQuads,
		vaultsPerQuad: vaultsPerQuad,
		linkHome:      append([]int(nil), linkHome...),
		ReqIngress:    make([]*Router, nLinks),
		ReqRouters:    make([]*Router, nQuads),
		RespRouters:   make([]*Router, nQuads),
	}

	// Request network. Router q's outlets: [0, vaultsPerQuad) local
	// vaults, then one slot per quadrant for the full-mesh peer channels
	// (the self slot stays nil and is never routed to).
	for q := 0; q < nQuads; q++ {
		q := q
		outlets := make([]Outlet, vaultsPerQuad+nQuads)
		for i := 0; i < vaultsPerQuad; i++ {
			outlets[i] = vaultOutlets[q*vaultsPerQuad+i]
		}
		f.ReqRouters[q] = NewRouter(eng, fmt.Sprintf("req.q%d", q), cfg,
			func(m *Message) int {
				if m.Tr.Quadrant == q {
					return m.Tr.Vault % vaultsPerQuad
				}
				return vaultsPerQuad + m.Tr.Quadrant
			}, outlets)
	}
	for q := 0; q < nQuads; q++ {
		for p := 0; p < nQuads; p++ {
			if p != q {
				f.ReqRouters[q].SetOutlet(vaultsPerQuad+p, f.ReqRouters[p])
			}
		}
	}

	// Link ingress nodes: a single-output staging node per link whose
	// occupancy is bounded by the link-level token pool, not by router
	// credits (callers use Inject and wire OnForward to return tokens).
	ingressCfg := cfg
	ingressCfg.InputBuffer = 0 // bounded by the link-level token pool
	for l := 0; l < nLinks; l++ {
		f.ReqIngress[l] = NewRouter(eng, fmt.Sprintf("req.in%d", l), ingressCfg,
			func(*Message) int { return 0 },
			[]Outlet{f.ReqRouters[linkHome[l]]})
	}

	// Response network. Router q's outlets: [0, nLinks) egress ports
	// (only meaningful for links homed at q), then one slot per quadrant
	// for peers.
	for q := 0; q < nQuads; q++ {
		q := q
		outlets := make([]Outlet, nLinks+nQuads)
		for l := 0; l < nLinks; l++ {
			if linkHome[l] == q {
				outlets[l] = linkEgress[l]
			}
		}
		f.RespRouters[q] = NewRouter(eng, fmt.Sprintf("resp.q%d", q), cfg,
			func(m *Message) int {
				home := f.linkHome[m.Tr.Link]
				if home == q {
					return m.Tr.Link
				}
				return nLinks + home
			}, outlets)
	}
	for q := 0; q < nQuads; q++ {
		for p := 0; p < nQuads; p++ {
			if p != q {
				f.RespRouters[q].SetOutlet(nLinks+p, f.RespRouters[p])
			}
		}
	}
	return f
}

// InjectRequest places a request arriving on link l into the fabric. The
// caller is responsible for bounding in-flight requests (the link RX
// token pool does this) and should set ReqIngress[l].OnForward to return
// those tokens.
func (f *Fabric) InjectRequest(l int, m *Message) {
	f.ReqIngress[l].Inject(m)
}

// RespIngress returns the Outlet a vault in quadrant q uses to inject
// responses; injection is credit-checked against the router's input pool.
func (f *Fabric) RespIngress(q int) Outlet { return f.RespRouters[q] }

// QueuedMessages returns the total occupancy of every router, a debugging
// aid for conservation checks.
func (f *Fabric) QueuedMessages() int {
	n := 0
	for _, r := range f.ReqIngress {
		n += r.Queued()
	}
	for _, r := range f.ReqRouters {
		n += r.Queued()
	}
	for _, r := range f.RespRouters {
		n += r.Queued()
	}
	return n
}
