// Package noc models the HMC logic-layer network-on-chip that connects
// external link ports to the sixteen vault controllers (Figure 1 of the
// paper). The study's central claim is that the characteristics and
// contention of this network — arbitration, buffering, and packetization —
// shape the latency and bandwidth behavior of the whole device.
//
// Topology: one router per quadrant, fully connected to the other three
// quadrant routers; each external link enters the fabric at its home
// quadrant; each router fans out to its four local vaults. Requests and
// responses travel on separate networks (standard deadlock avoidance for
// request/response protocols).
//
// Routers are virtual-output-queued with per-output credits: an incoming
// message is routed once and admitted against the buffer of its output
// queue, so a congested vault back-pressures precisely the traffic heading
// to it while other traffic flows by. Because routing is minimal (at most
// ingress -> home quadrant -> destination quadrant -> vault) and credits
// are per output class, the credit graph is acyclic and the fabric is
// deadlock-free. Contention for the same output serializes on the output
// channel, which is where the paper's observed latency variance within an
// access pattern originates.
package noc

import (
	"fmt"
	"sync"

	"hmcsim/internal/obs"
	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
)

// Message is the unit moved by the fabric: one transaction plus the wire
// packet it currently rides in (request or response), which determines
// serialization time.
type Message struct {
	Tr  *packet.Transaction
	Pkt *packet.Packet
}

// Flits returns the message's current wire length.
func (m *Message) Flits() int { return m.Pkt.Flits() }

// Messages ride a free list: the glue layer creates one per injection
// and the terminal outlet (vault adapter, link egress) releases it, so
// steady-state fabric traffic allocates nothing.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// GetMessage returns a Message carrying tr and pkt from the free list.
func GetMessage(tr *packet.Transaction, pkt *packet.Packet) *Message {
	m := msgPool.Get().(*Message)
	m.Tr, m.Pkt = tr, pkt
	return m
}

// PutMessage returns m to the free list. The caller must hold the only
// live reference; m must not be touched afterwards.
func PutMessage(m *Message) {
	m.Tr, m.Pkt = nil, nil
	msgPool.Put(m)
}

// Outlet is anything a router output can feed: another router's input,
// a vault adapter, or a link-egress adapter. TryOut must not block; a
// false return means "register fn with NotifyOut(m, fn) and try again
// when it fires". A true return transfers ownership of m to the outlet
// — the caller must not touch the message afterwards, which is what
// lets terminal outlets release it to the free list. NotifyOut takes
// the message so credit-managed outlets can wake the caller on the
// specific resource the message needs; it must use m synchronously and
// not retain it.
type Outlet interface {
	TryOut(m *Message) bool
	NotifyOut(m *Message, fn func())
}

// Config holds the fabric timing parameters.
type Config struct {
	// FlitTime is the serialization time of one flit on an internal
	// channel. The default models a 32-byte datapath at 1.25 GHz:
	// two flits per 800 ps cycle.
	FlitTime sim.Time
	// HopLatency is the router pipeline + wire delay per hop.
	HopLatency sim.Time
	// InputBuffer is the per-output credit pool, in messages. Zero
	// disables admission control (used by externally flow-controlled
	// ingress nodes).
	InputBuffer int

	// Trace, when non-nil, observes message hops and router occupancy.
	// One tracer is shared by every router built from this config; a
	// router's hooks run only on its own engine goroutine, so the shared
	// counters need no locks as long as all routers share one engine.
	// Nil keeps the admission hook a single branch.
	Trace *obs.NoCTracer

	// QuadTrace, when non-empty, gives each quadrant's routers their own
	// tracer (indexed by quadrant). Sharded builds use it so routers on
	// different engines never share counters; entries may be nil to fall
	// back to Trace.
	QuadTrace []*obs.NoCTracer
}

// DefaultConfig returns the fabric parameters used by the reproduction.
func DefaultConfig() Config {
	return Config{
		FlitTime:    400 * sim.Picosecond,
		HopLatency:  1600 * sim.Picosecond, // 2 cycles at 1.25 GHz
		InputBuffer: 8,
	}
}

// Router is one fabric node with virtual output queues.
type Router struct {
	name string
	eng  *sim.Engine
	cfg  Config

	route   func(*Message) int
	outlets []outState

	// OnForward, when non-nil, runs every time a message of the given
	// flit count leaves the router. Link-ingress nodes use it to return
	// link-level tokens. It receives the length rather than the message
	// because by the time it fires the downstream outlet owns (and may
	// already have released) the message.
	OnForward func(flits int)

	received  uint64
	forwarded uint64
}

type outState struct {
	// ch, when non-nil, replaces this slot's whole output pipeline with
	// a bridge channel (see Chan): the fabric uses bridges for every
	// edge that may cross engines in a sharded build.
	ch *Chan

	outlet  Outlet
	credits *sim.TokenPool // nil when InputBuffer == 0
	server  *sim.Server
	queue   *sim.Queue[*Message]
	pumping bool

	// inflight is the message popped from the queue and currently being
	// serialized, flown, or retried against the downstream outlet; the
	// pre-bound callbacks below read it so no per-message closures are
	// needed.
	inflight *Message
	serFn    func() // serialization finished: start the hop
	delivFn  func() // hop finished (or downstream freed up): deliver
}

// NewRouter builds a router. route maps a message to an outlet index in
// outlets; it must be total for all traffic the router can receive.
func NewRouter(eng *sim.Engine, name string, cfg Config, route func(*Message) int, outlets []Outlet) *Router {
	if cfg.InputBuffer < 0 {
		panic(fmt.Sprintf("noc %s: negative InputBuffer", name))
	}
	r := &Router{
		name:    name,
		eng:     eng,
		cfg:     cfg,
		route:   route,
		outlets: make([]outState, len(outlets)),
	}
	for i, o := range outlets {
		i := i
		var credits *sim.TokenPool
		if cfg.InputBuffer > 0 {
			credits = sim.NewTokenPool(cfg.InputBuffer)
		}
		st := &r.outlets[i]
		st.outlet = o
		st.credits = credits
		st.server = sim.NewServer(eng)
		st.queue = sim.NewQueue[*Message](0) // bounded by the credit pool
		st.serFn = func() { r.eng.Schedule(r.cfg.HopLatency, st.delivFn) }
		st.delivFn = func() { r.deliver(i) }
	}
	return r
}

// Name returns the router's diagnostic name.
func (r *Router) Name() string { return r.name }

// TryOut implements Outlet: upstream senders inject into this router,
// admitted against the credit pool of the output the message routes to.
// Bridge slots delegate to their channel; the router still counts the
// admission and samples its occupancy for the tracer.
func (r *Router) TryOut(m *Message) bool {
	o := &r.outlets[r.routeIndex(m)]
	if o.ch != nil {
		if !o.ch.TryOut(m) {
			return false
		}
		r.received++
		if r.cfg.Trace != nil {
			r.cfg.Trace.OnHop(r.Queued())
		}
		return true
	}
	if o.credits != nil && !o.credits.TryAcquire(1) {
		return false
	}
	r.accept(m)
	return true
}

// NotifyOut implements Outlet: fn fires when the output queue m routes to
// frees a slot.
func (r *Router) NotifyOut(m *Message, fn func()) {
	o := &r.outlets[r.routeIndex(m)]
	if o.ch != nil {
		o.ch.NotifyOut(m, fn)
		return
	}
	if o.credits == nil {
		fn()
		return
	}
	o.credits.Notify(fn)
}

func (r *Router) routeIndex(m *Message) int {
	i := r.route(m)
	if i < 0 || i >= len(r.outlets) {
		panic(fmt.Sprintf("noc %s: route returned %d for %v", r.name, i, m.Pkt))
	}
	return i
}

func (r *Router) accept(m *Message) {
	r.received++
	i := r.routeIndex(m)
	r.outlets[i].queue.Push(r.eng.Now(), m)
	if r.cfg.Trace != nil {
		// Guarded (not a nil-receiver hook) because the occupancy scan
		// itself is work the untraced path must not pay.
		r.cfg.Trace.OnHop(r.Queued())
	}
	r.pump(i)
}

// pump drains output i: serialize the head message on the output channel,
// then deliver it downstream after the hop latency. If the downstream is
// full the message holds the output — head-of-line blocking at a congested
// vault or link, exactly the contention mechanism under study.
//
// At most one message per output is past the queue at a time (pumping
// stays set until delivery succeeds), so the in-flight message lives in
// the outState slot and the pre-bound serFn/delivFn callbacks carry no
// per-message state.
func (r *Router) pump(i int) {
	o := &r.outlets[i]
	if o.pumping {
		return
	}
	m, ok := o.queue.Pop(r.eng.Now())
	if !ok {
		return
	}
	o.pumping = true
	o.inflight = m
	o.server.Reserve(r.cfg.FlitTime*sim.Time(m.Flits()), o.serFn)
}

func (r *Router) deliver(i int) {
	o := &r.outlets[i]
	m := o.inflight
	var flits int
	if r.OnForward != nil {
		flits = m.Flits() // read before the outlet takes ownership
	}
	if !o.outlet.TryOut(m) {
		o.outlet.NotifyOut(m, o.delivFn)
		return
	}
	// The outlet now owns m; a terminal outlet may already have released
	// it to the free list, so it must not be touched below this line.
	o.inflight = nil
	// The credit is held until the message has fully left the router,
	// keeping each pool a true bound on per-output occupancy.
	if o.credits != nil {
		o.credits.Release(1)
	}
	r.forwarded++
	if r.OnForward != nil {
		r.OnForward(flits)
	}
	o.pumping = false
	r.pump(i)
}

// SetOutlet wires output slot i after construction; the fabric builder
// needs this because quadrant routers reference each other cyclically.
func (r *Router) SetOutlet(i int, o Outlet) {
	r.outlets[i].outlet = o
}

// SetChan replaces output slot i's queue/server/credit pipeline with a
// bridge channel; messages routed to the slot are admitted against the
// channel's credits and paced by its server instead.
func (r *Router) SetChan(i int, c *Chan) {
	st := &r.outlets[i]
	st.ch = c
	st.outlet, st.credits, st.server, st.queue = nil, nil, nil, nil
	st.serFn, st.delivFn = nil, nil
}

// Received returns the number of messages injected into the router.
func (r *Router) Received() uint64 { return r.received }

// Forwarded returns the number of messages sent downstream, including
// through bridge slots (counted when their credit returns).
func (r *Router) Forwarded() uint64 {
	n := r.forwarded
	for i := range r.outlets {
		if c := r.outlets[i].ch; c != nil {
			n += c.Forwarded()
		}
	}
	return n
}

// Queued returns the total messages parked in the router, including any
// held on a blocked output and any inside bridge slots' channels.
func (r *Router) Queued() int {
	n := 0
	for i := range r.outlets {
		if c := r.outlets[i].ch; c != nil {
			n += c.Queued()
			continue
		}
		n += r.outlets[i].queue.Len()
		if r.outlets[i].pumping {
			n++ // popped but not yet delivered
		}
	}
	return n
}
