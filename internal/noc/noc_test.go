package noc

import (
	"testing"

	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
)

// sinkOutlet collects messages, optionally applying backpressure.
type sinkOutlet struct {
	got     []*Message
	block   bool
	waiters []func()
}

func (s *sinkOutlet) TryOut(m *Message) bool {
	if s.block {
		return false
	}
	s.got = append(s.got, m)
	return true
}

func (s *sinkOutlet) NotifyOut(_ *Message, fn func()) { s.waiters = append(s.waiters, fn) }

func (s *sinkOutlet) unblock() {
	s.block = false
	w := s.waiters
	s.waiters = nil
	for _, fn := range w {
		fn()
	}
}

func msg(vault, quadrant, link int, size int) *Message {
	tr := &packet.Transaction{Vault: vault, Quadrant: quadrant, Link: link, Size: size}
	return &Message{Tr: tr, Pkt: tr.RequestPacket(0)}
}

func respMsg(vault, quadrant, link, size int) *Message {
	tr := &packet.Transaction{Vault: vault, Quadrant: quadrant, Link: link, Size: size}
	return &Message{Tr: tr, Pkt: tr.ResponsePacket(0)}
}

func TestRouterForwardsToRoutedOutlet(t *testing.T) {
	eng := sim.NewEngine()
	a, b := &sinkOutlet{}, &sinkOutlet{}
	r := NewRouter(eng, "r", DefaultConfig(),
		func(m *Message) int { return m.Tr.Vault % 2 },
		[]Outlet{a, b})
	eng.Schedule(0, func() {
		r.TryOut(msg(0, 0, 0, 16))
		r.TryOut(msg(1, 0, 0, 16))
		r.TryOut(msg(2, 0, 0, 16))
	})
	eng.Drain()
	if len(a.got) != 2 || len(b.got) != 1 {
		t.Fatalf("routed %d/%d messages, want 2/1", len(a.got), len(b.got))
	}
	if r.Received() != 3 || r.Forwarded() != 3 {
		t.Fatalf("received/forwarded = %d/%d, want 3/3", r.Received(), r.Forwarded())
	}
}

func TestRouterHopLatencyAndSerialization(t *testing.T) {
	eng := sim.NewEngine()
	s := &sinkOutlet{}
	cfg := DefaultConfig()
	r := NewRouter(eng, "r", cfg, func(*Message) int { return 0 }, []Outlet{s})
	var deliveredAt sim.Time
	eng.Schedule(0, func() { r.TryOut(respMsg(0, 0, 0, 128)) }) // 9 flits
	eng.Drain()
	deliveredAt = eng.Now()
	want := 9*cfg.FlitTime + cfg.HopLatency
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestRouterCreditBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	s := &sinkOutlet{block: true}
	cfg := DefaultConfig()
	cfg.InputBuffer = 4
	r := NewRouter(eng, "r", cfg, func(*Message) int { return 0 }, []Outlet{s})
	accepted := 0
	eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			if r.TryOut(msg(0, 0, 0, 16)) {
				accepted++
			}
		}
	})
	eng.Schedule(sim.Microsecond, func() { s.unblock() })
	eng.Drain()
	if accepted != 4 {
		t.Fatalf("accepted %d with 4 credits, want 4", accepted)
	}
	if len(s.got) != 4 {
		t.Fatalf("delivered %d after unblock, want 4", len(s.got))
	}
}

func TestRouterVOQIndependence(t *testing.T) {
	// A blocked output must not stall traffic routed to another output.
	eng := sim.NewEngine()
	blocked, open := &sinkOutlet{block: true}, &sinkOutlet{}
	r := NewRouter(eng, "r", DefaultConfig(),
		func(m *Message) int { return m.Tr.Vault }, []Outlet{blocked, open})
	eng.Schedule(0, func() {
		r.TryOut(msg(0, 0, 0, 16)) // to blocked outlet
		r.TryOut(msg(1, 0, 0, 16)) // to open outlet
	})
	eng.Run(sim.Microsecond)
	if len(open.got) != 1 {
		t.Fatalf("open outlet got %d messages while sibling blocked, want 1", len(open.got))
	}
	if len(blocked.got) != 0 {
		t.Fatal("blocked outlet received a message")
	}
	blocked.unblock()
	eng.Drain()
	if len(blocked.got) != 1 {
		t.Fatalf("blocked outlet got %d after unblock, want 1", len(blocked.got))
	}
}

func TestChanExternallyBoundedIngress(t *testing.T) {
	eng := sim.NewEngine()
	s := &sinkOutlet{}
	released := 0
	c := NewChan(eng, eng, "in", DefaultConfig(), 0, 50, s)
	c.OnForward = func(int) { released++ }
	eng.Schedule(0, func() {
		for i := 0; i < 50; i++ {
			c.Inject(msg(0, 0, 0, 16))
		}
	})
	eng.Drain()
	if len(s.got) != 50 || released != 50 {
		t.Fatalf("delivered/released = %d/%d, want 50/50", len(s.got), released)
	}
	if c.Received() != 50 || c.Forwarded() != 50 || c.Queued() != 0 {
		t.Fatalf("received/forwarded/queued = %d/%d/%d, want 50/50/0",
			c.Received(), c.Forwarded(), c.Queued())
	}
}

// chokeOutlet accepts one message at a time, releasing its single slot a
// fixed delay later — a stand-in for a congested downstream credit pool.
type chokeOutlet struct {
	eng     *sim.Engine
	credits *sim.TokenPool
	got     []*Message
}

func (o *chokeOutlet) TryOut(m *Message) bool {
	if !o.credits.TryAcquire(1) {
		return false
	}
	o.got = append(o.got, m)
	o.eng.Schedule(10*sim.Nanosecond, func() { o.credits.Release(1) })
	return true
}

func (o *chokeOutlet) NotifyOut(_ *Message, fn func()) { o.credits.Notify(fn) }

func TestChanContendersAlternate(t *testing.T) {
	// Two channels feeding one choked outlet must share it. A channel
	// that retried synchronously inside the credit pool's waiter fire
	// would re-register ahead of its rival every time and capture the
	// pool outright — the starvation bug that wedged one external link.
	eng := sim.NewEngine()
	o := &chokeOutlet{eng: eng, credits: sim.NewTokenPool(1)}
	a := NewChan(eng, eng, "a", DefaultConfig(), 0, 25, o)
	b := NewChan(eng, eng, "b", DefaultConfig(), 0, 25, o)
	eng.Schedule(0, func() {
		for i := 0; i < 25; i++ {
			a.Inject(msg(0, 0, 0, 16))
			b.Inject(msg(1, 0, 0, 16))
		}
	})
	eng.Drain()
	if len(o.got) != 50 {
		t.Fatalf("delivered %d messages, want 50", len(o.got))
	}
	seen := [2]int{}
	for _, m := range o.got[:10] {
		seen[m.Tr.Vault]++
	}
	if seen[0] == 0 || seen[1] == 0 {
		t.Fatalf("first 10 deliveries split %d/%d between the channels; one is starved", seen[0], seen[1])
	}
}

func newTestFabric(eng *sim.Engine, cfg Config) (*Fabric, []*sinkOutlet, []*sinkOutlet) {
	vaults := make([]*sinkOutlet, 16)
	vaultOutlets := make([]Outlet, 16)
	for i := range vaults {
		vaults[i] = &sinkOutlet{}
		vaultOutlets[i] = vaults[i]
	}
	egress := make([]*sinkOutlet, 2)
	egressOutlets := make([]Outlet, 2)
	for i := range egress {
		egress[i] = &sinkOutlet{}
		egressOutlets[i] = egress[i]
	}
	// The test ingress bound is generous: tests inject whole batches in
	// one instant, where the real system's link-level token pool admits
	// only a dozen flits.
	f := NewFabric(SingleEngine(eng, 4), cfg, 4, 4, []int{0, 2}, 512, vaultOutlets, egressOutlets)
	return f, vaults, egress
}

func TestFabricRequestReachesEveryVault(t *testing.T) {
	eng := sim.NewEngine()
	f, vaults, _ := newTestFabric(eng, DefaultConfig())
	eng.Schedule(0, func() {
		for v := 0; v < 16; v++ {
			m := msg(v, v/4, 0, 32)
			f.InjectRequest(0, m)
		}
	})
	eng.Drain()
	for v, s := range vaults {
		if len(s.got) != 1 {
			t.Fatalf("vault %d received %d messages, want 1", v, len(s.got))
		}
		if got := s.got[0].Tr.Vault; got != v {
			t.Fatalf("vault %d received message for vault %d", v, got)
		}
	}
}

func TestFabricLocalVsRemoteQuadrantLatency(t *testing.T) {
	// A request to the link's home quadrant takes one fewer hop than a
	// request to a remote quadrant.
	timeTo := func(vault int) sim.Time {
		eng := sim.NewEngine()
		f, _, _ := newTestFabric(eng, DefaultConfig())
		eng.Schedule(0, func() { f.InjectRequest(0, msg(vault, vault/4, 0, 16)) })
		eng.Drain()
		return eng.Now()
	}
	local := timeTo(0)   // quadrant 0: link 0's home
	remote := timeTo(15) // quadrant 3: one extra hop
	if remote <= local {
		t.Fatalf("remote quadrant (%v) not slower than local (%v)", remote, local)
	}
	cfg := DefaultConfig()
	if diff := remote - local; diff < cfg.HopLatency {
		t.Fatalf("remote-local difference %v smaller than one hop %v", diff, cfg.HopLatency)
	}
}

func TestFabricResponseRoutesToCorrectLink(t *testing.T) {
	eng := sim.NewEngine()
	f, _, egress := newTestFabric(eng, DefaultConfig())
	eng.Schedule(0, func() {
		// Vault 5 (quadrant 1) answers to link 0 (home quadrant 0) and
		// vault 10 (quadrant 2) answers to link 1 (home quadrant 2).
		if !f.RespIngress(1).TryOut(respMsg(5, 1, 0, 64)) {
			t.Error("response injection rejected")
		}
		if !f.RespIngress(2).TryOut(respMsg(10, 2, 1, 64)) {
			t.Error("response injection rejected")
		}
	})
	eng.Drain()
	if len(egress[0].got) != 1 || egress[0].got[0].Tr.Vault != 5 {
		t.Fatalf("link 0 egress got %v", egress[0].got)
	}
	if len(egress[1].got) != 1 || egress[1].got[0].Tr.Vault != 10 {
		t.Fatalf("link 1 egress got %v", egress[1].got)
	}
}

func TestFabricConservation(t *testing.T) {
	// Fire a batch of random requests at both links; every one must
	// arrive at exactly its addressed vault, and no router may hold
	// residual messages.
	eng := sim.NewEngine()
	f, vaults, _ := newTestFabric(eng, DefaultConfig())
	rng := sim.NewRand(7)
	const n = 400
	want := make([]int, 16)
	eng.Schedule(0, func() {
		for i := 0; i < n; i++ {
			v := rng.Intn(16)
			want[v]++
			f.InjectRequest(rng.Intn(2), msg(v, v/4, 0, 16))
		}
	})
	eng.Drain()
	for v, s := range vaults {
		if len(s.got) != want[v] {
			t.Fatalf("vault %d received %d, want %d", v, len(s.got), want[v])
		}
	}
	if q := f.QueuedMessages(); q != 0 {
		t.Fatalf("%d messages stuck in fabric", q)
	}
}

func TestFabricBackpressurePropagatesToIngress(t *testing.T) {
	// With vault 0 blocked, a flood of vault-0 requests must pile up in
	// the fabric without being delivered, and resume after unblocking.
	eng := sim.NewEngine()
	f, vaults, _ := newTestFabric(eng, DefaultConfig())
	vaults[0].block = true
	const n = 100
	eng.Schedule(0, func() {
		for i := 0; i < n; i++ {
			f.InjectRequest(0, msg(0, 0, 0, 16))
		}
	})
	eng.Run(10 * sim.Microsecond)
	if len(vaults[0].got) != 0 {
		t.Fatalf("blocked vault received %d messages", len(vaults[0].got))
	}
	if q := f.QueuedMessages(); q == 0 {
		t.Fatal("no queue buildup under backpressure")
	}
	vaults[0].unblock()
	eng.Drain()
	if len(vaults[0].got) != n {
		t.Fatalf("vault received %d after unblock, want %d", len(vaults[0].got), n)
	}
}

func TestFabricContentionSerializes(t *testing.T) {
	// Two links blasting the same vault must take roughly twice as long
	// as two links addressing different vaults (same total message
	// count): contention for one output serializes.
	run := func(sameVault bool) sim.Time {
		eng := sim.NewEngine()
		f, _, _ := newTestFabric(eng, DefaultConfig())
		eng.Schedule(0, func() {
			for i := 0; i < 200; i++ {
				v0 := 0
				v1 := 0
				if !sameVault {
					v1 = 1
				}
				f.InjectRequest(0, msg(v0, 0, 0, 128))
				f.InjectRequest(1, msg(v1, 0, 0, 128))
			}
		})
		eng.Drain()
		return eng.Now()
	}
	same := run(true)
	diff := run(false)
	if same <= diff {
		t.Fatalf("same-vault contention (%v) not slower than spread (%v)", same, diff)
	}
}
