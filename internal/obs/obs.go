// Package obs is the live-observability layer: per-component tracer
// hooks compiled into the kernel hot paths, and the collector that
// merges what they saw into a JSON- and human-renderable summary.
//
// The design follows the AkitaRTM rule that monitoring must be
// zero-cost when off: every tracer hook is a method on a pointer
// receiver that begins with a nil check, so a component holds a plain
// possibly-nil tracer pointer and calls the hook unconditionally.
// Disabled tracing therefore costs one predictable branch per hook and
// zero allocations — the bar enforced by the kernel's bench_test.go
// 0 allocs/op guards.
//
// The package deliberately depends only on the standard library (time
// is plain int64 picoseconds, converted at the call sites), so any
// layer of the simulator can import it without cycles.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// histBuckets is the fixed bucket count of Hist: bucket 0 holds the
// value 0, bucket i holds [2^(i-1), 2^i), and the last bucket absorbs
// everything at or above 2^(histBuckets-2).
const histBuckets = 17

// Hist is a power-of-two-bucketed histogram of small non-negative
// integers (queue depths, outstanding-request counts). Observe is
// allocation-free: the buckets are a fixed array and the bucket index
// is one bits.Len64.
type Hist struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [histBuckets]uint64
}

// Observe records one sample. Negative values clamp to zero.
//
//hmcsim:hotpath
func (h *Hist) Observe(v int) {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	h.Count++
	h.Sum += u
	if u > h.Max {
		h.Max = u
	}
	i := bits.Len64(u)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.Buckets[i]++
}

// Merge adds o's samples into h.
func (h *Hist) Merge(o *Hist) {
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the sample mean, 0 with no samples.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// BucketLabel renders bucket i's inclusive upper bound: "0", "1", "3",
// "7", ... and "+Inf" for the open-ended last bucket.
func BucketLabel(i int) string {
	if i <= 0 {
		return "0"
	}
	if i >= histBuckets-1 {
		return "+Inf"
	}
	return fmt.Sprintf("%d", uint64(1)<<i-1)
}

// Summarize snapshots the histogram into its wire form, keeping only
// occupied buckets.
func (h *Hist) Summarize() HistSummary {
	s := HistSummary{Count: h.Count, Mean: h.Mean(), Max: h.Max}
	for i, n := range h.Buckets {
		if n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Le: BucketLabel(i), Count: n})
		}
	}
	return s
}

// HistSummary is the JSON form of a Hist.
type HistSummary struct {
	Count   uint64       `json:"count"`
	Mean    float64      `json:"mean"`
	Max     uint64       `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// HistBucket is one occupied histogram bucket; Le is the inclusive
// upper bound ("+Inf" for the open-ended last bucket).
type HistBucket struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

func (s HistSummary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f max=%d", s.Count, s.Mean, s.Max)
}

// VaultTracer observes one vault controller's admission path.
type VaultTracer struct {
	Accepts   uint64 // transactions admitted into the controller
	Rejects   uint64 // back-pressure rejections at the input buffer
	Occupancy Hist   // requests waiting in the controller, sampled per accept

	// Timeline tracks, attached only when the owning SystemTracer has a
	// timeline enabled; nil otherwise, costing the hooks one branch.
	tl  *TimelineTrack // accepts over sim-time
	tlR *TimelineTrack // rejects over sim-time (shared across vaults)
	now func() int64
}

// OnAccept records an admission at the given controller occupancy
// (input buffer plus bank queues, after insertion). No-op on nil.
//
//hmcsim:hotpath
func (t *VaultTracer) OnAccept(occupancy int) {
	if t == nil {
		return
	}
	t.Accepts++
	t.Occupancy.Observe(occupancy)
	if t.tl != nil {
		t.tl.Add(t.now(), 1)
	}
}

// OnReject records a full-input-buffer rejection. No-op on nil.
//
//hmcsim:hotpath
func (t *VaultTracer) OnReject() {
	if t == nil {
		return
	}
	t.Rejects++
	if t.tlR != nil {
		t.tlR.Add(t.now(), 1)
	}
}

// LinkTracer observes one direction of a serial link.
type LinkTracer struct {
	Packets uint64
	Flits   uint64
	Retries uint64
	BusyPs  int64 // serializer-occupied simulated time

	tl  *TimelineTrack // flits over sim-time, when a timeline is enabled
	now func() int64
}

// OnTx records a successfully serialized packet and the serializer
// time it occupied. No-op on nil.
//
//hmcsim:hotpath
func (t *LinkTracer) OnTx(flits int, serPs int64) {
	if t == nil {
		return
	}
	t.Packets++
	t.Flits += uint64(flits)
	t.BusyPs += serPs
	if t.tl != nil {
		t.tl.Add(t.now(), uint64(flits))
	}
}

// OnRetry records a CRC-triggered retransmission; the corrupted pass
// still occupied the serializer for serPs. No-op on nil.
//
//hmcsim:hotpath
func (t *LinkTracer) OnRetry(serPs int64) {
	if t == nil {
		return
	}
	t.Retries++
	t.BusyPs += serPs
}

// NoCTracer observes the logic-layer fabric. One tracer is shared by
// every router of a system; engines are single-threaded, so the shared
// counters need no synchronization.
type NoCTracer struct {
	Hops   uint64 // router admissions (each is one hop of a message's path)
	Stalls uint64 // bridge-channel admissions refused by an empty credit pool
	Queue  Hist   // router occupancy sampled at each admission

	tl  *TimelineTrack // hops over sim-time, when a timeline is enabled
	tlS *TimelineTrack // credit stalls over sim-time
	now func() int64
}

// OnHop records one router admission at the given router occupancy.
// No-op on nil.
//
//hmcsim:hotpath
func (t *NoCTracer) OnHop(queued int) {
	if t == nil {
		return
	}
	t.Hops++
	t.Queue.Observe(queued)
	if t.tl != nil {
		t.tl.Add(t.now(), 1)
	}
}

// OnCreditStall records a bridge-channel admission attempt that found
// the credit pool empty — the fabric's cross-shard back-pressure
// signal. No-op on nil.
//
//hmcsim:hotpath
func (t *NoCTracer) OnCreditStall() {
	if t == nil {
		return
	}
	t.Stalls++
	if t.tlS != nil {
		t.tlS.Add(t.now(), 1)
	}
}

// HostTracer observes the FPGA-side tag pools that bound outstanding
// requests per port.
type HostTracer struct {
	TagTakes    uint64 // successful tag acquisitions
	TagWaits    uint64 // issue attempts blocked on an empty pool
	Outstanding Hist   // outstanding tags sampled per acquisition

	tl  *TimelineTrack // tag takes over sim-time, when a timeline is enabled
	tlW *TimelineTrack // tag waits over sim-time
	now func() int64
}

// OnTagTake records a successful acquisition with the pool's resulting
// outstanding count. No-op on nil.
//
//hmcsim:hotpath
func (t *HostTracer) OnTagTake(outstanding int) {
	if t == nil {
		return
	}
	t.TagTakes++
	t.Outstanding.Observe(outstanding)
	if t.tl != nil {
		t.tl.Add(t.now(), 1)
	}
}

// OnTagWait records an issue attempt that found the pool empty. No-op
// on nil.
//
//hmcsim:hotpath
func (t *HostTracer) OnTagWait() {
	if t == nil {
		return
	}
	t.TagWaits++
	if t.tlW != nil {
		t.tlW.Add(t.now(), 1)
	}
}

// SystemTracer aggregates the component tracers of one System. All of
// its state is touched only by that system's single engine goroutine;
// the Collector merges across systems after their runs complete.
type SystemTracer struct {
	vaults []*VaultTracer
	links  []*LinkTracer
	names  []string // links[i]'s direction name
	NoC    NoCTracer
	Host   HostTracer

	now      func() int64 // the owning engine's clock, for utilization windows
	timeline *Timeline    // optional time-resolved activity series

	// shards, keyed by shard index, hold the tracer plumbing of engine
	// shards other than the primary in a sharded build: each shard's
	// clock, its private timeline (Timeline mutates shared bucket state
	// on Add, so engines must not share one), and its fabric tracer.
	// Serial builds never populate it.
	shards map[int]*shardState
}

// shardState is one engine shard's tracer plumbing.
type shardState struct {
	clock func() int64
	tl    *Timeline
	noc   *NoCTracer
}

// ShardClock registers the clock of engine shard s; tracers obtained
// through ShardNoC/ShardVault use it, and, when a timeline is enabled,
// samples for that shard land in a shard-private timeline exported as
// its own process. Call after SetClock, during system assembly.
func (t *SystemTracer) ShardClock(shard int, clock func() int64) {
	if t == nil {
		return
	}
	if t.shards == nil {
		t.shards = map[int]*shardState{}
	}
	st := t.shards[shard]
	if st == nil {
		st = &shardState{}
		t.shards[shard] = st
	}
	st.clock = clock
	if t.timeline != nil && st.tl == nil {
		st.tl = NewTimeline(t.timeline.WidthPs())
	}
}

// ShardNoC returns the fabric tracer of engine shard s: a per-shard
// tracer when ShardClock registered the shard, the primary NoC tracer
// otherwise (the serial build's single shared tracer).
func (t *SystemTracer) ShardNoC(shard int) *NoCTracer {
	if t == nil {
		return nil
	}
	st := t.shards[shard]
	if st == nil {
		return &t.NoC
	}
	if st.noc == nil {
		st.noc = &NoCTracer{}
		if st.tl != nil {
			st.noc.now = st.clock
			st.noc.tl = st.tl.Track("noc hops")
			st.noc.tlS = st.tl.Track("noc credit stalls")
		}
	}
	return st.noc
}

// ShardTimeline returns engine shard s's private timeline when one was
// registered, falling back to the system timeline (the hub shard and
// serial builds) and to nil when timelines are disabled.
func (t *SystemTracer) ShardTimeline(shard int) *Timeline {
	if t == nil {
		return nil
	}
	if st := t.shards[shard]; st != nil && st.tl != nil {
		return st.tl
	}
	return t.timeline
}

// ShardVault is Vault(id) for a vault living on engine shard s: the
// tracer's clock and timeline tracks come from that shard. Falls back
// to Vault(id) when the shard is unregistered.
func (t *SystemTracer) ShardVault(id, shard int) *VaultTracer {
	if t == nil {
		return nil
	}
	st := t.shards[shard]
	if st == nil {
		return t.Vault(id)
	}
	for len(t.vaults) <= id {
		t.vaults = append(t.vaults, &VaultTracer{})
	}
	vt := t.vaults[id]
	vt.now = st.clock
	if st.tl != nil {
		vt.tl = st.tl.Track(fmt.Sprintf("vault %d", id))
		vt.tlR = st.tl.Track("vault rejects")
	}
	return vt
}

// EnableTimeline attaches a timeline; component tracers created (or
// clocked) afterwards record their activity into per-component tracks.
// Call before the system is constructed — i.e. before SetClock runs.
func (t *SystemTracer) EnableTimeline(tl *Timeline) {
	if t == nil {
		return
	}
	t.timeline = tl
}

// Timeline returns the attached timeline, nil when disabled.
func (t *SystemTracer) Timeline() *Timeline {
	if t == nil {
		return nil
	}
	return t.timeline
}

// SetClock installs the owning engine's clock; the collector reads it
// once per summary as the utilization window, and an enabled timeline
// uses it to place samples on the sim-time axis.
func (t *SystemTracer) SetClock(fn func() int64) {
	if t == nil {
		return
	}
	t.now = fn
	if t.timeline == nil {
		return
	}
	t.NoC.now = fn
	t.NoC.tl = t.timeline.Track("noc hops")
	t.NoC.tlS = t.timeline.Track("noc credit stalls")
	t.Host.now = fn
	t.Host.tl = t.timeline.Track("host tags")
	t.Host.tlW = t.timeline.Track("host tag waits")
	for id, vt := range t.vaults {
		t.attachVault(id, vt)
	}
	for i, lt := range t.links {
		t.attachLink(t.names[i], lt)
	}
}

func (t *SystemTracer) attachVault(id int, vt *VaultTracer) {
	if t.timeline == nil || t.now == nil {
		return
	}
	vt.now = t.now
	vt.tl = t.timeline.Track(fmt.Sprintf("vault %d", id))
	vt.tlR = t.timeline.Track("vault rejects")
}

func (t *SystemTracer) attachLink(name string, lt *LinkTracer) {
	if t.timeline == nil || t.now == nil {
		return
	}
	lt.now = t.now
	lt.tl = t.timeline.Track(name + " flits")
}

// Vault returns (growing on demand) the tracer for vault id.
func (t *SystemTracer) Vault(id int) *VaultTracer {
	if t == nil {
		return nil
	}
	for len(t.vaults) <= id {
		vt := &VaultTracer{}
		t.attachVault(len(t.vaults), vt)
		t.vaults = append(t.vaults, vt)
	}
	return t.vaults[id]
}

// Link returns (creating on demand) the tracer for the named link
// direction.
func (t *SystemTracer) Link(name string) *LinkTracer {
	if t == nil {
		return nil
	}
	for i, n := range t.names {
		if n == name {
			return t.links[i]
		}
	}
	lt := &LinkTracer{}
	t.attachLink(name, lt)
	t.links = append(t.links, lt)
	t.names = append(t.names, name)
	return lt
}

// Collector gathers SystemTracers across the (possibly parallel)
// systems of a run and merges them into one Summary.
type Collector struct {
	mu      sync.Mutex
	systems []*SystemTracer
}

// NewSystem registers and returns a tracer for one new system. Safe to
// call from concurrent sweep workers.
func (c *Collector) NewSystem() *SystemTracer {
	t := &SystemTracer{}
	c.Register(t)
	return t
}

// Register adds an externally built tracer, letting one system report
// into several collectors (e.g. a summary collector and a timeline
// collector on the same run). Safe to call from concurrent sweep
// workers.
func (c *Collector) Register(t *SystemTracer) {
	c.mu.Lock()
	c.systems = append(c.systems, t)
	c.mu.Unlock()
}

// Systems returns how many systems have registered.
func (c *Collector) Systems() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.systems)
}

// Summary is the merged snapshot of every traced system.
type Summary struct {
	Systems int           `json:"systems"`
	Vaults  VaultSummary  `json:"vaults"`
	Links   []LinkSummary `json:"links"`
	NoC     NoCSummary    `json:"noc"`
	Host    HostSummary   `json:"host"`
}

// VaultSummary aggregates the vault tracers: totals plus per-vault-ID
// lines merged across systems.
type VaultSummary struct {
	Accepts   uint64      `json:"accepts"`
	Rejects   uint64      `json:"rejects"`
	Occupancy HistSummary `json:"occupancy"`
	PerVault  []VaultLine `json:"perVault,omitempty"`
}

// VaultLine is one vault ID's aggregate across systems.
type VaultLine struct {
	ID      int     `json:"id"`
	Accepts uint64  `json:"accepts"`
	Rejects uint64  `json:"rejects"`
	MeanOcc float64 `json:"meanOcc"`
	MaxOcc  uint64  `json:"maxOcc"`
}

// LinkSummary is one link direction's aggregate across systems.
// Utilization is busy time over the summed engine windows of the
// systems that direction appeared in.
type LinkSummary struct {
	Name        string  `json:"name"`
	Packets     uint64  `json:"packets"`
	Flits       uint64  `json:"flits"`
	Retries     uint64  `json:"retries"`
	BusyPs      int64   `json:"busyPs"`
	WindowPs    int64   `json:"windowPs"`
	Utilization float64 `json:"utilization"`
}

// NoCSummary aggregates the fabric tracers.
type NoCSummary struct {
	Hops   uint64      `json:"hops"`
	Stalls uint64      `json:"stalls"`
	Queue  HistSummary `json:"queue"`
}

// HostSummary aggregates the tag-pool tracers.
type HostSummary struct {
	TagTakes    uint64      `json:"tagTakes"`
	TagWaits    uint64      `json:"tagWaits"`
	Outstanding HistSummary `json:"outstanding"`
}

// Summary merges every registered system. Call it after the traced
// runs complete; it reads tracer state the engine goroutines wrote.
func (c *Collector) Summary() *Summary {
	c.mu.Lock()
	systems := append([]*SystemTracer(nil), c.systems...)
	c.mu.Unlock()

	s := &Summary{Systems: len(systems)}
	var vaultAgg []VaultLine
	var vaultOcc []Hist
	var occAll Hist
	var nocQ Hist
	var hostOut Hist
	type linkAgg struct {
		LinkSummary
	}
	linksByName := map[string]*linkAgg{}
	for _, sys := range systems {
		var window int64
		if sys.now != nil {
			window = sys.now()
		}
		for id, vt := range sys.vaults {
			for len(vaultAgg) <= id {
				vaultAgg = append(vaultAgg, VaultLine{ID: len(vaultAgg)})
				vaultOcc = append(vaultOcc, Hist{})
			}
			vaultAgg[id].Accepts += vt.Accepts
			vaultAgg[id].Rejects += vt.Rejects
			vaultOcc[id].Merge(&vt.Occupancy)
			occAll.Merge(&vt.Occupancy)
			s.Vaults.Accepts += vt.Accepts
			s.Vaults.Rejects += vt.Rejects
		}
		for i, lt := range sys.links {
			a := linksByName[sys.names[i]]
			if a == nil {
				a = &linkAgg{LinkSummary{Name: sys.names[i]}}
				linksByName[sys.names[i]] = a
			}
			a.Packets += lt.Packets
			a.Flits += lt.Flits
			a.Retries += lt.Retries
			a.BusyPs += lt.BusyPs
			a.WindowPs += window
		}
		s.NoC.Hops += sys.NoC.Hops
		s.NoC.Stalls += sys.NoC.Stalls
		nocQ.Merge(&sys.NoC.Queue)
		for _, st := range sys.shards {
			if st.noc != nil {
				s.NoC.Hops += st.noc.Hops
				s.NoC.Stalls += st.noc.Stalls
				nocQ.Merge(&st.noc.Queue)
			}
		}
		s.Host.TagTakes += sys.Host.TagTakes
		s.Host.TagWaits += sys.Host.TagWaits
		hostOut.Merge(&sys.Host.Outstanding)
	}
	for i := range vaultAgg {
		vaultAgg[i].MeanOcc = vaultOcc[i].Mean()
		vaultAgg[i].MaxOcc = vaultOcc[i].Max
	}
	s.Vaults.PerVault = vaultAgg
	s.Vaults.Occupancy = occAll.Summarize()
	s.NoC.Queue = nocQ.Summarize()
	s.Host.Outstanding = hostOut.Summarize()
	for _, a := range linksByName {
		ls := a.LinkSummary
		if ls.WindowPs > 0 {
			ls.Utilization = float64(ls.BusyPs) / float64(ls.WindowPs)
			if math.IsNaN(ls.Utilization) {
				ls.Utilization = 0
			}
		}
		s.Links = append(s.Links, ls)
	}
	sort.Slice(s.Links, func(i, j int) bool { return s.Links[i].Name < s.Links[j].Name })
	return s
}

// JSON marshals the summary with stable indentation.
func (s *Summary) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// String renders the human-readable tracer dump `hmcsim -trace` prints.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tracer summary (%d system", s.Systems)
	if s.Systems != 1 {
		b.WriteString("s")
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "  vaults: accepts=%d rejects=%d occupancy %s\n",
		s.Vaults.Accepts, s.Vaults.Rejects, s.Vaults.Occupancy)
	for _, h := range s.Vaults.Occupancy.Buckets {
		fmt.Fprintf(&b, "    occ<=%-6s %d\n", h.Le, h.Count)
	}
	for _, v := range s.Vaults.PerVault {
		if v.Accepts == 0 && v.Rejects == 0 {
			continue
		}
		fmt.Fprintf(&b, "    vault %2d: accepts=%-10d rejects=%-8d occ mean=%.1f max=%d\n",
			v.ID, v.Accepts, v.Rejects, v.MeanOcc, v.MaxOcc)
	}
	for _, l := range s.Links {
		fmt.Fprintf(&b, "  %-12s packets=%-10d flits=%-10d retries=%-6d util=%.1f%%\n",
			l.Name, l.Packets, l.Flits, l.Retries, 100*l.Utilization)
	}
	fmt.Fprintf(&b, "  noc: hops=%d credit stalls=%d queue %s\n", s.NoC.Hops, s.NoC.Stalls, s.NoC.Queue)
	fmt.Fprintf(&b, "  host: tag takes=%d waits=%d outstanding %s\n",
		s.Host.TagTakes, s.Host.TagWaits, s.Host.Outstanding)
	return b.String()
}
