package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestHistBucketing(t *testing.T) {
	var h Hist
	for _, v := range []int{0, 1, 2, 3, 4, 7, 8, 100, -5} {
		h.Observe(v)
	}
	if h.Count != 9 {
		t.Fatalf("count %d, want 9", h.Count)
	}
	if h.Max != 100 {
		t.Fatalf("max %d, want 100", h.Max)
	}
	// Sum treats the negative observation as 0.
	if h.Sum != 0+1+2+3+4+7+8+100 {
		t.Fatalf("sum %d", h.Sum)
	}
	want := map[int]uint64{0: 2, 1: 1, 2: 2, 3: 2, 4: 1, 7: 1} // bucket index -> count
	for i, n := range h.Buckets {
		if n != want[i] {
			t.Errorf("bucket %d (le %s): %d, want %d", i, BucketLabel(i), n, want[i])
		}
	}
}

func TestHistClampAndMerge(t *testing.T) {
	var a, b Hist
	a.Observe(1 << 40) // far beyond the last labeled bucket
	b.Observe(3)
	b.Observe(5)
	a.Merge(&b)
	if a.Count != 3 || a.Max != 1<<40 {
		t.Fatalf("merged count=%d max=%d", a.Count, a.Max)
	}
	if a.Buckets[histBuckets-1] != 1 {
		t.Fatalf("huge value not clamped into the last bucket: %v", a.Buckets)
	}
	s := a.Summarize()
	if s.Buckets[len(s.Buckets)-1].Le != "+Inf" {
		t.Fatalf("last occupied bucket label %q, want +Inf", s.Buckets[len(s.Buckets)-1].Le)
	}
}

// TestHistObserveZero: the zero value is its own bucket, distinct from
// [1,2), and feeds Count but not Sum.
func TestHistObserveZero(t *testing.T) {
	var h Hist
	h.Observe(0)
	h.Observe(0)
	if h.Count != 2 || h.Sum != 0 || h.Max != 0 {
		t.Fatalf("count=%d sum=%d max=%d, want 2/0/0", h.Count, h.Sum, h.Max)
	}
	if h.Buckets[0] != 2 {
		t.Fatalf("bucket 0 = %d, want 2", h.Buckets[0])
	}
	for i := 1; i < histBuckets; i++ {
		if h.Buckets[i] != 0 {
			t.Fatalf("bucket %d = %d, want 0", i, h.Buckets[i])
		}
	}
	s := h.Summarize()
	if len(s.Buckets) != 1 || s.Buckets[0].Le != "0" {
		t.Fatalf("summary buckets = %+v, want one le=0 bucket", s.Buckets)
	}
}

// TestHistClampTopBucket: every value at or past the last labeled bound
// lands in the open-ended +Inf bucket, never out of range.
func TestHistClampTopBucket(t *testing.T) {
	top := uint64(1) << (histBuckets - 2) // first value past the last labeled bound
	var h Hist
	for _, v := range []int{int(top) - 1, int(top), int(top) * 2, 1 << 62} {
		h.Observe(v)
	}
	if h.Buckets[histBuckets-2] != 1 {
		t.Fatalf("value %d should land in the last labeled bucket: %v", top-1, h.Buckets)
	}
	if h.Buckets[histBuckets-1] != 3 {
		t.Fatalf("top bucket = %d, want 3 clamped values: %v", h.Buckets[histBuckets-1], h.Buckets)
	}
	if h.Max != 1<<62 {
		t.Fatalf("max = %d, want %d", h.Max, uint64(1)<<62)
	}
}

// TestHistMergeDifferingMax: Merge keeps the larger Max regardless of
// which side holds it, and is not commutative-sensitive for the counts.
func TestHistMergeDifferingMax(t *testing.T) {
	var small, big Hist
	small.Observe(2)
	big.Observe(500)

	a := small // copy, merge big into small
	a.Merge(&big)
	if a.Max != 500 {
		t.Fatalf("merge(small<-big) max = %d, want 500", a.Max)
	}
	b := big // copy, merge small into big: Max must survive
	b.Merge(&small)
	if b.Max != 500 {
		t.Fatalf("merge(big<-small) max = %d, want 500", b.Max)
	}
	if a.Count != 2 || b.Count != 2 || a.Sum != 502 || b.Sum != 502 {
		t.Fatalf("merged counts/sums differ: a=%+v b=%+v", a, b)
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			t.Fatalf("bucket %d differs by merge order: %d vs %d", i, a.Buckets[i], b.Buckets[i])
		}
	}
}

// TestBucketLabelBoundaries pins the label scheme: inclusive upper
// bounds 0, 1, 3, 7, ... with +Inf on the open-ended last bucket, and
// out-of-range indices clamped to the nearest end.
func TestBucketLabelBoundaries(t *testing.T) {
	cases := map[int]string{
		-1:              "0", // clamped low
		0:               "0",
		1:               "1",
		2:               "3",
		3:               "7",
		histBuckets - 2: "32767",
		histBuckets - 1: "+Inf",
		histBuckets:     "+Inf", // clamped high
	}
	for i, want := range cases {
		if got := BucketLabel(i); got != want {
			t.Errorf("BucketLabel(%d) = %q, want %q", i, got, want)
		}
	}
}

// TestNilTracersAreNoOps is the zero-cost-when-off contract: every hook
// must be safe and allocation-free on a nil receiver, because components
// call them unconditionally on possibly-nil pointers.
func TestNilTracersAreNoOps(t *testing.T) {
	var vt *VaultTracer
	var lt *LinkTracer
	var nt *NoCTracer
	var ht *HostTracer
	allocs := testing.AllocsPerRun(1000, func() {
		vt.OnAccept(3)
		vt.OnReject()
		lt.OnTx(9, 1234)
		lt.OnRetry(1234)
		nt.OnHop(2)
		ht.OnTagTake(17)
		ht.OnTagWait()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer hooks allocated %.1f/op, want 0", allocs)
	}
}

// TestEnabledTracersDoNotAllocate: the hooks stay allocation-free when
// tracing is on, too — fixed-size histograms, no boxing.
func TestEnabledTracersDoNotAllocate(t *testing.T) {
	vt := &VaultTracer{}
	lt := &LinkTracer{}
	nt := &NoCTracer{}
	ht := &HostTracer{}
	allocs := testing.AllocsPerRun(1000, func() {
		vt.OnAccept(3)
		vt.OnReject()
		lt.OnTx(9, 1234)
		lt.OnRetry(1234)
		nt.OnHop(2)
		ht.OnTagTake(17)
		ht.OnTagWait()
	})
	if allocs != 0 {
		t.Fatalf("enabled tracer hooks allocated %.1f/op, want 0", allocs)
	}
}

func TestCollectorSummaryMerges(t *testing.T) {
	var c Collector

	s1 := c.NewSystem()
	s1.SetClock(func() int64 { return 1000 })
	s1.Vault(0).OnAccept(2)
	s1.Vault(0).OnAccept(4)
	s1.Vault(2).OnReject()
	s1.Link("link0.req").OnTx(9, 600)
	s1.NoC.OnHop(1)
	s1.Host.OnTagTake(5)

	s2 := c.NewSystem()
	s2.SetClock(func() int64 { return 3000 })
	s2.Vault(0).OnAccept(6)
	s2.Link("link0.req").OnTx(1, 200)
	s2.Link("link0.resp").OnRetry(100)
	s2.Host.OnTagWait()

	sum := c.Summary()
	if sum.Systems != 2 {
		t.Fatalf("systems %d, want 2", sum.Systems)
	}
	if sum.Vaults.Accepts != 3 || sum.Vaults.Rejects != 1 {
		t.Fatalf("vault totals %+v", sum.Vaults)
	}
	if got := sum.Vaults.PerVault[0].Accepts; got != 3 {
		t.Fatalf("vault 0 accepts %d, want 3", got)
	}
	if mean := sum.Vaults.PerVault[0].MeanOcc; mean != 4 {
		t.Fatalf("vault 0 mean occupancy %v, want 4", mean)
	}
	if len(sum.Links) != 2 || sum.Links[0].Name != "link0.req" {
		t.Fatalf("links %+v", sum.Links)
	}
	req := sum.Links[0]
	if req.Packets != 2 || req.Flits != 10 || req.BusyPs != 800 || req.WindowPs != 4000 {
		t.Fatalf("link0.req aggregate %+v", req)
	}
	if req.Utilization != 0.2 {
		t.Fatalf("link0.req utilization %v, want 0.2", req.Utilization)
	}
	if sum.NoC.Hops != 1 || sum.Host.TagTakes != 1 || sum.Host.TagWaits != 1 {
		t.Fatalf("noc/host aggregates %+v %+v", sum.NoC, sum.Host)
	}

	// The summary must round-trip as JSON and render as text.
	blob, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	text := sum.String()
	for _, want := range []string{"tracer summary (2 systems)", "link0.req", "vault  0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary text missing %q:\n%s", want, text)
		}
	}
}
