// Timeline is the time-resolved half of the observability layer: where
// obs.Hist answers "how were samples distributed", a Timeline answers
// "when did the activity happen" by accumulating per-component event
// counts into fixed-size buckets over simulated time.
//
// Memory stays bounded on arbitrarily long runs by downsampling instead
// of growing: every track is a fixed array of TimelineBuckets counters,
// and when a sample lands past the covered range the whole timeline
// folds — bucket width doubles, adjacent buckets merge — until the
// sample fits. Recording is allocation-free for the same reason the
// tracer hooks are: all state is preallocated at attach time.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TimelineBuckets is the fixed per-track bucket count. 256 buckets at
// the default width cover ~268 µs of simulated time before the first
// fold, comfortably past the paper's measurement windows.
const TimelineBuckets = 256

// DefaultTimelineWidthPs is the initial bucket width (~1 µs of
// simulated time) used when NewTimeline is given a non-positive width.
const DefaultTimelineWidthPs = 1 << 20

// Timeline owns the shared bucket geometry of a set of tracks. All of
// its state is touched only by the owning system's single engine
// goroutine; export happens after the run completes.
type Timeline struct {
	widthPs int64
	tracks  []*TimelineTrack
	slices  []*SliceTrack
}

// NewTimeline returns a timeline with the given initial bucket width in
// picoseconds; non-positive widths select DefaultTimelineWidthPs.
func NewTimeline(widthPs int64) *Timeline {
	if widthPs <= 0 {
		widthPs = DefaultTimelineWidthPs
	}
	return &Timeline{widthPs: widthPs}
}

// WidthPs returns the current bucket width; it doubles on every fold.
func (tl *Timeline) WidthPs() int64 {
	if tl == nil {
		return 0
	}
	return tl.widthPs
}

// Track returns (creating on demand) the named activity series. Safe on
// a nil timeline, where it returns a nil track whose Add is a no-op —
// the same zero-cost-when-off contract the tracer hooks follow.
func (tl *Timeline) Track(name string) *TimelineTrack {
	if tl == nil {
		return nil
	}
	for _, tr := range tl.tracks {
		if tr.Name == name {
			return tr
		}
	}
	tr := &TimelineTrack{tl: tl, Name: name}
	tl.tracks = append(tl.tracks, tr)
	return tr
}

// Tracks returns the registered tracks in creation order.
func (tl *Timeline) Tracks() []*TimelineTrack {
	if tl == nil {
		return nil
	}
	return tl.tracks
}

// fold halves the resolution: bucket width doubles and adjacent buckets
// merge, freeing the upper half of every track for later samples.
//
//hmcsim:hotpath
func (tl *Timeline) fold() {
	tl.widthPs *= 2
	for _, tr := range tl.tracks {
		for i := 0; i < TimelineBuckets/2; i++ {
			tr.counts[i] = tr.counts[2*i] + tr.counts[2*i+1]
		}
		for i := TimelineBuckets / 2; i < TimelineBuckets; i++ {
			tr.counts[i] = 0
		}
	}
}

// TimelineTrack is one named activity series: event counts bucketed
// over simulated time, sharing its timeline's bucket geometry.
type TimelineTrack struct {
	tl     *Timeline
	Name   string
	counts [TimelineBuckets]uint64
}

// Add records n events at simulated time tPs, folding the timeline as
// needed so the sample always lands inside the covered range. No-op on
// a nil track and allocation-free otherwise: folds rewrite the fixed
// arrays in place.
//
//hmcsim:hotpath
func (tr *TimelineTrack) Add(tPs int64, n uint64) {
	if tr == nil {
		return
	}
	if tPs < 0 {
		tPs = 0
	}
	tl := tr.tl
	for tPs >= tl.widthPs*TimelineBuckets {
		tl.fold()
	}
	tr.counts[tPs/tl.widthPs] += n
}

// Total returns the track's summed event count across all buckets.
func (tr *TimelineTrack) Total() uint64 {
	if tr == nil {
		return 0
	}
	var sum uint64
	for _, c := range tr.counts {
		sum += c
	}
	return sum
}

// sliceCap is a SliceTrack's fixed entry capacity. Like counter tracks,
// slice tracks stay bounded by coarsening instead of growing: when the
// array fills, adjacent entries merge (durations sum, the earlier
// timestamp wins), halving occupancy while keeping full-run coverage.
const sliceCap = 2048

// SliceTrack records duration slices — (simulated timestamp, wall-clock
// duration) pairs such as barrier stalls — against its timeline's
// process. Appends must be monotone in timestamp (one writer advancing
// simulated time), which folding preserves. All storage is preallocated
// at creation, so Add is allocation-free.
type SliceTrack struct {
	tl    *Timeline
	Name  string
	ts    []int64 // simulated picoseconds, monotone non-decreasing
	dur   []int64 // wall-clock nanoseconds
	n     int
	Folds int // times the track coarsened to stay in bounds
}

// Slices returns (creating on demand) the named duration-slice track.
// Safe on a nil timeline, where it returns a nil track whose Add is a
// no-op.
func (tl *Timeline) Slices(name string) *SliceTrack {
	if tl == nil {
		return nil
	}
	for _, st := range tl.slices {
		if st.Name == name {
			return st
		}
	}
	st := &SliceTrack{
		tl:   tl,
		Name: name,
		ts:   make([]int64, sliceCap),
		dur:  make([]int64, sliceCap),
	}
	tl.slices = append(tl.slices, st)
	return st
}

// SliceTracks returns the registered slice tracks in creation order.
func (tl *Timeline) SliceTracks() []*SliceTrack {
	if tl == nil {
		return nil
	}
	return tl.slices
}

// Add records one slice of durNs wall-clock nanoseconds at simulated
// time tPs. No-op on a nil track; allocation-free otherwise.
//
//hmcsim:hotpath
func (st *SliceTrack) Add(tPs, durNs int64) {
	if st == nil {
		return
	}
	if st.n == sliceCap {
		for i := 0; i < sliceCap/2; i++ {
			st.ts[i] = st.ts[2*i]
			st.dur[i] = st.dur[2*i] + st.dur[2*i+1]
		}
		st.n = sliceCap / 2
		st.Folds++
	}
	st.ts[st.n] = tPs
	st.dur[st.n] = durNs
	st.n++
}

// Len returns the number of recorded (possibly merged) slices.
func (st *SliceTrack) Len() int {
	if st == nil {
		return 0
	}
	return st.n
}

// TotalDurNanos sums the recorded slice durations in nanoseconds.
func (st *SliceTrack) TotalDurNanos() int64 {
	if st == nil {
		return 0
	}
	var sum int64
	for _, d := range st.dur[:st.n] {
		sum += d
	}
	return sum
}

// traceEvent is one Chrome trace_event record. Counter samples use
// ph "C"; complete slices use ph "X"; process and thread metadata use
// ph "M".
type traceEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid,omitempty"`
	Ts   float64     `json:"ts"`
	Dur  float64     `json:"dur,omitempty"`
	Args interface{} `json:"args,omitempty"`
}

// chromeTrace is the top-level Chrome trace_event JSON object.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders every registered system's timelines as
// Chrome trace_event JSON (counter events over simulated time, one
// process per timeline), loadable in Perfetto or chrome://tracing. A
// sharded system exports one process per engine shard alongside the
// primary, so per-shard counter tracks appear side by side. Duration
// slices (barrier stalls) become ph "X" complete events on their own
// thread rows: positioned at their simulated timestamp, with the
// wall-clock wait rendered as the slice length — a deliberate
// mixed-axis view that makes contention pile-ups visible next to the
// traffic that caused them. Systems without a timeline are skipped;
// with none at all the output is still a valid empty trace. Timestamps
// map simulated picoseconds onto the format's microsecond axis.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	c.mu.Lock()
	systems := append([]*SystemTracer(nil), c.systems...)
	c.mu.Unlock()

	out := chromeTrace{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	pid := 0
	emit := func(name string, tl *Timeline) {
		pid++
		named := false
		ensureNamed := func() {
			if !named {
				out.TraceEvents = append(out.TraceEvents, traceEvent{
					Name: "process_name", Ph: "M", Pid: pid,
					Args: map[string]string{"name": name},
				})
				named = true
			}
		}
		for _, tr := range tl.tracks {
			if tr.Total() == 0 {
				continue
			}
			ensureNamed()
			// Emit occupied buckets plus the zero bucket that follows a
			// run of activity, so counters visibly drop instead of
			// holding their last value across idle stretches.
			for i := 0; i < TimelineBuckets; i++ {
				if tr.counts[i] == 0 && (i == 0 || tr.counts[i-1] == 0) {
					continue
				}
				out.TraceEvents = append(out.TraceEvents, traceEvent{
					Name: tr.Name, Ph: "C", Pid: pid,
					Ts:   float64(int64(i)*tl.widthPs) / 1e6,
					Args: map[string]uint64{"c": tr.counts[i]},
				})
			}
		}
		for si, st := range tl.slices {
			if st.Len() == 0 {
				continue
			}
			ensureNamed()
			tid := si + 1
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]string{"name": st.Name},
			})
			for k := 0; k < st.n; k++ {
				out.TraceEvents = append(out.TraceEvents, traceEvent{
					Name: st.Name, Ph: "X", Pid: pid, Tid: tid,
					Ts:   float64(st.ts[k]) / 1e6,
					Dur:  float64(st.dur[k]) / 1e3,
					Args: map[string]int64{"waitNs": st.dur[k]},
				})
			}
		}
	}
	for _, sys := range systems {
		tl := sys.Timeline()
		if tl == nil {
			continue
		}
		emit("system", tl)
		shardIDs := make([]int, 0, len(sys.shards))
		for id, st := range sys.shards {
			if st.tl != nil {
				shardIDs = append(shardIDs, id)
			}
		}
		sort.Ints(shardIDs)
		for _, id := range shardIDs {
			emit(fmt.Sprintf("shard %d", id), sys.shards[id].tl)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
