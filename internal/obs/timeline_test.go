package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

func TestTimelineBucketing(t *testing.T) {
	tl := NewTimeline(1000)
	tr := tl.Track("a")
	tr.Add(0, 1)
	tr.Add(999, 2)
	tr.Add(1000, 5)
	tr.Add(-50, 1) // negative times clamp to the first bucket
	if tr.counts[0] != 4 {
		t.Fatalf("bucket 0 = %d, want 4", tr.counts[0])
	}
	if tr.counts[1] != 5 {
		t.Fatalf("bucket 1 = %d, want 5", tr.counts[1])
	}
	if tr.Total() != 9 {
		t.Fatalf("total = %d, want 9", tr.Total())
	}
	if got := tl.Track("a"); got != tr {
		t.Fatal("Track(name) did not return the existing track")
	}
}

func TestTimelineDefaultWidth(t *testing.T) {
	if w := NewTimeline(0).WidthPs(); w != DefaultTimelineWidthPs {
		t.Fatalf("default width = %d, want %d", w, DefaultTimelineWidthPs)
	}
	if w := NewTimeline(-7).WidthPs(); w != DefaultTimelineWidthPs {
		t.Fatalf("negative width = %d, want %d", w, DefaultTimelineWidthPs)
	}
}

// TestTimelineFoldPreservesTotals: a sample past the covered range
// doubles the bucket width (possibly repeatedly) without losing any
// previously recorded counts, on every track of the timeline.
func TestTimelineFoldPreservesTotals(t *testing.T) {
	tl := NewTimeline(1000)
	a := tl.Track("a")
	b := tl.Track("b")
	for i := 0; i < TimelineBuckets; i++ {
		a.Add(int64(i)*1000, 1)
	}
	b.Add(0, 3)

	// One step past the range: exactly one fold.
	a.Add(1000*TimelineBuckets, 1)
	if tl.WidthPs() != 2000 {
		t.Fatalf("width after fold = %d, want 2000", tl.WidthPs())
	}
	if a.Total() != TimelineBuckets+1 {
		t.Fatalf("track a total after fold = %d, want %d", a.Total(), TimelineBuckets+1)
	}
	if b.Total() != 3 || b.counts[0] != 3 {
		t.Fatalf("track b disturbed by fold: total=%d counts[0]=%d", b.Total(), b.counts[0])
	}

	// A sample far in the future folds repeatedly until it fits.
	far := int64(1) << 40
	a.Add(far, 2)
	w := tl.WidthPs()
	if far >= w*TimelineBuckets {
		t.Fatalf("width %d still does not cover t=%d", w, far)
	}
	if a.Total() != TimelineBuckets+3 {
		t.Fatalf("track a total after deep fold = %d, want %d", a.Total(), TimelineBuckets+3)
	}
	if a.counts[far/w] == 0 {
		t.Fatalf("far sample not recorded in bucket %d", far/w)
	}
}

// TestTimelineNilSafe: the nil-receiver contract extends to timelines —
// a nil timeline yields nil tracks whose Add/Total are no-ops.
func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	if tl.WidthPs() != 0 || tl.Tracks() != nil {
		t.Fatal("nil timeline accessors not zero-valued")
	}
	tr := tl.Track("x")
	if tr != nil {
		t.Fatal("nil timeline returned a non-nil track")
	}
	tr.Add(123, 4) // must not panic
	if tr.Total() != 0 {
		t.Fatal("nil track reports samples")
	}
}

// TestTimelineAddDoesNotAllocate: recording — including the fold path —
// rewrites fixed arrays only.
func TestTimelineAddDoesNotAllocate(t *testing.T) {
	tl := NewTimeline(1000)
	tr := tl.Track("a")
	var tick int64
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Add(tick, 1)
		tick += 500 * TimelineBuckets // forces periodic folds
	})
	if allocs != 0 {
		t.Fatalf("Add allocated %.1f/op, want 0", allocs)
	}
	var nilTrack *TimelineTrack
	allocs = testing.AllocsPerRun(1000, func() { nilTrack.Add(1, 1) })
	if allocs != 0 {
		t.Fatalf("nil-track Add allocated %.1f/op, want 0", allocs)
	}
}

// TestDisabledTimelineIsZeroAlloc pins the engine-hot-path deal for the
// timeline sampler: a clocked SystemTracer WITHOUT a timeline attached
// runs every hook allocation-free, exactly like PR 6's tracers.
func TestDisabledTimelineIsZeroAlloc(t *testing.T) {
	var c Collector
	st := c.NewSystem()
	st.SetClock(func() int64 { return 42 })
	vt := st.Vault(0)
	lt := st.Link("link0.req")
	allocs := testing.AllocsPerRun(1000, func() {
		vt.OnAccept(3)
		vt.OnReject()
		lt.OnTx(9, 1234)
		lt.OnRetry(1234)
		st.NoC.OnHop(2)
		st.Host.OnTagTake(17)
		st.Host.OnTagWait()
	})
	if allocs != 0 {
		t.Fatalf("hooks with timeline disabled allocated %.1f/op, want 0", allocs)
	}
	if st.Timeline() != nil {
		t.Fatal("timeline unexpectedly enabled")
	}
}

// TestEnabledTimelineHooksDoNotAllocate: even with a timeline attached,
// the per-event cost stays allocation-free (tracks are preallocated at
// attach time).
func TestEnabledTimelineHooksDoNotAllocate(t *testing.T) {
	var c Collector
	st := c.NewSystem()
	st.EnableTimeline(NewTimeline(1000))
	var tick int64
	st.SetClock(func() int64 { return tick })
	vt := st.Vault(0)
	lt := st.Link("link0.req")
	allocs := testing.AllocsPerRun(1000, func() {
		vt.OnAccept(3)
		vt.OnReject()
		lt.OnTx(9, 1234)
		lt.OnRetry(1234)
		st.NoC.OnHop(2)
		st.Host.OnTagTake(17)
		st.Host.OnTagWait()
		tick += 700
	})
	if allocs != 0 {
		t.Fatalf("hooks with timeline enabled allocated %.1f/op, want 0", allocs)
	}
	if got := st.Timeline().Track("vault 0").Total(); got == 0 {
		t.Fatal("vault track recorded nothing")
	}
	if got := st.Timeline().Track("link0.req flits").Total(); got == 0 {
		t.Fatal("link track recorded nothing")
	}
}

// TestTimelineAttachOrderIndependent: tracks attach whether components
// register before or after the clock is installed.
func TestTimelineAttachOrderIndependent(t *testing.T) {
	var c Collector
	st := c.NewSystem()
	st.EnableTimeline(NewTimeline(1000))
	early := st.Vault(0) // before SetClock
	st.SetClock(func() int64 { return 10 })
	late := st.Vault(1) // after SetClock
	early.OnAccept(1)
	late.OnAccept(1)
	if st.Timeline().Track("vault 0").Total() != 1 {
		t.Fatal("pre-clock vault not attached to the timeline")
	}
	if st.Timeline().Track("vault 1").Total() != 1 {
		t.Fatal("post-clock vault not attached to the timeline")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var c Collector
	st := c.NewSystem()
	st.EnableTimeline(NewTimeline(1000))
	var tick int64
	st.SetClock(func() int64 { return tick })
	vt := st.Vault(0)
	lt := st.Link("link0.req")
	for i := 0; i < 10; i++ {
		tick = int64(i) * 1000
		vt.OnAccept(2)
		lt.OnTx(9, 600)
	}
	// A second, untouched system must not emit events.
	quiet := c.NewSystem()
	quiet.EnableTimeline(NewTimeline(1000))
	quiet.SetClock(func() int64 { return 0 })

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Ts   float64         `json:"ts"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", out.DisplayTimeUnit)
	}
	var meta, counters int
	names := map[string]bool{}
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "C":
			counters++
			names[ev.Name] = true
			if ev.Pid != 1 {
				t.Errorf("counter event on pid %d, want 1 (quiet system must not emit)", ev.Pid)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta == 0 {
		t.Error("no process_name metadata emitted")
	}
	if counters == 0 {
		t.Fatal("no counter events emitted")
	}
	if !names["vault 0"] || !names["link0.req flits"] {
		t.Errorf("counter tracks = %v, want vault 0 and link0.req flits", names)
	}
}

// TestSliceTrackFold pins the bounded-memory contract: a slice track
// that fills coarsens by merging adjacent entries in place — total
// duration and timestamp monotonicity survive, occupancy halves.
func TestSliceTrackFold(t *testing.T) {
	tl := NewTimeline(1000)
	st := tl.Slices("barrier stall")
	if tl.Slices("barrier stall") != st {
		t.Fatal("Slices is not idempotent per name")
	}
	n := sliceCap + sliceCap/2
	var wantDur int64
	for i := 0; i < n; i++ {
		st.Add(int64(i)*100, 7)
		wantDur += 7
	}
	if st.Folds == 0 {
		t.Fatal("overfilled slice track never folded")
	}
	if st.Len() > sliceCap {
		t.Fatalf("Len %d exceeds capacity %d", st.Len(), sliceCap)
	}
	if got := st.TotalDurNanos(); got != wantDur {
		t.Fatalf("TotalDurNanos = %d after fold, want %d", got, wantDur)
	}
	for i := 1; i < st.Len(); i++ {
		if st.ts[i] < st.ts[i-1] {
			t.Fatalf("timestamps not monotone after fold: ts[%d]=%d < ts[%d]=%d", i, st.ts[i], i-1, st.ts[i-1])
		}
	}
}

// TestSliceTrackNilSafe: the nil-receiver contract the tracer hooks
// rely on — a disabled timeline yields nil tracks whose methods no-op.
func TestSliceTrackNilSafe(t *testing.T) {
	var tl *Timeline
	st := tl.Slices("anything")
	if st != nil {
		t.Fatal("nil timeline returned a non-nil slice track")
	}
	st.Add(100, 5) // must not panic
	if st.Len() != 0 || st.TotalDurNanos() != 0 {
		t.Fatal("nil slice track reports nonzero state")
	}
	if tl.SliceTracks() != nil {
		t.Fatal("nil timeline reports slice tracks")
	}
}

// TestWriteChromeTraceSharded is the shards>1 export contract: every
// registered shard with activity appears as its own process, slice
// tracks come out as complete ("X") events on their own thread rows,
// the whole payload is valid JSON, and within each (pid, tid, name)
// track the timestamps are monotone.
func TestWriteChromeTraceSharded(t *testing.T) {
	var c Collector
	st := c.NewSystem()
	st.EnableTimeline(NewTimeline(1000))
	var tick int64
	st.SetClock(func() int64 { return tick })
	for shard := 1; shard <= 2; shard++ {
		shard := shard
		st.ShardClock(shard, func() int64 { return tick })
	}

	// Counter activity on the primary plus both shards, and
	// barrier-stall slices on the shards — monotone timestamps, as the
	// single-writer shard goroutines guarantee in a real run.
	vt := st.Vault(0)
	for i := 0; i < 8; i++ {
		tick = int64(i) * 1000
		vt.OnAccept(1)
		for shard := 1; shard <= 2; shard++ {
			st.ShardNoC(shard).OnHop(1)
			st.ShardTimeline(shard).Slices("barrier stall").Add(tick, int64(50+i))
		}
	}

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("sharded trace is not valid JSON: %v\n%s", err, buf.String())
	}

	procs := map[string]bool{}
	slices := 0
	lastTs := map[string]float64{}
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				var args map[string]string
				if err := json.Unmarshal(ev.Args, &args); err != nil {
					t.Fatal(err)
				}
				procs[args["name"]] = true
			}
		case "C", "X":
			if ev.Ph == "X" {
				slices++
				if ev.Dur <= 0 {
					t.Fatalf("slice event with non-positive duration: %+v", ev)
				}
				if ev.Tid == 0 {
					t.Fatalf("slice event on tid 0 (counter row): %+v", ev)
				}
			}
			key := fmt.Sprintf("%d/%d/%s", ev.Pid, ev.Tid, ev.Name)
			if prev, ok := lastTs[key]; ok && ev.Ts < prev {
				t.Fatalf("track %s: timestamp %v precedes %v", key, ev.Ts, prev)
			}
			lastTs[key] = ev.Ts
		}
	}
	for _, want := range []string{"system", "shard 1", "shard 2"} {
		if !procs[want] {
			t.Fatalf("process %q missing from trace (got %v)", want, procs)
		}
	}
	if slices != 16 {
		t.Fatalf("emitted %d slice events, want 16 (8 per shard)", slices)
	}
}

// TestWriteChromeTraceEmpty: zero systems (e.g. table1, which builds no
// simulated systems) must still produce a valid, loadable trace.
func TestWriteChromeTraceEmpty(t *testing.T) {
	var c Collector
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if string(out["traceEvents"]) != "[]" {
		t.Fatalf("traceEvents = %s, want []", out["traceEvents"])
	}
}

func BenchmarkTimelineAdd(b *testing.B) {
	tl := NewTimeline(1000)
	tr := tl.Track("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Add(int64(i), 1)
	}
}
