package packet

import "testing"

// Codec and pool micro-benchmarks; run with
// go test -bench=. -benchmem ./internal/packet/...

// BenchmarkEncode measures serializing a max-size write request (9
// flits) into wire words. The words slice is the codec's one inherent
// allocation; allocs/op makes any regression beyond it visible.
func BenchmarkEncode(b *testing.B) {
	p := &Packet{Cmd: CmdWrite, Tag: 42, Addr: 0xABCDE0, Size: 128}
	data := make([]byte, 128)
	for i := range data {
		data[i] = byte(i)
	}
	tail := Tail{RTC: 3, SEQ: 5, FRP: 17, RRP: 99}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(p, tail, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures parsing and CRC-checking the same packet.
func BenchmarkDecode(b *testing.B) {
	p := &Packet{Cmd: CmdWrite, Tag: 42, Addr: 0xABCDE0, Size: 128}
	data := make([]byte, 128)
	words, err := Encode(p, Tail{}, data)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Decode(words); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPacketPool measures the free-list round trip the simulator
// performs per transaction: build a request and a response packet,
// release both. Steady state is 0 allocs/op.
func BenchmarkPacketPool(b *testing.B) {
	tr := &Transaction{Write: false, Addr: 0x1000, Size: 64, Tag: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := tr.RequestPacket(tr.Tag)
		resp := tr.ResponsePacket(tr.Tag)
		PutPacket(req)
		PutPacket(resp)
	}
}

// BenchmarkTransactionPool measures the per-access transaction
// acquire/release cycle the ports perform.
func BenchmarkTransactionPool(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := GetTransaction()
		tr.Addr = uint64(i)
		tr.Size = 64
		PutTransaction(tr)
	}
}
