// Package packet implements the HMC 1.1 transaction-layer packet protocol:
// commands, packet sizing in 16-byte flits (Table I of the paper), the
// 128-bit flit wire format with header and tail fields (Figure 4), and a
// CRC-32 integrity check used by the link layer for retry.
package packet

import (
	"fmt"

	"hmcsim/internal/sim"
)

// FlitBytes is the size of one flit, the 16-byte unit from which all HMC
// packets are built.
const FlitBytes = 16

// OverheadBytes is the protocol overhead of every request and response
// packet: one flit shared by the header and tail (64 bits each).
const OverheadBytes = FlitBytes

// MaxDataBytes is the largest data payload of a single packet (8 flits).
const MaxDataBytes = 8 * FlitBytes

// Command identifies an HMC transaction-layer packet type. The simulator
// implements the read and write commands at every legal payload size plus
// the flow commands that carry no data.
type Command uint8

const (
	// CmdNull is a flow packet used to keep the link trained; it carries
	// no transaction.
	CmdNull Command = iota
	// CmdTRET is a flow packet returning link-level tokens.
	CmdTRET
	// CmdIRTRY is a flow packet initiating link retry after a CRC error.
	CmdIRTRY
	// CmdRead is a read request; the payload size lives in the packet's
	// Size field. Read requests carry no data (1 flit total).
	CmdRead
	// CmdWrite is a posted-or-ack'd write request carrying Size bytes.
	CmdWrite
	// CmdReadResp is a read response carrying Size bytes of data.
	CmdReadResp
	// CmdWriteResp is a write acknowledgment (1 flit, no data).
	CmdWriteResp
)

var cmdNames = [...]string{"NULL", "TRET", "IRTRY", "RD", "WR", "RD_RS", "WR_RS"}

func (c Command) String() string {
	if int(c) < len(cmdNames) {
		return cmdNames[c]
	}
	return fmt.Sprintf("Command(%d)", uint8(c))
}

// IsFlow reports whether the command is a link-flow packet with no
// transaction payload.
func (c Command) IsFlow() bool { return c == CmdNull || c == CmdTRET || c == CmdIRTRY }

// IsRequest reports whether the command travels host -> HMC.
func (c Command) IsRequest() bool { return c == CmdRead || c == CmdWrite }

// IsResponse reports whether the command travels HMC -> host.
func (c Command) IsResponse() bool { return c == CmdReadResp || c == CmdWriteResp }

// ValidSize reports whether n is a legal data payload size: a multiple of
// 16 bytes between 16 and 128 (1 to 8 flits).
func ValidSize(n int) bool {
	return n >= FlitBytes && n <= MaxDataBytes && n%FlitBytes == 0
}

// Packet is one transaction-layer packet. Data payload is represented by
// its size only; the simulator models timing, not memory contents, except
// in the wire codec which can carry real bytes.
type Packet struct {
	Cmd  Command
	Tag  uint16 // transaction tag, 11 bits on the wire
	Addr uint64 // byte address, 34 bits on the wire
	Size int    // data payload bytes (0 for flow and no-data packets)
	Cube uint8  // CUB field, 3 bits; always 0 in a single-cube system

	// SrcPort and Link identify the host port that created the
	// transaction and the external link it used; responses are routed
	// back with them.
	SrcPort int
	Link    int

	// Tr points at the owning transaction. Real hardware recovers it via
	// the tag; the simulator carries the pointer so components do not
	// each need a tag table. It is nil for flow packets.
	Tr *Transaction
}

// DataFlits returns the number of data flits in the packet.
func (p *Packet) DataFlits() int {
	switch p.Cmd {
	case CmdWrite, CmdReadResp:
		return p.Size / FlitBytes
	default:
		return 0
	}
}

// Flits returns the total packet length in flits, including the one flit
// of header+tail overhead (Table I: requests and responses are 1 flit of
// overhead plus 1-8 data flits).
func (p *Packet) Flits() int {
	if p.Cmd.IsFlow() {
		return 1
	}
	return 1 + p.DataFlits()
}

// Bytes returns the total packet length in bytes.
func (p *Packet) Bytes() int { return p.Flits() * FlitBytes }

func (p *Packet) String() string {
	return fmt.Sprintf("%v tag=%d addr=%#x size=%d (%d flits)",
		p.Cmd, p.Tag, p.Addr, p.Size, p.Flits())
}

// RequestFlits returns the total request-packet size in flits for a read
// or write of size data bytes — the "Request" column of Table I.
func RequestFlits(write bool, size int) int {
	if write {
		return 1 + size/FlitBytes
	}
	return 1
}

// ResponseFlits returns the total response-packet size in flits — the
// "Response" column of Table I.
func ResponseFlits(write bool, size int) int {
	if write {
		return 1
	}
	return 1 + size/FlitBytes
}

// RoundTripBytes returns the combined request+response size in bytes for
// one transaction of the given kind and payload size. The paper computes
// bandwidth by "multiplying the number of accesses by the cumulative size
// of request and response packets including header, tail and data
// payload"; experiments use this helper for exactly that arithmetic.
func RoundTripBytes(write bool, size int) int {
	return (RequestFlits(write, size) + ResponseFlits(write, size)) * FlitBytes
}

// Efficiency returns the fraction of a read response occupied by data, the
// bandwidth-efficiency figure the paper derives (50% at 16 B, 89% at
// 128 B).
func Efficiency(size int) float64 {
	return float64(size) / float64(size+OverheadBytes)
}

// Transaction tracks one read or write through the full system and records
// the timestamps the monitoring logic (Section III-B) uses. A Transaction
// owns its request and, eventually, response packets.
type Transaction struct {
	ID    uint64
	Write bool
	Addr  uint64
	Size  int

	Port int    // issuing host port
	Link int    // external link used
	Tag  uint16 // tag assigned by the port's tag pool

	Vault, Quadrant, Bank int    // destination decoded from Addr
	Row                   uint64 // DRAM row within the bank

	// Timestamps, zero until the stage is reached.
	TGen      sim.Time // created by the address generator / trace reader
	TPortOut  sim.Time // left the port's request FIFO
	TLinkTx   sim.Time // finished serializing onto the external link
	TVaultIn  sim.Time // entered the vault controller's bank queue
	TIssued   sim.Time // issued to the DRAM bank
	TVaultOut sim.Time // response left the vault into the NoC
	TLinkRx   sim.Time // response finished deserializing at the host
	TDone     sim.Time // response retired by the port (latency endpoint)
}

// Latency returns the monitored round-trip time: generation to retirement.
func (t *Transaction) Latency() sim.Time { return t.TDone - t.TGen }

// HMCLatency returns the time spent inside the memory device itself
// (link arrival to response injection), used by the Little's-law analysis
// of Figure 14.
func (t *Transaction) HMCLatency() sim.Time { return t.TVaultOut - t.TLinkTx }

// RequestPacket builds the wire packet for the transaction's request.
// The packet comes from the free list; the component that consumes it
// (the vault controller, for requests that reach DRAM) releases it with
// PutPacket.
func (t *Transaction) RequestPacket(tag uint16) *Packet {
	cmd := CmdRead
	if t.Write {
		cmd = CmdWrite
	}
	p := GetPacket()
	// Read requests carry the requested size in the command encoding but no
	// data flits; DataFlits is zero for CmdRead regardless of Size.
	p.Cmd, p.Tag, p.Addr, p.Size, p.SrcPort, p.Link, p.Tr = cmd, tag, t.Addr, t.Size, t.Port, t.Link, t
	return p
}

// ResponsePacket builds the wire packet for the transaction's response.
// The packet comes from the free list; the host controller releases it
// with PutPacket when it drains the packet from the link buffer.
func (t *Transaction) ResponsePacket(tag uint16) *Packet {
	cmd := CmdReadResp
	size := t.Size
	if t.Write {
		cmd = CmdWriteResp
		size = 0
	}
	p := GetPacket()
	p.Cmd, p.Tag, p.Addr, p.Size, p.SrcPort, p.Link, p.Tr = cmd, tag, t.Addr, size, t.Port, t.Link, t
	return p
}

// RoundTripBytes returns the counted request+response bytes for this
// transaction (see the package-level RoundTripBytes).
func (t *Transaction) RoundTripBytes() int { return RoundTripBytes(t.Write, t.Size) }
