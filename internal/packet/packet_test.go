package packet

import (
	"testing"
	"testing/quick"

	"hmcsim/internal/sim"
)

// TestTableISizes verifies the request/response sizes of Table I.
func TestTableISizes(t *testing.T) {
	cases := []struct {
		size                int
		reqRead, respRead   int
		reqWrite, respWrite int
	}{
		{16, 1, 2, 2, 1},
		{32, 1, 3, 3, 1},
		{64, 1, 5, 5, 1},
		{128, 1, 9, 9, 1},
	}
	for _, c := range cases {
		if got := RequestFlits(false, c.size); got != c.reqRead {
			t.Errorf("read request %dB = %d flits, want %d", c.size, got, c.reqRead)
		}
		if got := ResponseFlits(false, c.size); got != c.respRead {
			t.Errorf("read response %dB = %d flits, want %d", c.size, got, c.respRead)
		}
		if got := RequestFlits(true, c.size); got != c.reqWrite {
			t.Errorf("write request %dB = %d flits, want %d", c.size, got, c.reqWrite)
		}
		if got := ResponseFlits(true, c.size); got != c.respWrite {
			t.Errorf("write response %dB = %d flits, want %d", c.size, got, c.respWrite)
		}
	}
}

func TestTableIBounds(t *testing.T) {
	// "Data Size 1~8 flits, Total Size 2~9 flits" for the data-carrying
	// directions; 1 flit for the empty directions.
	for size := 16; size <= 128; size += 16 {
		p := Packet{Cmd: CmdReadResp, Size: size}
		if p.Flits() < 2 || p.Flits() > 9 {
			t.Errorf("read response %dB: %d flits outside 2..9", size, p.Flits())
		}
		q := Packet{Cmd: CmdRead, Size: size}
		if q.Flits() != 1 {
			t.Errorf("read request %dB: %d flits, want 1", size, q.Flits())
		}
	}
}

func TestEfficiency(t *testing.T) {
	// The paper: 16 B responses are 50% efficient, 128 B are 89%.
	if got := Efficiency(16); got != 0.5 {
		t.Errorf("Efficiency(16) = %v, want 0.5", got)
	}
	if got := Efficiency(128); got < 0.888 || got > 0.890 {
		t.Errorf("Efficiency(128) = %v, want ~0.889", got)
	}
}

func TestRoundTripBytes(t *testing.T) {
	// 128 B read: 1-flit request + 9-flit response = 160 B.
	if got := RoundTripBytes(false, 128); got != 160 {
		t.Errorf("read 128B round trip = %d, want 160", got)
	}
	// 16 B read: 1 + 2 flits = 48 B.
	if got := RoundTripBytes(false, 16); got != 48 {
		t.Errorf("read 16B round trip = %d, want 48", got)
	}
	// 64 B write: 5-flit request + 1-flit response = 96 B.
	if got := RoundTripBytes(true, 64); got != 96 {
		t.Errorf("write 64B round trip = %d, want 96", got)
	}
}

func TestValidSize(t *testing.T) {
	for _, ok := range []int{16, 32, 48, 64, 80, 96, 112, 128} {
		if !ValidSize(ok) {
			t.Errorf("ValidSize(%d) = false, want true", ok)
		}
	}
	for _, bad := range []int{0, 8, 15, 17, 144, -16} {
		if ValidSize(bad) {
			t.Errorf("ValidSize(%d) = true, want false", bad)
		}
	}
}

func TestFlowPacketsOneFlit(t *testing.T) {
	for _, cmd := range []Command{CmdNull, CmdTRET, CmdIRTRY} {
		p := Packet{Cmd: cmd}
		if p.Flits() != 1 {
			t.Errorf("%v: %d flits, want 1", cmd, p.Flits())
		}
		if !cmd.IsFlow() {
			t.Errorf("%v.IsFlow() = false", cmd)
		}
	}
}

func TestCommandClassification(t *testing.T) {
	if !CmdRead.IsRequest() || !CmdWrite.IsRequest() {
		t.Error("read/write not classified as requests")
	}
	if !CmdReadResp.IsResponse() || !CmdWriteResp.IsResponse() {
		t.Error("responses not classified as responses")
	}
	if CmdRead.IsResponse() || CmdReadResp.IsRequest() {
		t.Error("request/response classification crossed")
	}
}

func TestTransactionPackets(t *testing.T) {
	tr := &Transaction{Write: false, Addr: 0x1234560, Size: 64, Port: 3, Link: 1}
	req := tr.RequestPacket(17)
	if req.Cmd != CmdRead || req.Flits() != 1 || req.Tag != 17 {
		t.Errorf("request packet = %v", req)
	}
	resp := tr.ResponsePacket(17)
	if resp.Cmd != CmdReadResp || resp.Flits() != 5 || resp.Size != 64 {
		t.Errorf("response packet = %v", resp)
	}
	w := &Transaction{Write: true, Size: 32}
	if w.RequestPacket(0).Flits() != 3 || w.ResponsePacket(0).Flits() != 1 {
		t.Errorf("write packets = %v / %v", w.RequestPacket(0), w.ResponsePacket(0))
	}
}

func TestTransactionLatencies(t *testing.T) {
	tr := &Transaction{
		TGen:      100 * sim.Nanosecond,
		TLinkTx:   300 * sim.Nanosecond,
		TVaultOut: 500 * sim.Nanosecond,
		TDone:     800 * sim.Nanosecond,
	}
	if got := tr.Latency(); got != 700*sim.Nanosecond {
		t.Errorf("Latency = %v, want 700ns", got)
	}
	if got := tr.HMCLatency(); got != 200*sim.Nanosecond {
		t.Errorf("HMCLatency = %v, want 200ns", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Packet{
		{Cmd: CmdRead, Tag: 5, Addr: 0x2_1234_5670, Size: 128},
		{Cmd: CmdWrite, Tag: 2047, Addr: 0xFFF0, Size: 16},
		{Cmd: CmdReadResp, Tag: 0, Addr: 0, Size: 64},
		{Cmd: CmdWriteResp, Tag: 1},
		{Cmd: CmdNull},
		{Cmd: CmdTRET},
		{Cmd: CmdIRTRY},
	}
	for _, want := range cases {
		tail := Tail{RTC: 9, SEQ: 5, FRP: 0xAB, RRP: 0xCD}
		words, err := Encode(&want, tail, nil)
		if err != nil {
			t.Fatalf("Encode(%v): %v", &want, err)
		}
		if len(words) != 2*want.Flits() {
			t.Fatalf("%v encoded to %d words, want %d", &want, len(words), 2*want.Flits())
		}
		got, gotTail, _, err := Decode(words)
		if err != nil {
			t.Fatalf("Decode(%v): %v", &want, err)
		}
		if got.Cmd != want.Cmd || got.Tag != want.Tag || got.Size != want.Size {
			t.Errorf("round trip %v -> %v", &want, got)
		}
		if want.Cmd != CmdNull && got.Addr != want.Addr&(1<<34-1) {
			t.Errorf("addr round trip %#x -> %#x", want.Addr, got.Addr)
		}
		if gotTail != tail {
			t.Errorf("tail round trip %+v -> %+v", tail, gotTail)
		}
	}
}

func TestEncodeDecodeData(t *testing.T) {
	data := make([]byte, 48)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	p := &Packet{Cmd: CmdWrite, Tag: 7, Addr: 0x40, Size: 48}
	words, err := Encode(p, Tail{}, data)
	if err != nil {
		t.Fatal(err)
	}
	_, _, got, err := Decode(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("payload length %d, want %d", len(got), len(data))
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("payload[%d] = %#x, want %#x", i, got[i], data[i])
		}
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	p := &Packet{Cmd: CmdReadResp, Tag: 33, Addr: 0xABCDE0, Size: 128}
	words, err := Encode(p, Tail{RTC: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Flip every bit position in turn; all must be caught by CRC (or by
	// structural checks, which are also acceptable detections).
	for bit := 0; bit < 64*len(words); bit += 37 {
		w := make([]uint64, len(words))
		copy(w, words)
		Corrupt(w, bit)
		if _, _, _, err := Decode(w); err == nil {
			t.Fatalf("bit flip at %d not detected", bit)
		}
	}
}

func TestEncodeRejectsMalformed(t *testing.T) {
	bad := []Packet{
		{Cmd: CmdRead, Size: 0},
		{Cmd: CmdRead, Size: 24},
		{Cmd: CmdWrite, Size: 256},
		{Cmd: CmdRead, Size: 16, Addr: 1 << 34},
		{Cmd: CmdRead, Size: 16, Tag: 1 << 11},
		{Cmd: Command(99)},
	}
	for _, p := range bad {
		p := p
		if _, err := Encode(&p, Tail{}, nil); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", p)
		}
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	p := &Packet{Cmd: CmdReadResp, Tag: 1, Size: 64}
	words, _ := Encode(p, Tail{}, nil)
	if _, _, _, err := Decode(words[:2]); err == nil {
		t.Error("truncated packet decoded without error")
	}
	if _, _, _, err := Decode(words[:3]); err == nil {
		t.Error("odd-length packet decoded without error")
	}
	if _, _, _, err := Decode(nil); err == nil {
		t.Error("empty packet decoded without error")
	}
}

// TestWireRoundTripProperty fuzzes the codec over random legal packets.
func TestWireRoundTripProperty(t *testing.T) {
	f := func(tagRaw uint16, addrRaw uint64, sizeIdx uint8, write bool, rtc, seq uint8) bool {
		p := Packet{
			Tag:  tagRaw & 0x7FF,
			Addr: addrRaw & (1<<34 - 1) &^ 0xF,
			Size: (int(sizeIdx%8) + 1) * FlitBytes,
		}
		if write {
			p.Cmd = CmdWrite
		} else {
			p.Cmd = CmdReadResp
		}
		tail := Tail{RTC: rtc & 0x1F, SEQ: seq & 0x7}
		words, err := Encode(&p, tail, nil)
		if err != nil {
			return false
		}
		got, gotTail, _, err := Decode(words)
		if err != nil {
			return false
		}
		return got.Cmd == p.Cmd && got.Tag == p.Tag && got.Addr == p.Addr &&
			got.Size == p.Size && gotTail.RTC == tail.RTC && gotTail.SEQ == tail.SEQ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
