package packet

import "sync"

// Free-list pools for the two object kinds the simulator creates per
// transaction on its hot path. One request packet, one response packet
// and one Transaction used to be garbage per memory access — at tens of
// millions of simulated accesses per figure run that allocation (and the
// GC scan load of keeping the heap populated with them) dominated kernel
// time. Components now return objects at their explicit end-of-life
// points: request packets when the vault controller accepts the
// transaction, response packets when the host controller drains them
// from the link buffer, transactions when the issuing port retires them.
//
// sync.Pool keeps the free lists safe to share between the many
// single-threaded engines a sweep or the hmcsimd worker pool runs in
// parallel. Determinism is unaffected: Put zeroes the object, so a Get
// is indistinguishable from a fresh allocation.

var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// GetPacket returns a zeroed Packet from the free list.
func GetPacket() *Packet { return packetPool.Get().(*Packet) }

// PutPacket returns p to the free list. The caller must hold the only
// live reference; p must not be touched afterwards.
func PutPacket(p *Packet) {
	*p = Packet{}
	packetPool.Put(p)
}

var transactionPool = sync.Pool{New: func() any { return new(Transaction) }}

// GetTransaction returns a zeroed Transaction from the free list.
func GetTransaction() *Transaction { return transactionPool.Get().(*Transaction) }

// PutTransaction returns t to the free list. Ports call it when a
// transaction retires (after the monitor has recorded it); t must not be
// touched afterwards.
func PutTransaction(t *Transaction) {
	*t = Transaction{}
	transactionPool.Put(t)
}
