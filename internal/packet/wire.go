package packet

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Wire format (Figure 4 of the paper, modeled after the HMC 1.1
// specification). Each flit is 128 bits, stored here as two uint64 words,
// least-significant word first. The first flit's low word is the header;
// the last flit's high word is the tail.
//
// Header (64 bits):
//
//	[5:0]   CMD     command code
//	[9:6]   LNG     packet length in flits (duplicated in tail as DLN)
//	[22:12] TAG     transaction tag
//	[57:24] ADRS    34-bit byte address
//	[63:61] CUB     cube id
//
// Tail (64 bits):
//
//	[3:0]   DLN     duplicate length, checked against LNG
//	[8:4]   RTC     return token count (link-level flow control)
//	[11:9]  SEQ     3-bit link sequence number
//	[19:12] FRP     forward retry pointer
//	[27:20] RRP     return retry pointer
//	[63:32] CRC     CRC-32 over the packet with the CRC field zeroed
//
// Data payload flits sit between header and tail. For a 1-flit packet the
// header occupies the low word and the tail the high word of the same flit
// (Figure 4a).

// Wire command codes. These are distinct from the in-simulator Command
// enum so the codec can reject unknown codes explicitly.
const (
	wireNull  = 0x00
	wireTRET  = 0x02
	wireIRTRY = 0x03
	// Read requests: 0x30 + (flits of data requested - 1).
	wireReadBase = 0x30
	// Write requests: 0x08 + (data flits - 1).
	wireWriteBase = 0x08
	// Read responses: 0x38 + (data flits - 1); write response: 0x07.
	wireReadRespBase = 0x38
	wireWriteResp    = 0x07
)

// Tail holds the link-maintenance fields carried in a packet tail.
type Tail struct {
	RTC uint8 // return token count
	SEQ uint8 // sequence number, 3 bits
	FRP uint8 // forward retry pointer
	RRP uint8 // return retry pointer
}

var (
	// ErrCRC reports a corrupted packet.
	ErrCRC = errors.New("packet: CRC mismatch")
	// ErrMalformed reports an undecodable packet.
	ErrMalformed = errors.New("packet: malformed")
)

func wireCmd(p *Packet) (uint64, error) {
	switch p.Cmd {
	case CmdNull:
		return wireNull, nil
	case CmdTRET:
		return wireTRET, nil
	case CmdIRTRY:
		return wireIRTRY, nil
	case CmdRead:
		if !ValidSize(p.Size) {
			return 0, fmt.Errorf("%w: read size %d", ErrMalformed, p.Size)
		}
		return wireReadBase + uint64(p.Size/FlitBytes-1), nil
	case CmdWrite:
		if !ValidSize(p.Size) {
			return 0, fmt.Errorf("%w: write size %d", ErrMalformed, p.Size)
		}
		return wireWriteBase + uint64(p.Size/FlitBytes-1), nil
	case CmdReadResp:
		if !ValidSize(p.Size) {
			return 0, fmt.Errorf("%w: read response size %d", ErrMalformed, p.Size)
		}
		return wireReadRespBase + uint64(p.Size/FlitBytes-1), nil
	case CmdWriteResp:
		return wireWriteResp, nil
	}
	return 0, fmt.Errorf("%w: unknown command %v", ErrMalformed, p.Cmd)
}

// Encode serializes p and its tail fields into flit words (two uint64 per
// flit, low word first). Data payload words are zero; the simulator tracks
// timing, not contents. The CRC is computed over the encoded packet with
// the CRC field zeroed and then inserted.
func Encode(p *Packet, tail Tail, data []byte) ([]uint64, error) {
	cmd, err := wireCmd(p)
	if err != nil {
		return nil, err
	}
	flits := p.Flits()
	if p.Addr >= 1<<34 {
		return nil, fmt.Errorf("%w: address %#x exceeds 34 bits", ErrMalformed, p.Addr)
	}
	if p.Tag >= 1<<11 {
		return nil, fmt.Errorf("%w: tag %d exceeds 11 bits", ErrMalformed, p.Tag)
	}
	if data != nil && len(data) != p.DataFlits()*FlitBytes {
		return nil, fmt.Errorf("%w: data length %d, want %d", ErrMalformed, len(data), p.DataFlits()*FlitBytes)
	}
	words := make([]uint64, 2*flits)
	header := cmd |
		uint64(flits)<<6 |
		uint64(p.Tag)<<12 |
		(p.Addr&(1<<34-1))<<24 |
		uint64(p.Cube&0x7)<<61
	words[0] = header
	// Pack payload bytes little-endian into the words between header and
	// tail. The payload region starts at bit 64 of flit 0.
	for i, b := range data {
		bit := 64 + i*8
		words[bit/64] |= uint64(b) << (bit % 64)
	}
	tailWord := uint64(flits&0xF) |
		uint64(tail.RTC&0x1F)<<4 |
		uint64(tail.SEQ&0x7)<<9 |
		uint64(tail.FRP)<<12 |
		uint64(tail.RRP)<<20
	words[2*flits-1] |= tailWord
	words[2*flits-1] |= uint64(crcOf(words)) << 32
	return words, nil
}

// crcOf computes the packet CRC with the CRC field (top 32 bits of the
// last word) treated as zero.
func crcOf(words []uint64) uint32 {
	h := crc32.NewIEEE()
	var buf [8]byte
	for i, w := range words {
		if i == len(words)-1 {
			w &= 0xFFFFFFFF // zero the CRC field
		}
		for b := 0; b < 8; b++ {
			buf[b] = byte(w >> (8 * b))
		}
		h.Write(buf[:])
	}
	return h.Sum32()
}

// Decode parses flit words produced by Encode, verifies the CRC and the
// duplicate-length field, and reconstructs the packet, tail fields and
// payload bytes.
func Decode(words []uint64) (*Packet, Tail, []byte, error) {
	if len(words) < 2 || len(words)%2 != 0 {
		return nil, Tail{}, nil, fmt.Errorf("%w: %d words", ErrMalformed, len(words))
	}
	last := words[len(words)-1]
	if uint32(last>>32) != crcOf(words) {
		return nil, Tail{}, nil, ErrCRC
	}
	header := words[0]
	lng := int(header >> 6 & 0xF)
	if lng*2 != len(words) {
		return nil, Tail{}, nil, fmt.Errorf("%w: LNG %d for %d words", ErrMalformed, lng, len(words))
	}
	dln := int(last & 0xF)
	if dln != lng&0xF {
		return nil, Tail{}, nil, fmt.Errorf("%w: DLN %d != LNG %d", ErrMalformed, dln, lng)
	}
	p := &Packet{
		Tag:  uint16(header >> 12 & 0x7FF),
		Addr: header >> 24 & (1<<34 - 1),
		Cube: uint8(header >> 61 & 0x7),
	}
	cmd := header & 0x3F
	switch {
	case cmd == wireNull:
		p.Cmd = CmdNull
	case cmd == wireTRET:
		p.Cmd = CmdTRET
	case cmd == wireIRTRY:
		p.Cmd = CmdIRTRY
	case cmd == wireWriteResp:
		p.Cmd = CmdWriteResp
	case cmd >= wireReadRespBase && cmd < wireReadRespBase+8:
		p.Cmd = CmdReadResp
		p.Size = int(cmd-wireReadRespBase+1) * FlitBytes
	case cmd >= wireReadBase && cmd < wireReadBase+8:
		p.Cmd = CmdRead
		p.Size = int(cmd-wireReadBase+1) * FlitBytes
	case cmd >= wireWriteBase && cmd < wireWriteBase+8:
		p.Cmd = CmdWrite
		p.Size = int(cmd-wireWriteBase+1) * FlitBytes
	default:
		return nil, Tail{}, nil, fmt.Errorf("%w: command code %#x", ErrMalformed, cmd)
	}
	if p.Flits() != lng {
		return nil, Tail{}, nil, fmt.Errorf("%w: command %v implies %d flits, LNG says %d", ErrMalformed, p.Cmd, p.Flits(), lng)
	}
	tail := Tail{
		RTC: uint8(last >> 4 & 0x1F),
		SEQ: uint8(last >> 9 & 0x7),
		FRP: uint8(last >> 12 & 0xFF),
		RRP: uint8(last >> 20 & 0xFF),
	}
	var data []byte
	if n := p.DataFlits() * FlitBytes; n > 0 {
		data = make([]byte, n)
		for i := range data {
			bit := 64 + i*8
			data[i] = byte(words[bit/64] >> (bit % 64))
		}
	}
	return p, tail, data, nil
}

// Corrupt flips one bit of an encoded packet, for link-retry testing.
func Corrupt(words []uint64, bit int) {
	words[bit/64%len(words)] ^= 1 << (bit % 64)
}
