// Package phys holds physical units and conversion helpers shared by the
// simulator: byte quantities, bandwidths, and rate/time arithmetic.
package phys

import (
	"fmt"

	"hmcsim/internal/sim"
)

// Byte quantities.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// Bandwidth is a data rate in bytes per second. The paper quotes link and
// vault bandwidths in decimal GB/s, so GBps uses 1e9.
type Bandwidth float64

// GBps constructs a Bandwidth from decimal gigabytes per second.
func GBps(v float64) Bandwidth { return Bandwidth(v * 1e9) }

// GBpsValue reports the bandwidth in decimal GB/s.
func (b Bandwidth) GBpsValue() float64 { return float64(b) / 1e9 }

func (b Bandwidth) String() string { return fmt.Sprintf("%.2fGB/s", b.GBpsValue()) }

// TimeFor returns the time needed to move n bytes at bandwidth b,
// rounded up to the next picosecond.
func (b Bandwidth) TimeFor(n int) sim.Time {
	if b <= 0 || n <= 0 {
		return 0
	}
	ps := float64(n) / float64(b) * 1e12
	t := sim.Time(ps)
	if float64(t) < ps {
		t++
	}
	return t
}

// Rate converts a byte count moved over an elapsed simulated duration into
// a Bandwidth.
func Rate(bytes uint64, elapsed sim.Time) Bandwidth {
	if elapsed <= 0 {
		return 0
	}
	return Bandwidth(float64(bytes) / elapsed.Seconds())
}

// LaneRate is a serial lane speed in bits per second.
type LaneRate float64

// Gbps constructs a LaneRate from gigabits per second.
func Gbps(v float64) LaneRate { return LaneRate(v * 1e9) }

// LinkBandwidth returns the per-direction bandwidth of a link with the
// given lane count, e.g. 8 lanes x 15 Gbps = 15 GB/s.
func LinkBandwidth(lanes int, rate LaneRate) Bandwidth {
	return Bandwidth(float64(lanes) * float64(rate) / 8)
}

// PeakBidirectional implements Equation 1 of the paper: the peak
// bi-directional bandwidth of nLinks full-duplex links.
//
//	BWpeak = nLinks x lanes/link x laneRate x 2 (duplex)
func PeakBidirectional(nLinks, lanes int, rate LaneRate) Bandwidth {
	return Bandwidth(float64(nLinks) * float64(lanes) * float64(rate) / 8 * 2)
}
