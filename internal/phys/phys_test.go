package phys

import (
	"testing"
	"testing/quick"

	"hmcsim/internal/sim"
)

func TestGBpsRoundTrip(t *testing.T) {
	if got := GBps(15).GBpsValue(); got != 15 {
		t.Fatalf("GBps(15) = %v", got)
	}
	if s := GBps(10).String(); s != "10.00GB/s" {
		t.Fatalf("String = %q", s)
	}
}

func TestTimeFor(t *testing.T) {
	// 16 bytes at 15 GB/s is ~1066.7 ps, rounded up.
	got := GBps(15).TimeFor(16)
	if got != 1067 {
		t.Fatalf("TimeFor(16B @15GB/s) = %dps, want 1067", got)
	}
	if GBps(15).TimeFor(0) != 0 {
		t.Fatal("TimeFor(0) != 0")
	}
	if Bandwidth(0).TimeFor(64) != 0 {
		t.Fatal("zero bandwidth should yield zero time")
	}
}

func TestTimeForRoundsUp(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw%4096) + 1
		b := GBps(10)
		d := b.TimeFor(n)
		// d must be enough time: bytes moved in d at b >= n.
		moved := float64(b) * d.Seconds()
		return moved >= float64(n)-1e-6 && d > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRate(t *testing.T) {
	// 1000 bytes in 100 ns = 10 GB/s.
	got := Rate(1000, 100*sim.Nanosecond)
	if g := got.GBpsValue(); g < 9.99 || g > 10.01 {
		t.Fatalf("Rate = %v, want 10 GB/s", g)
	}
	if Rate(100, 0) != 0 {
		t.Fatal("zero-window rate should be 0")
	}
}

func TestLinkBandwidth(t *testing.T) {
	// 8 lanes x 15 Gbps = 15 GB/s; 16 lanes = 30 GB/s.
	if got := LinkBandwidth(8, Gbps(15)).GBpsValue(); got != 15 {
		t.Fatalf("half width = %v", got)
	}
	if got := LinkBandwidth(16, Gbps(15)).GBpsValue(); got != 30 {
		t.Fatalf("full width = %v", got)
	}
}

func TestPeakBidirectionalSweep(t *testing.T) {
	// The paper's Table of link speeds: 10, 12.5, 15 Gbps.
	cases := []struct {
		gbps float64
		want float64
	}{
		{10, 40}, {12.5, 50}, {15, 60},
	}
	for _, c := range cases {
		if got := PeakBidirectional(2, 8, Gbps(c.gbps)).GBpsValue(); got != c.want {
			t.Errorf("2x8@%vGbps = %v GB/s, want %v", c.gbps, got, c.want)
		}
	}
}
