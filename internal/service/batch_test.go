package service

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"hmcsim"
)

// TestBatchSubmit: a mixed batch resolves cache hits inline, queues the
// rest, and returns one view per spec in submission order.
func TestBatchSubmit(t *testing.T) {
	fake := newFake("e")
	s, c := newTestServer(t, Config{Workers: 2, QueueDepth: 8}, fake)
	ctx := context.Background()

	// Warm the cache with seed 1.
	warm, err := c.Run(ctx, hmcsim.Spec{Exp: "e", Options: hmcsim.Options{Seed: 1}}, 5*time.Millisecond)
	if err != nil || warm.State != StateDone {
		t.Fatalf("warm-up: %v / %+v", err, warm)
	}

	views, err := c.SubmitBatch(ctx, []hmcsim.Spec{
		{Exp: "e", Options: hmcsim.Options{Seed: 1}}, // cache hit
		{Exp: "e", Options: hmcsim.Options{Seed: 2}}, // fresh
		{Exp: "e", Options: hmcsim.Options{Seed: 2}}, // in-batch duplicate
		{Exp: "e", Options: hmcsim.Options{Seed: 3}}, // fresh
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 4 {
		t.Fatalf("got %d views, want 4", len(views))
	}
	if !views[0].Cached || views[0].State != StateDone {
		t.Fatalf("cache hit not resolved inline: %+v", views[0])
	}
	for i, v := range views[1:] {
		if v.State.Terminal() {
			t.Fatalf("fresh view %d already terminal: %+v", i+1, v)
		}
	}
	for _, v := range views[1:] {
		if got := waitJob(t, c, v.ID); got.State != StateDone {
			t.Fatalf("job %s ended %s", v.ID, got.State)
		}
	}
	// The in-batch duplicate coalesced: seeds 1, 2, 3 ran once each.
	if n := fake.runs.Load(); n != 3 {
		t.Fatalf("runner ran %d times, want 3", n)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 1 || st.BatchSpecs != 4 {
		t.Fatalf("batch counters %d/%d, want 1/4", st.Batches, st.BatchSpecs)
	}
	if st.InflightPeak < 1 {
		t.Fatalf("inflight peak %d, want >= 1", st.InflightPeak)
	}
	_ = s
}

// TestBatchAllOrNothing: a batch needing more queue slots than are free
// is rejected whole — no job record, no queue slot, nothing partial.
func TestBatchAllOrNothing(t *testing.T) {
	blocker := newBlockingFake("slow")
	s, c := newTestServer(t, Config{Workers: 1, QueueDepth: 2}, blocker)
	defer close(blocker.release)
	ctx := context.Background()

	// Occupy the worker so queued batches stay queued.
	if _, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow"}); err != nil {
		t.Fatal(err)
	}
	<-blocker.started

	// Three distinct specs need three slots; only two exist.
	_, err := c.SubmitBatch(ctx, seedSpecs("slow", 3))
	if err == nil || !strings.Contains(err.Error(), "queue is full") {
		t.Fatalf("oversized batch: err = %v, want queue-full 503", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("queue-full batch error is %T (%v), want 503 APIError", err, err)
	}
	if apiErr.Code != codeQueueFull {
		t.Fatalf("queue-full code %q, want %q (the fleet keys off it)", apiErr.Code, codeQueueFull)
	}
	total := 0
	for _, n := range s.Snapshot().Jobs {
		total += n
	}
	if total != 1 {
		t.Fatalf("rejected batch left %d job records, want 1 (the blocker)", total)
	}
	if d := s.Snapshot().QueueDepth; d != 0 {
		t.Fatalf("rejected batch consumed %d queue slots", d)
	}

	// A batch that fits is admitted; duplicates of the running blocker
	// coalesce and need no slot at all.
	views, err := c.SubmitBatch(ctx, []hmcsim.Spec{
		{Exp: "slow"}, // duplicate of the running job: coalesces
		{Exp: "slow", Options: hmcsim.Options{Seed: 1}},
		{Exp: "slow", Options: hmcsim.Options{Seed: 2}},
	})
	if err != nil {
		t.Fatalf("fitting batch rejected: %v", err)
	}
	if len(views) != 3 {
		t.Fatalf("got %d views", len(views))
	}
}

// TestBatchRejectsBadSpec: one malformed spec rejects the whole batch
// with its index, creating nothing.
func TestBatchRejectsBadSpec(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1}, newFake("e"))
	_, err := c.SubmitBatch(context.Background(), []hmcsim.Spec{
		{Exp: "e"},
		{Exp: "nope"},
	})
	if err == nil || !strings.Contains(err.Error(), "spec 1") || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want indexed unknown-experiment 400", err)
	}
	if n := len(s.Snapshot().Jobs); n != 0 {
		t.Fatalf("rejected batch created %d jobs", n)
	}
	if _, err := c.SubmitBatch(context.Background(), nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestBatchRequestBoundScales: a multi-megabyte batch body — a whole
// sweep in one post — must clear the request bound and fail (here) on
// validation, not on "request body too large" at 1 MiB like the
// single-spec endpoint.
func TestBatchRequestBoundScales(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1}, newFake("e"))
	// 4000 specs x ~380 bytes ≈ 1.4 MiB — past the single-spec
	// endpoint's 1 MiB bound but inside the spec-count cap. Every spec
	// names an unknown experiment so nothing is admitted; the indexed
	// validation error proves the body was fully decoded.
	pad := strings.Repeat("unknown-experiment-", 16)
	specs := make([]hmcsim.Spec, 4000)
	for i := range specs {
		specs[i] = hmcsim.Spec{Exp: pad, Options: hmcsim.Options{Seed: uint64(i)}}
	}
	_, err := c.SubmitBatch(context.Background(), specs)
	if err == nil {
		t.Fatal("unknown-experiment batch accepted")
	}
	if strings.Contains(err.Error(), "too large") {
		t.Fatalf("large batch body rejected by the request bound: %v", err)
	}
	if !strings.Contains(err.Error(), "spec 0") || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want indexed unknown-experiment validation", err)
	}

	// Past the spec-count cap the batch is rejected outright, before
	// any validation or job creation.
	over := make([]hmcsim.Spec, MaxBatchSpecs+1)
	for i := range over {
		over[i] = hmcsim.Spec{Exp: "e", Options: hmcsim.Options{Seed: uint64(i)}}
	}
	if _, err := c.SubmitBatch(context.Background(), over); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized batch: err = %v, want spec-count limit rejection", err)
	}
}
