package service

import (
	"container/list"
	"sync"
)

// Cache is a content-addressed in-memory result cache with LRU
// eviction. Keys are canonical spec hashes (hmcsim.Spec.Key), values
// are the marshaled outcome bytes, so a hit is served byte-identically
// to the run that populated it.
type Cache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	val []byte
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// NewCache returns a cache holding at most max entries; max <= 0 means
// a default of 256.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 256
	}
	return &Cache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached bytes for key, marking the entry most recently
// used. Every call counts as a hit or a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its value and
// recency.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
