package service

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", []byte("va"))
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("va")) {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Capacity != 4 {
		t.Fatalf("stats %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("va"))
	c.Put("b", []byte("vb"))
	// Touch a so b becomes the least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", []byte("vc"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order wrong")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("newest entry c missing")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("v1"))
	c.Put("b", []byte("vb"))
	c.Put("a", []byte("v2")) // refresh value and recency
	c.Put("c", []byte("vc")) // evicts b, not a
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("Get(a) = %q, %v; want refreshed v2", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived; refresh did not move a to front")
	}
}

func TestCachePeekDoesNotCount(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("va"))
	if _, ok := c.peek("a"); !ok {
		t.Fatal("peek missed")
	}
	if _, ok := c.peek("zz"); ok {
		t.Fatal("peek hit a missing key")
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("peek moved counters: %+v", st)
	}
}

func TestCacheBounded(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	st := c.Stats()
	if st.Entries != 8 || st.Evictions != 92 {
		t.Fatalf("stats %+v, want 8 entries and 92 evictions", st)
	}
}
