package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hmcsim"
)

// Client talks to a running hmcsimd over its HTTP JSON API. It is what
// backs `hmcsim -server URL`.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://localhost:8080".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out,
// converting non-2xx statuses into errors carrying the server's
// error message.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.Base, "/")+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e errorBody
		if json.Unmarshal(blob, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s (%s)", method, path, e.Error, resp.Status)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(blob, out)
}

// Submit posts a spec and returns the created (or cache-served) job.
func (c *Client) Submit(ctx context.Context, spec hmcsim.Spec) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &v)
	return v, err
}

// Job fetches one job's current view.
func (c *Client) Job(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &v)
	return v, err
}

// Cancel requests cancellation and returns the resulting view.
func (c *Client) Cancel(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &v)
	return v, err
}

// Wait polls a job until it reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (JobView, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return v, err
		}
		if v.State.Terminal() {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-t.C:
		}
	}
}

// Run submits a spec and waits for its terminal view — the remote
// equivalent of exp.Run. On a polling error the returned view still
// carries the submitted job's ID, so callers can cancel the orphan.
func (c *Client) Run(ctx context.Context, spec hmcsim.Spec, interval time.Duration) (JobView, error) {
	v, err := c.Submit(ctx, spec)
	if err != nil || v.State.Terminal() {
		return v, err
	}
	w, err := c.Wait(ctx, v.ID, interval)
	if w.ID == "" {
		w.ID = v.ID
	}
	return w, err
}

// Experiments lists the daemon's registry.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentView, error) {
	var out []ExperimentView
	err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out)
	return out, err
}

// Stats fetches serving statistics.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}
