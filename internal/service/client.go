package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hmcsim"
)

// Client talks to a running hmcsimd over its HTTP JSON API. It is what
// backs `hmcsim -server URL`.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://localhost:8080".
	Base string
	// HTTP overrides the transport; nil uses a default client with a
	// 30-second per-request timeout so an unresponsive daemon surfaces
	// as an error (set HTTP to http.DefaultClient for no deadline).
	HTTP *http.Client
	// TraceID, when set, is sent as the X-Hmcsim-Trace-Id header on
	// every submission, correlating the jobs this client creates in
	// span views and flight records.
	TraceID string
}

// defaultHTTPClient bounds every request so a blackholed daemon — one
// that accepts connections but never answers — surfaces as an error
// that drives fleet failover instead of hanging the run. Individual
// API calls are small and fast; long simulations are covered by
// repeated polls, never by one long request.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

// maxResponseBytes bounds how much of a response body the client will
// buffer — the mirror of the server's 1 MiB MaxBytesReader request
// bound — so a misbehaving endpoint cannot balloon client memory.
// Endpoints that return JobViews get the larger per-view budget, since
// a terminal view inlines the full result JSON plus its rendered text;
// batch responses scale that budget by the number of specs. The same
// payload must never be acceptable through one endpoint and over-cap
// through another.
const (
	maxResponseBytes      = 1 << 20
	maxViewBytes          = 4 << 20
	maxBatchResponseBytes = 64 << 20
)

// ErrResponseTooLarge marks a response that overran the client's size
// bound. It is a client-side condition, not a daemon failure: a fleet
// treats it as fatal (the same oversized result would come back from
// every daemon) instead of failing the work over.
var ErrResponseTooLarge = errors.New("response body exceeds the client bound")

// APIError is a non-2xx daemon response: the HTTP status plus the
// server's error message and machine-readable code. A Fleet uses the
// status and code to tell retryable conditions (a full queue) from
// daemon-dead ones (shutting down) and fatal ones (a bad spec).
type APIError struct {
	Status  int    // HTTP status code
	Method  string // request method
	Path    string // request path
	Message string // the server's error message, if it sent one
	Code    string // the server's machine-readable cause, if it sent one
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("%s %s: %s (%d %s)", e.Method, e.Path, e.Message, e.Status, http.StatusText(e.Status))
	}
	return fmt.Sprintf("%s %s: %d %s", e.Method, e.Path, e.Status, http.StatusText(e.Status))
}

// do issues one request and decodes the JSON response into out,
// converting non-2xx statuses into *APIError values carrying the
// server's error message and code.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	return c.doCapped(ctx, method, path, body, out, maxResponseBytes)
}

// doCapped is do with an explicit response-size bound, for endpoints
// whose legitimate payload scales with the request (a batch response
// inlines one full result per cache-hit spec).
func (c *Client) doCapped(ctx context.Context, method, path string, body, out any, capBytes int64) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.Base, "/")+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.TraceID != "" && method == http.MethodPost {
		req.Header.Set(TraceHeader, c.TraceID)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, capBytes+1))
	if err != nil {
		return err
	}
	if int64(len(blob)) > capBytes {
		return fmt.Errorf("%s %s: %w (%d bytes allowed)", method, path, ErrResponseTooLarge, capBytes)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{Status: resp.StatusCode, Method: method, Path: path}
		var e errorBody
		if json.Unmarshal(blob, &e) == nil && e.Error != "" {
			apiErr.Message = e.Error
			apiErr.Code = e.Code
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(blob, out)
}

// Submit posts a spec and returns the created (or cache-served) job.
func (c *Client) Submit(ctx context.Context, spec hmcsim.Spec) (JobView, error) {
	var v JobView
	err := c.doCapped(ctx, http.MethodPost, "/v1/jobs", spec, &v, maxViewBytes)
	return v, err
}

// SubmitBatch posts a list of specs to /v1/batch and returns one view
// per spec in submission order. Admission is all-or-nothing on the
// daemon: a queue-full error means no job was created. The response
// bound scales with the batch size — every cache-hit spec comes back
// with its full result inlined — but is clamped to a fixed ceiling so
// the bound stays a real memory guarantee; a batch of thousands of
// large cache hits must be split by the caller instead.
func (c *Client) SubmitBatch(ctx context.Context, specs []hmcsim.Spec) ([]JobView, error) {
	capBytes := min(int64(max(len(specs), 1))*maxViewBytes, maxBatchResponseBytes)
	var out []JobView
	err := c.doCapped(ctx, http.MethodPost, "/v1/batch", specs, &out, capBytes)
	return out, err
}

// Job fetches one job's current view.
func (c *Client) Job(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := c.doCapped(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &v, maxViewBytes)
	return v, err
}

// Cancel requests cancellation and returns the resulting view.
func (c *Client) Cancel(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := c.doCapped(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &v, maxViewBytes)
	return v, err
}

// Wait polls a job until it reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (JobView, error) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return v, err
		}
		if v.State.Terminal() {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-t.C:
		}
	}
}

// Run submits a spec and waits for its terminal view — the remote
// equivalent of exp.Run. When ctx is cancelled mid-wait the daemon
// would otherwise keep simulating an abandoned job on a worker, so Run
// issues a best-effort cancellation over a short detached timeout
// before returning; the returned view still carries the job's ID.
func (c *Client) Run(ctx context.Context, spec hmcsim.Spec, interval time.Duration) (JobView, error) {
	v, err := c.Submit(ctx, spec)
	if err != nil || v.State.Terminal() {
		return v, err
	}
	w, err := c.Wait(ctx, v.ID, interval)
	if w.ID == "" {
		w.ID = v.ID
	}
	if err != nil && ctx.Err() != nil && !w.State.Terminal() {
		c.CancelOrphan(w.ID) //nolint:errcheck // best-effort; the caller is already unwinding
	}
	return w, err
}

// streamClient returns an HTTP client for long-lived streams: the
// configured client's transport without its overall Timeout, which
// would kill a progress stream mid-simulation. Stream lifetime is
// governed by the request context instead.
func (c *Client) streamClient() *http.Client {
	base := c.httpClient()
	return &http.Client{
		Transport:     base.Transport,
		CheckRedirect: base.CheckRedirect,
		Jar:           base.Jar,
	}
}

// maxStreamLineBytes bounds one SSE line; progress events are ~200
// bytes, so 1 MiB is pure hostile-input armor.
const maxStreamLineBytes = 1 << 20

// WatchJob subscribes to GET /v1/jobs/{id}/progress and invokes fn for
// every event, the terminal one included. Once the stream reports a
// terminal state it fetches and returns the job's full view (the
// stream itself carries only progress counters). An error leaves the
// job running; callers wanting resilience fall back to Wait.
func (c *Client) WatchJob(ctx context.Context, id string, fn func(JobProgress)) (JobView, error) {
	path := "/v1/jobs/" + id + "/progress"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(c.Base, "/")+path, nil)
	if err != nil {
		return JobView{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.streamClient().Do(req)
	if err != nil {
		return JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{Status: resp.StatusCode, Method: http.MethodGet, Path: path}
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
		var e errorBody
		if json.Unmarshal(blob, &e) == nil && e.Error != "" {
			apiErr.Message = e.Error
			apiErr.Code = e.Code
		}
		return JobView{}, apiErr
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), maxStreamLineBytes)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // comments, blank event separators
		}
		var p JobProgress
		if err := json.Unmarshal([]byte(line[len("data: "):]), &p); err != nil {
			return JobView{}, fmt.Errorf("GET %s: decode progress event: %w", path, err)
		}
		if fn != nil {
			fn(p)
		}
		if p.State.Terminal() {
			return c.Job(ctx, id)
		}
	}
	if err := sc.Err(); err != nil {
		return JobView{}, err
	}
	return JobView{}, fmt.Errorf("GET %s: stream ended without a terminal event: %w", path, io.ErrUnexpectedEOF)
}

// CancelOrphan cancels a job whose caller is abandoning it, detached
// from the (typically already-cancelled) caller context and bounded by
// a short timeout so unwinding never hangs on a dead daemon.
func (c *Client) CancelOrphan(id string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := c.Cancel(ctx, id)
	return err
}

// Spans fetches a job's lifecycle stage breakdown.
func (c *Client) Spans(ctx context.Context, id string) (SpanView, error) {
	var v SpanView
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/spans", nil, &v)
	return v, err
}

// Flight fetches the daemon's flight recorder: the last N completed
// job records with their stage durations and latency histograms.
func (c *Client) Flight(ctx context.Context) (FlightView, error) {
	var v FlightView
	err := c.doCapped(ctx, http.MethodGet, "/v1/flight", nil, &v, maxViewBytes)
	return v, err
}

// Experiments lists the daemon's registry.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentView, error) {
	var out []ExperimentView
	err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out)
	return out, err
}

// Stats fetches serving statistics.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}
