package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hmcsim"
)

// TestClientResponseBounded: the client caps how much of a response it
// buffers, so a misbehaving endpoint cannot balloon client memory the
// way an unbounded io.ReadAll would.
func TestClientResponseBounded(t *testing.T) {
	huge := strings.Repeat("x", maxViewBytes+4096)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"` + huge + `"}`)) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	c := &Client{Base: ts.URL, HTTP: ts.Client()}
	_, err := c.Job(context.Background(), "j000001")
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized response: err = %v, want body-bound error", err)
	}
}

// TestClientRunCancelsOrphanedJob is the cancellation-leak regression
// test: a caller whose context dies mid-Wait must not leave its job
// running on a daemon worker — Client.Run issues a best-effort detached
// DELETE before returning.
func TestClientRunCancelsOrphanedJob(t *testing.T) {
	blocker := newBlockingFake("slow")
	s := New(Config{Workers: 1}, []hmcsim.Runner{blocker})
	// Observe the first status poll, proving Run has read the submit
	// response (and so holds the job ID) before the cancellation.
	polled := make(chan struct{})
	var pollOnce sync.Once
	handler := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
			pollOnce.Do(func() { close(polled) })
		}
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { ts.Close(); s.Close() })
	c := &Client{Base: ts.URL, HTTP: ts.Client()}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-blocker.started // the job is running on the daemon
		<-polled          // Run is in its polling loop
		cancel()          // the caller walks away
	}()
	v, err := c.Run(ctx, hmcsim.Spec{Exp: "slow"}, 5*time.Millisecond)
	if err == nil {
		t.Fatal("Run succeeded despite cancellation")
	}
	if v.ID == "" {
		t.Fatal("Run lost the job ID on the cancellation path")
	}
	j, ok := s.Job(v.ID)
	if !ok {
		t.Fatalf("daemon lost job %s", v.ID)
	}
	// Without the orphan cancel the blocker would hold its worker until
	// server shutdown; with it, the job terminates canceled.
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("orphaned job never terminated: the daemon worker is leaked")
	}
	if st := j.View().State; st != StateCanceled {
		t.Fatalf("orphaned job state %s, want canceled", st)
	}
}
