package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hmcsim"
)

// Fleet schedules specs across one or more hmcsimd daemons. It dedups
// identical spec keys before submission, shards the unique specs over
// the daemons via a shared work queue, keeps a bounded number of jobs
// in flight per daemon (submitted in /v1/batch posts so a daemon's
// whole worker pool fills in one round-trip), polls terminal states
// concurrently, and fails a daemon's unfinished shard over to its peers
// on connection errors with bounded retries. Results reassemble in
// submission order, so a fleet run of `-exp all` is byte-identical to
// the sequential remote path — and to a local run, since daemon workers
// execute single-threaded deterministic engines.
//
// Fleet implements hmcsim.SpecRunner, so a hmcsim.RemoteRunner can farm
// individual sweep points out through it.
type Fleet struct {
	// Clients are the daemons, one per base URL.
	Clients []*Client
	// MaxInflight bounds jobs in flight per daemon; <= 0 means 4.
	MaxInflight int
	// PollInterval is the per-job status polling cadence; <= 0 means
	// 100ms.
	PollInterval time.Duration
	// Retries bounds how many times one spec is resubmitted after a
	// daemon failure before the whole run fails; <= 0 means 2.
	Retries int
	// Logf, when set, receives human-readable progress lines: daemon
	// failover and orphan-cancellation notices. nil discards them.
	// Calls are serialized, so the callback may write to a shared
	// writer without its own locking.
	Logf func(format string, args ...any)
	// Logger, when set, receives the same fleet events as structured
	// records, each stamped with the run's trace ID so they correlate
	// with the daemons' own job-lifecycle logs. nil disables; it is
	// independent of Logf, so either or both may be wired.
	Logger *slog.Logger
	// OnDone, when set, is called as each unique spec reaches a
	// successful terminal view — completion order, not submission
	// order — so long batched runs can report progress while Run
	// assembles the ordered results. Calls are serialized with Logf.
	OnDone func(spec hmcsim.Spec, view JobView)
	// OnProgress, when set, receives each in-flight job's live progress
	// events (sweep points done, simulation headway), streamed over SSE
	// instead of the plain status poll; if a daemon or intermediary
	// cannot stream, that job falls back to polling silently. Calls are
	// serialized with Logf and OnDone.
	OnProgress func(spec hmcsim.Spec, p JobProgress)
	// TraceID, when set, is propagated on every submission the fleet
	// makes (via the X-Hmcsim-Trace-Id header) so daemons stamp it on
	// the run's jobs. Empty means each Run generates its own ID, so one
	// run's jobs are always correlatable across daemons.
	TraceID string
	// OnSpans, when set, receives each successfully completed job's
	// lifecycle stage breakdown, fetched from the daemon that ran it.
	// daemon is that daemon's base URL. Calls are serialized with Logf,
	// OnDone and OnProgress.
	OnSpans func(daemon string, spec hmcsim.Spec, sv SpanView)

	// logMu serializes Logf/OnDone calls from concurrent
	// dispatchers/pollers.
	logMu sync.Mutex
}

// NewFleet builds a fleet over comma-separated daemon base URLs, e.g.
// "http://a:8080,http://b:8080".
func NewFleet(servers string) *Fleet {
	f := &Fleet{}
	for _, u := range strings.Split(servers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			f.Clients = append(f.Clients, &Client{Base: u})
		}
	}
	return f
}

func (f *Fleet) maxInflight() int {
	if f.MaxInflight > 0 {
		return f.MaxInflight
	}
	return 4
}

func (f *Fleet) pollInterval() time.Duration {
	if f.PollInterval > 0 {
		return f.PollInterval
	}
	return 100 * time.Millisecond
}

func (f *Fleet) retries() int {
	if f.Retries > 0 {
		return f.Retries
	}
	return 2
}

func (f *Fleet) logf(format string, args ...any) {
	if f.Logf != nil {
		f.logMu.Lock()
		defer f.logMu.Unlock()
		f.Logf(format, args...)
	}
}

// Experiments lists the registry of the first reachable daemon; the
// fleet serves one registry, so any daemon's answer stands for all.
func (f *Fleet) Experiments(ctx context.Context) ([]ExperimentView, error) {
	var firstErr error
	for _, c := range f.Clients {
		exps, err := c.Experiments(ctx)
		if err == nil {
			return exps, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = errors.New("fleet has no daemons")
	}
	return nil, firstErr
}

// RunSpec runs a single spec through the fleet and decodes its result —
// the hmcsim.SpecRunner contract behind hmcsim.RemoteRunner.
func (f *Fleet) RunSpec(ctx context.Context, spec hmcsim.Spec) (hmcsim.Result, error) {
	views, err := f.Run(ctx, []hmcsim.Spec{spec})
	if err != nil {
		return hmcsim.Result{}, err
	}
	return views[0].Decode()
}

// fleetItem is one unit of fleet work: an index into the unique-spec
// list plus how many daemon failures it has survived.
type fleetItem struct {
	idx      int
	attempts int
}

// fleetRun is the shared state of one Fleet.Run call.
type fleetRun struct {
	f       *Fleet
	specs   []hmcsim.Spec // unique specs
	results []JobView     // one slot per unique spec

	pending   chan fleetItem // items awaiting a daemon; cap len(specs)
	remaining atomic.Int64   // unique specs not yet terminal
	live      atomic.Int64   // daemons still serving this run
	traceID   string         // stamped on every submission of this run

	done  chan struct{} // closed when remaining reaches zero
	fatal chan struct{} // closed on the first unrecoverable error

	mu       sync.Mutex
	fatalErr error
}

// Run executes every spec on the fleet and returns one terminal view
// per spec, in submission order. Identical specs (by content key) are
// submitted once and share a view. Run fails as a whole when a spec
// fails or is cancelled server-side, when a spec exhausts its failover
// retries, or when every daemon becomes unreachable; on ctx
// cancellation it cancels its in-flight remote jobs (best-effort, short
// detached timeouts) before returning ctx's error.
func (f *Fleet) Run(ctx context.Context, specs []hmcsim.Spec) ([]JobView, error) {
	if len(f.Clients) == 0 {
		return nil, errors.New("fleet has no daemons")
	}
	if len(specs) == 0 {
		return nil, nil
	}

	// Dedup by content key: slot i of the original list maps to unique
	// spec pos[i].
	pos := make([]int, len(specs))
	uniqByKey := map[string]int{}
	var uniq []hmcsim.Spec
	for i, spec := range specs {
		key, err := spec.Key()
		if err != nil {
			return nil, fmt.Errorf("spec %d: %w", i, err)
		}
		u, ok := uniqByKey[key]
		if !ok {
			u = len(uniq)
			uniqByKey[key] = u
			uniq = append(uniq, spec)
		}
		pos[i] = u
	}

	r := &fleetRun{
		f:       f,
		specs:   uniq,
		results: make([]JobView, len(uniq)),
		pending: make(chan fleetItem, len(uniq)),
		done:    make(chan struct{}),
		fatal:   make(chan struct{}),
		traceID: f.TraceID,
	}
	if r.traceID == "" {
		r.traceID = NewTraceID()
	}
	r.remaining.Store(int64(len(uniq)))
	r.live.Store(int64(len(f.Clients)))
	for i := range uniq {
		r.pending <- fleetItem{idx: i}
	}

	// Daemons share ctx2; cancelling it (fatal error or caller
	// cancellation) makes every dispatcher drain its pollers and exit.
	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for _, c := range f.Clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			r.daemon(ctx2, c)
		}(c)
	}

	assemble := func() []JobView {
		out := make([]JobView, len(specs))
		for i, u := range pos {
			out[i] = r.results[u]
		}
		return out
	}
	select {
	case <-r.done:
		wg.Wait()
		return assemble(), nil
	case <-r.fatal:
		cancel()
		wg.Wait()
		// Alongside the error, hand back whatever did complete (specs
		// that never finished hold zero-valued views), so a caller can
		// salvage a mostly-done sweep instead of discarding it.
		r.mu.Lock()
		defer r.mu.Unlock()
		return assemble(), r.fatalErr
	case <-ctx.Done():
		cancel()
		wg.Wait() // dispatchers cancel their in-flight remote jobs first
		return nil, ctx.Err()
	}
}

// logEvent emits one structured fleet event through the Fleet's Logger,
// stamping the run's trace ID so fleet-side records line up with the
// daemons' job-lifecycle logs. No-op without a Logger.
func (r *fleetRun) logEvent(msg string, args ...any) {
	if r.f.Logger == nil {
		return
	}
	r.f.Logger.Info(msg, append([]any{"traceId", r.traceID}, args...)...)
}

// finish records one unique spec's terminal view.
func (r *fleetRun) finish(it fleetItem, v JobView) {
	if r.f.OnDone != nil {
		r.f.logMu.Lock()
		r.f.OnDone(r.specs[it.idx], v)
		r.f.logMu.Unlock()
	}
	r.results[it.idx] = v
	if r.remaining.Add(-1) == 0 {
		close(r.done)
	}
}

// fail records the first unrecoverable error and aborts the run.
func (r *fleetRun) fail(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fatalErr == nil {
		r.fatalErr = err
		close(r.fatal)
	}
}

// requeue returns a daemon's unfinished item to the shared queue for a
// peer to pick up, charging it one failover attempt. The pending
// channel holds every unique spec, so the send can never block.
func (r *fleetRun) requeue(it fleetItem, c *Client, cause error) {
	it.attempts++
	if it.attempts > r.f.retries() {
		r.fail(fmt.Errorf("experiment %q failed on %s after %d attempts: %w",
			r.specs[it.idx].Exp, c.Base, it.attempts, cause))
		return
	}
	r.pending <- it
}

// daemonDied notes a dispatcher's exit; when the last daemon is gone
// with work still outstanding, the run cannot make progress.
func (r *fleetRun) daemonDied(c *Client, cause error) {
	r.f.logf("daemon %s failed over: %v", c.Base, cause)
	r.logEvent("daemon failover", "daemon", c.Base, "error", fmt.Sprint(cause))
	if r.live.Add(-1) == 0 && r.remaining.Load() > 0 {
		r.fail(fmt.Errorf("all daemons unreachable (last: %s): %w", c.Base, cause))
	}
}

// pollResult is one poller goroutine's report back to its dispatcher.
type pollResult struct {
	it   fleetItem
	view JobView
	err  error
}

// daemon dispatches work to one daemon: it gathers up to its free
// in-flight capacity from the shared queue, submits the gathered specs
// as one batch, and hands each queued job to a poller goroutine. A
// connection error — on submit or poll — kills the daemon for the rest
// of the run: its unfinished items requeue for the surviving peers.
func (r *fleetRun) daemon(ctx context.Context, c *Client) {
	maxIn := r.f.maxInflight()
	// Submissions go through a shallow copy carrying the run's trace ID,
	// so concurrent runs over shared clients never race on the field.
	submitC := *c
	submitC.TraceID = r.traceID
	resc := make(chan pollResult, maxIn) // buffered: pollers never block
	inflight := 0
	// batchCap shrinks after a queue-full rejection so a daemon with a
	// tiny (or mostly-occupied) queue still makes progress one spec at a
	// time instead of resubmitting the same oversized batch forever; it
	// resets once a submission lands.
	batchCap := maxIn
	dead := false
	deadCause := error(nil)

	die := func(cause error) {
		if !dead {
			dead = true
			deadCause = cause
		}
	}

	ctxDone := ctx.Done()
	for {
		if dead && inflight == 0 {
			if deadCause != nil {
				r.daemonDied(c, deadCause)
			}
			return
		}
		// Only offer to take work while alive and under the in-flight
		// bound; a nil channel never selects.
		var pendc chan fleetItem
		if !dead && inflight < maxIn {
			pendc = r.pending
		}
		select {
		case <-ctxDone:
			die(nil)      // drain pollers, then exit without failover
			ctxDone = nil // fire once; keep selecting on resc
		case <-r.done:
			return
		case pr := <-resc:
			inflight--
			r.settle(ctx, c, pr, die)
		case first := <-pendc:
			// Gather whatever else is immediately available into one
			// batch submission — up to the in-flight bound, and up to a
			// fair share of the outstanding work so one fast dispatcher
			// does not hog a small backlog while its peers sit idle.
			share := int(r.remaining.Load())
			if live := int(r.live.Load()); live > 1 {
				share = (share + live - 1) / live
			}
			limit := min(maxIn-inflight, batchCap, max(share, 1))
			batch := []fleetItem{first}
		gather:
			for len(batch) < limit {
				select {
				case it := <-r.pending:
					batch = append(batch, it)
				default:
					break gather
				}
			}
			specs := make([]hmcsim.Spec, len(batch))
			for i, it := range batch {
				specs[i] = r.specs[it.idx]
			}
			views, err := submitC.SubmitBatch(ctx, specs)
			if err != nil {
				if r.submitFailed(ctx, c, batch, err, die) {
					batchCap = max(1, len(batch)/2)
				}
				continue
			}
			if len(views) != len(batch) {
				// A daemon that answers with the wrong number of views
				// is as broken as one that does not answer: indexing
				// into the batch would panic on an over-long response
				// and strand items on a short one.
				err := fmt.Errorf("daemon returned %d views for %d specs", len(views), len(batch))
				for _, it := range batch {
					r.requeue(it, c, err)
				}
				die(err)
				continue
			}
			batchCap = maxIn
			for i, v := range views {
				if v.State.Terminal() {
					r.settle(ctx, c, pollResult{it: batch[i], view: v}, die)
					continue
				}
				inflight++
				go r.poll(ctx, c, batch[i], v.ID, resc)
			}
		}
	}
}

// submitFailed sorts a batch-submission error and reports whether the
// daemon is merely saturated. Queue-full admissions (identified by the
// server's machine-readable error code, not its prose) hand the work
// back and wait a poll interval — all-or-nothing admission means
// nothing was created. Any other 503 — most importantly a
// shutting-down daemon, but also an intermediary's rewritten 503 — is
// treated as a dead daemon so its shard fails over instead of bouncing
// forever. Other API errors are fatal (a bad spec stays bad on every
// daemon), and anything else is a connection failure that kills the
// daemon and fails its batch over.
func (r *fleetRun) submitFailed(ctx context.Context, c *Client, batch []fleetItem, err error, die func(error)) (saturated bool) {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch {
		case apiErr.Status == http.StatusServiceUnavailable && apiErr.Code == codeQueueFull:
			// The daemon is alive but saturated; hand the work back and
			// let in-flight completions (ours or other clients') free
			// queue slots before anyone retries.
			for _, it := range batch {
				r.pending <- it
			}
			select {
			case <-time.After(r.f.pollInterval()):
			case <-ctx.Done():
			case <-r.done:
			}
			return true
		case apiErr.Status == http.StatusServiceUnavailable,
			apiErr.Status == http.StatusNotFound,
			apiErr.Status == http.StatusMethodNotAllowed,
			apiErr.Status == http.StatusNotImplemented:
			// A daemon-level refusal, not a spec problem: shutting down,
			// an intermediary's rewritten 503, or a daemon that does not
			// speak /v1/batch at all (an older build mid-rolling-upgrade,
			// a proxy rejecting the path). Its shard fails over; peers
			// may well serve it.
			for _, it := range batch {
				r.requeue(it, c, err)
			}
			die(err)
			return false
		}
		// Remaining API errors (400 validation, ...) are properties of
		// the specs themselves: a bad spec stays bad on every daemon.
		r.fail(err)
		return false
	}
	if ctx.Err() != nil {
		// Caller cancellation, not a daemon failure. Whatever the daemon
		// admitted before the cancellation raced in is unknown — orphan
		// cleanup is the poller's job for known IDs only.
		die(nil)
		return false
	}
	if errors.Is(err, ErrResponseTooLarge) {
		// A client-side bound, not a daemon fault: every daemon would
		// send the same oversized payload, so failover would only turn
		// the real cause into "all daemons unreachable".
		r.fail(err)
		return false
	}
	// Connection failure. If the daemon admitted the batch but the
	// response was lost, those jobs run unowned on it until they finish
	// — with no IDs there is nothing to cancel, the same gap as the
	// cancellation race above. The daemon is dead to this run either
	// way, duplicates on peers are deduplicated per daemon by content
	// key, and the orphans' results still land in that daemon's cache.
	for _, it := range batch {
		r.requeue(it, c, err)
	}
	die(err)
	return false
}

// settle sorts one terminal (or failed-to-poll) job outcome.
func (r *fleetRun) settle(ctx context.Context, c *Client, pr pollResult, die func(error)) {
	if pr.err != nil {
		if ctx.Err() != nil {
			die(nil) // cancelled mid-poll; the poller already cancelled the orphan
			return
		}
		if errors.Is(pr.err, ErrResponseTooLarge) {
			r.fail(pr.err) // deterministic payload size; failover cannot help
			return
		}
		var apiErr *APIError
		if errors.As(pr.err, &apiErr) {
			// The daemon answered but unhelpfully (e.g. the job record
			// was pruned): resubmitting elsewhere is the only recovery.
			r.requeue(pr.it, c, pr.err)
			return
		}
		r.requeue(pr.it, c, pr.err)
		die(pr.err)
		return
	}
	switch pr.view.State {
	case StateDone:
		r.reportSpans(c, pr)
		r.finish(pr.it, pr.view)
	case StateFailed:
		if pr.view.ErrorCode == codeQueueFull {
			// Not a property of the spec: the job coalesced onto a twin
			// that was canceled, and the server's adopt fallback lost
			// its non-blocking re-enqueue to a full queue. Saturation is
			// retryable (with the usual attempt bound), exactly like a
			// queue-full rejection at submit time.
			r.requeue(pr.it, c, errors.New(pr.view.Error))
			return
		}
		r.fail(fmt.Errorf("experiment %q failed on %s: %s", r.specs[pr.it.idx].Exp, c.Base, pr.view.Error))
	default: // canceled server-side
		r.fail(fmt.Errorf("experiment %q canceled on %s", r.specs[pr.it.idx].Exp, c.Base))
	}
}

// reportSpans fetches a completed job's stage breakdown for the OnSpans
// callback. Detached short-timeout context: the run's context may be
// winding down by the time the last job settles, and spans are
// diagnostics — a failed fetch logs rather than failing anything over.
func (r *fleetRun) reportSpans(c *Client, pr pollResult) {
	if r.f.OnSpans == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sv, err := c.Spans(ctx, pr.view.ID)
	if err != nil {
		r.f.logf("could not fetch spans for job %s on %s: %v", pr.view.ID, c.Base, err)
		r.logEvent("span fetch failed", "job", pr.view.ID, "daemon", c.Base, "error", err.Error())
		return
	}
	r.f.logMu.Lock()
	r.f.OnSpans(c.Base, r.specs[pr.it.idx], sv)
	r.f.logMu.Unlock()
}

// poll waits one job to a terminal state. Abandoning a non-terminal
// job for any reason — caller cancellation, or a poll failure that
// will make the dispatcher resubmit the spec elsewhere — cancels it
// first (best-effort, short detached timeout), so it neither occupies
// a daemon worker without an owner nor simulates concurrently with its
// failover replacement.
func (r *fleetRun) poll(ctx context.Context, c *Client, it fleetItem, id string, resc chan<- pollResult) {
	v, err := r.waitJob(ctx, c, it, id)
	if err != nil && !v.State.Terminal() {
		if cerr := c.CancelOrphan(id); cerr != nil {
			r.f.logf("could not cancel job %s on %s: %v", id, c.Base, cerr)
			r.logEvent("orphan cancel failed", "job", id, "daemon", c.Base, "error", cerr.Error())
		} else {
			r.f.logf("canceled job %s on %s", id, c.Base)
			r.logEvent("orphan canceled", "job", id, "daemon", c.Base)
		}
	}
	resc <- pollResult{it: it, view: v, err: err}
}

// waitJob waits one job to a terminal view: over the SSE progress
// stream when the fleet wants live progress, by plain status polling
// otherwise. A failed stream (a proxy that buffers SSE, an older
// daemon without the endpoint) falls back to polling rather than
// charging the daemon a failover, since the job itself may be fine.
func (r *fleetRun) waitJob(ctx context.Context, c *Client, it fleetItem, id string) (JobView, error) {
	if r.f.OnProgress != nil {
		v, err := c.WatchJob(ctx, id, func(p JobProgress) {
			r.f.logMu.Lock()
			r.f.OnProgress(r.specs[it.idx], p)
			r.f.logMu.Unlock()
		})
		if err == nil || ctx.Err() != nil || v.State.Terminal() {
			return v, err
		}
	}
	return c.Wait(ctx, id, r.f.pollInterval())
}
