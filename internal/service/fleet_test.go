package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hmcsim"
)

// newFleetDaemon builds one real daemon and returns both handles.
func newFleetDaemon(t *testing.T, cfg Config, runners ...hmcsim.Runner) (*Server, *Client) {
	t.Helper()
	return newTestServer(t, cfg, runners...)
}

func seedSpecs(exp string, n int) []hmcsim.Spec {
	specs := make([]hmcsim.Spec, n)
	for i := range specs {
		specs[i] = hmcsim.Spec{Exp: exp, Options: hmcsim.Options{Seed: uint64(i + 1)}}
	}
	return specs
}

// TestFleetShardsAcrossDaemons: with three daemons and more work than
// any one daemon's in-flight bound, every daemon receives a share, and
// the views come back terminal in submission order.
func TestFleetShardsAcrossDaemons(t *testing.T) {
	var servers []*Server
	var clients []*Client
	var fakes []*fakeRunner
	for i := 0; i < 3; i++ {
		// Blocking runners pin the split deterministically: with 12
		// items and MaxInflight 4, two dispatchers can hold at most 8,
		// so the third always receives the rest — however late its
		// goroutine starts — and nothing completes until every daemon
		// has started work.
		fake := newBlockingFake("e")
		s, c := newFleetDaemon(t, Config{Workers: 2, QueueDepth: 8}, fake)
		servers = append(servers, s)
		clients = append(clients, c)
		fakes = append(fakes, fake)
	}
	f := &Fleet{Clients: clients, MaxInflight: 4, PollInterval: 5 * time.Millisecond}
	go func() {
		for _, fake := range fakes {
			<-fake.started // every daemon is running at least one job
		}
		for _, fake := range fakes {
			close(fake.release)
		}
	}()

	specs := seedSpecs("e", 12)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	views, err := f.Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != len(specs) {
		t.Fatalf("got %d views for %d specs", len(views), len(specs))
	}
	for i, v := range views {
		if v.State != StateDone {
			t.Fatalf("view %d state %s, want done", i, v.State)
		}
		// Submission order: the echoed seed series must match spec i.
		var res hmcsim.Result
		if err := json.Unmarshal(v.Result, &res); err != nil {
			t.Fatalf("view %d: %v", i, err)
		}
		if got := res.Series[0].Points[0].Y; got != float64(i+1) {
			t.Fatalf("view %d echoes seed %.0f, want %d (results out of submission order)", i, got, i+1)
		}
	}
	for i, s := range servers {
		if n := len(s.Snapshot().Jobs); n == 0 {
			t.Errorf("daemon %d received no work", i)
		}
		if s.Snapshot().Batches == 0 {
			t.Errorf("daemon %d was never batch-submitted", i)
		}
	}
}

// TestFleetFailover: when one daemon accepts a batch and then drops
// every connection, its shard fails over to the surviving peer and the
// run still completes in order.
func TestFleetFailover(t *testing.T) {
	good, goodClient := newFleetDaemon(t, Config{Workers: 2}, newFake("e"))

	// The bad daemon speaks just enough protocol to accept work — it
	// lists the registry and admits batches — then kills every status
	// poll at the TCP level, simulating a daemon dying mid-batch.
	var badSeq int
	var badMu sync.Mutex
	badMux := http.NewServeMux()
	badMux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode([]ExperimentView{{Name: "e", Title: "fake"}}) //nolint:errcheck
	})
	badMux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var specs []hmcsim.Spec
		if err := json.NewDecoder(r.Body).Decode(&specs); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		badMu.Lock()
		views := make([]JobView, len(specs))
		for i, sp := range specs {
			badSeq++
			views[i] = JobView{ID: fmt.Sprintf("x%06d", badSeq), State: StateQueued, Spec: sp}
		}
		badMu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(views) //nolint:errcheck
	})
	badMux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Error("test server does not support hijacking")
			return
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close() // the poller sees a connection error
		}
	})
	bad := httptest.NewServer(badMux)
	t.Cleanup(bad.Close)
	badClient := &Client{Base: bad.URL, HTTP: bad.Client()}

	var logMu sync.Mutex
	var logs []string
	f := &Fleet{
		Clients:      []*Client{badClient, goodClient},
		MaxInflight:  3,
		PollInterval: 5 * time.Millisecond,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	}
	specs := seedSpecs("e", 8)
	views, err := f.Run(context.Background(), specs)
	if err != nil {
		t.Fatalf("fleet did not survive a dead daemon: %v", err)
	}
	for i, v := range views {
		if v.State != StateDone {
			t.Fatalf("view %d state %s after failover", i, v.State)
		}
	}
	// Every spec ultimately ran on the good daemon.
	if st := good.Snapshot(); st.Jobs[StateDone] < len(specs) {
		t.Fatalf("good daemon completed %d jobs, want >= %d", st.Jobs[StateDone], len(specs))
	}
	logMu.Lock()
	defer logMu.Unlock()
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "failed over") {
		t.Fatalf("failover was not reported through Logf:\n%s", joined)
	}
}

// TestFleetDedupsIdenticalSpecs: identical spec keys are submitted once
// and every duplicate slot shares the single job's view.
func TestFleetDedupsIdenticalSpecs(t *testing.T) {
	fake := newFake("e")
	s, c := newFleetDaemon(t, Config{Workers: 2}, fake)
	f := &Fleet{Clients: []*Client{c}, PollInterval: 5 * time.Millisecond}

	same := hmcsim.Spec{Exp: "e", Options: hmcsim.Options{Seed: 7}}
	specs := []hmcsim.Spec{same, {Exp: "e", Options: hmcsim.Options{Seed: 1}}, same, same}
	views, err := f.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if views[0].ID != views[2].ID || views[0].ID != views[3].ID {
		t.Fatalf("duplicate specs got distinct jobs: %s / %s / %s", views[0].ID, views[2].ID, views[3].ID)
	}
	if views[1].ID == views[0].ID {
		t.Fatal("distinct specs shared a job")
	}
	if n := fake.runs.Load(); n != 2 {
		t.Fatalf("runner ran %d times, want 2 (deduped)", n)
	}
	if n := s.Snapshot().Jobs[StateDone]; n != 2 {
		t.Fatalf("daemon holds %d done jobs, want 2 (duplicates submitted)", n)
	}
	if !bytes.Equal(views[0].Result, views[2].Result) {
		t.Fatal("deduped views differ")
	}
}

// TestFleetFailsOverClosedDaemon: a daemon whose Server was Closed
// keeps answering HTTP with 503 "shutting down" — that must count as a
// dead daemon (shard fails over / run errors), not as a transient full
// queue to retry forever.
func TestFleetFailsOverClosedDaemon(t *testing.T) {
	closed := New(Config{Workers: 1}, []hmcsim.Runner{newFake("e")})
	closedTS := httptest.NewServer(closed.Handler())
	t.Cleanup(closedTS.Close)
	closed.Close() // still listening, no longer serving

	_, goodClient := newFleetDaemon(t, Config{Workers: 2}, newFake("e"))
	f := &Fleet{
		Clients:      []*Client{{Base: closedTS.URL, HTTP: closedTS.Client()}, goodClient},
		PollInterval: 5 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	views, err := f.Run(ctx, seedSpecs("e", 4))
	if err != nil {
		t.Fatalf("fleet did not fail over the shutting-down daemon: %v", err)
	}
	if ctx.Err() != nil {
		t.Fatal("fleet spun on the closed daemon until the safety timeout")
	}
	for i, v := range views {
		if v.State != StateDone {
			t.Fatalf("view %d state %s", i, v.State)
		}
	}

	// With no surviving peer the run must error out, not hang.
	solo := &Fleet{
		Clients:      []*Client{{Base: closedTS.URL, HTTP: closedTS.Client()}},
		PollInterval: 5 * time.Millisecond,
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if _, err := solo.Run(ctx2, seedSpecs("e", 2)); err == nil || ctx2.Err() != nil {
		t.Fatalf("solo run against a closed daemon: err = %v (timeout: %v)", err, ctx2.Err())
	}
}

// TestFleetRetriesExhausted: when every daemon keeps failing, the run
// fails with a bounded-retries error instead of spinning forever.
func TestFleetRetriesExhausted(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
	}))
	t.Cleanup(dead.Close)
	f := &Fleet{
		Clients:      []*Client{{Base: dead.URL, HTTP: dead.Client()}},
		PollInterval: 5 * time.Millisecond,
		Retries:      2,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := f.Run(ctx, seedSpecs("e", 2))
	if err == nil {
		t.Fatal("fleet run over a dead daemon succeeded")
	}
	if ctx.Err() != nil {
		t.Fatalf("fleet hung until the safety timeout: %v", err)
	}
}

// TestFleetFailsOverDaemonWithoutBatchEndpoint: a daemon that 404s
// /v1/batch (an older build mid-rolling-upgrade, a proxy rejecting the
// path) is that daemon's problem, not the specs' — its shard moves to
// a peer instead of aborting the run.
func TestFleetFailsOverDaemonWithoutBatchEndpoint(t *testing.T) {
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/experiments" {
			json.NewEncoder(w).Encode([]ExperimentView{{Name: "e", Title: "fake"}}) //nolint:errcheck
			return
		}
		http.NotFound(w, r) // no /v1/batch route
	}))
	t.Cleanup(old.Close)

	_, goodClient := newFleetDaemon(t, Config{Workers: 2}, newFake("e"))
	f := &Fleet{
		Clients:      []*Client{{Base: old.URL, HTTP: old.Client()}, goodClient},
		PollInterval: 5 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	views, err := f.Run(ctx, seedSpecs("e", 4))
	if err != nil {
		t.Fatalf("404 on /v1/batch aborted the run instead of failing over: %v", err)
	}
	for i, v := range views {
		if v.State != StateDone {
			t.Fatalf("view %d state %s", i, v.State)
		}
	}
}

// TestFleetProgressesThroughTinyQueue: a daemon whose queue is smaller
// than the fleet's gathered batch keeps 503-ing the whole batch under
// all-or-nothing admission; the fleet must shrink its batches and drain
// the work one spec at a time instead of resubmitting the same
// oversized batch forever.
func TestFleetProgressesThroughTinyQueue(t *testing.T) {
	_, c := newFleetDaemon(t, Config{Workers: 1, QueueDepth: 1},
		&fakeRunner{name: "e", started: make(chan struct{}), delay: 5 * time.Millisecond})
	f := &Fleet{Clients: []*Client{c}, MaxInflight: 4, PollInterval: 2 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	views, err := f.Run(ctx, seedSpecs("e", 4))
	if err != nil {
		t.Fatalf("fleet never drained a tiny queue: %v", err)
	}
	if ctx.Err() != nil {
		t.Fatal("fleet livelocked against the tiny queue until the safety timeout")
	}
	for i, v := range views {
		if v.State != StateDone {
			t.Fatalf("view %d state %s", i, v.State)
		}
	}
}

// bigTextRunner pads its result text so a handful of cache-hit views
// overflow the single-request response bound.
type bigTextRunner struct{ name string }

func (b bigTextRunner) Name() string     { return b.name }
func (b bigTextRunner) Describe() string { return "big " + b.name }
func (b bigTextRunner) Run(ctx context.Context, o hmcsim.Options) (hmcsim.Result, error) {
	return hmcsim.Result{
		Name:   b.name,
		Series: []hmcsim.Series{{Name: "s", Points: []hmcsim.Point{{X: 1, Y: float64(o.Seed)}}}},
		Text:   strings.Repeat("x", 400<<10),
	}, nil
}

// TestFleetBatchResponseScalesWithSpecs: a batch of cache hits inlines
// one full result per spec, so the client's response bound must scale
// with the batch instead of misreading a legitimate payload as a
// misbehaving endpoint (which would cascade into spurious failover).
func TestFleetBatchResponseScalesWithSpecs(t *testing.T) {
	_, c := newFleetDaemon(t, Config{Workers: 2}, bigTextRunner{name: "big"})
	f := &Fleet{Clients: []*Client{c}, MaxInflight: 4, PollInterval: 2 * time.Millisecond}
	ctx := context.Background()

	// First run populates the cache with four ~400 KiB results.
	specs := seedSpecs("big", 4)
	if _, err := f.Run(ctx, specs); err != nil {
		t.Fatal(err)
	}
	// Second run: the whole batch comes back inline, > 1 MiB in one
	// response.
	views, err := f.Run(ctx, specs)
	if err != nil {
		t.Fatalf("cache-hit batch rejected by the response bound: %v", err)
	}
	for i, v := range views {
		if !v.Cached || v.State != StateDone {
			t.Fatalf("view %d not served inline from cache: %+v", i, v)
		}
	}
}

// TestSettleRequeuesQueueFullFailure: a job that FAILED with the
// server's queue-full message (the adopt fallback losing its
// re-enqueue) is daemon-local saturation, so settle must requeue it —
// only a genuine experiment failure aborts the run.
func TestSettleRequeuesQueueFullFailure(t *testing.T) {
	newRun := func() *fleetRun {
		r := &fleetRun{
			f:       &Fleet{},
			specs:   []hmcsim.Spec{{Exp: "e"}},
			results: make([]JobView, 1),
			pending: make(chan fleetItem, 1),
			done:    make(chan struct{}),
			fatal:   make(chan struct{}),
		}
		r.remaining.Store(1)
		return r
	}
	c := &Client{Base: "http://test"}
	noDie := func(err error) { t.Errorf("settle killed the daemon: %v", err) }

	r := newRun()
	r.settle(context.Background(), c, pollResult{
		it:   fleetItem{idx: 0},
		view: JobView{ID: "j1", State: StateFailed, Error: errQueueFull.Error(), ErrorCode: codeQueueFull},
	}, noDie)
	select {
	case it := <-r.pending:
		if it.attempts != 1 {
			t.Fatalf("requeued item charged %d attempts, want 1", it.attempts)
		}
	default:
		t.Fatal("queue-full job failure was not requeued")
	}
	select {
	case <-r.fatal:
		t.Fatal("queue-full job failure aborted the run")
	default:
	}

	// A genuine failure stays fatal.
	r2 := newRun()
	r2.settle(context.Background(), c, pollResult{
		it:   fleetItem{idx: 0},
		view: JobView{ID: "j1", State: StateFailed, Error: "boom"},
	}, noDie)
	select {
	case <-r2.fatal:
	default:
		t.Fatal("real experiment failure did not abort the run")
	}
}

// TestFleetRunSpec: the hmcsim.SpecRunner path decodes a structured
// result, and a RemoteRunner built over the fleet behaves like a local
// runner.
func TestFleetRunSpec(t *testing.T) {
	_, c := newFleetDaemon(t, Config{Workers: 1}, newFake("e"))
	f := &Fleet{Clients: []*Client{c}, PollInterval: 5 * time.Millisecond}

	rr := hmcsim.RemoteRunner{Exp: "e", On: f}
	res, err := rr.Run(context.Background(), hmcsim.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "e" {
		t.Fatalf("result name %q", res.Name)
	}
	if got := res.Series[0].Points[0].Y; got != 42 {
		t.Fatalf("echoed seed %.0f, want 42", got)
	}
	if res.Text == "" {
		t.Fatal("RunSpec lost the rendered text")
	}
	var _ hmcsim.Runner = rr // RemoteRunner satisfies the public interface
}

// TestFleetCancellationCancelsRemoteJobs: cancelling the caller's
// context mid-run cancels the in-flight remote jobs before Run returns,
// so no daemon worker is left simulating for a vanished client.
func TestFleetCancellationCancelsRemoteJobs(t *testing.T) {
	blocker := newBlockingFake("slow")
	s := New(Config{Workers: 1}, []hmcsim.Runner{blocker})
	// Observe the fleet's first status poll, proving the poller holds
	// the job ID before the caller's context dies.
	polled := make(chan struct{})
	var pollOnce sync.Once
	handler := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
			pollOnce.Do(func() { close(polled) })
		}
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { ts.Close(); s.Close() })
	c := &Client{Base: ts.URL, HTTP: ts.Client()}

	var logMu sync.Mutex
	var logs []string
	f := &Fleet{
		Clients:      []*Client{c},
		PollInterval: 5 * time.Millisecond,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-blocker.started
		<-polled
		cancel()
	}()
	_, err := f.Run(ctx, []hmcsim.Spec{{Exp: "slow"}})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	j, ok := s.Job("j000001")
	if !ok {
		t.Fatal("daemon lost the job record")
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned remote job never terminated")
	}
	if st := j.View().State; st != StateCanceled {
		t.Fatalf("abandoned job state %s, want canceled", st)
	}
	logMu.Lock()
	defer logMu.Unlock()
	if joined := strings.Join(logs, "\n"); !strings.Contains(joined, "canceled job") {
		t.Fatalf("cancellation not reported through Logf:\n%s", joined)
	}
}
