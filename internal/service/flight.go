package service

import (
	"sync"
	"time"

	"hmcsim/internal/obs"
)

// FlightRecord is one completed job in the flight recorder: identity,
// attribution (worker, cache hit/miss, error) and the stage durations
// the span marks measured.
type FlightRecord struct {
	ID      string `json:"id"`
	Exp     string `json:"exp"`
	Key     string `json:"key"`
	TraceID string `json:"traceId,omitempty"`
	State   State  `json:"state"`
	Cached  bool   `json:"cached"`
	// Worker is the pool index that ran the job, -1 when none did.
	Worker int    `json:"worker"`
	Error  string `json:"error,omitempty"`
	// QueueMs is time spent waiting for a worker (0 when no worker ran
	// the job); RunMs is simulation time on the worker; TotalMs is
	// admission-to-terminal latency.
	QueueMs float64 `json:"queueMs"`
	RunMs   float64 `json:"runMs"`
	TotalMs float64 `json:"totalMs"`
	// Slow marks records whose total latency crossed the configured
	// slow-job threshold.
	Slow       bool      `json:"slow,omitempty"`
	FinishedAt time.Time `json:"finishedAt"`
	// Shards and BarrierWaitMs are the lockstep-observatory roll-up of
	// a sharded run: the engine-group shard count and the total
	// wall-clock time its shards spent waiting at window barriers.
	// Omitted for serial runs and cache hits.
	Shards        int     `json:"shards,omitempty"`
	BarrierWaitMs float64 `json:"barrierWaitMs,omitempty"`
}

// flightRecorder keeps a bounded ring of the last N completed jobs plus
// the latency histograms /metrics exports. Its mutex is a leaf: add is
// called from Job.finishLocked (under the job's lock) and snapshot from
// HTTP handlers, and neither path takes any other lock from here.
type flightRecorder struct {
	mu        sync.Mutex
	ring      []FlightRecord
	next      int
	total     uint64
	slow      uint64
	slowAfter time.Duration // <= 0 disables slow marking
	queueWait obs.Hist      // milliseconds waiting for a worker
	latency   obs.Hist      // milliseconds admission-to-terminal
}

func newFlightRecorder(entries int, slowAfter time.Duration) *flightRecorder {
	return &flightRecorder{
		ring:      make([]FlightRecord, entries),
		slowAfter: slowAfter,
	}
}

// add records one completed job, stamping its Slow flag against the
// threshold and feeding the latency histograms.
func (f *flightRecorder) add(r FlightRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.slowAfter > 0 && r.TotalMs >= f.slowAfter.Seconds()*1000 {
		r.Slow = true
		f.slow++
	}
	f.latency.Observe(int(r.TotalMs))
	if r.Worker >= 0 {
		f.queueWait.Observe(int(r.QueueMs))
	}
	f.ring[f.next] = r
	f.next = (f.next + 1) % len(f.ring)
	f.total++
}

// FlightView is the GET /v1/flight payload.
type FlightView struct {
	// Capacity is the ring size; Total counts every record ever added,
	// so Total - Capacity records have already been overwritten.
	Capacity int    `json:"capacity"`
	Total    uint64 `json:"total"`
	// Slow counts records past the slow-job threshold; the threshold is
	// echoed in milliseconds (0 = disabled).
	Slow            uint64          `json:"slow"`
	SlowThresholdMs float64         `json:"slowThresholdMs"`
	QueueWaitMs     obs.HistSummary `json:"queueWaitMs"`
	LatencyMs       obs.HistSummary `json:"latencyMs"`
	// Records are the retained completions, newest first.
	Records []FlightRecord `json:"records"`
}

// snapshot copies the recorder's state for serving.
func (f *flightRecorder) snapshot() FlightView {
	f.mu.Lock()
	defer f.mu.Unlock()
	v := FlightView{
		Capacity:        len(f.ring),
		Total:           f.total,
		Slow:            f.slow,
		SlowThresholdMs: f.slowAfter.Seconds() * 1000,
		QueueWaitMs:     f.queueWait.Summarize(),
		LatencyMs:       f.latency.Summarize(),
	}
	n := int(f.total)
	if n > len(f.ring) {
		n = len(f.ring)
	}
	for i := 1; i <= n; i++ {
		v.Records = append(v.Records, f.ring[(f.next-i+len(f.ring))%len(f.ring)])
	}
	return v
}

// hists copies the histograms and slow counter for /metrics.
func (f *flightRecorder) hists() (queueWait, latency obs.Hist, slow uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.queueWait, f.latency, f.slow
}
