package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"hmcsim"
)

// TestFlightAttribution: the flight recorder attributes each completion
// correctly — a worker-run miss carries its worker index and queue/run
// durations, a submission-time hit shows Cached with Worker -1 — and
// the histograms only count queue wait for jobs a worker actually ran.
func TestFlightAttribution(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1}, newFake("e"))
	ctx := context.Background()

	spec := hmcsim.Spec{Exp: "e", Options: hmcsim.Options{Seed: 3}}
	v1, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, v1.ID)
	v2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Fatalf("second submission not cached: %+v", v2)
	}

	fv, err := c.Flight(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fv.Total != 2 || len(fv.Records) != 2 {
		t.Fatalf("flight has Total=%d, %d records, want 2/2", fv.Total, len(fv.Records))
	}
	// Newest first: the cache hit, then the miss.
	hit, miss := fv.Records[0], fv.Records[1]
	if hit.ID != v2.ID || !hit.Cached || hit.Worker != -1 || hit.RunMs != 0 {
		t.Fatalf("hit record wrong: %+v", hit)
	}
	if miss.ID != v1.ID || miss.Cached || miss.Worker < 0 {
		t.Fatalf("miss record wrong: %+v", miss)
	}
	if miss.Exp != "e" || miss.Key == "" || miss.State != StateDone {
		t.Fatalf("miss record identity wrong: %+v", miss)
	}
	if miss.TotalMs < miss.RunMs {
		t.Fatalf("miss TotalMs %.3f < RunMs %.3f", miss.TotalMs, miss.RunMs)
	}
	// Latency hist saw both completions; queue wait only the worker run.
	if fv.LatencyMs.Count != 2 {
		t.Fatalf("latency hist count %d, want 2", fv.LatencyMs.Count)
	}
	if fv.QueueWaitMs.Count != 1 {
		t.Fatalf("queue-wait hist count %d, want 1 (cache hit must not count)", fv.QueueWaitMs.Count)
	}
}

// shardedRunner builds a real sharded system from the job context, so
// the worker-installed lockstep observatory has barriers to observe.
type shardedRunner struct{ name string }

func (r shardedRunner) Name() string     { return r.name }
func (r shardedRunner) Describe() string { return "sharded echo" }
func (r shardedRunner) Run(ctx context.Context, o hmcsim.Options) (hmcsim.Result, error) {
	sys := o.NewSystemCtx(ctx)
	hmcsim.GUPS{
		Ports: 2, Size: 64, Pattern: hmcsim.AllVaults,
		Warmup: 1 * hmcsim.Microsecond, Window: 2 * hmcsim.Microsecond,
	}.Run(sys)
	return hmcsim.Result{Name: r.name, Title: "sharded echo", Options: o}, nil
}

// syncBuffer is a mutex-guarded log sink: the slog handler writes from
// worker goroutines while the test polls String.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestFlightRecordsShardTelemetry: on a sharded daemon a worker-run job
// stamps its flight record with the engine shard count and total
// barrier wait, the structured logger emits trace-correlated
// admitted/finished records, and /v1/stats plus /metrics expose the
// per-shard barrier series.
func TestFlightRecordsShardTelemetry(t *testing.T) {
	var logBuf syncBuffer
	cfg := Config{
		Workers: 1, Shards: 2,
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	}
	s, c := newTestServer(t, cfg, shardedRunner{name: "sh"})
	c.TraceID = "cafe0123cafe0123"
	ctx := context.Background()

	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "sh"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, v.ID)
	fv, err := c.Flight(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fv.Records) != 1 {
		t.Fatalf("want 1 flight record, got %d", len(fv.Records))
	}
	r := fv.Records[0]
	if r.Shards != 2 {
		t.Errorf("flight record Shards = %d, want 2", r.Shards)
	}
	if r.BarrierWaitMs <= 0 {
		t.Errorf("flight record BarrierWaitMs = %v, want > 0 over a sharded run", r.BarrierWaitMs)
	}
	if r.TraceID != "cafe0123cafe0123" {
		t.Errorf("flight record TraceID = %q, want the submitted header value", r.TraceID)
	}

	// The finished record is logged inside the terminal transition;
	// give the buffered write a moment before asserting.
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(logBuf.String(), "job finished") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	logs := logBuf.String()
	for _, want := range []string{"job admitted", "job finished", "cafe0123cafe0123", `"shards":2`, "barrierWaitMs"} {
		if !strings.Contains(logs, want) {
			t.Errorf("structured log missing %q:\n%s", want, logs)
		}
	}

	st := s.Snapshot()
	if len(st.ShardBarrierMs) != 2 || len(st.ShardBusyRatio) != 2 {
		t.Fatalf("stats shard series lengths = %d/%d, want 2/2",
			len(st.ShardBarrierMs), len(st.ShardBusyRatio))
	}
	for i, ratio := range st.ShardBusyRatio {
		if ratio < 0 || ratio > 1 {
			t.Errorf("shard %d busy ratio %v out of [0,1]", i, ratio)
		}
	}

	resp, err := c.HTTP.Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`hmcsim_shard_barrier_wait_ms{shard="0"}`,
		`hmcsim_shard_barrier_wait_ms{shard="1"}`,
		`hmcsim_shard_busy_ratio{shard="0"}`,
		`hmcsim_shard_busy_ratio{shard="1"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// failRunner always fails, so failed jobs reach the flight recorder.
type failRunner struct{ name string }

func (f failRunner) Name() string     { return f.name }
func (f failRunner) Describe() string { return "always fails" }
func (f failRunner) Run(ctx context.Context, o hmcsim.Options) (hmcsim.Result, error) {
	return hmcsim.Result{}, fmt.Errorf("vault meltdown")
}

// TestFlightRecordsError: a failing job lands in the recorder with its
// state and error message.
func TestFlightRecordsError(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1}, failRunner{name: "e"})
	ctx := context.Background()

	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "e"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, v.ID)
	fv, err := c.Flight(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(fv.Records) != 1 {
		t.Fatalf("want 1 record, got %d", len(fv.Records))
	}
	r := fv.Records[0]
	if r.State != StateFailed || !strings.Contains(r.Error, "vault meltdown") {
		t.Fatalf("failed job recorded as %+v", r)
	}
}

// TestFlightRingBounded: the ring holds only the configured number of
// entries, keeps the newest, and Total keeps counting past capacity.
func TestFlightRingBounded(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2, FlightEntries: 4}, newFake("e"))
	ctx := context.Background()

	const n = 7
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		v, err := c.Submit(ctx, hmcsim.Spec{Exp: "e", Options: hmcsim.Options{Seed: uint64(i + 1)}})
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, c, v.ID)
		ids[i] = v.ID
	}
	fv, err := c.Flight(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fv.Capacity != 4 || fv.Total != n || len(fv.Records) != 4 {
		t.Fatalf("capacity=%d total=%d records=%d, want 4/%d/4", fv.Capacity, fv.Total, len(fv.Records), n)
	}
	// Jobs completed serially in submission order, so the retained set
	// is the last four IDs, newest first.
	for i, r := range fv.Records {
		if want := ids[n-1-i]; r.ID != want {
			t.Fatalf("record %d is job %s, want %s (eviction order wrong)", i, r.ID, want)
		}
	}
	// The histograms survive eviction: they saw every completion.
	if fv.LatencyMs.Count != n {
		t.Fatalf("latency hist count %d, want %d", fv.LatencyMs.Count, n)
	}
}

// TestFlightSlowThreshold: jobs slower than SlowJob are flagged and
// counted; SlowJob < 0 disables marking entirely.
func TestFlightSlowThreshold(t *testing.T) {
	fake := newFake("e")
	fake.delay = 10 * time.Millisecond
	_, c := newTestServer(t, Config{Workers: 1, SlowJob: time.Millisecond}, fake)
	ctx := context.Background()

	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "e"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, v.ID)
	fv, err := c.Flight(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fv.Slow != 1 || !fv.Records[0].Slow {
		t.Fatalf("10ms job against 1ms threshold not flagged slow: slow=%d record=%+v", fv.Slow, fv.Records[0])
	}
	if fv.SlowThresholdMs != 1 {
		t.Fatalf("threshold echoed as %.3f ms, want 1", fv.SlowThresholdMs)
	}

	// Disabled threshold never flags.
	fake2 := newFake("e")
	fake2.delay = 10 * time.Millisecond
	_, c2 := newTestServer(t, Config{Workers: 1, SlowJob: -1}, fake2)
	v2, err := c2.Submit(ctx, hmcsim.Spec{Exp: "e"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c2, v2.ID)
	fv2, err := c2.Flight(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fv2.Slow != 0 || fv2.Records[0].Slow || fv2.SlowThresholdMs != 0 {
		t.Fatalf("disabled threshold still flagged: %+v", fv2)
	}
}

// TestMetricsLatencyHistograms: /metrics exports the flight recorder's
// histograms in real Prometheus exposition — cumulative _bucket series
// with le labels plus _sum and _count — and the slow-job counter.
func TestMetricsLatencyHistograms(t *testing.T) {
	fake := newFake("e")
	fake.delay = 2 * time.Millisecond
	_, c := newTestServer(t, Config{Workers: 1, SlowJob: time.Millisecond}, fake)
	ctx := context.Background()

	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "e"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, v.ID)

	resp, err := c.httpClient().Get(c.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(blob)
	for _, want := range []string{
		"# TYPE hmcsim_job_latency_ms histogram",
		`hmcsim_job_latency_ms_bucket{le="1"}`,
		`hmcsim_job_latency_ms_bucket{le="+Inf"} 1`,
		"hmcsim_job_latency_ms_sum",
		"hmcsim_job_latency_ms_count 1",
		"# TYPE hmcsim_job_queue_wait_ms histogram",
		`hmcsim_job_queue_wait_ms_bucket{le="+Inf"} 1`,
		"hmcsim_job_queue_wait_ms_count 1",
		"hmcsim_jobs_slow_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
