package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"hmcsim"
)

// ExperimentView is one row of GET /v1/experiments.
type ExperimentView struct {
	Name  string `json:"name"`
	Title string `json:"title"`
}

// errorBody is the JSON error envelope every non-2xx response uses.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs        submit a spec; 200 on a cache hit, 202 queued
//	GET    /v1/jobs/{id}   job status and, when done, its result
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /v1/experiments the experiment registry
//	GET    /v1/stats       queue, worker, job and cache statistics
//	GET    /v1/healthz     liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Specs are a few dozen bytes; bound the body so one hostile POST
	// cannot balloon daemon memory.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec hmcsim.Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.Submit(spec)
	switch {
	case errors.Is(err, errQueueFull), errors.Is(err, errClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v := j.View()
	if v.State.Terminal() {
		writeJSON(w, http.StatusOK, v) // served from the cache
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	out := make([]ExperimentView, 0, len(s.names))
	for _, name := range s.names {
		out = append(out, ExperimentView{Name: name, Title: s.runners[name].Describe()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
