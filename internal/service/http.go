package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"hmcsim"
)

// ExperimentView is one row of GET /v1/experiments.
type ExperimentView struct {
	Name  string `json:"name"`
	Title string `json:"title"`
}

// errorBody is the JSON error envelope every non-2xx response uses.
// Code carries the machine-readable cause for errors clients must tell
// apart (a full queue is worth waiting out; a shutting-down daemon is
// not) — matching on the human-readable text would break the moment it
// is reworded or a proxy rewrites the body.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Machine-readable error codes carried in errorBody.Code.
const (
	codeQueueFull    = "queue_full"
	codeShuttingDown = "shutting_down"
)

// errorCode maps sentinel errors to their wire code.
func errorCode(err error) string {
	switch {
	case errors.Is(err, errQueueFull):
		return codeQueueFull
	case errors.Is(err, errClosed):
		return codeShuttingDown
	}
	return ""
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs        submit a spec; 200 on a cache hit, 202 queued
//	POST   /v1/batch       submit a JSON array of specs atomically;
//	                       200 when every job is already terminal
//	                       (cache hits), 202 otherwise
//	GET    /v1/jobs/{id}   job status and, when done, its result
//	GET    /v1/jobs/{id}/progress
//	                       live progress as Server-Sent Events, ending
//	                       with the terminal event
//	GET    /v1/jobs/{id}/spans
//	                       the job's lifecycle stage breakdown (received,
//	                       queued, cache-check, running, marshal, done)
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /v1/flight      flight recorder: the last N completed job
//	                       records with stage durations and latency
//	                       histograms
//	GET    /v1/experiments the experiment registry
//	GET    /v1/stats       queue, worker, job and cache statistics
//	GET    /v1/healthz     liveness probe
//	GET    /metrics        Prometheus text exposition
//
// Submissions may carry an X-Hmcsim-Trace-Id header; the ID is stamped
// on every job the request creates and echoed in span views and flight
// records, correlating one logical run across daemons.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /v1/jobs/{id}/spans", s.handleSpans)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/flight", s.handleFlight)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), Code: errorCode(err)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Specs are a few dozen bytes; bound the body so one hostile POST
	// cannot balloon daemon memory.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec hmcsim.Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.SubmitTraced(spec, r.Header.Get(TraceHeader))
	switch {
	case errors.Is(err, errQueueFull), errors.Is(err, errClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v := j.View()
	if v.State.Terminal() {
		writeJSON(w, http.StatusOK, v) // served from the cache
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

// handleBatch admits a JSON array of specs in one request. Admission is
// all-or-nothing: a 503 means no job was created, so a retrying client
// never has to reconcile a half-admitted batch. Per-spec outcomes
// (cache hits, coalesced duplicates, queued jobs) come back as one
// JobView per submitted spec, in submission order.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// Batches legitimately carry thousands of specs (a whole sweep in
	// one post), so the bound is 16x the single-spec endpoint's — room
	// for ~10^5 specs while still capping a hostile body.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	var specs []hmcsim.Spec
	if err := dec.Decode(&specs); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jobs, err := s.SubmitBatchTraced(specs, r.Header.Get(TraceHeader))
	switch {
	case errors.Is(err, errQueueFull), errors.Is(err, errClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	views := make([]JobView, len(jobs))
	allDone := true
	for i, j := range jobs {
		views[i] = j.View()
		if !views[i].State.Terminal() {
			allDone = false
		}
	}
	if allDone {
		writeJSON(w, http.StatusOK, views)
		return
	}
	writeJSON(w, http.StatusAccepted, views)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.Spans())
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.flight.snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	out := make([]ExperimentView, 0, len(s.names))
	for _, name := range s.names {
		out = append(out, ExperimentView{Name: name, Title: s.runners[name].Describe()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
