package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"hmcsim"
)

// State is a job's lifecycle position. Transitions are
// queued → running → done|failed, plus queued|running → canceled.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// outcome is the cached value format: the result's JSON plus the
// pre-rendered human text (which Result excludes from its own JSON).
// The result bytes pass through json.RawMessage untouched, so cache
// hits are byte-identical to the run that populated them.
type outcome struct {
	Result json.RawMessage `json:"result"`
	Text   string          `json:"text"`
}

// Job is one submitted simulation request moving through the queue and
// worker pool.
type Job struct {
	id   string
	spec hmcsim.Spec
	key  string

	// ctx governs this job only; cancel flips queued jobs straight to
	// canceled and asks running ones to abandon their sweep.
	ctx    context.Context
	cancel context.CancelFunc
	// done closes when the job reaches a terminal state.
	done chan struct{}

	mu        sync.Mutex
	state     State
	cached    bool
	err       string
	errCode   string
	result    json.RawMessage
	text      string
	submitted time.Time
	finished  time.Time

	// traceID correlates the job with the submission that created it;
	// marks are the span timestamps; worker is the pool index that ran
	// the job (-1 when none did); record, when set, receives the job's
	// flight record at the terminal transition.
	traceID string
	worker  int
	marks   spanMarks
	record  func(FlightRecord)

	// shards and barrierMs carry the lockstep-observatory roll-up of a
	// sharded run (shard count and total wall-clock barrier wait), set
	// by the worker before the terminal transition and stamped into the
	// flight record. Zero for serial runs and cache hits.
	shards    int
	barrierMs float64

	// prog is the latest live-progress snapshot from the running sweep;
	// watchers are progress streams (SSE handlers), each a capacity-1
	// latest-value channel so a slow consumer only coarsens its own
	// updates and never blocks the simulation.
	prog     hmcsim.Progress
	watchers map[chan JobProgress]struct{}
}

// JobProgress is one event on the GET /v1/jobs/{id}/progress stream.
type JobProgress struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Done / Total count finished and scheduled sweep points.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Events and SimTimePs measure simulation headway: engine events
	// retired and simulated picoseconds advanced, summed across the
	// job's engines.
	Events    uint64  `json:"events"`
	SimTimePs int64   `json:"simTimePs"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// progressLocked snapshots the stream event for the current state.
func (j *Job) progressLocked() JobProgress {
	p := JobProgress{
		ID:        j.id,
		State:     j.state,
		Done:      j.prog.Done,
		Total:     j.prog.Total,
		Events:    j.prog.Events,
		SimTimePs: j.prog.SimTimePs,
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	p.ElapsedMs = float64(end.Sub(j.submitted).Microseconds()) / 1000
	return p
}

// setProgress records a live snapshot and fans it out to watchers.
func (j *Job) setProgress(p hmcsim.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return // the terminal event has already been broadcast
	}
	j.prog = p
	j.notifyLocked()
}

// notifyLocked delivers the current progress event to every watcher,
// replacing any undelivered previous event (latest-value semantics).
func (j *Job) notifyLocked() {
	if len(j.watchers) == 0 {
		return
	}
	p := j.progressLocked()
	for ch := range j.watchers {
		select {
		case ch <- p:
		default:
			select {
			case <-ch: // drop the stale event
			default:
			}
			select {
			case ch <- p:
			default:
			}
		}
	}
}

// watch subscribes to the job's progress stream. The returned channel
// immediately carries the current snapshot (for terminal jobs, the
// terminal event), so a late subscriber always observes at least one
// event. stop unsubscribes; the channel is never closed.
func (j *Job) watch() (ch chan JobProgress, stop func()) {
	ch = make(chan JobProgress, 1)
	j.mu.Lock()
	if j.watchers == nil {
		j.watchers = map[chan JobProgress]struct{}{}
	}
	j.watchers[ch] = struct{}{}
	ch <- j.progressLocked()
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.watchers, ch)
		j.mu.Unlock()
	}
}

// JobView is the job's wire representation.
type JobView struct {
	ID    string      `json:"id"`
	State State       `json:"state"`
	Spec  hmcsim.Spec `json:"spec"`
	// Key is the spec's content address — the cache key.
	Key string `json:"key"`
	// Cached marks results served from the cache rather than computed
	// by this job.
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
	// ErrorCode is the machine-readable cause for failures clients must
	// classify (currently only queue_full, from the coalescing fallback
	// losing its re-enqueue); prose in Error is for humans.
	ErrorCode string          `json:"errorCode,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Text      string          `json:"text,omitempty"`
	// ElapsedMs is submission-to-terminal wall time; ~0 for cache hits.
	ElapsedMs float64 `json:"elapsedMs,omitempty"`
}

// Decode unpacks a terminal view's result into the public Result type,
// restoring the pre-rendered text that Result excludes from its own
// JSON. It errors on non-done views, carrying the job's error message
// for failed ones.
func (v JobView) Decode() (hmcsim.Result, error) {
	switch v.State {
	case StateDone:
	case StateFailed:
		return hmcsim.Result{}, fmt.Errorf("job %s failed: %s", v.ID, v.Error)
	default:
		return hmcsim.Result{}, fmt.Errorf("job %s is %s, not done", v.ID, v.State)
	}
	var res hmcsim.Result
	if err := json.Unmarshal(v.Result, &res); err != nil {
		return hmcsim.Result{}, fmt.Errorf("decode job %s result: %w", v.ID, err)
	}
	res.Text = v.Text
	return res, nil
}

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		State:     j.state,
		Spec:      j.spec,
		Key:       j.key,
		Cached:    j.cached,
		Error:     j.err,
		ErrorCode: j.errCode,
		Result:    j.result,
		Text:      j.text,
	}
	if !j.finished.IsZero() {
		v.ElapsedMs = float64(j.finished.Sub(j.submitted).Microseconds()) / 1000
	}
	return v
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// finishedAt returns when the job went terminal (zero while active).
func (j *Job) finishedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

// startRunning moves queued → running on the given pool worker; it
// fails when the job was canceled (or its context expired) while
// waiting in the queue.
func (j *Job) startRunning(worker int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	if j.ctx.Err() != nil {
		j.finishLocked(StateCanceled)
		return false
	}
	j.state = StateRunning
	j.worker = worker
	j.marks.runStart = time.Now()
	return true
}

// finish moves the job to a terminal state; later calls are no-ops.
func (j *Job) finish(s State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishLocked(s)
}

func (j *Job) finishLocked(s State) {
	if j.state.Terminal() {
		return
	}
	j.state = s
	j.finished = time.Now()
	j.cancel() // release the context's resources
	close(j.done)
	j.notifyLocked() // terminal progress event, never dropped by new sends
	if j.record != nil {
		j.record(j.flightRecordLocked())
	}
}

// flightRecordLocked assembles the job's flight record from its span
// marks; the Slow flag is stamped by the recorder.
func (j *Job) flightRecordLocked() FlightRecord {
	r := FlightRecord{
		ID:            j.id,
		Exp:           j.spec.Exp,
		Key:           j.key,
		TraceID:       j.traceID,
		State:         j.state,
		Cached:        j.cached,
		Worker:        j.worker,
		Error:         j.err,
		TotalMs:       msBetween(j.marks.received, j.finished),
		FinishedAt:    j.finished,
		Shards:        j.shards,
		BarrierWaitMs: j.barrierMs,
	}
	m := &j.marks
	if !m.runStart.IsZero() {
		r.QueueMs = msBetween(m.queued, m.runStart)
		end := m.runEnd
		if end.IsZero() {
			end = j.finished
		}
		r.RunMs = msBetween(m.runStart, end)
	}
	return r
}

// setShardStats records the lockstep-observatory roll-up of a sharded
// run so the flight record can attribute barrier-wait time. Called by
// the worker after the run completes, before the terminal transition.
func (j *Job) setShardStats(gs hmcsim.GroupStats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.shards = gs.Shards
	for _, sh := range gs.PerShard {
		j.barrierMs += sh.BarrierMs
	}
}

// complete records a successful outcome. cached marks results served
// from the cache rather than computed by this job.
func (j *Job) complete(o outcome, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.result = o.Result
	j.text = o.Text
	j.cached = cached
	j.finishLocked(StateDone)
}

// fail records an error outcome.
func (j *Job) fail(msg string) { j.failCode(msg, "") }

// failCode records an error outcome with a machine-readable cause.
func (j *Job) failCode(msg, code string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.err = msg
	j.errCode = code
	j.finishLocked(StateFailed)
}

// Cancel requests cancellation: queued jobs flip to canceled
// immediately, running jobs stop at their next sweep point, terminal
// jobs are unaffected.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.finishLocked(StateCanceled)
	}
}
