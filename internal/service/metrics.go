package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"hmcsim/internal/obs"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (text/plain; version=0.0.4), hand-rolled so the daemon stays
// dependency-free. It exports the same counters as /v1/stats — queue,
// cache, inflight, batch — plus per-worker busy time and the aggregated
// simulation headway the engine checkpoints report.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Snapshot()
	var b strings.Builder

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	// histogram renders an obs.Hist as a real Prometheus histogram:
	// cumulative _bucket series under the hist's power-of-two bounds,
	// plus _sum and _count. Every bucket is emitted (zeros included) so
	// quantile queries see a stable le set.
	histogram := func(name, help string, h obs.Hist) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		var cum uint64
		for i := range h.Buckets {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, obs.BucketLabel(i), cum)
		}
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count)
	}

	fmt.Fprintf(&b, "# HELP hmcsim_build_info Build version as a label.\n"+
		"# TYPE hmcsim_build_info gauge\nhmcsim_build_info{version=%q} 1\n", st.Version)
	gauge("hmcsim_uptime_seconds", "Seconds since daemon start.", st.UptimeSeconds)
	gauge("hmcsim_goroutines", "Live goroutines in the daemon process.", float64(st.Goroutines))
	gauge("hmcsim_workers", "Size of the simulation worker pool.", float64(st.Workers))
	gauge("hmcsim_engine_shards", "Parallel engine shards per simulation; 0 = serial reference engine.", float64(st.EngineShards))
	gauge("hmcsim_experiments", "Registered experiment runners.", float64(st.Experiments))
	gauge("hmcsim_queue_depth", "Jobs waiting for a worker.", float64(st.QueueDepth))
	gauge("hmcsim_queue_capacity", "Job queue capacity.", float64(st.QueueCap))
	gauge("hmcsim_inflight", "Simulations executing right now.", float64(st.Inflight))
	gauge("hmcsim_inflight_peak", "High-water mark of concurrent simulations.", float64(st.InflightPeak))

	// One gauge per job state, every known state always present so
	// dashboards see explicit zeros.
	fmt.Fprintf(&b, "# HELP hmcsim_jobs Jobs in the table by state.\n# TYPE hmcsim_jobs gauge\n")
	states := []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}
	for _, state := range states {
		fmt.Fprintf(&b, "hmcsim_jobs{state=%q} %d\n", string(state), st.Jobs[state])
	}
	// Defensive: any state outside the known set still gets exported.
	var extra []string
	for state := range st.Jobs {
		known := false
		for _, k := range states {
			if state == k {
				known = true
				break
			}
		}
		if !known {
			extra = append(extra, string(state))
		}
	}
	sort.Strings(extra)
	for _, state := range extra {
		fmt.Fprintf(&b, "hmcsim_jobs{state=%q} %d\n", state, st.Jobs[State(state)])
	}

	counter("hmcsim_cache_hits_total", "Result-cache hits.", float64(st.Cache.Hits))
	counter("hmcsim_cache_misses_total", "Result-cache misses.", float64(st.Cache.Misses))
	counter("hmcsim_cache_evictions_total", "Result-cache evictions.", float64(st.Cache.Evictions))
	gauge("hmcsim_cache_entries", "Result-cache entries resident.", float64(st.Cache.Entries))
	counter("hmcsim_batches_total", "POST /v1/batch submissions.", float64(st.Batches))
	counter("hmcsim_batch_specs_total", "Specs carried by batch submissions.", float64(st.BatchSpecs))

	fmt.Fprintf(&b, "# HELP hmcsim_worker_jobs_total Jobs completed per worker.\n# TYPE hmcsim_worker_jobs_total counter\n")
	for _, ws := range st.WorkerStats {
		fmt.Fprintf(&b, "hmcsim_worker_jobs_total{worker=\"%d\"} %d\n", ws.Worker, ws.Jobs)
	}
	fmt.Fprintf(&b, "# HELP hmcsim_worker_busy_seconds_total Wall time per worker spent running jobs.\n# TYPE hmcsim_worker_busy_seconds_total counter\n")
	for _, ws := range st.WorkerStats {
		fmt.Fprintf(&b, "hmcsim_worker_busy_seconds_total{worker=\"%d\"} %g\n", ws.Worker, ws.BusyMs/1000)
	}

	// Per-shard lockstep telemetry, present only when the daemon runs a
	// sharded engine: cumulative wall time each shard spent waiting at
	// window barriers, and the derived busy ratio. The shard label is
	// the lockstep position (0 = hub, 1..n-1 = quadrant shards).
	if len(st.ShardBarrierMs) > 0 {
		fmt.Fprintf(&b, "# HELP hmcsim_shard_barrier_wait_ms Wall milliseconds each engine shard spent at window barriers.\n# TYPE hmcsim_shard_barrier_wait_ms counter\n")
		for i, ms := range st.ShardBarrierMs {
			fmt.Fprintf(&b, "hmcsim_shard_barrier_wait_ms{shard=\"%d\"} %g\n", i, ms)
		}
	}
	if len(st.ShardBusyRatio) > 0 {
		fmt.Fprintf(&b, "# HELP hmcsim_shard_busy_ratio Fraction of each shard's wall time spent executing events rather than waiting at barriers.\n# TYPE hmcsim_shard_busy_ratio gauge\n")
		for i, ratio := range st.ShardBusyRatio {
			fmt.Fprintf(&b, "hmcsim_shard_busy_ratio{shard=\"%d\"} %g\n", i, ratio)
		}
	}

	counter("hmcsim_sim_events_total", "Engine events retired across all jobs.", float64(st.SimEvents))
	counter("hmcsim_sim_time_seconds_total", "Simulated time advanced across all jobs.", st.SimTimeMs/1000)
	counter("hmcsim_sweep_points_total", "Sweep points completed across all jobs.", float64(st.SweepPoints))

	queueWait, latency, slow := s.flight.hists()
	histogram("hmcsim_job_queue_wait_ms", "Milliseconds jobs waited for a worker.", queueWait)
	histogram("hmcsim_job_latency_ms", "End-to-end job latency in milliseconds, admission to terminal.", latency)
	counter("hmcsim_jobs_slow_total", "Completed jobs past the slow-job threshold.", float64(slow))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String())) //nolint:errcheck // nothing to do for a gone client
}
