package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"hmcsim"
)

// sweepRunner drives a real hmcsim.Sweep so progress events flow
// through the same WithProgress plumbing production jobs use.
type sweepRunner struct {
	name   string
	points int
	delay  time.Duration
}

func (r sweepRunner) Name() string     { return r.name }
func (r sweepRunner) Describe() string { return "sweep runner " + r.name }

func (r sweepRunner) Run(ctx context.Context, o hmcsim.Options) (hmcsim.Result, error) {
	hmcsim.Sweep(ctx, 1, r.points, func(i int) int {
		time.Sleep(r.delay)
		return i
	})
	if err := ctx.Err(); err != nil {
		return hmcsim.Result{}, err
	}
	return hmcsim.Result{Name: r.name, Text: "swept " + r.name}, nil
}

func TestProgressUnknownJob404(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1}, newFake("e"))
	_, err := c.WatchJob(context.Background(), "j999999", nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("watch of unknown job: got %v, want 404 APIError", err)
	}
}

// TestProgressStreamsSweepPoints is the acceptance test: a watcher of a
// running multi-point sweep observes at least two progress events over
// SSE before the terminal event, and the terminal event closes the
// stream.
func TestProgressStreamsSweepPoints(t *testing.T) {
	const points = 6
	_, c := newTestServer(t, Config{Workers: 1}, sweepRunner{name: "sweep", points: points, delay: 20 * time.Millisecond})
	ctx := context.Background()
	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "sweep"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	var events []JobProgress
	final, err := c.WatchJob(ctx, v.ID, func(p JobProgress) { events = append(events, p) })
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("final view state = %s, want done", final.State)
	}
	if final.Text != "swept sweep" {
		t.Errorf("final view text = %q", final.Text)
	}

	if len(events) == 0 {
		t.Fatal("no events observed")
	}
	term := events[len(events)-1]
	if !term.State.Terminal() {
		t.Fatalf("last event state = %s, want terminal", term.State)
	}
	if term.Done != points || term.Total != points {
		t.Errorf("terminal event = %d/%d, want %d/%d", term.Done, term.Total, points, points)
	}
	live := 0
	sawPartial := false
	for _, p := range events[:len(events)-1] {
		if p.State.Terminal() {
			t.Fatalf("terminal event %+v arrived before the end of the stream", p)
		}
		live++
		if p.Total == points && p.Done > 0 && p.Done < points {
			sawPartial = true
		}
	}
	if live < 2 {
		t.Errorf("observed %d progress events before the terminal one, want >= 2", live)
	}
	if !sawPartial {
		t.Errorf("no mid-sweep event (0 < done < %d) observed; events: %+v", points, events)
	}
}

// TestProgressTerminalReplay: subscribing to an already-finished job
// replays the terminal event immediately and closes the stream.
func TestProgressTerminalReplay(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1}, sweepRunner{name: "sweep", points: 3})
	ctx := context.Background()
	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "sweep"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitJob(t, c, v.ID)

	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	var events []JobProgress
	final, err := c.WatchJob(wctx, v.ID, func(p JobProgress) { events = append(events, p) })
	if err != nil {
		t.Fatalf("watch finished job: %v", err)
	}
	if final.State != StateDone {
		t.Errorf("final view state = %s, want done", final.State)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events replaying a terminal job, want exactly 1: %+v", len(events), events)
	}
	if !events[0].State.Terminal() || events[0].Done != 3 || events[0].Total != 3 {
		t.Errorf("replayed terminal event = %+v, want done state with 3/3", events[0])
	}
}

// TestProgressClientDisconnectLeaksNoGoroutines: watchers that abandon
// their streams must not leave handler or watcher goroutines behind.
func TestProgressClientDisconnectLeaksNoGoroutines(t *testing.T) {
	blocker := newBlockingFake("blocker")
	_, c := newTestServer(t, Config{Workers: 1}, blocker)
	ctx := context.Background()
	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "blocker"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-blocker.started

	base := runtime.NumGoroutine()
	const watchers = 4
	wctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{}, watchers)
	for i := 0; i < watchers; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			c.WatchJob(wctx, v.ID, nil) //nolint:errcheck // error expected: ctx canceled
		}()
	}
	// Let the streams establish (each delivers its initial snapshot).
	time.Sleep(100 * time.Millisecond)
	cancel()
	for i := 0; i < watchers; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("watcher goroutine did not return after cancel")
		}
	}

	// Handler goroutines unwind asynchronously; poll until the count
	// settles back to (near) the pre-watch baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines settled at %d, want <= %d (baseline before watchers)",
				runtime.NumGoroutine(), base+1)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(blocker.release)
	waitJob(t, c, v.ID)
}

func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2}, sweepRunner{name: "sweep", points: 4})
	ctx := context.Background()
	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "sweep"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitJob(t, c, v.ID)

	resp, err := c.httpClient().Get(c.Base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	body := string(blob)
	for _, want := range []string{
		"# TYPE hmcsim_jobs gauge",
		`hmcsim_jobs{state="done"} 1`,
		"hmcsim_workers 2",
		"hmcsim_uptime_seconds",
		"hmcsim_build_info{version=",
		"hmcsim_cache_misses_total 1",
		`hmcsim_worker_jobs_total{worker="0"}`,
		`hmcsim_worker_busy_seconds_total{worker="1"}`,
		"hmcsim_sweep_points_total 4",
		"hmcsim_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestStatsExtendedFields(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 3}, sweepRunner{name: "sweep", points: 2})
	ctx := context.Background()
	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "sweep"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitJob(t, c, v.ID)

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v, want > 0", st.UptimeSeconds)
	}
	if st.Version == "" {
		t.Error("version is empty")
	}
	if st.Goroutines <= 0 {
		t.Errorf("goroutines = %d, want > 0", st.Goroutines)
	}
	if len(st.WorkerStats) != 3 {
		t.Fatalf("got %d worker rows, want 3", len(st.WorkerStats))
	}
	var jobs uint64
	var busy float64
	for _, ws := range st.WorkerStats {
		jobs += ws.Jobs
		busy += ws.BusyMs
		if ws.IdleMs < 0 {
			t.Errorf("worker %d idle = %v, want >= 0", ws.Worker, ws.IdleMs)
		}
	}
	if jobs != 1 {
		t.Errorf("workers report %d jobs total, want 1", jobs)
	}
	if busy <= 0 {
		t.Errorf("workers report %v busy ms total, want > 0", busy)
	}
	if st.SweepPoints != 2 {
		t.Errorf("sweepPoints = %d, want 2", st.SweepPoints)
	}
	_ = s
}
