// Package service is the serving layer of the simulator: a bounded job
// queue feeding a worker pool, a content-addressed LRU result cache,
// and the HTTP JSON API that cmd/hmcsimd exposes.
//
// Every worker runs one single-threaded deterministic engine at a time
// (submitted specs execute with Workers=1), so N workers means N
// concurrent simulations and results are bit-identical to local runs.
// Completed results are cached under the canonical hash of their spec
// (hmcsim.Spec.Key), so resubmitting an identical spec is served
// instantly and byte-identically.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hmcsim"
	"hmcsim/internal/sim"
)

var (
	errClosed    = errors.New("server is shutting down")
	errQueueFull = errors.New("job queue is full")
)

// Config sizes the serving layer. The zero value picks sensible
// defaults.
type Config struct {
	// Shards is the per-simulation engine shard count every worker runs
	// jobs with; 0 (the default) keeps the serial reference engine.
	// Results are byte-identical either way, so the cache and spec keys
	// are unaffected; only wall-clock time per job changes.
	Shards int
	// Workers is the number of concurrent simulations; <= 0 means
	// runtime.NumCPU().
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker;
	// submissions beyond it are rejected with 503. <= 0 means 64.
	QueueDepth int
	// CacheEntries bounds the result cache; <= 0 means 256.
	CacheEntries int
	// MaxJobs bounds the job table: when exceeded, the oldest terminal
	// job records (and their status/result views) are dropped, so a
	// long-running daemon's memory stays flat. Queued and running jobs
	// are never dropped. <= 0 means 1024.
	MaxJobs int
	// Retain is how long a terminal job record is kept even past the
	// MaxJobs bound, so clients polling a just-finished job by ID never
	// see it vanish into a 404 mid-poll (the table may exceed MaxJobs
	// by up to one retention window of traffic). 0 means 30s; negative
	// disables retention and prunes strictly at MaxJobs.
	Retain time.Duration
	// FlightEntries bounds the flight recorder: the ring of the last N
	// completed job records served at GET /v1/flight. <= 0 means 128.
	FlightEntries int
	// SlowJob is the latency threshold past which a completed job is
	// flagged slow in the flight recorder. 0 means 10s; negative
	// disables slow marking.
	SlowJob time.Duration
	// Logger, when non-nil, receives structured job-lifecycle records
	// (admission, terminal state, latency) with the job's trace ID
	// attached, so daemon logs correlate with spans and flight records.
	// Nil disables lifecycle logging.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	switch {
	case c.Retain == 0:
		c.Retain = 30 * time.Second
	case c.Retain < 0:
		c.Retain = 0
	}
	if c.FlightEntries <= 0 {
		c.FlightEntries = 128
	}
	switch {
	case c.SlowJob == 0:
		c.SlowJob = 10 * time.Second
	case c.SlowJob < 0:
		c.SlowJob = 0
	}
	return c
}

// Server owns the queue, the worker pool, the cache, and the job table.
type Server struct {
	cfg     Config
	runners map[string]hmcsim.Runner
	names   []string // registration order, for GET /v1/experiments
	cache   *Cache
	flight  *flightRecorder

	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *Job
	wg      sync.WaitGroup

	// running tracks simulations executing right now; runningPeak is its
	// high-water mark since startup — the number a batch client checks to
	// confirm it really filled the worker pool.
	running     atomic.Int64
	runningPeak atomic.Int64
	// batches / batchSpecs count batch submissions and the specs they
	// carried.
	batches    atomic.Uint64
	batchSpecs atomic.Uint64

	// start anchors uptime; workers holds per-worker busy accounting.
	start   time.Time
	workers []workerStat
	// Daemon-wide simulation headway, aggregated from job progress
	// reports: engine events retired, simulated picoseconds advanced,
	// and sweep points finished across all jobs ever run.
	simEvents   atomic.Uint64
	simTimePs   atomic.Int64
	sweepPoints atomic.Uint64

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // insertion order, for terminal-job pruning
	// inflight maps spec keys to their queued/running representative, so
	// a duplicate submission coalesces onto it instead of simulating the
	// same spec twice concurrently.
	inflight map[string]*Job
	seq      int
	closed   bool
}

// New builds a server over the given experiment runners (normally
// exp.Runners()) and starts its worker pool.
func New(cfg Config, runners []hmcsim.Runner) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		runners:  make(map[string]hmcsim.Runner, len(runners)),
		cache:    NewCache(cfg.CacheEntries),
		flight:   newFlightRecorder(cfg.FlightEntries, cfg.SlowJob),
		baseCtx:  ctx,
		stop:     cancel,
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     map[string]*Job{},
		inflight: map[string]*Job{},
	}
	s.start = time.Now()
	s.workers = make([]workerStat, cfg.Workers)
	for _, r := range runners {
		s.runners[r.Name()] = r
		s.names = append(s.names, r.Name())
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// workerStat is one worker's lifetime accounting. since holds the
// start of the in-progress job as unix nanoseconds (0 when idle), so
// busy time includes the job currently running.
type workerStat struct {
	jobs   atomic.Uint64
	busyNs atomic.Int64
	since  atomic.Int64
}

// busy returns total busy time including any in-progress job.
func (w *workerStat) busy() time.Duration {
	d := time.Duration(w.busyNs.Load())
	if since := w.since.Load(); since != 0 {
		d += time.Since(time.Unix(0, since))
	}
	return d
}

// Close cancels every queued and in-flight job and stops the workers.
// Subsequent submissions are rejected.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()       // cancels every job context derived from baseCtx
	close(s.queue) // workers drain the (now canceled) backlog and exit
	s.wg.Wait()
}

// worker pulls jobs off the queue until the queue closes.
func (s *Server) worker(i int) {
	defer s.wg.Done()
	st := &s.workers[i]
	for job := range s.queue {
		st.since.Store(time.Now().UnixNano())
		s.runJob(job, i)
		st.busyNs.Add(time.Now().UnixNano() - st.since.Swap(0))
		st.jobs.Add(1)
		s.clearInflight(job)
	}
}

// clearInflight drops the in-flight index entry once its representative
// is terminal, but never a successor that reclaimed the key.
func (s *Server) clearInflight(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
}

// runJob executes one dequeued job on the given worker's goroutine.
func (s *Server) runJob(j *Job, worker int) {
	if !j.startRunning(worker) {
		return // canceled while queued
	}
	// An identical spec may have completed while this one waited, so
	// peek (without touching the hit/miss counters) before simulating.
	if blob, ok := s.cache.peek(j.key); ok {
		j.completeFromCache(blob)
		return
	}
	j.markCacheDone()
	if n := s.running.Add(1); n > s.runningPeak.Load() {
		// Racy read-then-CAS keeps the peak monotone without a lock.
		for {
			peak := s.runningPeak.Load()
			if n <= peak || s.runningPeak.CompareAndSwap(peak, n) {
				break
			}
		}
	}
	defer s.running.Add(-1)
	runner := s.runners[j.spec.Exp] // validated at submission
	o := j.spec.Options
	o.Workers = 1           // one engine per worker
	o.Shards = s.cfg.Shards // each engine may itself be sharded
	// Stream sweep/engine progress to the job's watchers and fold the
	// deltas into the daemon-wide counters. The sink serializes calls,
	// so last needs no lock.
	var last hmcsim.Progress
	pctx := hmcsim.WithProgress(j.ctx, func(p hmcsim.Progress) {
		s.simEvents.Add(p.Events - last.Events)
		s.simTimePs.Add(p.SimTimePs - last.SimTimePs)
		s.sweepPoints.Add(uint64(p.Done - last.Done))
		last = p
		j.setProgress(p)
	})
	// Sharded jobs carry the lockstep observatory so the flight record
	// can attribute latency to barrier waits. The telemetry never folds
	// into the Result itself: cached bytes stay byte-identical to
	// serial and local runs.
	var ssc *hmcsim.ShardStatsCollector
	if o.Shards >= 1 {
		pctx, ssc = hmcsim.WithShardStats(pctx)
	}
	res, err := runSafely(pctx, runner, o)
	j.markRunEnd()
	if ssc != nil {
		j.setShardStats(ssc.Stats())
	}
	switch {
	case j.ctx.Err() != nil:
		// The sweep returned early with partial data; discard it.
		j.finish(StateCanceled)
	case err != nil:
		j.fail(err.Error())
	default:
		blob, o, err := encodeOutcome(res)
		j.markMarshalEnd()
		if err != nil {
			j.fail(fmt.Sprintf("encode result: %v", err))
			return
		}
		s.cache.Put(j.key, blob)
		j.complete(o, false)
	}
}

// recordFlight is every job's terminal hook: the flight recorder keeps
// the record, and the structured logger (when configured) emits it as a
// trace-correlated lifecycle line. Called under the job's mutex, so
// both sinks must stay leaf-locked.
func (s *Server) recordFlight(r FlightRecord) {
	s.flight.add(r)
	s.logJob("job finished",
		"job", r.ID, "exp", r.Exp, "traceId", r.TraceID,
		"state", string(r.State), "cached", r.Cached, "worker", r.Worker,
		"queueMs", r.QueueMs, "runMs", r.RunMs, "totalMs", r.TotalMs,
		"shards", r.Shards, "barrierWaitMs", r.BarrierWaitMs,
		"error", r.Error)
}

// logJob emits one structured lifecycle record when a logger is
// configured; a nil logger costs one branch.
func (s *Server) logJob(msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info(msg, args...)
	}
}

// runSafely executes the runner, converting a panic into an error so
// one bad experiment cannot take down the worker pool.
func runSafely(ctx context.Context, r hmcsim.Runner, o hmcsim.Options) (res hmcsim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiment %s panicked: %v", r.Name(), p)
		}
	}()
	return r.Run(ctx, o)
}

// encodeOutcome marshals a result into the cache value format.
func encodeOutcome(res hmcsim.Result) ([]byte, outcome, error) {
	raw, err := json.Marshal(res)
	if err != nil {
		return nil, outcome{}, err
	}
	o := outcome{Result: raw, Text: res.String()}
	blob, err := json.Marshal(o)
	if err != nil {
		return nil, outcome{}, err
	}
	return blob, o, nil
}

// completeFromCache finishes a job with previously cached bytes.
func (j *Job) completeFromCache(blob []byte) {
	j.markCacheDone()
	var o outcome
	if err := json.Unmarshal(blob, &o); err != nil {
		j.fail(fmt.Sprintf("decode cached outcome: %v", err))
		return
	}
	j.complete(o, true)
}

// peek is Get without counter side effects, for the worker's dedup
// check (the submission already counted this spec's hit or miss).
func (c *Cache) peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Submit validates a spec, serves it from the cache when possible, and
// otherwise enqueues it for the worker pool. The returned job is
// already terminal for cache hits.
func (s *Server) Submit(spec hmcsim.Spec) (*Job, error) {
	return s.SubmitTraced(spec, "")
}

// SubmitTraced is Submit with a trace ID stamped on the created job,
// for cross-daemon correlation in span views and the flight recorder.
func (s *Server) SubmitTraced(spec hmcsim.Spec, traceID string) (*Job, error) {
	jobs, err := s.submit([]hmcsim.Spec{spec}, traceID)
	if err != nil {
		return nil, err
	}
	return jobs[0], nil
}

// MaxBatchSpecs bounds one batch submission. Every admitted spec costs
// a job record (and an adoption goroutine when it coalesces), all
// created under the server lock, so an uncapped batch would let a
// single request flood the job table and stall every other endpoint.
const MaxBatchSpecs = 4096

// SubmitBatch validates and admits a whole list of specs at once: cache
// hits come back as already-terminal jobs, duplicates (within the batch
// or of an already in-flight spec) coalesce onto one representative,
// and the rest are queued atomically — either every spec that needs a
// queue slot gets one, or the entire batch is rejected with the
// queue-full error and no job is created. Returned jobs are in
// submission order.
func (s *Server) SubmitBatch(specs []hmcsim.Spec) ([]*Job, error) {
	return s.SubmitBatchTraced(specs, "")
}

// SubmitBatchTraced is SubmitBatch with a trace ID stamped on every job
// the batch creates.
func (s *Server) SubmitBatchTraced(specs []hmcsim.Spec, traceID string) ([]*Job, error) {
	if len(specs) == 0 {
		return nil, errors.New("empty batch")
	}
	if len(specs) > MaxBatchSpecs {
		return nil, fmt.Errorf("batch of %d specs exceeds the %d-spec limit; split the submission", len(specs), MaxBatchSpecs)
	}
	jobs, err := s.submit(specs, traceID)
	if err == nil {
		s.batches.Add(1)
		s.batchSpecs.Add(uint64(len(specs)))
	}
	return jobs, err
}

// specErr prefixes an error with the offending spec's batch index, but
// only when there is more than one spec to point into.
func specErr(n, i int, err error) error {
	if n == 1 {
		return err
	}
	return fmt.Errorf("spec %d: %w", i, err)
}

// submit is the shared admission path behind Submit and SubmitBatch.
func (s *Server) submit(specs []hmcsim.Spec, traceID string) ([]*Job, error) {
	received := time.Now() // anchors every created job's span breakdown
	traceID = clampTraceID(traceID)
	// Validate everything before admitting anything: a bad spec late in
	// a batch must not leave the earlier ones running.
	keys := make([]string, len(specs))
	for i, spec := range specs {
		if _, ok := s.runners[spec.Exp]; !ok {
			return nil, specErr(len(specs), i, fmt.Errorf("unknown experiment %q (have %v)", spec.Exp, s.names))
		}
		// Reject malformed option payloads (e.g. an unknown traffic
		// pattern) before they consume a queue slot; the HTTP layer maps
		// this to a 400 with the same helpful message the CLI prints.
		if err := spec.Validate(); err != nil {
			return nil, specErr(len(specs), i, err)
		}
		key, err := spec.Key()
		if err != nil {
			return nil, specErr(len(specs), i, err)
		}
		keys[i] = key
	}

	// Decode cache hits before taking the server lock, so hit-heavy
	// traffic does not serialize all submissions behind unmarshal work.
	// In-batch duplicates of a cached key share one lookup and decode.
	hits := make([]*outcome, len(specs))
	hitByKey := map[string]*outcome{}
	for i, key := range keys {
		if o, ok := hitByKey[key]; ok {
			hits[i] = o
			continue
		}
		if blob, ok := s.cache.Get(key); ok {
			var o outcome
			if err := json.Unmarshal(blob, &o); err != nil {
				return nil, specErr(len(specs), i, fmt.Errorf("decode cached outcome: %w", err))
			}
			hitByKey[key] = &o
			hits[i] = &o
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	// All-or-nothing admission, decided in one classification pass: each
	// spec is a cache hit, an adoption (of an in-flight twin, or of an
	// earlier queue-bound spec in this same batch), or needs a queue
	// slot. The disposition is recorded here and replayed verbatim
	// below, so the number of queue sends exactly equals the slot count
	// checked against the queue — a twin turning terminal between the
	// two loops (workers finish jobs without taking s.mu) cannot reroute
	// a spec onto the queue path and block the send while s.mu is held.
	// Adopting a twin that has since gone terminal is fine: adopt
	// observes the closed Done channel and falls back through the cache
	// or a non-blocking re-enqueue. Every queue send in this server
	// happens under s.mu, so the free-slot count cannot shrink
	// underneath the admission loop; workers only ever free slots.
	const (
		dispHit = iota
		dispQueue
		dispAdoptTwin  // adopt the *Job in twins[i]
		dispAdoptBatch // adopt this batch's queue-bound job at index batchTwin[i]
	)
	disp := make([]int, len(specs))
	twins := make([]*Job, len(specs))
	batchTwin := make([]int, len(specs))
	queueFirst := map[string]int{} // key -> index of this batch's queue-bound spec
	need := 0
	for i := range specs {
		if hits[i] != nil {
			disp[i] = dispHit
			continue
		}
		if first, ok := queueFirst[keys[i]]; ok {
			disp[i] = dispAdoptBatch
			batchTwin[i] = first
			continue
		}
		if twin, ok := s.inflight[keys[i]]; ok && !twin.View().State.Terminal() {
			disp[i] = dispAdoptTwin
			twins[i] = twin
			continue
		}
		disp[i] = dispQueue
		queueFirst[keys[i]] = i
		need++
	}
	if free := cap(s.queue) - len(s.queue); need > free {
		if len(specs) == 1 {
			return nil, errQueueFull
		}
		return nil, fmt.Errorf("%w: batch needs %d queue slots, %d free", errQueueFull, need, free)
	}

	jobs := make([]*Job, len(specs))
	for i, spec := range specs {
		s.seq++
		ctx, cancel := context.WithCancel(s.baseCtx)
		j := &Job{
			id:      fmt.Sprintf("j%06d", s.seq),
			spec:    spec,
			key:     keys[i],
			ctx:     ctx,
			cancel:  cancel,
			state:   StateQueued,
			done:    make(chan struct{}),
			traceID: traceID,
			worker:  -1,
			record:  s.recordFlight,
		}
		j.submitted = received
		j.marks.received = received
		j.marks.queued = time.Now()
		jobs[i] = j
		s.logJob("job admitted",
			"job", j.id, "exp", spec.Exp, "traceId", j.traceID,
			"cached", disp[i] == dispHit, "adopted", disp[i] == dispAdoptTwin || disp[i] == dispAdoptBatch)
		switch disp[i] {
		case dispHit:
			j.markCacheDone()
			j.complete(*hits[i], true)
			s.insertLocked(j)
		case dispAdoptTwin:
			s.insertLocked(j)
			go s.adopt(j, twins[i])
		case dispAdoptBatch:
			s.insertLocked(j)
			go s.adopt(j, jobs[batchTwin[i]])
		default: // dispQueue
			s.queue <- j // cannot block: admission reserved exactly these slots
			s.inflight[keys[i]] = j
			s.insertLocked(j)
		}
	}
	return jobs, nil
}

// adopt parks a duplicate job on its in-flight twin: when the twin
// completes, the duplicate is served from the cache it populated. If
// the twin failed or was canceled instead, the duplicate re-adopts any
// representative that has taken over the key in the meantime, and only
// runs on its own when no active twin remains — so one spec never
// simulates twice concurrently.
func (s *Server) adopt(j, twin *Job) {
	for {
		select {
		case <-twin.Done():
		case <-j.ctx.Done():
			j.finish(StateCanceled) // duplicate canceled (or server closing) while waiting
			return
		}
		if blob, ok := s.cache.peek(j.key); ok {
			j.completeFromCache(blob)
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			j.finish(StateCanceled)
			return
		}
		if next, ok := s.inflight[j.key]; ok && !next.View().State.Terminal() {
			// A fresh submission became the representative while the
			// failed twin wound down; wait on it instead.
			s.mu.Unlock()
			twin = next
			continue
		}
		select {
		case s.queue <- j:
			s.inflight[j.key] = j // the duplicate is the new representative
		default:
			j.failCode(errQueueFull.Error(), codeQueueFull)
		}
		s.mu.Unlock()
		return
	}
}

// insertLocked records a job and prunes the oldest terminal records
// beyond the MaxJobs bound, keeping daemon memory flat under steady
// traffic. Active (queued or running) jobs are never pruned, and
// terminal ones linger for the Retain window so a client polling a
// just-finished job by ID does not see it vanish into a 404.
func (s *Server) insertLocked(j *Job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	cutoff := time.Now().Add(-s.cfg.Retain)
	for len(s.jobs) > s.cfg.MaxJobs {
		pruned := false
		for i, id := range s.order {
			if fin := s.jobs[id].finishedAt(); !fin.IsZero() && !fin.After(cutoff) {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return // everything is active or within retention; let the table grow
		}
	}
}

// Job looks a submitted job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	Experiments int           `json:"experiments"`
	Workers     int           `json:"workers"`
	QueueDepth  int           `json:"queueDepth"`
	QueueCap    int           `json:"queueCap"`
	Jobs        map[State]int `json:"jobs"`
	Cache       CacheStats    `json:"cache"`
	// Inflight is the number of simulations executing right now;
	// InflightPeak is its high-water mark since startup — proof (or
	// refutation) that batch clients actually fill the worker pool.
	Inflight     int `json:"inflight"`
	InflightPeak int `json:"inflightPeak"`
	// Batches / BatchSpecs count POST /v1/batch submissions and the
	// specs they carried.
	Batches    uint64 `json:"batches"`
	BatchSpecs uint64 `json:"batchSpecs"`
	// Process health: seconds since startup, the build version, and the
	// live goroutine count.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Version       string  `json:"version"`
	Goroutines    int     `json:"goroutines"`
	// WorkerStats is one row per pool worker: jobs completed and busy
	// vs idle wall time (busy includes the job running right now).
	WorkerStats []WorkerStatView `json:"workerStats"`
	// Simulation headway aggregated across every job the daemon has
	// run: engine events retired, simulated milliseconds advanced, and
	// sweep points completed.
	SimEvents   uint64  `json:"simEvents"`
	SimTimeMs   float64 `json:"simTimeMs"`
	SweepPoints uint64  `json:"sweepPoints"`
	// EngineShards is the per-simulation shard count jobs run with (0 =
	// serial reference engine); ShardBusyMs, ShardBarrierMs and
	// ShardBusyRatio, present only when sharded, are cumulative
	// wall-clock execution / barrier-wait time per shard index across
	// every sharded engine the process has run, and busy's share of
	// their sum — the skew between entries shows how evenly the cube
	// partitions, and low ratios show barrier-bound partitions.
	EngineShards   int       `json:"engineShards"`
	ShardBusyMs    []float64 `json:"shardBusyMs,omitempty"`
	ShardBarrierMs []float64 `json:"shardBarrierMs,omitempty"`
	ShardBusyRatio []float64 `json:"shardBusyRatio,omitempty"`
}

// WorkerStatView is one worker's row in Stats.
type WorkerStatView struct {
	Worker int     `json:"worker"`
	Jobs   uint64  `json:"jobs"`
	BusyMs float64 `json:"busyMs"`
	IdleMs float64 `json:"idleMs"`
}

// Snapshot gathers current serving statistics.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	jobs := map[State]int{}
	for _, j := range s.jobs {
		jobs[j.View().State]++
	}
	queued := len(s.queue)
	s.mu.Unlock()
	uptime := time.Since(s.start)
	ws := make([]WorkerStatView, len(s.workers))
	for i := range s.workers {
		busy := s.workers[i].busy()
		idle := uptime - busy
		if idle < 0 {
			idle = 0
		}
		ws[i] = WorkerStatView{
			Worker: i,
			Jobs:   s.workers[i].jobs.Load(),
			BusyMs: float64(busy.Microseconds()) / 1000,
			IdleMs: float64(idle.Microseconds()) / 1000,
		}
	}
	var shardBusy, shardBarrier, shardRatio []float64
	if s.cfg.Shards > 0 {
		busyNs := sim.ShardBusyNanos()
		barNs := sim.ShardBarrierNanos()
		n := s.cfg.Shards
		if n > len(busyNs) {
			n = len(busyNs)
		}
		shardBusy = make([]float64, n)
		shardBarrier = make([]float64, n)
		shardRatio = make([]float64, n)
		for i := range shardBusy {
			shardBusy[i] = float64(busyNs[i]) / 1e6
			shardBarrier[i] = float64(barNs[i]) / 1e6
			if total := shardBusy[i] + shardBarrier[i]; total > 0 {
				shardRatio[i] = shardBusy[i] / total
			}
		}
	}
	return Stats{
		Experiments:    len(s.names),
		Workers:        s.cfg.Workers,
		EngineShards:   s.cfg.Shards,
		ShardBusyMs:    shardBusy,
		ShardBarrierMs: shardBarrier,
		ShardBusyRatio: shardRatio,
		QueueDepth:     queued,
		QueueCap:       s.cfg.QueueDepth,
		Jobs:           jobs,
		Cache:          s.cache.Stats(),
		Inflight:       int(s.running.Load()),
		InflightPeak:   int(s.runningPeak.Load()),
		Batches:        s.batches.Load(),
		BatchSpecs:     s.batchSpecs.Load(),
		UptimeSeconds:  uptime.Seconds(),
		Version:        version(),
		Goroutines:     runtime.NumGoroutine(),
		WorkerStats:    ws,
		SimEvents:      s.simEvents.Load(),
		SimTimeMs:      float64(s.simTimePs.Load()) / 1e9,
		SweepPoints:    s.sweepPoints.Load(),
	}
}

// Version, when set via -ldflags "-X hmcsim/internal/service.Version=v1.2.3",
// overrides the module build info in /v1/stats and /metrics.
var Version string

// version resolves the served build version: the ldflags override, the
// module version stamped by the Go toolchain, or "devel".
func version() string {
	if Version != "" {
		return Version
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}
