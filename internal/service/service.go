// Package service is the serving layer of the simulator: a bounded job
// queue feeding a worker pool, a content-addressed LRU result cache,
// and the HTTP JSON API that cmd/hmcsimd exposes.
//
// Every worker runs one single-threaded deterministic engine at a time
// (submitted specs execute with Workers=1), so N workers means N
// concurrent simulations and results are bit-identical to local runs.
// Completed results are cached under the canonical hash of their spec
// (hmcsim.Spec.Key), so resubmitting an identical spec is served
// instantly and byte-identically.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hmcsim"
)

var (
	errClosed    = errors.New("server is shutting down")
	errQueueFull = errors.New("job queue is full")
)

// Config sizes the serving layer. The zero value picks sensible
// defaults.
type Config struct {
	// Workers is the number of concurrent simulations; <= 0 means
	// runtime.NumCPU().
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker;
	// submissions beyond it are rejected with 503. <= 0 means 64.
	QueueDepth int
	// CacheEntries bounds the result cache; <= 0 means 256.
	CacheEntries int
	// MaxJobs bounds the job table: when exceeded, the oldest terminal
	// job records (and their status/result views) are dropped, so a
	// long-running daemon's memory stays flat. Queued and running jobs
	// are never dropped. <= 0 means 1024.
	MaxJobs int
	// Retain is how long a terminal job record is kept even past the
	// MaxJobs bound, so clients polling a just-finished job by ID never
	// see it vanish into a 404 mid-poll (the table may exceed MaxJobs
	// by up to one retention window of traffic). 0 means 30s; negative
	// disables retention and prunes strictly at MaxJobs.
	Retain time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	switch {
	case c.Retain == 0:
		c.Retain = 30 * time.Second
	case c.Retain < 0:
		c.Retain = 0
	}
	return c
}

// Server owns the queue, the worker pool, the cache, and the job table.
type Server struct {
	cfg     Config
	runners map[string]hmcsim.Runner
	names   []string // registration order, for GET /v1/experiments
	cache   *Cache

	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *Job
	wg      sync.WaitGroup

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // insertion order, for terminal-job pruning
	// inflight maps spec keys to their queued/running representative, so
	// a duplicate submission coalesces onto it instead of simulating the
	// same spec twice concurrently.
	inflight map[string]*Job
	seq      int
	closed   bool
}

// New builds a server over the given experiment runners (normally
// exp.Runners()) and starts its worker pool.
func New(cfg Config, runners []hmcsim.Runner) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		runners:  make(map[string]hmcsim.Runner, len(runners)),
		cache:    NewCache(cfg.CacheEntries),
		baseCtx:  ctx,
		stop:     cancel,
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     map[string]*Job{},
		inflight: map[string]*Job{},
	}
	for _, r := range runners {
		s.runners[r.Name()] = r
		s.names = append(s.names, r.Name())
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close cancels every queued and in-flight job and stops the workers.
// Subsequent submissions are rejected.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()       // cancels every job context derived from baseCtx
	close(s.queue) // workers drain the (now canceled) backlog and exit
	s.wg.Wait()
}

// worker pulls jobs off the queue until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
		s.clearInflight(job)
	}
}

// clearInflight drops the in-flight index entry once its representative
// is terminal, but never a successor that reclaimed the key.
func (s *Server) clearInflight(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
}

// runJob executes one dequeued job on this worker's goroutine.
func (s *Server) runJob(j *Job) {
	if !j.startRunning() {
		return // canceled while queued
	}
	// An identical spec may have completed while this one waited, so
	// peek (without touching the hit/miss counters) before simulating.
	if blob, ok := s.cache.peek(j.key); ok {
		j.completeFromCache(blob)
		return
	}
	runner := s.runners[j.spec.Exp] // validated at submission
	o := j.spec.Options
	o.Workers = 1 // one single-threaded engine per worker
	res, err := runSafely(j.ctx, runner, o)
	switch {
	case j.ctx.Err() != nil:
		// The sweep returned early with partial data; discard it.
		j.finish(StateCanceled)
	case err != nil:
		j.fail(err.Error())
	default:
		blob, o, err := encodeOutcome(res)
		if err != nil {
			j.fail(fmt.Sprintf("encode result: %v", err))
			return
		}
		s.cache.Put(j.key, blob)
		j.complete(o, false)
	}
}

// runSafely executes the runner, converting a panic into an error so
// one bad experiment cannot take down the worker pool.
func runSafely(ctx context.Context, r hmcsim.Runner, o hmcsim.Options) (res hmcsim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiment %s panicked: %v", r.Name(), p)
		}
	}()
	return r.Run(ctx, o), nil
}

// encodeOutcome marshals a result into the cache value format.
func encodeOutcome(res hmcsim.Result) ([]byte, outcome, error) {
	raw, err := json.Marshal(res)
	if err != nil {
		return nil, outcome{}, err
	}
	o := outcome{Result: raw, Text: res.String()}
	blob, err := json.Marshal(o)
	if err != nil {
		return nil, outcome{}, err
	}
	return blob, o, nil
}

// completeFromCache finishes a job with previously cached bytes.
func (j *Job) completeFromCache(blob []byte) {
	var o outcome
	if err := json.Unmarshal(blob, &o); err != nil {
		j.fail(fmt.Sprintf("decode cached outcome: %v", err))
		return
	}
	j.complete(o, true)
}

// peek is Get without counter side effects, for the worker's dedup
// check (the submission already counted this spec's hit or miss).
func (c *Cache) peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Submit validates a spec, serves it from the cache when possible, and
// otherwise enqueues it for the worker pool. The returned job is
// already terminal for cache hits.
func (s *Server) Submit(spec hmcsim.Spec) (*Job, error) {
	if _, ok := s.runners[spec.Exp]; !ok {
		return nil, fmt.Errorf("unknown experiment %q (have %v)", spec.Exp, s.names)
	}
	// Reject malformed option payloads (e.g. an unknown traffic
	// pattern) before they consume a queue slot; the HTTP layer maps
	// this to a 400 with the same helpful message the CLI prints.
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	key, err := spec.Key()
	if err != nil {
		return nil, err
	}

	// Decode a cache hit before taking the server lock, so hit-heavy
	// traffic does not serialize all submissions behind unmarshal work.
	var hit *outcome
	if blob, ok := s.cache.Get(key); ok {
		var o outcome
		if err := json.Unmarshal(blob, &o); err != nil {
			return nil, fmt.Errorf("decode cached outcome: %w", err)
		}
		hit = &o
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	s.seq++
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &Job{
		id:     fmt.Sprintf("j%06d", s.seq),
		spec:   spec,
		key:    key,
		ctx:    ctx,
		cancel: cancel,
		state:  StateQueued,
		done:   make(chan struct{}),
	}
	j.submitted = time.Now()
	if hit != nil {
		j.complete(*hit, true)
		s.insertLocked(j)
		return j, nil
	}
	// Coalesce onto an identical queued/running job instead of
	// simulating the same spec twice concurrently.
	if twin, ok := s.inflight[key]; ok && !twin.View().State.Terminal() {
		s.insertLocked(j)
		go s.adopt(j, twin)
		return j, nil
	}
	select {
	case s.queue <- j:
		s.inflight[key] = j
		s.insertLocked(j)
		return j, nil
	default:
		cancel()
		return nil, errQueueFull
	}
}

// adopt parks a duplicate job on its in-flight twin: when the twin
// completes, the duplicate is served from the cache it populated. If
// the twin failed or was canceled instead, the duplicate re-adopts any
// representative that has taken over the key in the meantime, and only
// runs on its own when no active twin remains — so one spec never
// simulates twice concurrently.
func (s *Server) adopt(j, twin *Job) {
	for {
		select {
		case <-twin.Done():
		case <-j.ctx.Done():
			j.finish(StateCanceled) // duplicate canceled (or server closing) while waiting
			return
		}
		if blob, ok := s.cache.peek(j.key); ok {
			j.completeFromCache(blob)
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			j.finish(StateCanceled)
			return
		}
		if next, ok := s.inflight[j.key]; ok && !next.View().State.Terminal() {
			// A fresh submission became the representative while the
			// failed twin wound down; wait on it instead.
			s.mu.Unlock()
			twin = next
			continue
		}
		select {
		case s.queue <- j:
			s.inflight[j.key] = j // the duplicate is the new representative
		default:
			j.fail(errQueueFull.Error())
		}
		s.mu.Unlock()
		return
	}
}

// insertLocked records a job and prunes the oldest terminal records
// beyond the MaxJobs bound, keeping daemon memory flat under steady
// traffic. Active (queued or running) jobs are never pruned, and
// terminal ones linger for the Retain window so a client polling a
// just-finished job by ID does not see it vanish into a 404.
func (s *Server) insertLocked(j *Job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	cutoff := time.Now().Add(-s.cfg.Retain)
	for len(s.jobs) > s.cfg.MaxJobs {
		pruned := false
		for i, id := range s.order {
			if fin := s.jobs[id].finishedAt(); !fin.IsZero() && !fin.After(cutoff) {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return // everything is active or within retention; let the table grow
		}
	}
}

// Job looks a submitted job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	Experiments int           `json:"experiments"`
	Workers     int           `json:"workers"`
	QueueDepth  int           `json:"queueDepth"`
	QueueCap    int           `json:"queueCap"`
	Jobs        map[State]int `json:"jobs"`
	Cache       CacheStats    `json:"cache"`
}

// Snapshot gathers current serving statistics.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	jobs := map[State]int{}
	for _, j := range s.jobs {
		jobs[j.View().State]++
	}
	queued := len(s.queue)
	s.mu.Unlock()
	return Stats{
		Experiments: len(s.names),
		Workers:     s.cfg.Workers,
		QueueDepth:  queued,
		QueueCap:    s.cfg.QueueDepth,
		Jobs:        jobs,
		Cache:       s.cache.Stats(),
	}
}
