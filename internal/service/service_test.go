package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hmcsim"
)

// fakeRunner is a controllable experiment: it can block until released
// (or until its context is canceled) and counts how often it ran.
type fakeRunner struct {
	name    string
	release chan struct{} // nil: return immediately
	started chan struct{} // closed when Run first begins
	delay   time.Duration // simulated work before returning
	once    sync.Once
	runs    atomic.Int32
}

func newFake(name string) *fakeRunner {
	return &fakeRunner{name: name, started: make(chan struct{})}
}

func newBlockingFake(name string) *fakeRunner {
	f := newFake(name)
	f.release = make(chan struct{})
	return f
}

func (f *fakeRunner) Name() string     { return f.name }
func (f *fakeRunner) Describe() string { return "fake experiment " + f.name }

func (f *fakeRunner) Run(ctx context.Context, o hmcsim.Options) (hmcsim.Result, error) {
	f.runs.Add(1)
	f.once.Do(func() { close(f.started) })
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
		}
	}
	if f.release != nil {
		select {
		case <-f.release:
		case <-ctx.Done():
		}
	}
	if err := ctx.Err(); err != nil {
		return hmcsim.Result{}, err
	}
	return hmcsim.Result{
		Name:    f.name,
		Title:   f.Describe(),
		Options: o,
		Series: []hmcsim.Series{{
			Name: "echo", Unit: "seed",
			Points: []hmcsim.Point{{X: 1, Y: float64(o.Seed)}},
		}},
		Text: "text for " + f.name,
	}, nil
}

// newTestServer builds a server plus an httptest frontend over it.
func newTestServer(t *testing.T, cfg Config, runners ...hmcsim.Runner) (*Server, *Client) {
	t.Helper()
	s := New(cfg, runners)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, &Client{Base: ts.URL, HTTP: ts.Client()}
}

func waitJob(t *testing.T, c *Client, id string) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := c.Wait(ctx, id, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return v
}

// TestCacheHitByteIdentical is the acceptance test: submitting the same
// spec twice serves the second submission from the cache with a
// byte-identical result.
func TestCacheHitByteIdentical(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2}, newFake("exp1"))
	ctx := context.Background()
	spec := hmcsim.Spec{Exp: "exp1", Options: hmcsim.Options{Quick: true, Seed: 9}}

	first, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first submission claims a cache hit")
	}
	first = waitJob(t, c, first.ID)
	if first.State != StateDone || len(first.Result) == 0 {
		t.Fatalf("first job did not complete: %+v", first)
	}

	// Same spec, different JSON field order: still one cache key.
	var reordered hmcsim.Spec
	if err := json.Unmarshal([]byte(`{"options":{"seed":9,"quick":true},"exp":"exp1"}`), &reordered); err != nil {
		t.Fatal(err)
	}
	second, err := c.Submit(ctx, reordered)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.State != StateDone {
		t.Fatalf("second submission not served from cache: %+v", second)
	}
	if second.Key != first.Key {
		t.Fatalf("cache keys differ: %s vs %s", second.Key, first.Key)
	}
	if !bytes.Equal(second.Result, first.Result) {
		t.Fatalf("cached result not byte-identical:\n first: %s\nsecond: %s", first.Result, second.Result)
	}
	if second.Text != first.Text {
		t.Fatalf("cached text differs: %q vs %q", second.Text, first.Text)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache counters %+v, want 1 hit / 1 miss", st.Cache)
	}
	if st.Jobs[StateDone] != 2 {
		t.Fatalf("job states %v, want 2 done", st.Jobs)
	}
}

// TestCancelQueuedJob is the acceptance test: a job canceled while
// queued transitions to canceled and never runs.
func TestCancelQueuedJob(t *testing.T) {
	blocker := newBlockingFake("slow")
	bystander := newFake("fast")
	fence := newFake("fence")
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 8}, blocker, bystander, fence)
	ctx := context.Background()

	// Occupy the only worker.
	j1, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started

	// This job sits in the queue behind the blocker.
	j2, err := c.Submit(ctx, hmcsim.Spec{Exp: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	if j2.State != StateQueued {
		t.Fatalf("second job state %s, want queued", j2.State)
	}

	canceled, err := c.Cancel(ctx, j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.State != StateCanceled {
		t.Fatalf("cancel returned state %s, want canceled", canceled.State)
	}

	// Release the worker and run a fence job through the FIFO queue: by
	// the time it finishes, the canceled job has been dequeued (and
	// skipped) before it.
	j3, err := c.Submit(ctx, hmcsim.Spec{Exp: "fence"})
	if err != nil {
		t.Fatal(err)
	}
	close(blocker.release)
	waitJob(t, c, j1.ID)
	waitJob(t, c, j3.ID)

	got := waitJob(t, c, j2.ID)
	if got.State != StateCanceled || len(got.Result) != 0 {
		t.Fatalf("canceled job ended as %+v", got)
	}
	if n := bystander.runs.Load(); n != 0 {
		t.Fatalf("canceled job ran %d times", n)
	}
}

// TestCancelRunningJob: cancelling an in-flight job makes its context
// fire; the runner returns early and the partial result is discarded.
func TestCancelRunningJob(t *testing.T) {
	blocker := newBlockingFake("slow")
	_, c := newTestServer(t, Config{Workers: 1}, blocker)
	ctx := context.Background()

	j, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started
	if _, err := c.Cancel(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	got := waitJob(t, c, j.ID)
	if got.State != StateCanceled {
		t.Fatalf("running job canceled to state %s", got.State)
	}
	if len(got.Result) != 0 {
		t.Fatal("canceled job kept a partial result")
	}

	// Its spec must not have poisoned the cache.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Entries != 0 {
		t.Fatalf("canceled job cached a result: %+v", st.Cache)
	}
}

func TestQueueFull(t *testing.T) {
	blocker := newBlockingFake("slow")
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 1}, blocker)
	defer close(blocker.release)
	ctx := context.Background()

	if _, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow"}); err != nil {
		t.Fatal(err)
	}
	<-blocker.started
	// Distinct seeds keep the specs distinct; the first fills the queue.
	if _, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow", Options: hmcsim.Options{Seed: 1}}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow", Options: hmcsim.Options{Seed: 2}})
	if err == nil || !strings.Contains(err.Error(), "queue is full") {
		t.Fatalf("overflow submission: err = %v, want queue-full 503", err)
	}
}

func TestSubmitUnknownExperiment(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1}, newFake("exp1"))
	_, err := c.Submit(context.Background(), hmcsim.Spec{Exp: "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown-experiment 400", err)
	}
}

// TestSubmitInvalidTrafficSpec: a spec naming an unknown traffic
// pattern must be rejected at submission with a 400 that lists the
// valid patterns — the same message the CLI prints — instead of
// occupying a queue slot and failing later.
func TestSubmitInvalidTrafficSpec(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1}, newFake("traffic"))
	_, err := c.Submit(context.Background(), hmcsim.Spec{
		Exp:     "traffic",
		Options: hmcsim.Options{Traffic: &hmcsim.TrafficSpec{Pattern: "zipfian"}},
	})
	if err == nil {
		t.Fatal("unknown traffic pattern accepted")
	}
	for _, name := range hmcsim.TrafficPatterns() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("400 body %q does not list pattern %q", err, name)
		}
	}
	if n := len(s.Snapshot().Jobs); n != 0 {
		t.Fatalf("invalid spec created %d job records", n)
	}

	// A valid traffic spec on the same runner sails through.
	j, err := c.Submit(context.Background(), hmcsim.Spec{
		Exp:     "traffic",
		Options: hmcsim.Options{Traffic: &hmcsim.TrafficSpec{Pattern: hmcsim.TrafficZipf}},
	})
	if err != nil {
		t.Fatalf("valid traffic spec rejected: %v", err)
	}
	if v := waitJob(t, c, j.ID); v.State != StateDone {
		t.Fatalf("traffic job state %s, want done", v.State)
	}
}

func TestExperimentsHealthzAndJobLookup(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1}, newFake("a"), newFake("b"))
	ctx := context.Background()

	exps, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || exps[0].Name != "a" || exps[1].Name != "b" {
		t.Fatalf("experiments = %+v", exps)
	}
	if exps[0].Title == "" {
		t.Fatal("experiment listing lost the description")
	}

	resp, err := c.httpClient().Get(c.Base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %s", resp.Status)
	}

	if _, err := c.Job(ctx, "j999999"); err == nil || !strings.Contains(err.Error(), "no such job") {
		t.Fatalf("missing job lookup: err = %v, want 404", err)
	}
}

// TestWorkerPoolConcurrency: N workers really run N simulations at
// once — two blocking jobs both reach started with two workers.
func TestWorkerPoolConcurrency(t *testing.T) {
	b1 := newBlockingFake("s1")
	b2 := newBlockingFake("s2")
	_, c := newTestServer(t, Config{Workers: 2}, b1, b2)
	ctx := context.Background()

	j1, err := c.Submit(ctx, hmcsim.Spec{Exp: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c.Submit(ctx, hmcsim.Spec{Exp: "s2"})
	if err != nil {
		t.Fatal(err)
	}
	<-b1.started
	<-b2.started // would deadlock with a single worker
	close(b1.release)
	close(b2.release)
	if v := waitJob(t, c, j1.ID); v.State != StateDone {
		t.Fatalf("j1 = %+v", v)
	}
	if v := waitJob(t, c, j2.ID); v.State != StateDone {
		t.Fatalf("j2 = %+v", v)
	}
}

// TestDuplicateQueuedSpecDeduped: a duplicate spec that was queued
// behind its twin is served from the cache instead of re-simulating.
func TestDuplicateQueuedSpecDeduped(t *testing.T) {
	blocker := newBlockingFake("slow")
	target := newFake("t")
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 8}, blocker, target)
	ctx := context.Background()

	jb, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started
	// Two identical specs queue behind the blocker; only one runs.
	ja, err := c.Submit(ctx, hmcsim.Spec{Exp: "t"})
	if err != nil {
		t.Fatal(err)
	}
	jdup, err := c.Submit(ctx, hmcsim.Spec{Exp: "t"})
	if err != nil {
		t.Fatal(err)
	}
	close(blocker.release)
	waitJob(t, c, jb.ID)
	va := waitJob(t, c, ja.ID)
	vdup := waitJob(t, c, jdup.ID)
	if va.State != StateDone || vdup.State != StateDone {
		t.Fatalf("states %s / %s", va.State, vdup.State)
	}
	if target.runs.Load() != 1 {
		t.Fatalf("identical queued specs ran %d times, want 1", target.runs.Load())
	}
	if !vdup.Cached {
		t.Fatal("deduped twin not marked cached")
	}
	if !bytes.Equal(va.Result, vdup.Result) {
		t.Fatal("deduped twin's result not byte-identical")
	}
}

func TestCloseCancelsBacklog(t *testing.T) {
	blocker := newBlockingFake("slow")
	other := newFake("other")
	s := New(Config{Workers: 1, QueueDepth: 8}, []hmcsim.Runner{blocker, other})
	j1, err := s.Submit(hmcsim.Spec{Exp: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started
	j2, err := s.Submit(hmcsim.Spec{Exp: "other"})
	if err != nil {
		t.Fatal(err)
	}
	s.Close() // cancels the running job's ctx and drains the backlog
	if v := j1.View(); v.State != StateCanceled {
		t.Fatalf("running job after Close: %s", v.State)
	}
	if v := j2.View(); v.State != StateCanceled {
		t.Fatalf("queued job after Close: %s", v.State)
	}
	if other.runs.Load() != 0 {
		t.Fatal("backlog job ran during shutdown")
	}
	if _, err := s.Submit(hmcsim.Spec{Exp: "other"}); err == nil {
		t.Fatal("submission accepted after Close")
	}
}

// TestJobTablePruning: terminal job records beyond MaxJobs are dropped
// oldest-first, while active jobs are never dropped. Retention is
// disabled so pruning is immediate.
func TestJobTablePruning(t *testing.T) {
	blocker := newBlockingFake("slow")
	fast := newFake("fast")
	s, c := newTestServer(t, Config{Workers: 1, QueueDepth: 8, MaxJobs: 2, Retain: -1}, blocker, fast)
	defer close(blocker.release)
	ctx := context.Background()

	// Two fast jobs complete and fill the table to its bound.
	j1, err := c.Submit(ctx, hmcsim.Spec{Exp: "fast", Options: hmcsim.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, j1.ID)
	j2, err := c.Submit(ctx, hmcsim.Spec{Exp: "fast", Options: hmcsim.Options{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, j2.ID)

	// A third submission evicts the oldest terminal record.
	jb, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started
	if _, ok := s.Job(j1.ID); ok {
		t.Fatal("oldest terminal job survived past MaxJobs")
	}
	if _, ok := s.Job(j2.ID); !ok {
		t.Fatal("newer terminal job was pruned before the oldest")
	}

	// With the blocker running, a fourth submission prunes j2 but must
	// never touch the active job.
	j4, err := c.Submit(ctx, hmcsim.Spec{Exp: "fast", Options: hmcsim.Options{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Job(jb.ID); !ok {
		t.Fatal("running job was pruned")
	}
	if _, ok := s.Job(j2.ID); ok {
		t.Fatal("terminal job outlived an over-full table")
	}
	if _, ok := s.Job(j4.ID); !ok {
		t.Fatal("fresh job missing")
	}
}

// TestInflightSpecCoalesced: a duplicate of a spec that is already
// RUNNING (not just queued) coalesces onto it even with a free worker
// available, and is served byte-identically once the twin completes.
func TestInflightSpecCoalesced(t *testing.T) {
	blocker := newBlockingFake("slow")
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 8}, blocker)
	ctx := context.Background()

	j1, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started
	// The second worker is idle; without coalescing this would simulate
	// a second time.
	j2, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	close(blocker.release)
	v1 := waitJob(t, c, j1.ID)
	v2 := waitJob(t, c, j2.ID)
	if v1.State != StateDone || v2.State != StateDone {
		t.Fatalf("states %s / %s", v1.State, v2.State)
	}
	if blocker.runs.Load() != 1 {
		t.Fatalf("in-flight duplicate simulated %d times, want 1", blocker.runs.Load())
	}
	if !v2.Cached || !bytes.Equal(v1.Result, v2.Result) {
		t.Fatalf("coalesced duplicate not served from the twin's cached result: %+v", v2)
	}
}

// TestInflightTwinCanceledFallsBack: when the in-flight twin is
// canceled (so it caches nothing), the waiting duplicate runs on its
// own instead of being dragged down with it.
func TestInflightTwinCanceledFallsBack(t *testing.T) {
	blocker := newBlockingFake("slow")
	_, c := newTestServer(t, Config{Workers: 1, QueueDepth: 8}, blocker)
	ctx := context.Background()

	j1, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started
	j2, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, j1.ID); err != nil {
		t.Fatal(err)
	}
	if v := waitJob(t, c, j1.ID); v.State != StateCanceled {
		t.Fatalf("twin state %s, want canceled", v.State)
	}
	// The duplicate re-enqueues itself; the runner blocks again until
	// released, then completes independently.
	close(blocker.release)
	v2 := waitJob(t, c, j2.ID)
	if v2.State != StateDone {
		t.Fatalf("fallback duplicate ended %s: %+v", v2.State, v2)
	}
	if v2.Cached {
		t.Fatal("fallback duplicate claims a cache hit")
	}
	if blocker.runs.Load() != 2 {
		t.Fatalf("runner ran %d times, want 2 (canceled twin + fallback)", blocker.runs.Load())
	}
}

// TestJobRetentionProtectsFreshRecords: within the Retain window a
// just-finished job stays pollable by ID even past the MaxJobs bound.
func TestJobRetentionProtectsFreshRecords(t *testing.T) {
	fast := newFake("fast")
	s, c := newTestServer(t, Config{Workers: 1, MaxJobs: 1, Retain: time.Hour}, fast)
	ctx := context.Background()

	j1, err := c.Submit(ctx, hmcsim.Spec{Exp: "fast", Options: hmcsim.Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, j1.ID)
	j2, err := c.Submit(ctx, hmcsim.Spec{Exp: "fast", Options: hmcsim.Options{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, j2.ID)

	// Both records exceed MaxJobs=1, but both finished well inside the
	// retention window, so neither may be pruned.
	for _, id := range []string{j1.ID, j2.ID} {
		if _, ok := s.Job(id); !ok {
			t.Fatalf("fresh terminal job %s was pruned inside the retention window", id)
		}
	}
}

// TestInflightSuccessorReadopted: when a duplicate's twin is canceled
// but a fresh submission of the same spec has already taken over as the
// in-flight representative, the duplicate re-adopts onto the successor
// instead of starting a concurrent second simulation.
func TestInflightSuccessorReadopted(t *testing.T) {
	blocker := newBlockingFake("slow")
	_, c := newTestServer(t, Config{Workers: 2, QueueDepth: 8}, blocker)
	defer func() {
		select {
		case <-blocker.release:
		default:
			close(blocker.release)
		}
	}()
	ctx := context.Background()

	j1, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started
	j2, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow"}) // adopted onto j1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, j1.ID); err != nil {
		t.Fatal(err)
	}
	if v := waitJob(t, c, j1.ID); v.State != StateCanceled {
		t.Fatalf("twin state %s, want canceled", v.State)
	}
	j3, err := c.Submit(ctx, hmcsim.Spec{Exp: "slow"}) // fresh submission of the same spec
	if err != nil {
		t.Fatal(err)
	}
	close(blocker.release)
	v2 := waitJob(t, c, j2.ID)
	v3 := waitJob(t, c, j3.ID)
	if v2.State != StateDone || v3.State != StateDone {
		t.Fatalf("states %s / %s, want done / done", v2.State, v3.State)
	}
	// However j2's wakeup and j3's submission interleave, the spec must
	// simulate exactly twice in total (canceled twin + one successor) —
	// never two live runs of the same spec.
	if n := blocker.runs.Load(); n != 2 {
		t.Fatalf("spec simulated %d times, want 2 (canceled + successor)", n)
	}
	if !v2.Cached && !v3.Cached {
		t.Fatal("neither surviving job was served from the single successful run")
	}
	if !bytes.Equal(v2.Result, v3.Result) {
		t.Fatal("surviving jobs returned different results")
	}
}

// TestSubmitBodyBounded: an oversized POST body is rejected instead of
// buffered into memory.
func TestSubmitBodyBounded(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1}, newFake("exp1"))
	body := `{"exp":"` + strings.Repeat("x", 2<<20) + `"}`
	resp, err := c.httpClient().Post(c.Base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized submit = %s, want 400", resp.Status)
	}
}
