package service

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"
)

// TraceHeader carries a client-chosen trace ID on submissions; the
// server stamps it on every job the request creates, so one fleet run's
// jobs can be correlated across daemons from their span views.
const TraceHeader = "X-Hmcsim-Trace-Id"

// maxTraceID bounds stored trace IDs; longer ones are truncated rather
// than rejected, since the ID is an opaque correlation token.
const maxTraceID = 64

// NewTraceID returns a fresh 16-hex-digit trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", time.Now().UnixNano()&(1<<60-1))
	}
	return hex.EncodeToString(b[:])
}

func clampTraceID(id string) string {
	if len(id) > maxTraceID {
		return id[:maxTraceID]
	}
	return id
}

// spanMarks are the monotonic lifecycle timestamps a job accumulates on
// its way through the serving layer. Zero marks mean the job skipped
// that stage (e.g. a submission-time cache hit never starts running).
type spanMarks struct {
	received   time.Time // request admission began
	queued     time.Time // job record created, queue slot decided
	runStart   time.Time // a worker picked the job up
	cacheDone  time.Time // the worker's (or submit path's) cache check ended
	runEnd     time.Time // the simulation returned
	marshalEnd time.Time // the result finished encoding
}

// SpanStage is one contiguous lifecycle stage; StartMs is relative to
// the job's admission, so stages tile the job's total latency.
type SpanStage struct {
	Name    string  `json:"name"`
	StartMs float64 `json:"startMs"`
	DurMs   float64 `json:"durMs"`
}

// SpanView is the GET /v1/jobs/{id}/spans payload: the job's stage
// breakdown. For terminal jobs the stage durations sum exactly to
// TotalMs, the observed end-to-end latency.
type SpanView struct {
	ID      string `json:"id"`
	TraceID string `json:"traceId,omitempty"`
	State   State  `json:"state"`
	Cached  bool   `json:"cached"`
	// Worker is the pool index that ran the job, -1 when no worker did
	// (cache hits, jobs canceled while queued).
	Worker  int         `json:"worker"`
	Stages  []SpanStage `json:"stages"`
	TotalMs float64     `json:"totalMs"`
}

func msBetween(a, b time.Time) float64 {
	return float64(b.Sub(a).Microseconds()) / 1000
}

// Spans snapshots the job's stage breakdown. Each recorded mark closes
// the stage that led to it; unreached stages are omitted, so the
// emitted stages are contiguous and sum to the job's elapsed time.
func (j *Job) Spans() SpanView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := SpanView{
		ID:      j.id,
		TraceID: j.traceID,
		State:   j.state,
		Cached:  j.cached,
		Worker:  j.worker,
	}
	m := &j.marks
	end := j.finished
	if end.IsZero() {
		end = time.Now() // live job: TotalMs is elapsed-so-far
	}
	// Each pair is (closing mark, name of the stage it ends), in
	// lifecycle order.
	points := []struct {
		at   time.Time
		name string
	}{
		{m.queued, "received"},
		{m.runStart, "queued"},
		{m.cacheDone, "cache-check"},
		{m.runEnd, "running"},
		{m.marshalEnd, "marshal"},
	}
	prev := m.received
	for _, p := range points {
		if p.at.IsZero() || p.at.Before(prev) {
			continue
		}
		v.Stages = append(v.Stages, SpanStage{
			Name:    p.name,
			StartMs: msBetween(m.received, prev),
			DurMs:   msBetween(prev, p.at),
		})
		prev = p.at
	}
	// The terminal transition closes the final "done" stage; live jobs
	// stop at their last recorded mark, so stages of a terminal job
	// always tile [0, TotalMs] exactly.
	if !j.finished.IsZero() {
		v.Stages = append(v.Stages, SpanStage{
			Name:    "done",
			StartMs: msBetween(m.received, prev),
			DurMs:   msBetween(prev, end),
		})
	}
	v.TotalMs = msBetween(m.received, end)
	return v
}

// markCacheDone records the end of the job's cache check; idempotent,
// so the submit-path and worker-path checks cannot double-stamp.
func (j *Job) markCacheDone() {
	j.mu.Lock()
	if j.marks.cacheDone.IsZero() {
		j.marks.cacheDone = time.Now()
	}
	j.mu.Unlock()
}

// markRunEnd records the simulation returning, idempotent.
func (j *Job) markRunEnd() {
	j.mu.Lock()
	if j.marks.runEnd.IsZero() {
		j.marks.runEnd = time.Now()
	}
	j.mu.Unlock()
}

// markMarshalEnd records the result encoding finishing, idempotent.
func (j *Job) markMarshalEnd() {
	j.mu.Lock()
	if j.marks.marshalEnd.IsZero() {
		j.marks.marshalEnd = time.Now()
	}
	j.mu.Unlock()
}
