package service

import (
	"context"
	"errors"
	"math"
	"net/http"
	"testing"
	"time"

	"hmcsim"
)

// sumStages adds up a span view's stage durations.
func sumStages(v SpanView) float64 {
	var sum float64
	for _, st := range v.Stages {
		sum += st.DurMs
	}
	return sum
}

// stageNames extracts the stage names in order.
func stageNames(v SpanView) []string {
	names := make([]string, len(v.Stages))
	for i, st := range v.Stages {
		names[i] = st.Name
	}
	return names
}

// TestSpansTileJobLatency: a worker-run job's stages cover the full
// lifecycle in order, tile contiguously from zero, and sum exactly to
// the view's end-to-end latency.
func TestSpansTileJobLatency(t *testing.T) {
	fake := newFake("e")
	fake.delay = 5 * time.Millisecond
	_, c := newTestServer(t, Config{Workers: 1}, fake)

	ctx := context.Background()
	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "e"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, c, v.ID)

	sv, err := c.Spans(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sv.ID != v.ID || sv.State != StateDone || sv.Cached {
		t.Fatalf("span view header mismatch: %+v", sv)
	}
	if sv.Worker < 0 {
		t.Fatalf("worker-run job has Worker %d, want >= 0", sv.Worker)
	}
	want := []string{"received", "queued", "cache-check", "running", "marshal", "done"}
	got := stageNames(sv)
	if len(got) != len(want) {
		t.Fatalf("stages %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage %d is %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}
	// Contiguity: each stage starts where the previous one ended.
	var cursor float64
	for _, st := range sv.Stages {
		if math.Abs(st.StartMs-cursor) > 0.002 {
			t.Fatalf("stage %q starts at %.3f, want %.3f (gap in timeline)", st.Name, st.StartMs, cursor)
		}
		if st.DurMs < 0 {
			t.Fatalf("stage %q has negative duration %.3f", st.Name, st.DurMs)
		}
		cursor = st.StartMs + st.DurMs
	}
	// The acceptance bar: stage durations sum to the observed
	// end-to-end latency. Each stage is microsecond-truncated, so allow
	// one truncation step per stage.
	if diff := math.Abs(sumStages(sv) - sv.TotalMs); diff > 0.001*float64(len(sv.Stages)) {
		t.Fatalf("stages sum to %.3f ms, TotalMs %.3f ms (diff %.3f)", sumStages(sv), sv.TotalMs, diff)
	}
	if diff := math.Abs(sv.TotalMs - done.ElapsedMs); diff > 0.002 {
		t.Fatalf("span TotalMs %.3f, job ElapsedMs %.3f", sv.TotalMs, done.ElapsedMs)
	}
	if sv.TotalMs < 5 {
		t.Fatalf("TotalMs %.3f ms, want >= the runner's 5 ms delay", sv.TotalMs)
	}
}

// TestSpansCacheHit: a submission-time cache hit never touches a
// worker — its spans collapse to received/cache-check/done with
// Worker -1, and the durations still tile TotalMs.
func TestSpansCacheHit(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1}, newFake("e"))
	ctx := context.Background()

	spec := hmcsim.Spec{Exp: "e", Options: hmcsim.Options{Seed: 7}}
	v1, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, v1.ID)

	v2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Fatalf("second submission not served from cache: %+v", v2)
	}
	sv, err := c.Spans(ctx, v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !sv.Cached || sv.Worker != -1 {
		t.Fatalf("cache-hit spans report Cached=%v Worker=%d, want true/-1", sv.Cached, sv.Worker)
	}
	for _, st := range sv.Stages {
		if st.Name == "running" || st.Name == "marshal" {
			t.Fatalf("cache-hit job has a %q stage: %v", st.Name, stageNames(sv))
		}
	}
	if diff := math.Abs(sumStages(sv) - sv.TotalMs); diff > 0.001*float64(len(sv.Stages)) {
		t.Fatalf("cache-hit stages sum %.3f, TotalMs %.3f", sumStages(sv), sv.TotalMs)
	}
}

// TestSpansTraceIDPropagation: the client's X-Hmcsim-Trace-Id header
// lands on the created job and flows into both the span view and the
// flight record; oversized IDs are clamped, not rejected.
func TestSpansTraceIDPropagation(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1}, newFake("e"))
	c.TraceID = "trace-abc123"
	ctx := context.Background()

	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "e"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, v.ID)
	sv, err := c.Spans(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sv.TraceID != "trace-abc123" {
		t.Fatalf("span TraceID %q, want %q", sv.TraceID, "trace-abc123")
	}
	fv := s.flight.snapshot()
	if len(fv.Records) == 0 || fv.Records[0].TraceID != "trace-abc123" {
		t.Fatalf("flight record missing trace ID: %+v", fv.Records)
	}

	// A hostile ID is truncated to the bound.
	long := make([]byte, 3*maxTraceID)
	for i := range long {
		long[i] = 'x'
	}
	c.TraceID = string(long)
	v2, err := c.Submit(ctx, hmcsim.Spec{Exp: "e", Options: hmcsim.Options{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, v2.ID)
	sv2, err := c.Spans(ctx, v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(sv2.TraceID) != maxTraceID {
		t.Fatalf("oversized trace ID stored as %d bytes, want clamped to %d", len(sv2.TraceID), maxTraceID)
	}
}

// TestSpansUnknownJob: asking for spans of a job that does not exist is
// a clean 404.
func TestSpansUnknownJob(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1}, newFake("e"))
	_, err := c.Spans(context.Background(), "nope")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("want 404 APIError, got %v", err)
	}
}

// TestSpansLiveJob: a job still running reports only the stages it has
// reached — no premature "done" — and TotalMs grows with wall time.
func TestSpansLiveJob(t *testing.T) {
	fake := newBlockingFake("e")
	_, c := newTestServer(t, Config{Workers: 1}, fake)
	ctx := context.Background()

	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "e"})
	if err != nil {
		t.Fatal(err)
	}
	<-fake.started
	sv, err := c.Spans(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sv.State != StateRunning {
		t.Fatalf("state %s, want running", sv.State)
	}
	for _, st := range sv.Stages {
		if st.Name == "done" || st.Name == "running" || st.Name == "marshal" {
			t.Fatalf("live job already reports stage %q: %v", st.Name, stageNames(sv))
		}
	}
	if sv.TotalMs <= 0 {
		t.Fatalf("live job TotalMs %.3f, want > 0", sv.TotalMs)
	}
	close(fake.release)
	waitJob(t, c, v.ID)
}

// TestFleetSpansAggregation is the end-to-end acceptance check: jobs
// submitted through a Fleet come back with span breakdowns whose stages
// sum (within tolerance) to the observed end-to-end latency, all
// stamped with the fleet run's shared trace ID.
func TestFleetSpansAggregation(t *testing.T) {
	var clients []*Client
	for i := 0; i < 2; i++ {
		fake := newFake("e")
		fake.delay = 2 * time.Millisecond
		_, c := newFleetDaemon(t, Config{Workers: 2}, fake)
		clients = append(clients, c)
	}

	type spanReport struct {
		daemon string
		seed   uint64
		sv     SpanView
	}
	var reports []spanReport
	f := &Fleet{
		Clients:      clients,
		PollInterval: 5 * time.Millisecond,
		OnSpans: func(daemon string, spec hmcsim.Spec, sv SpanView) {
			reports = append(reports, spanReport{daemon, spec.Options.Seed, sv})
		},
	}

	specs := seedSpecs("e", 6)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	views, err := f.Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	// OnSpans callbacks are serialized under the fleet's log mutex and
	// all fire before Run returns.
	if len(reports) != len(specs) {
		t.Fatalf("got %d span reports for %d specs", len(reports), len(specs))
	}
	traceIDs := map[string]bool{}
	daemons := map[string]bool{}
	for _, r := range reports {
		if r.sv.TraceID == "" {
			t.Fatalf("fleet span report missing trace ID: %+v", r.sv)
		}
		traceIDs[r.sv.TraceID] = true
		daemons[r.daemon] = true
		if len(r.sv.Stages) == 0 {
			t.Fatalf("span report for %s has no stages", r.sv.ID)
		}
		if diff := math.Abs(sumStages(r.sv) - r.sv.TotalMs); diff > 0.001*float64(len(r.sv.Stages)) {
			t.Fatalf("job %s stages sum %.3f, TotalMs %.3f", r.sv.ID, sumStages(r.sv), r.sv.TotalMs)
		}
	}
	if len(traceIDs) != 1 {
		t.Fatalf("fleet run stamped %d distinct trace IDs, want 1: %v", len(traceIDs), traceIDs)
	}
	if len(daemons) != 2 {
		t.Fatalf("span reports cover %d daemons, want 2", len(daemons))
	}
	// Each report's TotalMs matches the corresponding returned view's
	// end-to-end latency. Job IDs are per-daemon sequences (two daemons
	// both mint a j000001), so correlate by the spec's seed: views come
	// back in submission order, and every seeded spec is distinct.
	for _, r := range reports {
		i := int(r.seed) - 1
		if i < 0 || i >= len(views) {
			t.Fatalf("span report for unknown seed %d", r.seed)
		}
		if diff := math.Abs(r.sv.TotalMs - views[i].ElapsedMs); diff > 0.002 {
			t.Fatalf("seed %d span TotalMs %.3f, view ElapsedMs %.3f", r.seed, r.sv.TotalMs, views[i].ElapsedMs)
		}
	}
}
