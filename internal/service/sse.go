package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// sseKeepAlive is how often an idle progress stream emits a comment
// line (": ping") so proxies with read timeouts keep the connection
// open. A variable so tests can shrink it.
var sseKeepAlive = 15 * time.Second

// handleProgress serves GET /v1/jobs/{id}/progress as a Server-Sent
// Events stream: one data-only JSON event per progress update, ending
// with the event whose state is terminal, after which the stream
// closes. Subscribing to an already-terminal job replays that terminal
// event and closes immediately, so late watchers never hang. A client
// disconnect tears the handler down at the next event or immediately
// via the request context.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, stop := j.watch()
	defer stop()
	keepAlive := time.NewTicker(sseKeepAlive)
	defer keepAlive.Stop()
	for {
		select {
		case <-keepAlive.C:
			// SSE comment line: ignored by event parsers, but enough
			// traffic to keep idle proxied connections alive.
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return // client gone
			}
			fl.Flush()
		case p := <-ch:
			if err := writeSSE(w, p); err != nil {
				return // client gone
			}
			fl.Flush()
			if p.State.Terminal() {
				return
			}
		case <-j.Done():
			// The job went terminal; the terminal broadcast may have
			// landed in ch before this case fired, so drain it, falling
			// back to a direct snapshot.
			var p JobProgress
			select {
			case p = <-ch:
			default:
				j.mu.Lock()
				p = j.progressLocked()
				j.mu.Unlock()
			}
			if writeSSE(w, p) == nil {
				fl.Flush()
			}
			return
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one data-only SSE event.
func writeSSE(w http.ResponseWriter, p JobProgress) error {
	raw, err := json.Marshal(p)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", raw)
	return err
}
