package service

import (
	"bufio"
	"context"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"hmcsim"
)

// TestProgressKeepAlivePing: an idle progress stream emits SSE comment
// pings on the keep-alive interval, and a client that disconnects
// mid-stream leaves no handler goroutine behind.
func TestProgressKeepAlivePing(t *testing.T) {
	old := sseKeepAlive
	sseKeepAlive = 20 * time.Millisecond
	t.Cleanup(func() { sseKeepAlive = old })

	blocker := newBlockingFake("e")
	_, c := newTestServer(t, Config{Workers: 1}, blocker)
	ctx := context.Background()
	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "e"})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started
	base := runtime.NumGoroutine()

	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	req, err := http.NewRequestWithContext(sctx, http.MethodGet,
		strings.TrimSuffix(c.Base, "/")+"/v1/jobs/"+v.ID+"/progress", nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := c.streamClient().Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	// The job is blocked, so nothing but pings should flow; two of them
	// proves the ticker is periodic, not a one-shot.
	br := bufio.NewReader(resp.Body)
	pings := 0
	for pings < 2 {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended after %d pings: %v", pings, err)
		}
		if strings.HasPrefix(line, ": ping") {
			pings++
		}
	}

	// Disconnect: the handler must unwind without leaking.
	cancel()
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+1 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines settled at %d, want <= %d after stream disconnect",
				runtime.NumGoroutine(), base+1)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(blocker.release)
	waitJob(t, c, v.ID)
}

// TestWatchJobSkipsKeepAlives: WatchJob must treat comment lines as
// noise — a stream that pings before the terminal event still resolves
// to the job's final view.
func TestWatchJobSkipsKeepAlives(t *testing.T) {
	old := sseKeepAlive
	sseKeepAlive = 15 * time.Millisecond
	t.Cleanup(func() { sseKeepAlive = old })

	blocker := newBlockingFake("e")
	_, c := newTestServer(t, Config{Workers: 1}, blocker)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := c.Submit(ctx, hmcsim.Spec{Exp: "e"})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.started

	// Hold the job open long enough for several pings to precede the
	// terminal event.
	go func() {
		time.Sleep(60 * time.Millisecond)
		close(blocker.release)
	}()
	view, err := c.WatchJob(ctx, v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if view.State != StateDone {
		t.Fatalf("watched job ended %s, want done", view.State)
	}
}
