package sim

import (
	"strconv"
	"testing"
)

// Kernel micro-benchmarks. The acceptance bar for the allocation-free
// kernel is 0 allocs/op on every steady-state path here: event
// schedule/fire, timer ticks, and queue push/pop at any occupancy.
// Run with: go test -bench=. -benchmem ./internal/sim/...

// BenchmarkEngineScheduleFire measures one schedule + one fire against a
// populated heap, the kernel's innermost loop. The pending-event count
// stays constant, so the heap never grows mid-measurement.
func BenchmarkEngineScheduleFire(b *testing.B) {
	for _, pending := range []int{1, 64, 4096} {
		b.Run(benchName("pending", pending), func(b *testing.B) {
			eng := NewEngine()
			fn := func() {}
			for i := 0; i < pending; i++ {
				eng.Schedule(Time(i), fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Schedule(Time(pending), fn)
				eng.Step()
			}
		})
	}
}

// BenchmarkEngineTimerTick measures a self-rescheduling Timer, the
// pattern the host ports use for their clock ticks: one heap push and
// one fire per tick, no closure per wakeup.
func BenchmarkEngineTimerTick(b *testing.B) {
	eng := NewEngine()
	var t *Timer
	t = eng.NewTimer(func() { t.After(100) })
	t.After(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkEngineRunCheckpoint measures the event loop through Run with
// the observability checkpoint disabled (the default: one predictable
// branch per event) and installed but idle — both must stay 0 allocs/op.
func BenchmarkEngineRunCheckpoint(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			eng := NewEngine()
			var t *Timer
			t = eng.NewTimer(func() { t.After(100) })
			t.After(0)
			if mode == "on" {
				eng.SetCheckpoint(64, func() bool { return true })
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Run(eng.Now() + 100)
			}
		})
	}
}

// BenchmarkQueuePushPop measures one push + one pop at a fixed standing
// occupancy. The slice-based Queue paid an O(occupancy) copy per pop;
// the ring pays O(1) at any depth.
func BenchmarkQueuePushPop(b *testing.B) {
	for _, occ := range []int{0, 16, 128, 1024} {
		b.Run(benchName("occ", occ), func(b *testing.B) {
			q := NewQueue[int](0)
			for i := 0; i < occ; i++ {
				q.Push(0, i)
			}
			// One warm-up cycle so the ring reaches its steady-state size
			// (occupancy+1) before measurement starts.
			q.Push(0, 0)
			q.Pop(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Push(Time(i), i)
				q.Pop(Time(i))
			}
		})
	}
}

// BenchmarkQueueRemoveAt measures the out-of-order removal the vault
// dispatcher uses, at the queue head (best case: one slot shift).
func BenchmarkQueueRemoveAt(b *testing.B) {
	q := NewQueue[int](0)
	for i := 0; i < 128; i++ {
		q.Push(0, i)
	}
	q.Push(0, 0)
	q.RemoveAt(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(Time(i), i)
		q.RemoveAt(Time(i), 0)
	}
}

// BenchmarkRingPushPop measures the raw ring primitive behind Queue and
// the component pipelines.
func BenchmarkRingPushPop(b *testing.B) {
	var r Ring[int]
	for i := 0; i < 8; i++ {
		r.Push(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(i)
		r.Pop()
	}
}

// BenchmarkTokenPoolNotifyRelease measures the blocked-retry cycle:
// a waiter registers, Release fires it, and it re-registers. The waiter
// array is recycled, so the steady state does not allocate.
func BenchmarkTokenPoolNotifyRelease(b *testing.B) {
	p := NewTokenPool(1)
	var again func()
	again = func() {
		if !p.TryAcquire(1) {
			p.Notify(again)
		}
	}
	p.TryAcquire(1)
	p.Notify(again)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Release(1) // fires the waiter, which re-acquires and blocks anew
		p.Notify(again)
	}
}

func benchName(prefix string, n int) string { return prefix + strconv.Itoa(n) }
