package sim

import "testing"

// TestCheckpointFiresEveryN verifies the checkpoint cadence: one
// callback per `every` fired events, none while disabled.
func TestCheckpointFiresEveryN(t *testing.T) {
	eng := NewEngine()
	var tm *Timer
	tm = eng.NewTimer(func() { tm.After(10) })
	tm.After(0)

	calls := 0
	eng.SetCheckpoint(8, func() bool { calls++; return true })
	eng.Run(eng.Now() + 10*79) // fires 80 events
	if calls != 10 {
		t.Fatalf("80 events with every=8: %d checkpoint calls, want 10", calls)
	}
	if eng.Interrupted() {
		t.Fatal("run reported interrupted without the checkpoint requesting a stop")
	}

	eng.SetCheckpoint(0, nil)
	before := calls
	eng.Run(eng.Now() + 10*100)
	if calls != before {
		t.Fatalf("disabled checkpoint still fired (%d -> %d calls)", before, calls)
	}
}

// TestCheckpointZeroIntervalDefaults is the regression test for the
// zero-interval bug: SetCheckpoint(0, fn) with a non-nil fn used to
// silently disable the callback (ckEvery stayed 0), so callers asking
// for "the default cadence" got no cancellation checks at all. It must
// select DefaultCheckpointEvery instead.
func TestCheckpointZeroIntervalDefaults(t *testing.T) {
	eng := NewEngine()
	var tm *Timer
	tm = eng.NewTimer(func() { tm.After(10) })
	tm.After(0)

	calls := 0
	eng.SetCheckpoint(0, func() bool { calls++; return true })
	events := uint64(3 * DefaultCheckpointEvery)
	eng.Run(Time(10 * (events - 1))) // fires exactly `events` events
	if calls != 3 {
		t.Fatalf("%d events with a zero-interval checkpoint: %d calls, want 3 (every %d)",
			events, calls, DefaultCheckpointEvery)
	}

	// A nil fn still removes the checkpoint entirely.
	eng.SetCheckpoint(0, nil)
	before := calls
	eng.Run(eng.Now() + 10*DefaultCheckpointEvery*2)
	if calls != before {
		t.Fatalf("nil checkpoint still fired (%d -> %d calls)", before, calls)
	}
}

// TestCheckpointInterruptsRun verifies that a false return stops Run at
// the checkpoint with the clock held at the last fired event, and that
// a later Run resumes cleanly.
func TestCheckpointInterruptsRun(t *testing.T) {
	eng := NewEngine()
	var tm *Timer
	tm = eng.NewTimer(func() { tm.After(10) })
	tm.After(0)

	calls := 0
	eng.SetCheckpoint(4, func() bool { calls++; return calls < 3 })
	end := eng.Run(1_000_000)
	if !eng.Interrupted() {
		t.Fatal("run was not interrupted")
	}
	if calls != 3 {
		t.Fatalf("checkpoint ran %d times, want 3", calls)
	}
	// 12 events fired: t = 0, 10, ..., 110.
	if end != 110 || eng.Now() != 110 {
		t.Fatalf("interrupted run stopped at %v (returned %v), want 110ps", eng.Now(), end)
	}

	eng.SetCheckpoint(0, nil)
	if got := eng.Run(1000); got != 1000 || eng.Interrupted() {
		t.Fatalf("resumed run stopped at %v (interrupted=%v), want 1000ps", got, eng.Interrupted())
	}
}

// TestCheckpointInterruptsDrain verifies Drain honors the checkpoint.
func TestCheckpointInterruptsDrain(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	for i := 0; i < 100; i++ {
		eng.Schedule(Time(i), fn)
	}
	eng.SetCheckpoint(16, func() bool { return false })
	eng.Drain()
	if !eng.Interrupted() {
		t.Fatal("drain was not interrupted")
	}
	if eng.Pending() != 84 {
		t.Fatalf("drain left %d events pending, want 84", eng.Pending())
	}
	eng.SetCheckpoint(0, nil)
	eng.Drain()
	if eng.Pending() != 0 || eng.Interrupted() {
		t.Fatalf("full drain left %d pending (interrupted=%v)", eng.Pending(), eng.Interrupted())
	}
}

// TestRunWithCheckpointDoesNotAllocate is the zero-cost contract of the
// observability layer at the kernel: the event loop stays 0 allocs/op
// with a checkpoint installed, and (a fortiori) with it disabled. CI's
// bench-smoke job runs this alongside the benchmarks.
func TestRunWithCheckpointDoesNotAllocate(t *testing.T) {
	for _, installed := range []bool{false, true} {
		eng := NewEngine()
		var tm *Timer
		tm = eng.NewTimer(func() { tm.After(10) })
		tm.After(0)
		if installed {
			eng.SetCheckpoint(64, func() bool { return true })
		}
		allocs := testing.AllocsPerRun(100, func() {
			eng.Run(eng.Now() + 10*256)
		})
		if allocs != 0 {
			t.Errorf("Run with checkpoint installed=%v: %.1f allocs/op, want 0", installed, allocs)
		}
	}
}
