// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is measured in integer picoseconds (type Time). Events scheduled for
// the same instant fire in the order they were scheduled, which makes every
// simulation in this repository bit-for-bit reproducible for a given seed.
//
// The kernel is deliberately minimal: an Engine owns a priority queue of
// events, and components interact by scheduling closures. Higher-level
// building blocks (bounded queues, busy servers, token pools) live in the
// other files of this package.
//
// The kernel is also deliberately allocation-free on its steady-state hot
// path: the event queue is a hand-specialized 4-ary heap of event structs
// (no container/heap, no interface boxing), and components that wake up
// repeatedly bind their callback once in a Timer instead of allocating a
// closure per wakeup.
package sim

import "fmt"

// Time is a simulation timestamp or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
	Second      Time = 1000 * 1000 * 1000 * 1000
)

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// event is a scheduled callback.
type event struct {
	at  Time
	key uint64 // ordering key; breaks same-instant ties deterministically
	fn  func()
}

// before orders events by time, then by ordering key. For ordinary
// events the key is the engine-local insertion counter, so same-instant
// events fire in scheduling order exactly as before. Channel events
// (see ChanKey) carry a key with the top bit set, which places them
// after every ordinary event of the same instant and orders them by
// (channel, sequence) — an order that depends only on the wiring of the
// model, not on which engine's counter scheduled them. That placement
// independence is what lets the sharded group engine replay the exact
// serial execution order.
func (a *event) before(b *event) bool {
	return a.at < b.at || (a.at == b.at && a.key < b.key)
}

// chanBand is the key-space band reserved for channel events.
const chanBand = uint64(1) << 63

// ChanKey builds the placement-independent ordering key of the seq-th
// event on channel id. Channel IDs come from AllocChanID so they are
// unique within an engine or group; per-channel sequences keep the
// (time, key) pair unique. The layout leaves 40 bits of sequence per
// channel — ~10^12 events, far beyond any run in this repository.
func ChanKey(id, seq uint64) uint64 {
	return chanBand | id<<40 | seq&(1<<40-1)
}

// Engine is a discrete-event simulation kernel.
// The zero value is ready to use.
//
// The event queue is a 4-ary min-heap stored in a flat slice. Compared to
// the binary heap behind container/heap it does half the sift-down levels
// (better cache behavior on the wide hot levels), and being typed it
// avoids the interface{} boxing allocation container/heap pays on every
// Push as well as the Less/Swap indirect calls on every sift step.
type Engine struct {
	pq     []event
	now    Time
	seq    uint64
	nfired uint64

	// Sharded execution: a grouped engine is one shard of a Group and
	// delegates Run/Drain to the group's lockstep loop. Ungrouped
	// engines (the serial reference path) leave g nil and pay nothing.
	g       *Group
	shard   int
	chanIDs uint64 // channel-ID allocator for ungrouped engines
	outMin  Time   // earliest cross-shard event posted this window

	// Checkpoint state: every ckEvery fired events Run and Drain call
	// ckFn, which may observe progress and request an early stop by
	// returning false. ckEvery == 0 (the default) disables the check, so
	// the uninstrumented loop pays one predictable branch per event and
	// nothing else.
	ckEvery     uint64
	ckLeft      uint64
	ckFn        func() bool
	interrupted bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far. On the hub engine
// of a sharded group it aggregates every shard; call it only between
// runs or from a group checkpoint, where the other shards are parked.
func (e *Engine) Fired() uint64 {
	if e.g != nil && e.shard == 0 {
		return e.g.fired()
	}
	return e.nfired
}

// Shard returns this engine's shard index within its group, 0 for
// ungrouped engines.
func (e *Engine) Shard() int { return e.shard }

// Group returns the engine's group, nil for the serial reference path.
func (e *Engine) Group() *Group { return e.g }

// AllocChanID returns a fresh channel ID. IDs are unique within an
// engine (or, for grouped engines, within the whole group), and because
// model construction is single-threaded and identical regardless of
// shard count, the k-th allocated ID is the same in serial and sharded
// builds — which is what keeps ChanKey placement-independent.
func (e *Engine) AllocChanID() uint64 {
	if e.g != nil {
		id := e.g.chanIDs
		e.g.chanIDs++
		return id
	}
	id := e.chanIDs
	e.chanIDs++
	return id
}

// ObserveLookahead tells the engine's group (if any) that a channel with
// the given minimum cross-shard latency exists; the group's lockstep
// window is the minimum over all registered lookaheads. No-op on
// ungrouped engines.
func (e *Engine) ObserveLookahead(d Time) {
	if e.g != nil {
		e.g.observeLookahead(d)
	}
}

// Pending returns the number of scheduled-but-unfired events.
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule runs fn after delay. A negative delay is treated as zero.
//
//hmcsim:hotpath
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// scheduleInPast reports the broken-model error out of line: the panic
// path is cold by definition, and hoisting it keeps fmt (and the
// boxing its arguments imply) out of the annotated scheduling paths.
//
//go:noinline
func scheduleInPast(t, now Time) {
	panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, now))
}

// At runs fn at absolute time t. Scheduling in the past is an error
// that indicates a broken component model, so it panics.
//
//hmcsim:hotpath
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		scheduleInPast(t, e.now)
	}
	e.seq++
	e.push(event{at: t, key: e.seq, fn: fn})
}

// AtKey runs fn at absolute time t under an explicit ordering key
// (built with ChanKey). Channels use it so that same-instant delivery
// order depends only on the model's wiring, never on which engine
// scheduled the event. The caller must keep (t, key) pairs unique.
//
//hmcsim:hotpath
func (e *Engine) AtKey(t Time, key uint64, fn func()) {
	if t < e.now {
		scheduleInPast(t, e.now)
	}
	e.push(event{at: t, key: key, fn: fn})
}

// CrossAt schedules fn at absolute time t with the given channel key on
// the dst engine. Same-engine (and serial-build) channels push straight
// onto dst's heap; cross-shard channels post through the group's
// mailboxes, to be merged into dst's heap at the next window barrier.
// Cross-shard times must be at least one lockstep window in the future,
// which channel latencies guarantee by construction.
//
//hmcsim:hotpath
func (e *Engine) CrossAt(dst *Engine, t Time, key uint64, fn func()) {
	if dst == e || e.g == nil {
		dst.AtKey(t, key, fn)
		return
	}
	if t < e.outMin {
		e.outMin = t
	}
	e.g.post(e.shard, dst.shard, t, key, fn)
}

// push appends ev and sifts it up. The hole-then-place form moves each
// displaced parent once instead of swapping.
//
//hmcsim:hotpath
func (e *Engine) push(ev event) {
	pq := append(e.pq, ev)
	i := len(pq) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !ev.before(&pq[parent]) {
			break
		}
		pq[i] = pq[parent]
		i = parent
	}
	pq[i] = ev
	e.pq = pq
}

// pop removes and returns the minimum event.
//
//hmcsim:hotpath
func (e *Engine) pop() event {
	pq := e.pq
	root := pq[0]
	n := len(pq) - 1
	last := pq[n]
	pq[n] = event{} // drop the closure reference so the GC can collect it
	e.pq = pq[:n]
	if n > 0 {
		pq = pq[:n]
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			// Smallest of up to four children.
			min := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if pq[j].before(&pq[min]) {
					min = j
				}
			}
			if !pq[min].before(&last) {
				break
			}
			pq[i] = pq[min]
			i = min
		}
		pq[i] = last
	}
	return root
}

// Step executes the next event, if any, and reports whether one ran.
//
//hmcsim:hotpath
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.nfired++
	ev.fn()
	return true
}

// DefaultCheckpointEvery is the checkpoint cadence used when
// SetCheckpoint is given a non-nil callback with a zero interval: large
// enough that the countdown branch is noise in the event loop, small
// enough that cancellation lands within a few hundred microseconds of
// wall clock.
const DefaultCheckpointEvery = 8192

// SetCheckpoint installs fn to run every `every` fired events during Run
// and Drain. Returning false interrupts the loop — the mechanism behind
// context cancellation mid-simulation and streamed progress reporting.
// A nil fn removes the checkpoint; a zero interval with a non-nil fn
// selects DefaultCheckpointEvery (a zero interval used to silently
// disable the callback, which turned "use the default cadence" calls
// into no cancellation at all). The callback never runs mid-event and
// must not allocate if the caller relies on the kernel's 0 allocs/op
// guarantee.
func (e *Engine) SetCheckpoint(every uint64, fn func() bool) {
	if fn == nil {
		e.ckEvery, e.ckLeft, e.ckFn = 0, 0, nil
		return
	}
	if every == 0 {
		every = DefaultCheckpointEvery
	}
	e.ckEvery, e.ckLeft, e.ckFn = every, every, fn
}

// Interrupted reports whether the last Run or Drain stopped early at a
// checkpoint. Interrupted runs leave the simulation mid-flight; their
// results are partial and must be discarded.
func (e *Engine) Interrupted() bool { return e.interrupted }

// checkpoint counts down to the next installed checkpoint and reports
// whether the loop should stop. Hot-path shape: the common case is two
// compares and a decrement.
//
//hmcsim:hotpath
func (e *Engine) checkpoint() (stop bool) {
	if e.ckEvery == 0 {
		return false
	}
	if e.ckLeft--; e.ckLeft > 0 {
		return false
	}
	e.ckLeft = e.ckEvery
	if e.ckFn() {
		return false
	}
	e.interrupted = true
	return true
}

// Run executes events until the queue is empty or the next event would
// fire after the until timestamp. It returns the time at which it stopped.
// Events exactly at the until timestamp are executed. An installed
// checkpoint may interrupt the loop early (see SetCheckpoint), in which
// case the clock is left at the last fired event rather than advanced
// to until.
func (e *Engine) Run(until Time) Time {
	if e.g != nil {
		return e.g.run(e, until, false)
	}
	e.interrupted = false
	for len(e.pq) > 0 && e.pq[0].at <= until {
		e.Step()
		if e.checkpoint() {
			return e.now
		}
	}
	if e.now < until {
		e.now = until
	}
	return e.now
}

// Drain executes all remaining events regardless of time. It is intended
// for tests and for letting in-flight transactions complete after a
// measurement window closes. Like Run, an installed checkpoint may
// interrupt it early.
func (e *Engine) Drain() {
	if e.g != nil {
		e.g.run(e, maxTime, true)
		return
	}
	e.interrupted = false
	for e.Step() {
		if e.checkpoint() {
			return
		}
	}
}

// Timer is a reusable event handle: the callback is bound once at
// construction, so rescheduling the same wakeup — a port's clock tick, a
// router's delivery hop, a bank's ready edge — costs one heap push and no
// allocation. Components that used to write eng.Schedule(d, func() { ... })
// on their hot path hold a Timer instead.
//
// A Timer may be scheduled while already pending; each schedule is an
// independent firing, exactly as if the function were passed to
// Engine.At directly.
type Timer struct {
	eng *Engine
	fn  func()
}

// NewTimer binds fn to a reusable handle on e.
func (e *Engine) NewTimer(fn func()) *Timer { return &Timer{eng: e, fn: fn} }

// At schedules the timer's callback at absolute time t.
//
//hmcsim:hotpath
func (t *Timer) At(at Time) { t.eng.At(at, t.fn) }

// After schedules the timer's callback delay from now. A negative delay
// is treated as zero.
//
//hmcsim:hotpath
func (t *Timer) After(delay Time) { t.eng.Schedule(delay, t.fn) }

// Clock describes a fixed-frequency clock domain and converts between
// cycles and simulation time.
type Clock struct {
	Period Time // duration of one cycle
}

// NewClockHz builds a Clock from a frequency in hertz.
func NewClockHz(hz float64) Clock {
	return Clock{Period: Time(float64(Second)/hz + 0.5)}
}

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.Period }

// Next returns the first clock edge at or after t.
func (c Clock) Next(t Time) Time {
	if c.Period <= 0 {
		return t
	}
	rem := t % c.Period
	if rem == 0 {
		return t
	}
	return t + c.Period - rem
}
