// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is measured in integer picoseconds (type Time). Events scheduled for
// the same instant fire in the order they were scheduled, which makes every
// simulation in this repository bit-for-bit reproducible for a given seed.
//
// The kernel is deliberately minimal: an Engine owns a priority queue of
// events, and components interact by scheduling closures. Higher-level
// building blocks (bounded queues, busy servers, token pools) live in the
// other files of this package.
//
// The kernel is also deliberately allocation-free on its steady-state hot
// path: the event queue is a hand-specialized 4-ary heap of event structs
// (no container/heap, no interface boxing), and components that wake up
// repeatedly bind their callback once in a Timer instead of allocating a
// closure per wakeup.
package sim

import "fmt"

// Time is a simulation timestamp or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
	Second      Time = 1000 * 1000 * 1000 * 1000
)

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // insertion order, breaks ties deterministically
	fn  func()
}

// before orders events by time, then by insertion order. The (at, seq)
// pair is unique per event, so the order is total and the pop sequence is
// independent of the heap's internal layout — which is what lets the heap
// arity be a pure performance choice.
func (a *event) before(b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Engine is a discrete-event simulation kernel.
// The zero value is ready to use.
//
// The event queue is a 4-ary min-heap stored in a flat slice. Compared to
// the binary heap behind container/heap it does half the sift-down levels
// (better cache behavior on the wide hot levels), and being typed it
// avoids the interface{} boxing allocation container/heap pays on every
// Push as well as the Less/Swap indirect calls on every sift step.
type Engine struct {
	pq     []event
	now    Time
	seq    uint64
	nfired uint64

	// Checkpoint state: every ckEvery fired events Run and Drain call
	// ckFn, which may observe progress and request an early stop by
	// returning false. ckEvery == 0 (the default) disables the check, so
	// the uninstrumented loop pays one predictable branch per event and
	// nothing else.
	ckEvery     uint64
	ckLeft      uint64
	ckFn        func() bool
	interrupted bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.nfired }

// Pending returns the number of scheduled-but-unfired events.
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule runs fn after delay. A negative delay is treated as zero.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. Scheduling in the past is an error
// that indicates a broken component model, so it panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// push appends ev and sifts it up. The hole-then-place form moves each
// displaced parent once instead of swapping.
func (e *Engine) push(ev event) {
	pq := append(e.pq, ev)
	i := len(pq) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !ev.before(&pq[parent]) {
			break
		}
		pq[i] = pq[parent]
		i = parent
	}
	pq[i] = ev
	e.pq = pq
}

// pop removes and returns the minimum event.
func (e *Engine) pop() event {
	pq := e.pq
	root := pq[0]
	n := len(pq) - 1
	last := pq[n]
	pq[n] = event{} // drop the closure reference so the GC can collect it
	e.pq = pq[:n]
	if n > 0 {
		pq = pq[:n]
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			// Smallest of up to four children.
			min := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if pq[j].before(&pq[min]) {
					min = j
				}
			}
			if !pq[min].before(&last) {
				break
			}
			pq[i] = pq[min]
			i = min
		}
		pq[i] = last
	}
	return root
}

// Step executes the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.nfired++
	ev.fn()
	return true
}

// SetCheckpoint installs fn to run every `every` fired events during Run
// and Drain. Returning false interrupts the loop — the mechanism behind
// context cancellation mid-simulation and streamed progress reporting.
// every == 0 or a nil fn removes the checkpoint. The callback never runs
// mid-event and must not allocate if the caller relies on the kernel's
// 0 allocs/op guarantee.
func (e *Engine) SetCheckpoint(every uint64, fn func() bool) {
	if every == 0 || fn == nil {
		e.ckEvery, e.ckLeft, e.ckFn = 0, 0, nil
		return
	}
	e.ckEvery, e.ckLeft, e.ckFn = every, every, fn
}

// Interrupted reports whether the last Run or Drain stopped early at a
// checkpoint. Interrupted runs leave the simulation mid-flight; their
// results are partial and must be discarded.
func (e *Engine) Interrupted() bool { return e.interrupted }

// checkpoint counts down to the next installed checkpoint and reports
// whether the loop should stop. Hot-path shape: the common case is two
// compares and a decrement.
func (e *Engine) checkpoint() (stop bool) {
	if e.ckEvery == 0 {
		return false
	}
	if e.ckLeft--; e.ckLeft > 0 {
		return false
	}
	e.ckLeft = e.ckEvery
	if e.ckFn() {
		return false
	}
	e.interrupted = true
	return true
}

// Run executes events until the queue is empty or the next event would
// fire after the until timestamp. It returns the time at which it stopped.
// Events exactly at the until timestamp are executed. An installed
// checkpoint may interrupt the loop early (see SetCheckpoint), in which
// case the clock is left at the last fired event rather than advanced
// to until.
func (e *Engine) Run(until Time) Time {
	e.interrupted = false
	for len(e.pq) > 0 && e.pq[0].at <= until {
		e.Step()
		if e.checkpoint() {
			return e.now
		}
	}
	if e.now < until {
		e.now = until
	}
	return e.now
}

// Drain executes all remaining events regardless of time. It is intended
// for tests and for letting in-flight transactions complete after a
// measurement window closes. Like Run, an installed checkpoint may
// interrupt it early.
func (e *Engine) Drain() {
	e.interrupted = false
	for e.Step() {
		if e.checkpoint() {
			return
		}
	}
}

// Timer is a reusable event handle: the callback is bound once at
// construction, so rescheduling the same wakeup — a port's clock tick, a
// router's delivery hop, a bank's ready edge — costs one heap push and no
// allocation. Components that used to write eng.Schedule(d, func() { ... })
// on their hot path hold a Timer instead.
//
// A Timer may be scheduled while already pending; each schedule is an
// independent firing, exactly as if the function were passed to
// Engine.At directly.
type Timer struct {
	eng *Engine
	fn  func()
}

// NewTimer binds fn to a reusable handle on e.
func (e *Engine) NewTimer(fn func()) *Timer { return &Timer{eng: e, fn: fn} }

// At schedules the timer's callback at absolute time t.
func (t *Timer) At(at Time) { t.eng.At(at, t.fn) }

// After schedules the timer's callback delay from now. A negative delay
// is treated as zero.
func (t *Timer) After(delay Time) { t.eng.Schedule(delay, t.fn) }

// Clock describes a fixed-frequency clock domain and converts between
// cycles and simulation time.
type Clock struct {
	Period Time // duration of one cycle
}

// NewClockHz builds a Clock from a frequency in hertz.
func NewClockHz(hz float64) Clock {
	return Clock{Period: Time(float64(Second)/hz + 0.5)}
}

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.Period }

// Next returns the first clock edge at or after t.
func (c Clock) Next(t Time) Time {
	if c.Period <= 0 {
		return t
	}
	rem := t % c.Period
	if rem == 0 {
		return t
	}
	return t + c.Period - rem
}
