// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is measured in integer picoseconds (type Time). Events scheduled for
// the same instant fire in the order they were scheduled, which makes every
// simulation in this repository bit-for-bit reproducible for a given seed.
//
// The kernel is deliberately minimal: an Engine owns a priority queue of
// events, and components interact by scheduling closures. Higher-level
// building blocks (bounded queues, busy servers, token pools) live in the
// other files of this package.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
	Second      Time = 1000 * 1000 * 1000 * 1000
)

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // insertion order, breaks ties deterministically
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation kernel.
// The zero value is ready to use.
type Engine struct {
	pq     eventHeap
	now    Time
	seq    uint64
	nfired uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.nfired }

// Pending returns the number of scheduled-but-unfired events.
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule runs fn after delay. A negative delay is treated as zero.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute time t. Scheduling in the past is an error
// that indicates a broken component model, so it panics.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, fn: fn})
}

// Step executes the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	e.nfired++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or the next event would
// fire after the until timestamp. It returns the time at which it stopped.
// Events exactly at the until timestamp are executed.
func (e *Engine) Run(until Time) Time {
	for len(e.pq) > 0 && e.pq[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
	return e.now
}

// Drain executes all remaining events regardless of time. It is intended
// for tests and for letting in-flight transactions complete after a
// measurement window closes.
func (e *Engine) Drain() {
	for e.Step() {
	}
}

// Clock describes a fixed-frequency clock domain and converts between
// cycles and simulation time.
type Clock struct {
	Period Time // duration of one cycle
}

// NewClockHz builds a Clock from a frequency in hertz.
func NewClockHz(hz float64) Clock {
	return Clock{Period: Time(float64(Second)/hz + 0.5)}
}

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.Period }

// Next returns the first clock edge at or after t.
func (c Clock) Next(t Time) Time {
	if c.Period <= 0 {
		return t
	}
	rem := t % c.Period
	if rem == 0 {
		return t
	}
	return t + c.Period - rem
}
