package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10*Nanosecond, func() { order = append(order, 2) })
	e.Schedule(5*Nanosecond, func() { order = append(order, 1) })
	e.Schedule(10*Nanosecond, func() { order = append(order, 3) })
	e.Run(Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v, want [1 2 3]", order)
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(42*Nanosecond, func() { order = append(order, i) })
	}
	e.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestEngineNowAdvances(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(7*Microsecond, func() { at = e.Now() })
	e.Run(Second)
	if at != 7*Microsecond {
		t.Fatalf("Now inside event = %v, want 7us", at)
	}
	if e.Now() != Second {
		t.Fatalf("Now after Run = %v, want 1s", e.Now())
	}
}

func TestEngineRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10*Nanosecond, func() { fired++ })
	e.At(11*Nanosecond, func() { fired++ })
	e.Run(10 * Nanosecond)
	if fired != 1 {
		t.Fatalf("fired = %d at boundary, want 1 (inclusive until)", fired)
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	e.Drain()
	if fired != 2 {
		t.Fatalf("fired after drain = %d, want 2", fired)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 50 {
			e.Schedule(Nanosecond, rec)
		}
	}
	e.Schedule(0, rec)
	e.Run(Second)
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
	if e.Fired() != 50 {
		t.Fatalf("fired = %d, want 50", e.Fired())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*Nanosecond, func() {})
	})
	e.Drain()
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {
		e.Schedule(-5*Nanosecond, func() {
			if e.Now() != 10*Nanosecond {
				t.Errorf("clamped event fired at %v, want 10ns", e.Now())
			}
		})
	})
	e.Drain()
}

func TestClockNext(t *testing.T) {
	c := Clock{Period: 800} // 1.25 GHz in ps
	cases := []struct{ in, want Time }{
		{0, 0}, {1, 800}, {799, 800}, {800, 800}, {801, 1600},
	}
	for _, tc := range cases {
		if got := c.Next(tc.in); got != tc.want {
			t.Errorf("Next(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestClockNextProperty(t *testing.T) {
	c := NewClockHz(187.5e6)
	f := func(raw uint32) bool {
		t0 := Time(raw)
		edge := c.Next(t0)
		return edge >= t0 && edge%c.Period == 0 && edge-t0 < c.Period
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewClockHz(t *testing.T) {
	c := NewClockHz(1.25e9)
	if c.Period != 800 {
		t.Fatalf("1.25GHz period = %dps, want 800ps", c.Period)
	}
	c = NewClockHz(187.5e6)
	if c.Period != 5333 {
		t.Fatalf("187.5MHz period = %dps, want 5333ps", c.Period)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ps"},
		{1500, "1.500ns"},
		{2500000, "2.500us"},
		{3 * Millisecond, "3.000ms"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tc.in), got, tc.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Nanosecond).Microseconds(); got != 1.5 {
		t.Errorf("Microseconds = %v, want 1.5", got)
	}
	if got := (2 * Microsecond).Nanoseconds(); got != 2000 {
		t.Errorf("Nanoseconds = %v, want 2000", got)
	}
	if got := (Second / 2).Seconds(); got != 0.5 {
		t.Errorf("Seconds = %v, want 0.5", got)
	}
}
