package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// maxTime is the far-future sentinel used by the group scheduler. It is
// comfortably beyond any reachable simulation timestamp while leaving
// headroom to add a window without overflow.
const maxTime = Time(1) << 62

// MaxShards bounds the number of shards a Group may have. The model
// partitions at quadrant granularity (4 quadrants + 1 hub shard), so
// this is generous headroom for future multi-cube topologies.
const MaxShards = 16

// globalShardBusy accumulates, per shard index, the wall-clock
// nanoseconds every Group in the process has spent executing events.
// The hmcsimd stats endpoint reports it so operators can see how evenly
// sharded runs spread across cores.
var globalShardBusy [MaxShards]atomic.Int64

// ShardBusyNanos returns a snapshot of cumulative per-shard busy time
// (wall-clock nanoseconds executing events) across all Groups that have
// run in this process. Index 0 is the hub shard.
func ShardBusyNanos() [MaxShards]int64 {
	var out [MaxShards]int64
	for i := range out {
		out[i] = globalShardBusy[i].Load()
	}
	return out
}

// globalShardBarrier is the counterpart of globalShardBusy for time
// spent at window barriers (arrival to release). busy vs barrier is the
// process-wide "was sharding worth it" signal, available without any
// tracer attached.
var globalShardBarrier [MaxShards]atomic.Int64

// ShardBarrierNanos returns cumulative per-shard wall-clock nanoseconds
// spent waiting at lockstep barriers across all Groups in this process.
// Index 0 is the hub shard.
func ShardBarrierNanos() [MaxShards]int64 {
	var out [MaxShards]int64
	for i := range out {
		out[i] = globalShardBarrier[i].Load()
	}
	return out
}

// crossEvent is an event in flight between shards: the (at, key, fn)
// triple destined for another shard's heap.
type crossEvent struct {
	at  Time
	key uint64
	fn  func()
}

// Group runs several Engines — shards of one model — in conservative
// lockstep. Each shard advances freely inside a safety window equal to
// the minimum cross-shard channel latency (registered via
// ObserveLookahead), then all shards meet at a barrier. Cross-shard
// events travel through single-producer/single-consumer mailboxes and
// are merged into the destination heap at the barrier, at least one
// full window before they fire, so every shard sees exactly the event
// order the serial engine would have produced.
//
// Synchronization contract: shard s's mailbox row boxes[p][s][*] and
// the fields of engine s are written only by the goroutine driving
// shard s during a window. The barrier's atomic arrive/release pair
// orders those writes before any other shard (or the barrier's serial
// section) reads them. Mailboxes are double-buffered by window parity:
// a producer cannot write parity p again until the consumer that
// drains parity p has passed the intervening barrier.
type Group struct {
	engines []*Engine
	window  Time   // min registered cross-shard lookahead
	chanIDs uint64 // group-wide channel-ID allocator (construction time)

	// boxes[parity][src][dst] holds events posted by src for dst during
	// a window of that parity. par[i] is the parity shard i is currently
	// writing (owned by shard i).
	boxes [2][][][]crossEvent
	par   []int

	// Barrier state. mins[i] is shard i's published safe-time bound:
	// min(its heap head, the earliest cross-shard event it posted this
	// window). The last arriver folds them into the global minimum.
	arrived atomic.Int32
	sense   atomic.Uint32
	mins    []Time

	// Per-run parameters and the barrier's decisions, written by run()
	// before spawning workers or by the last arriver inside the barrier,
	// read by everyone after release.
	until Time
	drain bool
	next  Time // next window's end (exclusive)
	stop  bool

	// Checkpoint cadence across all shards: the hub's callback runs at a
	// barrier once total fired events advance by the hub's ckEvery.
	ckFired uint64

	busy    []atomic.Int64 // wall-clock ns executing events, per shard
	barrier []atomic.Int64 // wall-clock ns waiting at barriers, per shard

	trace *GroupTracer // optional lockstep observatory; nil = no hooks

	// Abort protocol: a shard that panics mid-window records the value
	// and raises aborted; spinning siblings poll it so nobody stays
	// parked on a barrier that will never release. run() re-raises the
	// panic on the hub after every goroutine has drained, preserving
	// the serial engine's panic semantics. The group is not reusable
	// after an abort.
	aborted  atomic.Bool
	abortMu  sync.Mutex
	abortVal any
}

// NewGroup builds a group of shards engines, all at time zero. Shard 0
// is the hub: Run and Drain may only be called on it, and the group's
// checkpoint honors the hub engine's SetCheckpoint installation.
func NewGroup(shards int) *Group {
	if shards < 1 {
		shards = 1
	}
	if shards > MaxShards {
		panic(fmt.Sprintf("sim: NewGroup(%d) exceeds MaxShards=%d", shards, MaxShards))
	}
	g := &Group{
		engines: make([]*Engine, shards),
		par:     make([]int, shards),
		mins:    make([]Time, shards),
		busy:    make([]atomic.Int64, shards),
		barrier: make([]atomic.Int64, shards),
	}
	for i := range g.engines {
		g.engines[i] = &Engine{g: g, shard: i, outMin: maxTime}
	}
	for p := 0; p < 2; p++ {
		g.boxes[p] = make([][][]crossEvent, shards)
		for s := range g.boxes[p] {
			g.boxes[p][s] = make([][]crossEvent, shards)
		}
	}
	return g
}

// Shards returns the number of shards in the group.
func (g *Group) Shards() int { return len(g.engines) }

// Engine returns shard i's engine. Shard 0 is the hub.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Window returns the lockstep safety window: the minimum cross-shard
// lookahead registered so far, 0 if none.
func (g *Group) Window() Time { return g.window }

// BusyNanos returns per-shard wall-clock nanoseconds spent executing
// events (not waiting at barriers) since the group was created.
func (g *Group) BusyNanos() []int64 {
	out := make([]int64, len(g.engines))
	for i := range out {
		out[i] = g.busy[i].Load()
	}
	return out
}

// BarrierNanos returns per-shard wall-clock nanoseconds spent at window
// barriers (arrival to release) since the group was created. Together
// with BusyNanos it bounds the useful parallelism of the partition.
func (g *Group) BarrierNanos() []int64 {
	out := make([]int64, len(g.engines))
	for i := range out {
		out[i] = g.barrier[i].Load()
	}
	return out
}

// SetTrace installs (or removes, with nil) the group's lockstep
// observatory. Call between runs only; hooks fire from every shard's
// goroutine during a run.
func (g *Group) SetTrace(t *GroupTracer) { g.trace = t }

// Trace returns the installed lockstep observatory, nil if none.
func (g *Group) Trace() *GroupTracer { return g.trace }

// observeLookahead narrows the lockstep window to d if smaller. Called
// during single-threaded model construction via Engine.ObserveLookahead.
func (g *Group) observeLookahead(d Time) {
	if d <= 0 {
		panic("sim: cross-shard channel with non-positive lookahead")
	}
	if g.window == 0 || d < g.window {
		g.window = d
	}
}

// post appends a cross-shard event to the src→dst mailbox of the
// current window's parity. Only shard src's goroutine calls this.
//
//hmcsim:hotpath
func (g *Group) post(src, dst int, at Time, key uint64, fn func()) {
	b := &g.boxes[g.par[src]][src][dst]
	*b = append(*b, crossEvent{at: at, key: key, fn: fn})
}

// fired sums fired events across shards. Safe only between runs or from
// the barrier's serial section, where every other shard is parked.
func (g *Group) fired() uint64 {
	var total uint64
	for _, e := range g.engines {
		total += e.nfired
	}
	return total
}

// run is the group counterpart of Engine.Run (drain=false) and
// Engine.Drain (drain=true): it drives all shards in lockstep windows
// until no shard has an event at or before until, then leaves every
// shard's clock exactly where the serial engine would have left its
// single clock. It returns the hub's time.
func (g *Group) run(hub *Engine, until Time, drain bool) Time {
	if hub.shard != 0 {
		panic("sim: Run/Drain called on a non-hub shard of a group")
	}
	if g.window <= 0 {
		panic("sim: group run with no registered lookahead; wire cross-shard channels first")
	}
	for _, e := range g.engines {
		e.interrupted = false
	}

	// Pre-window check, still single-threaded: mailboxes are empty
	// between runs, so the global minimum is over heap heads alone.
	m := maxTime
	for _, e := range g.engines {
		if len(e.pq) > 0 && e.pq[0].at < m {
			m = e.pq[0].at
		}
	}
	if drain {
		if m == maxTime {
			g.settleDrain()
			return hub.now
		}
		until = maxTime
	} else if m > until {
		g.settleRun(until)
		return hub.now
	}

	g.until, g.drain, g.stop = until, drain, false
	g.next = m + g.window
	g.arrived.Store(0)
	g.sense.Store(0)
	g.aborted.Store(false)
	g.abortVal = nil

	var wg sync.WaitGroup
	for i := 1; i < len(g.engines); i++ {
		wg.Add(1)
		//hmcsim:nondet-ok the Group lockstep machinery itself: shards join a sense-reversing barrier every window
		go func(i int) {
			// recoverShard is registered after Done so it runs first:
			// the abort flag is fully published before the hub can
			// pass wg.Wait.
			defer wg.Done()
			defer g.recoverShard()
			g.shardLoop(i)
		}(i)
	}
	func() {
		defer g.recoverShard()
		g.shardLoop(0)
	}()
	wg.Wait()
	if g.aborted.Load() {
		v := g.abortVal
		g.abortVal = nil
		panic(v)
	}
	return hub.now
}

// recoverShard catches a panic escaping a shard's loop, records the
// first panic value, and raises the abort flag so sibling shards
// spinning at the barrier unpark and drain instead of waiting forever
// for an arrival that will never come.
func (g *Group) recoverShard() {
	if r := recover(); r != nil {
		g.abortMu.Lock()
		if g.abortVal == nil {
			g.abortVal = r
		}
		g.abortMu.Unlock()
		g.aborted.Store(true)
	}
}

// settleRun advances every shard's clock to until, as the serial engine
// does when it runs out of events before the deadline.
func (g *Group) settleRun(until Time) {
	for _, e := range g.engines {
		if e.now < until {
			e.now = until
		}
	}
}

// settleDrain advances every shard's clock to the time of the globally
// last executed event, matching the serial engine's clock after Drain.
func (g *Group) settleDrain() {
	var mx Time
	for _, e := range g.engines {
		if e.now > mx {
			mx = e.now
		}
	}
	for _, e := range g.engines {
		e.now = mx
	}
}

// shardLoop drives one shard: execute a window, publish the safe-time
// bound, meet the barrier, merge the inbox, repeat until the barrier
// declares the run over.
//
//hmcsim:hotpath
func (g *Group) shardLoop(i int) {
	e := g.engines[i]
	n := int32(len(g.engines))
	until := g.until
	parity := g.par[i]
	sense := uint32(0)
	for {
		wEnd := g.next
		e.outMin = maxTime
		nf := e.nfired
		if len(e.pq) > 0 && e.pq[0].at < wEnd && e.pq[0].at <= until {
			start := time.Now() //hmcsim:nondet-ok busy-time telemetry; wall clock never feeds simulated state
			for len(e.pq) > 0 && e.pq[0].at < wEnd && e.pq[0].at <= until {
				e.Step()
			}
			d := int64(time.Since(start)) //hmcsim:nondet-ok busy-time telemetry; wall clock never feeds simulated state
			g.busy[i].Add(d)
			globalShardBusy[i].Add(d)
		}
		g.trace.OnWindow(i, int64(e.now), int(e.nfired-nf))
		m := e.outMin
		if len(e.pq) > 0 && e.pq[0].at < m {
			m = e.pq[0].at
		}
		g.mins[i] = m

		// Sense-reversing barrier: the last arriver runs the serial
		// section (checkpoint, stop/next-window decision), then flips
		// the sense to release everyone. The arrive-to-release span is
		// the shard's barrier wait; for the last arriver that is the
		// serial section it runs, keeping per-shard totals comparable.
		bStart := time.Now() //hmcsim:nondet-ok barrier-stall telemetry; wall clock never feeds simulated state
		sense ^= 1
		if g.arrived.Add(1) == n {
			g.windowBarrier()
			g.arrived.Store(0)
			g.sense.Store(sense)
		} else {
			for spins := 0; g.sense.Load() != sense; spins++ {
				if g.aborted.Load() {
					return
				}
				if spins > 256 {
					runtime.Gosched()
				}
			}
		}
		wait := int64(time.Since(bStart)) //hmcsim:nondet-ok barrier-stall telemetry; wall clock never feeds simulated state
		g.barrier[i].Add(wait)
		globalShardBarrier[i].Add(wait)
		g.trace.OnBarrierWait(i, int64(e.now), wait)

		// Merge the inbox written during the window just completed.
		// Every entry is at least one window in the future, so AtKey's
		// not-in-the-past guard doubles as an invariant check.
		merged := 0
		for s := 0; s < int(n); s++ {
			box := g.boxes[parity][s][i]
			merged += len(box)
			for k := range box {
				e.AtKey(box[k].at, box[k].key, box[k].fn)
				box[k].fn = nil
			}
			g.boxes[parity][s][i] = box[:0]
		}
		g.trace.OnMerge(i, int64(e.now), merged)
		parity ^= 1
		g.par[i] = parity

		if g.stop {
			return
		}
	}
}

// windowBarrier is the barrier's serial section: every other shard is
// parked, so it may touch all engines. It runs the hub's checkpoint if
// the cadence is due, then either declares the run over or opens the
// next window at the global minimum event time (skipping empty time
// wholesale, exactly like the serial engine's heap pop does).
//
//hmcsim:hotpath
func (g *Group) windowBarrier() {
	hub := g.engines[0]
	if hub.ckEvery != 0 {
		if total := g.fired(); total-g.ckFired >= hub.ckEvery {
			g.ckFired = total
			if !hub.ckFn() {
				hub.interrupted = true
				g.stop = true
			}
		}
	}
	if g.stop {
		return
	}
	m := maxTime
	for _, v := range g.mins {
		if v < m {
			m = v
		}
	}
	switch {
	case !g.drain && m > g.until:
		g.stop = true
		g.settleRun(g.until)
	case g.drain && m == maxTime:
		g.stop = true
		g.settleDrain()
	default:
		if g.trace != nil {
			skip := int64(m) - int64(g.next)
			if skip < 0 {
				skip = 0
			}
			g.trace.OnWindowOpen(skip)
		}
		g.next = m + g.window
	}
}
