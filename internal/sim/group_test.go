package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"hmcsim/internal/obs"
)

// The toy model for group tests: a ring of nodes, each ticking on its
// own period and sending payloads to two neighbors over channels with a
// fixed latency. Every cross-node edge goes through toyChan (CrossAt +
// ChanKey), exactly like the real model's NoC bridges, so the same
// construction runs unchanged on one ungrouped engine or spread over a
// group's shards. Periods and latencies share common multiples on
// purpose, so same-instant deliveries from different channels exercise
// the placement-independent key ordering.

type toyChan struct {
	src, dst *Engine
	id       uint64
	seq      uint64
	lat      Time
	onRecv   func(at Time, payload int)
}

func newToyChan(src, dst *Engine, lat Time, onRecv func(Time, int)) *toyChan {
	c := &toyChan{src: src, dst: dst, id: src.AllocChanID(), lat: lat, onRecv: onRecv}
	src.ObserveLookahead(lat)
	return c
}

func (c *toyChan) send(payload int) {
	c.seq++
	at := c.src.Now() + c.lat
	c.src.CrossAt(c.dst, at, ChanKey(c.id, c.seq), func() { c.onRecv(at, payload) })
}

type toyNode struct {
	id   int
	e    *Engine
	out  []*toyChan
	tick *Timer
	sent int
	log  []string
}

// buildToyRing wires nodes nodes over the given engines (node i lives
// on engines[i%len(engines)]). Each node ticks until stopAt, sending a
// payload over each outgoing channel; receivers log and echo every
// third payload back, bounded so the simulation quiesces.
func buildToyRing(engines []*Engine, nodes int, stopAt Time) []*toyNode {
	ns := make([]*toyNode, nodes)
	for i := range ns {
		ns[i] = &toyNode{id: i, e: engines[i%len(engines)]}
	}
	for i, n := range ns {
		for _, step := range []int{1, 3} {
			dst := ns[(i+step)%nodes]
			ch := newToyChan(n.e, dst.e, Time(2000+500*(step-1)), nil)
			ch.onRecv = func(at Time, payload int) {
				dst.log = append(dst.log, fmt.Sprintf("%d<-ch%d @%d p%d", dst.id, ch.id, at, payload))
				if payload%3 == 0 && payload > 0 && at < stopAt {
					// Echo back over dst's first channel.
					dst.out[0].send(-payload)
				}
			}
			n.out = append(n.out, ch)
		}
	}
	for i, n := range ns {
		n := n
		period := Time(100 * (3 + i%4))
		n.tick = n.e.NewTimer(func() {
			n.sent++
			for _, ch := range n.out {
				ch.send(n.sent)
			}
			if n.e.Now()+period < stopAt {
				n.tick.After(period)
			}
		})
		n.tick.At(Time(100 * (i + 1)))
	}
	return ns
}

func toyLogs(ns []*toyNode) []string {
	var all []string
	for _, n := range ns {
		all = append(all, fmt.Sprintf("node%d sent=%d now=%d", n.id, n.sent, n.e.Now()))
		all = append(all, n.log...)
	}
	return all
}

func runToySerial(nodes int, stopAt, until Time, drain bool) []string {
	eng := NewEngine()
	ns := buildToyRing([]*Engine{eng}, nodes, stopAt)
	if drain {
		eng.Run(until)
		eng.Drain()
	} else {
		eng.Run(until)
	}
	return toyLogs(ns)
}

func runToySharded(shards, nodes int, stopAt, until Time, drain bool) []string {
	g := NewGroup(shards)
	engines := make([]*Engine, shards)
	for i := range engines {
		engines[i] = g.Engine(i)
	}
	ns := buildToyRing(engines, nodes, stopAt)
	hub := g.Engine(0)
	if drain {
		hub.Run(until)
		hub.Drain()
	} else {
		hub.Run(until)
	}
	return toyLogs(ns)
}

// TestGroupMatchesSerial is the determinism contract at kernel level:
// the same model, sharded over 1..4 engines, produces logs identical to
// the single-engine serial build — including under GOMAXPROCS=1, where
// barrier progress depends on cooperative yielding.
func TestGroupMatchesSerial(t *testing.T) {
	const nodes = 7
	const stopAt = Time(60_000)
	const until = Time(80_000)
	want := runToySerial(nodes, stopAt, until, true)

	for _, shards := range []int{1, 2, 3, 4} {
		for _, procs := range []int{1, runtime.NumCPU()} {
			t.Run(fmt.Sprintf("shards=%d/procs=%d", shards, procs), func(t *testing.T) {
				old := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(old)
				got := runToySharded(shards, nodes, stopAt, until, true)
				if len(got) != len(want) {
					t.Fatalf("log length %d, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("log[%d] = %q, want %q", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestGroupRunStopsAtUntil verifies the mid-flight case: a Run deadline
// landing between events leaves every shard's clock at until, with
// pending events intact for the next call, exactly like the serial path.
func TestGroupRunStopsAtUntil(t *testing.T) {
	const nodes = 5
	const stopAt = Time(50_000)
	for _, until := range []Time{Time(7_777), Time(23_450)} {
		want := runToySerial(nodes, stopAt, until, false)
		got := runToySharded(3, nodes, stopAt, until, false)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("until=%v: sharded log diverges from serial\n got: %v\nwant: %v", until, got, want)
		}
	}

	// Resuming after an early deadline must also match.
	g := NewGroup(2)
	ns := buildToyRing([]*Engine{g.Engine(0), g.Engine(1)}, nodes, stopAt)
	hub := g.Engine(0)
	hub.Run(9_000)
	if hub.Now() != 9_000 {
		t.Fatalf("hub clock %v after Run(9000)", hub.Now())
	}
	hub.Run(20_000)
	hub.Drain()
	want := runToySerial(nodes, stopAt, 20_000, true)
	if fmt.Sprint(toyLogs(ns)) != fmt.Sprint(want) {
		t.Fatal("split Run(9000)+Run(20000)+Drain diverges from one Run(20000)+Drain")
	}
}

// TestGroupCheckpointAndFired verifies the group checkpoint seam: the
// hub's SetCheckpoint callback runs at barriers on the whole-group fired
// cadence, Fired() aggregates shards, and a false return interrupts all
// shards promptly.
func TestGroupCheckpointAndFired(t *testing.T) {
	g := NewGroup(3)
	engines := []*Engine{g.Engine(0), g.Engine(1), g.Engine(2)}
	buildToyRing(engines, 6, 40_000)
	hub := g.Engine(0)

	calls := 0
	hub.SetCheckpoint(50, func() bool { calls++; return true })
	hub.Run(40_000)
	if calls == 0 {
		t.Fatal("group checkpoint never ran")
	}
	if hub.Interrupted() {
		t.Fatal("run interrupted without the checkpoint asking")
	}
	fired := hub.Fired()
	var sum uint64
	for _, e := range engines {
		sum += e.nfired
	}
	if fired != sum || fired == 0 {
		t.Fatalf("hub.Fired() = %d, want shard sum %d (nonzero)", fired, sum)
	}

	// A refusing checkpoint interrupts the group.
	g2 := NewGroup(3)
	buildToyRing([]*Engine{g2.Engine(0), g2.Engine(1), g2.Engine(2)}, 6, 40_000)
	hub2 := g2.Engine(0)
	hub2.SetCheckpoint(50, func() bool { return false })
	end := hub2.Run(40_000)
	if !hub2.Interrupted() {
		t.Fatal("group run was not interrupted")
	}
	if end >= 40_000 {
		t.Fatalf("interrupted run still reached the deadline (now=%v)", end)
	}
}

// TestGroupBusyNanos checks the observability counters move.
func TestGroupBusyNanos(t *testing.T) {
	g := NewGroup(2)
	buildToyRing([]*Engine{g.Engine(0), g.Engine(1)}, 4, 30_000)
	g.Engine(0).Run(30_000)
	busy := g.BusyNanos()
	if len(busy) != 2 {
		t.Fatalf("BusyNanos len %d, want 2", len(busy))
	}
	for i, b := range busy {
		if b < 0 {
			t.Fatalf("shard %d busy %d ns, want >= 0", i, b)
		}
	}
	global := ShardBusyNanos()
	if global[0] < busy[0] || global[1] < busy[1] {
		t.Fatalf("global busy %v below group busy %v", global[:2], busy)
	}
}

// TestGroupBarrierNanos checks the barrier-wait counters move alongside
// the busy counters: every barrier passage is timed, so a run with any
// lockstep windows at all accumulates nonzero total barrier time, and
// the process-wide accumulators are never below the group's own.
func TestGroupBarrierNanos(t *testing.T) {
	g := NewGroup(2)
	buildToyRing([]*Engine{g.Engine(0), g.Engine(1)}, 4, 30_000)
	g.Engine(0).Run(30_000)
	bar := g.BarrierNanos()
	if len(bar) != 2 {
		t.Fatalf("BarrierNanos len %d, want 2", len(bar))
	}
	var total int64
	for i, b := range bar {
		if b < 0 {
			t.Fatalf("shard %d barrier %d ns, want >= 0", i, b)
		}
		total += b
	}
	if total == 0 {
		t.Fatal("no barrier time recorded over a multi-window run")
	}
	global := ShardBarrierNanos()
	if global[0] < bar[0] || global[1] < bar[1] {
		t.Fatalf("global barrier %v below group barrier %v", global[:2], bar)
	}
}

// TestGroupPanicAbortsAllShards is the teardown contract: a shard
// panicking mid-window must unpark its siblings from the barrier, drain
// every goroutine, and resurface the panic value on the hub — never
// deadlock. Exercised for a quadrant shard and for the hub itself.
func TestGroupPanicAbortsAllShards(t *testing.T) {
	for _, panicShard := range []int{2, 0} {
		t.Run(fmt.Sprintf("shard=%d", panicShard), func(t *testing.T) {
			before := runtime.NumGoroutine()
			g := NewGroup(3)
			engines := []*Engine{g.Engine(0), g.Engine(1), g.Engine(2)}
			buildToyRing(engines, 6, 40_000)
			engines[panicShard].Schedule(10_000, func() { panic("shard boom") })

			var got any
			func() {
				defer func() { got = recover() }()
				g.Engine(0).Run(40_000)
			}()
			if got != "shard boom" {
				t.Fatalf("recovered %v, want \"shard boom\"", got)
			}
			// run() returns only after wg.Wait, so the shard goroutines
			// are gone; verify nothing else leaked either.
			deadline := time.Now().Add(time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > before {
				t.Fatalf("goroutines leaked after shard panic: %d > %d", n, before)
			}
		})
	}
}

// TestGroupTracerMatchesSerial pins the observatory's two contracts at
// kernel level: attaching a GroupTracer (with timelines) changes no
// simulation outcome — the sharded log stays identical to the serial
// reference — and the telemetry it gathers is populated.
func TestGroupTracerMatchesSerial(t *testing.T) {
	const nodes = 7
	const stopAt = Time(60_000)
	const until = Time(80_000)
	want := runToySerial(nodes, stopAt, until, true)

	const shards = 3
	g := NewGroup(shards)
	engines := make([]*Engine, shards)
	for i := range engines {
		engines[i] = g.Engine(i)
	}
	ns := buildToyRing(engines, nodes, stopAt)
	tr := &GroupTracer{}
	for i := 0; i < shards; i++ {
		tr.AttachTimeline(i, obs.NewTimeline(0))
	}
	g.SetTrace(tr)
	hub := g.Engine(0)
	hub.Run(until)
	hub.Drain()

	got := toyLogs(ns)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatal("traced sharded log diverges from serial")
	}
	if tr.Windows == 0 {
		t.Fatal("observatory saw no window opens")
	}
	for i := 0; i < shards; i++ {
		st := tr.Shard(i)
		if st.BarrierWait.Count == 0 {
			t.Fatalf("shard %d: no barrier waits recorded", i)
		}
		if st.WindowEvents.Count == 0 {
			t.Fatalf("shard %d: no windows recorded", i)
		}
		if st.Mailbox.Count == 0 {
			t.Fatalf("shard %d: no mailbox merges recorded", i)
		}
	}
	// Cross-shard traffic exists by construction, so some shard's
	// mailbox high-water mark must be nonzero.
	var peak uint64
	for i := 0; i < shards; i++ {
		if m := tr.Shard(i).Mailbox.Max; m > peak {
			peak = m
		}
	}
	if peak == 0 {
		t.Fatal("no cross-shard events observed in any mailbox")
	}
}

// TestGroupSteadyStateDoesNotAllocate pins the sharded hot path's
// allocation contract: once a grouped run is warm, windows, barriers
// and cross-shard mailbox handoffs allocate nothing, so total heap
// mallocs across a long Run stay bounded by a small constant instead
// of growing with the event or window count. The workload pre-binds
// every callback (unlike the toy ring, which closes over each
// payload), so anything the counter sees is the kernel's.
func TestGroupSteadyStateDoesNotAllocate(t *testing.T) {
	g := NewGroup(3)
	a, b, c := g.Engine(0), g.Engine(1), g.Engine(2)
	const lat = Time(2_000)
	for _, pair := range [][2]*Engine{{a, b}, {b, c}, {c, a}, {a, c}} {
		src, dst := pair[0], pair[1]
		src.ObserveLookahead(lat)
		dst.ObserveLookahead(lat)
		fwdID, retID := src.AllocChanID(), dst.AllocChanID()
		var fwdSeq, retSeq uint64
		var fwd, ret func()
		// fwd runs on dst, ret on src; each volleys the ball back.
		fwd = func() {
			retSeq++
			dst.CrossAt(src, dst.Now()+lat, ChanKey(retID, retSeq), ret)
		}
		ret = func() {
			fwdSeq++
			src.CrossAt(dst, src.Now()+lat, ChanKey(fwdID, fwdSeq), fwd)
		}
		src.Schedule(0, ret)
	}
	hub := a
	hub.Run(400_000) // warm-up: goroutines, heap and mailbox growth
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := hub.Fired()
	hub.Run(4_000_000)
	runtime.ReadMemStats(&after)
	events := hub.Fired() - start
	mallocs := after.Mallocs - before.Mallocs
	if events < 1_000 {
		t.Fatalf("ping-pong volley fired only %d events", events)
	}
	if mallocs > 64 {
		t.Errorf("steady-state group run allocated %d objects over %d events; the window/mailbox hot path must not allocate", mallocs, events)
	}
}

// TestGroupTracedSteadyStateDoesNotAllocate extends the allocation
// contract to an attached observatory: histograms observe into fixed
// arrays, timeline tracks fold in place and slice tracks merge in
// place, so even with every hook live the steady-state window loop
// allocates nothing.
func TestGroupTracedSteadyStateDoesNotAllocate(t *testing.T) {
	g := NewGroup(3)
	a, b, c := g.Engine(0), g.Engine(1), g.Engine(2)
	const lat = Time(2_000)
	for _, pair := range [][2]*Engine{{a, b}, {b, c}, {c, a}, {a, c}} {
		src, dst := pair[0], pair[1]
		src.ObserveLookahead(lat)
		dst.ObserveLookahead(lat)
		fwdID, retID := src.AllocChanID(), dst.AllocChanID()
		var fwdSeq, retSeq uint64
		var fwd, ret func()
		fwd = func() {
			retSeq++
			dst.CrossAt(src, dst.Now()+lat, ChanKey(retID, retSeq), ret)
		}
		ret = func() {
			fwdSeq++
			src.CrossAt(dst, src.Now()+lat, ChanKey(fwdID, fwdSeq), fwd)
		}
		src.Schedule(0, ret)
	}
	tr := &GroupTracer{}
	for i := 0; i < 3; i++ {
		tr.AttachTimeline(i, obs.NewTimeline(0))
	}
	g.SetTrace(tr)
	hub := a
	hub.Run(400_000) // warm-up: goroutines, heap and mailbox growth
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := hub.Fired()
	hub.Run(4_000_000)
	runtime.ReadMemStats(&after)
	events := hub.Fired() - start
	mallocs := after.Mallocs - before.Mallocs
	if events < 1_000 {
		t.Fatalf("ping-pong volley fired only %d events", events)
	}
	if mallocs > 64 {
		t.Errorf("traced steady-state group run allocated %d objects over %d events; the observatory hooks must not allocate", mallocs, events)
	}
	if tr.Windows == 0 || tr.Shard(0).BarrierWait.Count == 0 {
		t.Fatal("observatory hooks did not fire during the traced run")
	}
}
