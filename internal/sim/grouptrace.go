package sim

import "hmcsim/internal/obs"

// GroupTracer is the lockstep observatory: it watches a Group's barrier
// and mailbox machinery so shard-count tuning can be evidence-driven.
// All hooks are nil-receiver safe and allocation-free, following the
// same discipline as the obs tracers compiled into the kernel hot
// paths: a Group without a tracer pays a nil check per hook and nothing
// else.
//
// Thread-safety mirrors the Group's own contract: shard i's
// GroupShardTrace is written only by the goroutine driving shard i
// during a run, and the group-wide fields (Windows, WindowSkip) are
// written only inside the barrier's serial section. Read everything
// after the run returns.
type GroupTracer struct {
	// Windows counts lockstep windows opened at barriers (the first
	// window, opened by run() itself, is not counted).
	Windows uint64
	// WindowSkip histograms how far each window open jumped past the
	// previous window's end, in simulated picoseconds: the idle time
	// the skip-to-global-min optimization deleted wholesale.
	WindowSkip obs.Hist

	shards [MaxShards]GroupShardTrace
}

// GroupShardTrace is one shard's view of the lockstep run.
type GroupShardTrace struct {
	// BarrierWait histograms wall-clock nanoseconds from barrier
	// arrival to release, per window. The last arriver's "wait" is the
	// serial section it runs, so per-shard totals are comparable.
	// Bucket boundaries saturate near 32 µs; Mean and Max stay exact.
	BarrierWait obs.Hist
	// WindowEvents histograms events executed per window; a shard
	// whose distribution hugs zero is along for the barrier ride.
	WindowEvents obs.Hist
	// Mailbox histograms cross-shard events merged into this shard's
	// heap per barrier. Max is the mailbox depth high-water mark.
	Mailbox obs.Hist

	tlWin  *obs.TimelineTrack
	tlMail *obs.TimelineTrack
	stalls *obs.SliceTrack
}

// Shard returns shard i's trace for reading after a run.
func (t *GroupTracer) Shard(i int) *GroupShardTrace {
	if t == nil {
		return nil
	}
	return &t.shards[i]
}

// AttachTimeline routes shard i's window, mailbox and barrier-stall
// samples onto tl (typically the shard's private timeline from
// obs.SystemTracer.ShardTimeline). Nil receiver and nil timeline are
// both no-ops, so wiring code needs no guards.
func (t *GroupTracer) AttachTimeline(shard int, tl *obs.Timeline) {
	if t == nil || tl == nil {
		return
	}
	st := &t.shards[shard]
	st.tlWin = tl.Track("window events")
	st.tlMail = tl.Track("mailbox merge")
	st.stalls = tl.Slices("barrier stall")
}

// OnWindow records a completed execution window on shard, ending at
// simulated time atPs, during which the shard fired `fired` events.
//
//hmcsim:hotpath
func (t *GroupTracer) OnWindow(shard int, atPs int64, fired int) {
	if t == nil {
		return
	}
	st := &t.shards[shard]
	st.WindowEvents.Observe(fired)
	st.tlWin.Add(atPs, uint64(fired))
}

// OnBarrierWait records one barrier passage on shard: waitNs wall-clock
// nanoseconds from arrival to release, at simulated time atPs.
//
//hmcsim:hotpath
func (t *GroupTracer) OnBarrierWait(shard int, atPs, waitNs int64) {
	if t == nil {
		return
	}
	st := &t.shards[shard]
	st.BarrierWait.Observe(int(waitNs))
	st.stalls.Add(atPs, waitNs)
}

// OnMerge records the post-barrier inbox merge on shard: merged
// cross-shard events entered the heap at simulated time atPs.
//
//hmcsim:hotpath
func (t *GroupTracer) OnMerge(shard int, atPs int64, merged int) {
	if t == nil {
		return
	}
	st := &t.shards[shard]
	st.Mailbox.Observe(merged)
	st.tlMail.Add(atPs, uint64(merged))
}

// OnWindowOpen records the barrier's serial section opening the next
// window, having skipped skipPs picoseconds of empty simulated time.
// Called with barrier exclusivity; never concurrent with itself.
//
//hmcsim:hotpath
func (t *GroupTracer) OnWindowOpen(skipPs int64) {
	if t == nil {
		return
	}
	t.Windows++
	t.WindowSkip.Observe(int(skipPs))
}
