package sim

// Queue is a bounded FIFO used to model hardware buffers. It tracks
// occupancy statistics so experiments can reason about queuing delay.
//
// Queue is generic over the element type; the simulator mostly stores
// packet pointers in queues.
type Queue[T any] struct {
	items    []T
	capacity int

	// Stats.
	enq, deq  uint64
	maxOcc    int
	occArea   float64 // integral of occupancy over time (for Little's law)
	lastT     Time
	statsInit bool
}

// NewQueue returns a FIFO with the given capacity. A capacity <= 0 means
// unbounded.
func NewQueue[T any](capacity int) *Queue[T] {
	return &Queue[T]{capacity: capacity}
}

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.capacity }

// Len returns the current occupancy.
func (q *Queue[T]) Len() int { return len(q.items) }

// Full reports whether the queue cannot accept another element.
func (q *Queue[T]) Full() bool {
	return q.capacity > 0 && len(q.items) >= q.capacity
}

// Empty reports whether the queue holds no elements.
func (q *Queue[T]) Empty() bool { return len(q.items) == 0 }

// Push appends v and reports whether it was accepted. Callers use the
// boolean to model back-pressure; a false return leaves the queue unchanged.
func (q *Queue[T]) Push(now Time, v T) bool {
	if q.Full() {
		return false
	}
	q.account(now)
	q.items = append(q.items, v)
	q.enq++
	if len(q.items) > q.maxOcc {
		q.maxOcc = len(q.items)
	}
	return true
}

// Pop removes and returns the head element. The boolean is false when the
// queue is empty.
func (q *Queue[T]) Pop(now Time) (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	q.account(now)
	v := q.items[0]
	// Shift rather than re-slice so the backing array does not grow without
	// bound over a long simulation.
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	q.deq++
	return v, true
}

// Peek returns the head element without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0], true
}

// At returns the i-th element from the head without removing it.
// It panics if i is out of range, mirroring slice semantics.
func (q *Queue[T]) At(i int) T { return q.items[i] }

// RemoveAt removes and returns the i-th element from the head.
func (q *Queue[T]) RemoveAt(now Time, i int) T {
	v := q.items[i]
	q.account(now)
	var zero T
	copy(q.items[i:], q.items[i+1:])
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	q.deq++
	return v
}

func (q *Queue[T]) account(now Time) {
	if !q.statsInit {
		q.statsInit = true
		q.lastT = now
		return
	}
	if now > q.lastT {
		q.occArea += float64(len(q.items)) * float64(now-q.lastT)
		q.lastT = now
	}
}

// Enqueued returns the total number of accepted pushes.
func (q *Queue[T]) Enqueued() uint64 { return q.enq }

// Dequeued returns the total number of pops.
func (q *Queue[T]) Dequeued() uint64 { return q.deq }

// MaxOccupancy returns the high-water mark of the queue.
func (q *Queue[T]) MaxOccupancy() int { return q.maxOcc }

// MeanOccupancy returns the time-averaged occupancy observed between the
// first accounted operation and now.
func (q *Queue[T]) MeanOccupancy(now Time) float64 {
	if !q.statsInit || now <= q.lastT {
		if q.statsInit && q.lastT > 0 {
			return q.occArea / float64(q.lastT)
		}
		return 0
	}
	area := q.occArea + float64(len(q.items))*float64(now-q.lastT)
	return area / float64(now)
}

// TokenPool models credit-based flow control: a fixed number of tokens that
// are acquired before injecting into a buffer and released when the
// consumer drains it.
type TokenPool struct {
	total     int
	available int
	waiters   []func()
	minAvail  int
}

// NewTokenPool returns a pool holding n tokens.
func NewTokenPool(n int) *TokenPool {
	return &TokenPool{total: n, available: n, minAvail: n}
}

// Total returns the configured token count.
func (p *TokenPool) Total() int { return p.total }

// Available returns the number of free tokens.
func (p *TokenPool) Available() int { return p.available }

// MinAvailable returns the low-water mark, useful for sizing buffers.
func (p *TokenPool) MinAvailable() int { return p.minAvail }

// TryAcquire takes n tokens if they are all available.
func (p *TokenPool) TryAcquire(n int) bool {
	if n > p.available {
		return false
	}
	p.available -= n
	if p.available < p.minAvail {
		p.minAvail = p.available
	}
	return true
}

// Release returns n tokens and wakes waiters registered with Notify.
func (p *TokenPool) Release(n int) {
	p.available += n
	if p.available > p.total {
		panic("sim: token pool over-released")
	}
	w := p.waiters
	p.waiters = nil
	for _, fn := range w {
		fn()
	}
}

// Notify registers fn to run on the next Release. Components use this to
// retry a blocked injection without polling.
func (p *TokenPool) Notify(fn func()) { p.waiters = append(p.waiters, fn) }
