package sim

// Queue is a bounded FIFO used to model hardware buffers. It tracks
// occupancy statistics so experiments can reason about queuing delay.
//
// Queue is generic over the element type; the simulator mostly stores
// packet pointers in queues. The storage is a Ring, so Pop and RemoveAt
// are O(1)/O(shift-to-nearest-end) instead of the O(n) slice shift the
// original implementation paid on every dequeue, and steady-state
// operation does not allocate.
type Queue[T any] struct {
	ring     Ring[T]
	capacity int

	// Stats.
	enq, deq  uint64
	maxOcc    int
	occArea   float64 // integral of occupancy over time (for Little's law)
	lastT     Time
	statsInit bool
}

// NewQueue returns a FIFO with the given capacity. A capacity <= 0 means
// unbounded.
func NewQueue[T any](capacity int) *Queue[T] {
	return &Queue[T]{capacity: capacity}
}

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.capacity }

// Len returns the current occupancy.
func (q *Queue[T]) Len() int { return q.ring.Len() }

// Full reports whether the queue cannot accept another element.
func (q *Queue[T]) Full() bool {
	return q.capacity > 0 && q.ring.Len() >= q.capacity
}

// Empty reports whether the queue holds no elements.
func (q *Queue[T]) Empty() bool { return q.ring.Empty() }

// Push appends v and reports whether it was accepted. Callers use the
// boolean to model back-pressure; a false return leaves the queue unchanged.
//
//hmcsim:hotpath
func (q *Queue[T]) Push(now Time, v T) bool {
	if q.Full() {
		return false
	}
	q.account(now)
	q.ring.Push(v)
	q.enq++
	if q.ring.Len() > q.maxOcc {
		q.maxOcc = q.ring.Len()
	}
	return true
}

// Pop removes and returns the head element. The boolean is false when the
// queue is empty.
//
//hmcsim:hotpath
func (q *Queue[T]) Pop(now Time) (T, bool) {
	var zero T
	if q.ring.Empty() {
		return zero, false
	}
	q.account(now)
	q.deq++
	return q.ring.Pop(), true
}

// Peek returns the head element without removing it.
func (q *Queue[T]) Peek() (T, bool) { return q.ring.Peek() }

// At returns the i-th element from the head without removing it.
// It panics if i is out of range, mirroring slice semantics.
func (q *Queue[T]) At(i int) T { return q.ring.At(i) }

// RemoveAt removes and returns the i-th element from the head.
//
//hmcsim:hotpath
func (q *Queue[T]) RemoveAt(now Time, i int) T {
	v := q.ring.At(i) // range-check before touching the stats
	q.account(now)
	q.ring.RemoveAt(i)
	q.deq++
	return v
}

//hmcsim:hotpath
func (q *Queue[T]) account(now Time) {
	if !q.statsInit {
		q.statsInit = true
		q.lastT = now
		return
	}
	if now > q.lastT {
		q.occArea += float64(q.ring.Len()) * float64(now-q.lastT)
		q.lastT = now
	}
}

// Enqueued returns the total number of accepted pushes.
func (q *Queue[T]) Enqueued() uint64 { return q.enq }

// Dequeued returns the total number of pops.
func (q *Queue[T]) Dequeued() uint64 { return q.deq }

// MaxOccupancy returns the high-water mark of the queue.
func (q *Queue[T]) MaxOccupancy() int { return q.maxOcc }

// MeanOccupancy returns the time-averaged occupancy observed between the
// first accounted operation and now.
func (q *Queue[T]) MeanOccupancy(now Time) float64 {
	if !q.statsInit || now <= q.lastT {
		if q.statsInit && q.lastT > 0 {
			return q.occArea / float64(q.lastT)
		}
		return 0
	}
	area := q.occArea + float64(q.ring.Len())*float64(now-q.lastT)
	return area / float64(now)
}

// Waiters is a list of parked callbacks with an allocation-free
// fire-and-re-register cycle: Fire drains the current registrations and
// runs them in order, callbacks may re-register (landing in the next
// wave, backed by a recycled array instead of a fresh allocation per
// cycle), and a callback may re-entrantly Fire. TokenPool uses it, as
// do the host tag pools and the vault accept list.
type Waiters struct {
	list  []func()
	spare []func() // drained array, reused to avoid churn
}

// Add registers fn for the next Fire.
//
//hmcsim:hotpath
func (w *Waiters) Add(fn func()) { w.list = append(w.list, fn) }

// Empty reports whether no callbacks are registered.
func (w *Waiters) Empty() bool { return len(w.list) == 0 }

// Fire runs the registered callbacks in registration order. Callbacks
// registered while firing wait for the next Fire.
//
//hmcsim:hotpath
func (w *Waiters) Fire() {
	if len(w.list) == 0 {
		return
	}
	l := w.list
	w.list, w.spare = w.spare[:0], nil
	for i, fn := range l {
		l[i] = nil
		fn()
	}
	if w.spare == nil { // not reclaimed by a re-entrant Fire
		w.spare = l[:0]
	}
}

// TokenPool models credit-based flow control: a fixed number of tokens that
// are acquired before injecting into a buffer and released when the
// consumer drains it.
type TokenPool struct {
	total     int
	available int
	waiters   Waiters
	minAvail  int
}

// NewTokenPool returns a pool holding n tokens.
func NewTokenPool(n int) *TokenPool {
	return &TokenPool{total: n, available: n, minAvail: n}
}

// Total returns the configured token count.
func (p *TokenPool) Total() int { return p.total }

// Available returns the number of free tokens.
func (p *TokenPool) Available() int { return p.available }

// MinAvailable returns the low-water mark, useful for sizing buffers.
func (p *TokenPool) MinAvailable() int { return p.minAvail }

// TryAcquire takes n tokens if they are all available.
//
//hmcsim:hotpath
func (p *TokenPool) TryAcquire(n int) bool {
	if n > p.available {
		return false
	}
	p.available -= n
	if p.available < p.minAvail {
		p.minAvail = p.available
	}
	return true
}

// Release returns n tokens and wakes waiters registered with Notify.
// Waiters registered during a callback — the usual retry-and-reblock
// pattern — wait for the next Release.
//
//hmcsim:hotpath
func (p *TokenPool) Release(n int) {
	p.available += n
	if p.available > p.total {
		panic("sim: token pool over-released")
	}
	p.waiters.Fire()
}

// Notify registers fn to run on the next Release. Components use this to
// retry a blocked injection without polling.
//
//hmcsim:hotpath
func (p *TokenPool) Notify(fn func()) { p.waiters.Add(fn) }
