package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](4)
	for i := 0; i < 4; i++ {
		if !q.Push(0, i) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if q.Push(0, 99) {
		t.Fatal("push accepted above capacity")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Pop(0)
		if !ok || v != i {
			t.Fatalf("pop = %d,%v want %d,true", v, ok, i)
		}
	}
	if _, ok := q.Pop(0); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestQueueUnbounded(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 10000; i++ {
		if !q.Push(0, i) {
			t.Fatalf("unbounded queue rejected push %d", i)
		}
	}
	if q.Len() != 10000 {
		t.Fatalf("len = %d, want 10000", q.Len())
	}
}

func TestQueuePeekAndRemoveAt(t *testing.T) {
	q := NewQueue[string](0)
	q.Push(0, "a")
	q.Push(0, "b")
	q.Push(0, "c")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %q, want a", v)
	}
	if v := q.RemoveAt(0, 1); v != "b" {
		t.Fatalf("RemoveAt(1) = %q, want b", v)
	}
	if v, _ := q.Pop(0); v != "a" {
		t.Fatalf("pop = %q, want a", v)
	}
	if v, _ := q.Pop(0); v != "c" {
		t.Fatalf("pop = %q, want c", v)
	}
}

func TestQueueStats(t *testing.T) {
	q := NewQueue[int](0)
	q.Push(0, 1)
	q.Push(0, 2)
	q.Pop(100)
	q.Pop(200)
	if q.Enqueued() != 2 || q.Dequeued() != 2 {
		t.Fatalf("enq/deq = %d/%d, want 2/2", q.Enqueued(), q.Dequeued())
	}
	if q.MaxOccupancy() != 2 {
		t.Fatalf("max occupancy = %d, want 2", q.MaxOccupancy())
	}
	// Occupancy was 2 over [0,100), 1 over [100,200): mean at t=200 is 1.5.
	if got := q.MeanOccupancy(200); got != 1.5 {
		t.Fatalf("mean occupancy = %v, want 1.5", got)
	}
}

// TestQueueConservation is a property test: any sequence of pushes and pops
// conserves elements and preserves FIFO order.
func TestQueueConservation(t *testing.T) {
	f := func(ops []bool, capRaw uint8) bool {
		capacity := int(capRaw % 16)
		q := NewQueue[int](capacity)
		next := 0
		wantHead := 0
		for _, isPush := range ops {
			if isPush {
				if q.Push(0, next) {
					next++
				} else if capacity == 0 || q.Len() != capacity {
					return false // rejected push while not full
				}
			} else {
				v, ok := q.Pop(0)
				if ok {
					if v != wantHead {
						return false // FIFO violated
					}
					wantHead++
				} else if q.Len() != 0 {
					return false
				}
			}
		}
		return q.Len() == next-wantHead
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTokenPool(t *testing.T) {
	p := NewTokenPool(10)
	if !p.TryAcquire(7) {
		t.Fatal("acquire 7 of 10 failed")
	}
	if p.TryAcquire(4) {
		t.Fatal("acquire 4 of 3 succeeded")
	}
	if p.Available() != 3 {
		t.Fatalf("available = %d, want 3", p.Available())
	}
	woken := false
	p.Notify(func() { woken = true })
	p.Release(2)
	if !woken {
		t.Fatal("waiter not woken on release")
	}
	if p.Available() != 5 {
		t.Fatalf("available = %d, want 5", p.Available())
	}
	if p.MinAvailable() != 3 {
		t.Fatalf("min available = %d, want 3", p.MinAvailable())
	}
}

// TestTokenPoolReRegisterDuringCallback covers the retry-and-reblock
// pattern every component uses: a waiter that fails to acquire inside
// its callback re-registers for the next Release. The re-registration
// must land in the next wave (not fire in the current one), must
// actually fire on the following Release, and must survive the waiter
// array being recycled between waves.
func TestTokenPoolReRegisterDuringCallback(t *testing.T) {
	p := NewTokenPool(1)
	if !p.TryAcquire(1) {
		t.Fatal("initial acquire failed")
	}
	fired := 0
	var retry func()
	retry = func() {
		fired++
		// Tokens are contended again by the time the waiter runs; block
		// and re-register, exactly like a port blocked on tags.
		if !p.TryAcquire(1) {
			t.Fatal("waiter could not acquire the released token")
		}
		if fired < 3 {
			p.Notify(retry)
		}
	}
	p.Notify(retry)
	for want := 1; want <= 3; want++ {
		p.Release(1)
		if fired != want {
			t.Fatalf("after release %d: fired = %d, want %d (re-registration lost or fired early)", want, fired, want)
		}
	}
	p.Release(1) // no waiters registered anymore; must be a no-op
	if fired != 3 {
		t.Fatalf("release with no waiters fired a callback: fired = %d", fired)
	}
}

// TestTokenPoolNotifyOrder: waiters fire in registration order, and a
// waiter registered during a callback waits for the next Release.
func TestTokenPoolNotifyOrder(t *testing.T) {
	p := NewTokenPool(1)
	p.TryAcquire(1)
	var order []int
	p.Notify(func() {
		order = append(order, 1)
		p.Notify(func() { order = append(order, 3) })
	})
	p.Notify(func() { order = append(order, 2) })
	p.Release(1)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("first wave = %v, want [1 2]", order)
	}
	p.TryAcquire(1)
	p.Release(1)
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("second wave = %v, want [1 2 3]", order)
	}
}

func TestTokenPoolOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	p := NewTokenPool(1)
	p.Release(1)
}

func TestTokenPoolProperty(t *testing.T) {
	// Available never exceeds total or goes negative under random traffic.
	f := func(ops []uint8) bool {
		p := NewTokenPool(8)
		held := 0
		for _, op := range ops {
			n := int(op%4) + 1
			if op&0x80 == 0 {
				if p.TryAcquire(n) {
					held += n
				}
			} else if held >= n {
				p.Release(n)
				held -= n
			}
			if p.Available() < 0 || p.Available() > p.Total() {
				return false
			}
			if p.Available()+held != p.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestServerSerializes(t *testing.T) {
	e := NewEngine()
	s := NewServer(e)
	var done []Time
	e.Schedule(0, func() {
		s.Reserve(10*Nanosecond, func() { done = append(done, e.Now()) })
		s.Reserve(10*Nanosecond, func() { done = append(done, e.Now()) })
	})
	e.Drain()
	if len(done) != 2 || done[0] != 10*Nanosecond || done[1] != 20*Nanosecond {
		t.Fatalf("completions = %v, want [10ns 20ns]", done)
	}
}

func TestServerIdleGap(t *testing.T) {
	e := NewEngine()
	s := NewServer(e)
	e.Schedule(0, func() { s.Reserve(5*Nanosecond, nil) })
	e.Schedule(100*Nanosecond, func() {
		end := s.Reserve(5*Nanosecond, nil)
		if end != 105*Nanosecond {
			t.Errorf("reservation after idle ends at %v, want 105ns", end)
		}
	})
	e.Drain()
	// Busy 10ns of 105ns.
	u := s.Utilization(105 * Nanosecond)
	if u < 0.09 || u > 0.10 {
		t.Fatalf("utilization = %v, want ~0.0952", u)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(32)
	seen := make([]bool, 32)
	for _, v := range p {
		if v < 0 || v >= 32 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRandUniformity(t *testing.T) {
	// Rough chi-square-free check: each of 8 buckets gets 10-15% of draws.
	r := NewRand(123)
	const n = 80000
	var buckets [8]int
	for i := 0; i < n; i++ {
		buckets[r.Intn(8)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.15 {
			t.Fatalf("bucket %d has fraction %v, want ~0.125", i, frac)
		}
	}
}
