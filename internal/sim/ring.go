package sim

// Ring is an unbounded FIFO over a power-of-two circular buffer. It is
// the allocation-free backbone of the kernel's pipelines: Push and Pop
// are O(1) with no copying or shifting, and the backing array is reused
// forever once it has grown to the high-water mark. The stats-tracking
// Queue builds on it, and components use it directly to carry in-flight
// work through fixed-order stages (serializers, constant-latency delay
// lines) so their completion callbacks can be bound once instead of
// closing over each item.
//
// The zero value is an empty ring ready for use.
type Ring[T any] struct {
	buf  []T // len(buf) is always zero or a power of two
	head int
	n    int
}

// Len returns the current occupancy.
func (r *Ring[T]) Len() int { return r.n }

// Empty reports whether the ring holds no elements.
func (r *Ring[T]) Empty() bool { return r.n == 0 }

// Push appends v at the tail.
//
//hmcsim:hotpath
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// grow doubles the backing array (minimum 8) and unrolls the ring to the
// front so index arithmetic stays a single mask.
//
//hmcsim:hotpath
func (r *Ring[T]) grow() {
	size := 2 * len(r.buf)
	if size < 8 {
		size = 8
	}
	buf := make([]T, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// Pop removes and returns the head element. It panics on an empty ring;
// callers gate on Len or Empty.
//
//hmcsim:hotpath
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("sim: Pop from empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero // drop the reference so the GC can collect it
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// Peek returns the head element without removing it.
//
//hmcsim:hotpath
func (r *Ring[T]) Peek() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	return r.buf[r.head], true
}

// At returns the i-th element from the head without removing it.
// It panics if i is out of range, mirroring slice semantics.
//
//hmcsim:hotpath
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("sim: ring index out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// RemoveAt removes and returns the i-th element from the head,
// preserving the order of the rest. It shifts whichever side of the ring
// is shorter, so removals near either end are cheap.
//
//hmcsim:hotpath
func (r *Ring[T]) RemoveAt(i int) T {
	if i < 0 || i >= r.n {
		panic("sim: ring index out of range")
	}
	mask := len(r.buf) - 1
	v := r.buf[(r.head+i)&mask]
	var zero T
	if i < r.n-1-i {
		// Shift the head segment [0, i) one slot toward the tail.
		for j := i; j > 0; j-- {
			r.buf[(r.head+j)&mask] = r.buf[(r.head+j-1)&mask]
		}
		r.buf[r.head] = zero
		r.head = (r.head + 1) & mask
	} else {
		// Shift the tail segment (i, n) one slot toward the head.
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)&mask] = r.buf[(r.head+j+1)&mask]
		}
		r.buf[(r.head+r.n-1)&mask] = zero
	}
	r.n--
	return v
}
