package sim

import "testing"

func TestRingBasic(t *testing.T) {
	var r Ring[int]
	if !r.Empty() || r.Len() != 0 {
		t.Fatal("zero ring not empty")
	}
	for i := 0; i < 20; i++ {
		r.Push(i)
	}
	if r.Len() != 20 {
		t.Fatalf("Len = %d, want 20", r.Len())
	}
	for i := 0; i < 20; i++ {
		if got := r.At(i); got != i {
			t.Fatalf("At(%d) = %d", i, got)
		}
	}
	for i := 0; i < 20; i++ {
		if v, ok := r.Peek(); !ok || v != i {
			t.Fatalf("Peek = %d,%v want %d", v, ok, i)
		}
		if got := r.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if _, ok := r.Peek(); ok {
		t.Fatal("Peek on empty ring succeeded")
	}
}

// TestRingWraparound drives the head all the way around the backing
// array several times, interleaving pushes and pops so every index
// operation crosses the wrap point.
func TestRingWraparound(t *testing.T) {
	var r Ring[int]
	next, expect := 0, 0
	for i := 0; i < 5; i++ {
		r.Push(next)
		next++
	}
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < r.Len(); i++ {
			if got := r.At(i); got != expect+i {
				t.Fatalf("round %d: At(%d) = %d, want %d", round, i, got, expect+i)
			}
		}
		for i := 0; i < 3; i++ {
			if got := r.Pop(); got != expect {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
}

func TestRingRemoveAt(t *testing.T) {
	// Remove from both halves so both shift directions run, with the ring
	// deliberately wrapped.
	var r Ring[int]
	for i := 0; i < 12; i++ {
		r.Push(i)
	}
	for i := 0; i < 6; i++ {
		r.Pop() // head is now mid-array; further pushes wrap
	}
	for i := 12; i < 18; i++ {
		r.Push(i)
	}
	// Ring holds 6..17.
	if got := r.RemoveAt(1); got != 7 { // head-side shift
		t.Fatalf("RemoveAt(1) = %d, want 7", got)
	}
	if got := r.RemoveAt(9); got != 16 { // tail-side shift
		t.Fatalf("RemoveAt(9) = %d, want 16", got)
	}
	want := []int{6, 8, 9, 10, 11, 12, 13, 14, 15, 17}
	if r.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Fatalf("After removes: At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestRingPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func(r *Ring[int])
	}{
		{"pop-empty", func(r *Ring[int]) { r.Pop() }},
		{"at-range", func(r *Ring[int]) { r.Push(1); r.At(1) }},
		{"remove-range", func(r *Ring[int]) { r.RemoveAt(5) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn(new(Ring[int]))
		}()
	}
}

// sliceQueue is the pre-ring Queue implementation (slice shifting on
// every dequeue), kept verbatim as the reference model: the ring-backed
// Queue must report exactly the same values and statistics for any
// operation sequence.
type sliceQueue struct {
	items    []int
	capacity int

	enq, deq  uint64
	maxOcc    int
	occArea   float64
	lastT     Time
	statsInit bool
}

func (q *sliceQueue) full() bool { return q.capacity > 0 && len(q.items) >= q.capacity }

func (q *sliceQueue) push(now Time, v int) bool {
	if q.full() {
		return false
	}
	q.account(now)
	q.items = append(q.items, v)
	q.enq++
	if len(q.items) > q.maxOcc {
		q.maxOcc = len(q.items)
	}
	return true
}

func (q *sliceQueue) pop(now Time) (int, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	q.account(now)
	v := q.items[0]
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	q.deq++
	return v, true
}

func (q *sliceQueue) removeAt(now Time, i int) int {
	v := q.items[i]
	q.account(now)
	copy(q.items[i:], q.items[i+1:])
	q.items = q.items[:len(q.items)-1]
	q.deq++
	return v
}

func (q *sliceQueue) account(now Time) {
	if !q.statsInit {
		q.statsInit = true
		q.lastT = now
		return
	}
	if now > q.lastT {
		q.occArea += float64(len(q.items)) * float64(now-q.lastT)
		q.lastT = now
	}
}

func (q *sliceQueue) meanOccupancy(now Time) float64 {
	if !q.statsInit || now <= q.lastT {
		if q.statsInit && q.lastT > 0 {
			return q.occArea / float64(q.lastT)
		}
		return 0
	}
	area := q.occArea + float64(len(q.items))*float64(now-q.lastT)
	return area / float64(now)
}

// TestQueueMatchesSliceReference drives the ring-backed Queue and the
// slice-based reference through a long pseudo-random interleaving of
// Push/Pop/RemoveAt — spanning many wrap points — and demands identical
// results, element order, and statistics at every step.
func TestQueueMatchesSliceReference(t *testing.T) {
	for _, capacity := range []int{0, 7} {
		q := NewQueue[int](capacity)
		ref := &sliceQueue{capacity: capacity}
		rng := NewRand(42)
		now := Time(0)
		for step := 0; step < 5000; step++ {
			now += Time(rng.Intn(50)) // occasionally zero: same-time ops
			switch op := rng.Intn(10); {
			case op < 5: // push
				v := int(rng.Uint64() % 1000)
				got, want := q.Push(now, v), ref.push(now, v)
				if got != want {
					t.Fatalf("step %d: Push accepted=%v, reference %v", step, got, want)
				}
			case op < 8: // pop
				gv, gok := q.Pop(now)
				wv, wok := ref.pop(now)
				if gv != wv || gok != wok {
					t.Fatalf("step %d: Pop = %d,%v, reference %d,%v", step, gv, gok, wv, wok)
				}
			default: // remove at a random index
				if q.Len() == 0 {
					continue
				}
				i := rng.Intn(q.Len())
				gv, wv := q.RemoveAt(now, i), ref.removeAt(now, i)
				if gv != wv {
					t.Fatalf("step %d: RemoveAt(%d) = %d, reference %d", step, i, gv, wv)
				}
			}
			if q.Len() != len(ref.items) {
				t.Fatalf("step %d: Len = %d, reference %d", step, q.Len(), len(ref.items))
			}
			for i, w := range ref.items {
				if got := q.At(i); got != w {
					t.Fatalf("step %d: At(%d) = %d, reference %d", step, i, got, w)
				}
			}
			if q.Enqueued() != ref.enq || q.Dequeued() != ref.deq {
				t.Fatalf("step %d: enq/deq = %d/%d, reference %d/%d",
					step, q.Enqueued(), q.Dequeued(), ref.enq, ref.deq)
			}
			if q.MaxOccupancy() != ref.maxOcc {
				t.Fatalf("step %d: MaxOccupancy = %d, reference %d", step, q.MaxOccupancy(), ref.maxOcc)
			}
			if got, want := q.MeanOccupancy(now), ref.meanOccupancy(now); got != want {
				t.Fatalf("step %d: MeanOccupancy = %v, reference %v", step, got, want)
			}
		}
	}
}
