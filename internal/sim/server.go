package sim

// Server models a resource that serves one item at a time for a fixed or
// per-item duration: a bus, a port, a DRAM data path. Work is serialized:
// a reservation made while the server is busy begins when the previous one
// ends.
type Server struct {
	eng  *Engine
	free Time // earliest time the next reservation may start

	busyArea float64 // integral of busy time, for utilization
	served   uint64
}

// NewServer returns a Server bound to eng, idle at time zero.
func NewServer(eng *Engine) *Server { return &Server{eng: eng} }

// Reserve books the server for dur starting no earlier than now, returns
// the completion time, and schedules done (if non-nil) at that time.
func (s *Server) Reserve(dur Time, done func()) Time {
	start := s.eng.Now()
	if s.free > start {
		start = s.free
	}
	end := start + dur
	s.free = end
	s.busyArea += float64(dur)
	s.served++
	if done != nil {
		s.eng.At(end, done)
	}
	return end
}

// NextFree returns the earliest time a new reservation could start.
func (s *Server) NextFree() Time {
	if s.free < s.eng.Now() {
		return s.eng.Now()
	}
	return s.free
}

// Busy reports whether the server has outstanding reservations.
func (s *Server) Busy() bool { return s.free > s.eng.Now() }

// Served returns the number of completed or in-flight reservations.
func (s *Server) Served() uint64 { return s.served }

// Utilization returns the fraction of [0, now] the server was busy.
func (s *Server) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	busy := s.busyArea
	if s.free > now {
		busy -= float64(s.free - now) // portion booked beyond now
	}
	if busy < 0 {
		busy = 0
	}
	return busy / float64(now)
}
