// Package stats provides the statistical tooling the paper's analysis
// uses: streaming mean/deviation, fixed-bin histograms, text heatmaps for
// the per-vault latency distributions (Figures 10 and 12), and the
// Little's-law estimator of Figure 14.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Stream accumulates streaming statistics with Welford's algorithm.
type Stream struct {
	n          uint64
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add folds one observation into the stream.
func (s *Stream) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.hasExtrema || x < s.min {
		s.min = x
	}
	if !s.hasExtrema || x > s.max {
		s.max = x
	}
	s.hasExtrema = true
}

// N returns the observation count.
func (s *Stream) N() uint64 { return s.n }

// Mean returns the running mean (0 with no observations).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the population variance.
func (s *Stream) Var() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 with none).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 with none).
func (s *Stream) Max() float64 { return s.max }

// Histogram is a fixed-range, fixed-bin-count histogram. Observations
// outside the range clamp into the edge bins, as a hardware monitor with
// saturating counters would.
type Histogram struct {
	lo, hi float64
	bins   []uint64
	n      uint64
}

// NewHistogram builds a histogram of nbins equal-width bins over [lo, hi].
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram range [%v,%v] x%d", lo, hi, nbins))
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]uint64, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.bins)) * (x - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.n++
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Bins returns the raw counts.
func (h *Histogram) Bins() []uint64 { return h.bins }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + w*(float64(i)+0.5)
}

// Normalized returns the bins as fractions of the total count.
func (h *Histogram) Normalized() []float64 {
	out := make([]float64, len(h.bins))
	if h.n == 0 {
		return out
	}
	for i, b := range h.bins {
		out[i] = float64(b) / float64(h.n)
	}
	return out
}

// Heatmap renders rows of normalized intensities (0..1) as a text grid,
// the terminal stand-in for the color maps of Figures 10 and 12. Each
// cell maps intensity onto a shade ramp.
type Heatmap struct {
	RowLabel  string
	ColLabel  string
	RowNames  []string
	ColNames  []string
	Intensity [][]float64 // [row][col], 0..1
}

var shades = []rune(" .:-=+*#%@")

// Render draws the heatmap.
func (m Heatmap) Render() string {
	var b strings.Builder
	rowW := len(m.RowLabel)
	for _, r := range m.RowNames {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	fmt.Fprintf(&b, "%-*s |", rowW, m.RowLabel)
	for _, c := range m.ColNames {
		fmt.Fprintf(&b, "%s|", c)
	}
	b.WriteByte('\n')
	for i, row := range m.Intensity {
		name := ""
		if i < len(m.RowNames) {
			name = m.RowNames[i]
		}
		fmt.Fprintf(&b, "%-*s |", rowW, name)
		for j, v := range row {
			w := 2
			if j < len(m.ColNames) {
				w = len(m.ColNames[j])
			}
			shade := shadeFor(v)
			b.WriteString(strings.Repeat(string(shade), w))
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func shadeFor(v float64) rune {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	i := int(v * float64(len(shades)-1))
	return shades[i]
}

// Little computes the average number of customers in a system from its
// throughput and mean residence time (Little's law, the Figure 14
// analysis): N = lambda * W.
func Little(ratePerSec, residenceSec float64) float64 {
	return ratePerSec * residenceSec
}

// LinearFit returns slope and intercept of a least-squares line through
// (x, y), used to check the "linear increment" region of Figure 8 and the
// outstanding-vs-banks linearity of Figure 14.
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("stats: LinearFit needs equal non-empty slices")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// Pearson returns the correlation coefficient between xs and ys.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		panic("stats: Pearson needs two equal-length samples")
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(len(xs))
	my /= float64(len(ys))
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
