package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStreamBasics(t *testing.T) {
	var s Stream
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d, want 8", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if s.StdDev() != 2 {
		t.Fatalf("stddev = %v, want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Var() != 0 || s.StdDev() != 0 {
		t.Fatal("empty stream not zero-valued")
	}
}

func TestStreamMatchesNaive(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Stream
		var sum float64
		for _, r := range raw {
			s.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		var v float64
		for _, r := range raw {
			v += (float64(r) - mean) * (float64(r) - mean)
		}
		v /= float64(len(raw))
		return math.Abs(s.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(s.Var()-v) < 1e-4*(1+v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, b := range h.Bins() {
		if b != 1 {
			t.Fatalf("bin %d = %d, want 1", i, b)
		}
	}
}

func TestHistogramClamps(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(1e9)
	if h.Bins()[0] != 1 || h.Bins()[4] != 1 {
		t.Fatalf("edge clamping failed: %v", h.Bins())
	}
}

func TestHistogramNormalized(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Add(0.5)
	h.Add(0.5)
	h.Add(2.5)
	h.Add(3.5)
	n := h.Normalized()
	want := []float64{0.5, 0, 0.25, 0.25}
	for i := range want {
		if n[i] != want[i] {
			t.Fatalf("normalized[%d] = %v, want %v", i, n[i], want[i])
		}
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	if c := h.BinCenter(0); c != 5 {
		t.Fatalf("BinCenter(0) = %v, want 5", c)
	}
	if c := h.BinCenter(9); c != 95 {
		t.Fatalf("BinCenter(9) = %v, want 95", c)
	}
}

func TestHistogramConservesCount(t *testing.T) {
	f := func(raw []int16) bool {
		h := NewHistogram(-100, 100, 13)
		for _, r := range raw {
			h.Add(float64(r))
		}
		var total uint64
		for _, b := range h.Bins() {
			total += b
		}
		return total == uint64(len(raw)) && h.N() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHeatmapRender(t *testing.T) {
	m := Heatmap{
		RowLabel:  "vault",
		RowNames:  []string{"v0", "v1"},
		ColNames:  []string{"1600", "1700"},
		Intensity: [][]float64{{0, 1}, {0.5, 0.1}},
	}
	out := m.Render()
	if !strings.Contains(out, "v0") || !strings.Contains(out, "1700") {
		t.Fatalf("render missing labels:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines, want 3", len(lines))
	}
	// Intensity 1 renders as the densest shade.
	if !strings.Contains(lines[1], "@") {
		t.Fatalf("full intensity not rendered densely: %q", lines[1])
	}
}

func TestShadeForBounds(t *testing.T) {
	if shadeFor(-1) != ' ' {
		t.Error("negative intensity not clamped to blank")
	}
	if shadeFor(2) != '@' {
		t.Error("overflow intensity not clamped to densest")
	}
}

func TestLittle(t *testing.T) {
	// 62.5M req/s with 8 us residence = 500 outstanding.
	if n := Little(62.5e6, 8e-6); n != 500 {
		t.Fatalf("Little = %v, want 500", n)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept := LinearFit(xs, ys)
	if math.Abs(slope-2) > 1e-9 || math.Abs(intercept-1) > 1e-9 {
		t.Fatalf("fit = %v, %v, want 2, 1", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	slope, intercept := LinearFit([]float64{2, 2}, []float64{5, 7})
	if slope != 0 || intercept != 6 {
		t.Fatalf("degenerate fit = %v, %v, want 0, 6", slope, intercept)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-9 {
		t.Fatalf("perfect correlation = %v, want 1", r)
	}
	inv := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, inv); math.Abs(r+1) > 1e-9 {
		t.Fatalf("perfect anticorrelation = %v, want -1", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if r := Pearson(xs, flat); r != 0 {
		t.Fatalf("flat correlation = %v, want 0", r)
	}
}
