// Package trace reads and writes the memory trace files the multi-port
// stream firmware consumes (Section III-B: "a custom firmware which
// generates requests from memory trace files").
//
// The format is one request per line:
//
//	R 0x00012380 64
//	W 0x00012400 128
//
// — operation, hexadecimal byte address, and size in bytes. Blank lines
// and lines starting with '#' are ignored.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hmcsim/internal/host"
	"hmcsim/internal/packet"
)

// Write serializes requests to w in the trace format.
func Write(w io.Writer, reqs []host.Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		op := "R"
		if r.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%s 0x%08x %d\n", op, r.Addr, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace into a slice. It validates operations, addresses
// and sizes and reports the offending line number on error. For traces
// too large to materialize, use ReadFunc.
func Read(r io.Reader) ([]host.Request, error) {
	var out []host.Request
	err := ReadFunc(r, func(req host.Request) error {
		out = append(out, req)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadFunc parses a trace one request at a time, calling fn for each
// without ever materializing the whole file. It performs the same
// validation as Read. A non-nil error from fn stops the scan and is
// returned unwrapped, so callers can end replay early with a sentinel.
func ReadFunc(r io.Reader, fn func(host.Request) error) error {
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return fmt.Errorf("trace: line %d: want 'OP ADDR SIZE', got %q", lineNo, line)
		}
		var req host.Request
		switch fields[0] {
		case "R", "r":
			req.Write = false
		case "W", "w":
			req.Write = true
		default:
			return fmt.Errorf("trace: line %d: unknown op %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			return fmt.Errorf("trace: line %d: bad address %q: %v", lineNo, fields[1], err)
		}
		req.Addr = addr
		size, err := strconv.Atoi(fields[2])
		if err != nil {
			return fmt.Errorf("trace: line %d: bad size %q: %v", lineNo, fields[2], err)
		}
		if !packet.ValidSize(size) {
			return fmt.Errorf("trace: line %d: size %d not a flit multiple in [16,128]", lineNo, size)
		}
		req.Size = size
		if err := fn(req); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace: %v", err)
	}
	return nil
}
