package trace

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"hmcsim/internal/host"
)

func TestRoundTrip(t *testing.T) {
	in := []host.Request{
		{Addr: 0x1234, Size: 16},
		{Addr: 0xDEADBE00, Size: 128, Write: true},
		{Addr: 0, Size: 64},
	}
	var b strings.Builder
	if err := Write(&b, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\nR 0x40 32\n  \n# tail\nW 0x80 16\n"
	out, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Write || !out[1].Write {
		t.Fatalf("parsed %+v", out)
	}
}

func TestReadLowercaseOps(t *testing.T) {
	out, err := Read(strings.NewReader("r 0x0 16\nw 0x80 32\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Write || !out[1].Write {
		t.Fatalf("parsed %+v", out)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	bad := []string{
		"X 0x0 16",       // unknown op
		"R zzz 16",       // bad address
		"R 0x0 17",       // bad size
		"R 0x0 0",        // zero size
		"R 0x0 256",      // oversized
		"R 0x0",          // missing field
		"R 0x0 16 extra", // extra field
		"R 0x0 sixteen",  // non-numeric size
	}
	for _, line := range bad {
		if _, err := Read(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("line %q parsed without error", line)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, sizeIdx []uint8, writes []bool) bool {
		n := len(addrs)
		if len(sizeIdx) < n {
			n = len(sizeIdx)
		}
		if len(writes) < n {
			n = len(writes)
		}
		in := make([]host.Request, n)
		for i := 0; i < n; i++ {
			in[i] = host.Request{
				Addr:  uint64(addrs[i]),
				Size:  16 * (int(sizeIdx[i]%8) + 1),
				Write: writes[i],
			}
		}
		var b strings.Builder
		if err := Write(&b, in); err != nil {
			return false
		}
		out, err := Read(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReadFuncStreams(t *testing.T) {
	src := "R 0x40 32\nW 0x80 16\nR 0x100 128\n"
	want, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var got []host.Request
	if err := ReadFunc(strings.NewReader(src), func(r host.Request) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d requests, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d: streamed %+v, Read %+v", i, got[i], want[i])
		}
	}
}

func TestReadFuncEarlyStop(t *testing.T) {
	stop := errors.New("enough")
	src := "R 0x40 32\nW 0x80 16\nthis line would be a parse error\n"
	n := 0
	err := ReadFunc(strings.NewReader(src), func(host.Request) error {
		n++
		if n == 2 {
			return stop
		}
		return nil
	})
	// The sentinel comes back unwrapped and the bad third line is never
	// reached.
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if n != 2 {
		t.Fatalf("callback ran %d times, want 2", n)
	}
}

func TestReadFuncValidates(t *testing.T) {
	err := ReadFunc(strings.NewReader("R 0x0 17\n"), func(host.Request) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("err = %v, want line-1 size error", err)
	}
}
