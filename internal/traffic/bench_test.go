package traffic

import "testing"

// Pattern-generation micro-benchmarks: the CI bench-smoke job runs
// these (with -benchtime=1x) so the hot loop's 0 allocs/op property
// cannot bit-rot, and locally they report the per-request cost of each
// address source:
//
//	go test -bench=. -benchmem ./internal/traffic/...
func BenchmarkNext(b *testing.B) {
	specs := []struct {
		name string
		spec Spec
	}{
		{"uniform", Spec{}},
		{"stride", Spec{Pattern: PatternStride}},
		{"sequential", Spec{Pattern: PatternSequential}},
		{"hotspot", Spec{Pattern: PatternHotspot}},
		{"zipf", Spec{Pattern: PatternZipf, WorkingSetBytes: 1 << 20}},
		{"chase", Spec{Pattern: PatternChase}},
		{"markov-mix", Spec{WriteFraction: 0.5, MixRunLength: 8}},
	}
	for _, tc := range specs {
		b.Run(tc.name, func(b *testing.B) {
			g, err := Compile(tc.spec, 128, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				a, w := g.Next()
				sink += a
				if w {
					sink++
				}
			}
			_ = sink
		})
	}
}

// BenchmarkCompile reports the one-time cost of building a generator
// (the zipf case includes the harmonic weighing, amortized by the
// package-level zeta cache).
func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile(Spec{Pattern: PatternZipf, WorkingSetBytes: 1 << 20}, 128, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
