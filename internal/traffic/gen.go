package traffic

import (
	"fmt"
	"math/bits"

	"hmcsim/internal/addr"
	"hmcsim/internal/sim"
)

// Parameter defaults, applied at compile time so the spec's zero value
// stays canonical (and therefore cache-key stable).
const (
	defaultZipfTheta   = 0.99
	defaultHotFraction = 0.9
	defaultHotSet      = 1 << 20 // 1 MiB
	defaultStride      = 4096
	defaultChaseNodes  = 4096
	defaultZipfSet     = 16 << 20 // 16 MiB keeps the zeta weighing cheap
	// maxZipfBlocks bounds the O(n) harmonic weighing of the zipf
	// sampler (~1e7 pow calls at the bound, amortized by zetaCache).
	maxZipfBlocks = 1 << 24
)

// PhaseInfo is one resolved step of a compiled traffic script: how long
// the phase lasts, the open-loop rate in force (0 for closed-loop), and
// whether the port is silent.
type PhaseInfo struct {
	Duration sim.Time
	RateGBps float64
	Off      bool
}

// Gen is the runtime form of a Spec: an address generator, a read/write
// mixer, and a resolved phase script, all fed by sub-streams split from
// one splitmix64 seed. Next is allocation-free; a host port calls it
// once per issued request.
type Gen struct {
	size      int
	closed    bool
	baseRate  float64
	base      generator
	phasePats []generator // per phase; nil entries use base
	phases    []PhaseInfo
	active    generator
	mix       mixer
}

// Compile validates and compiles a spec for the given request size and
// seed. Identical (spec, size, seed) triples compile to generators that
// replay identical request streams.
func Compile(spec Spec, size int, seed uint64) (*Gen, error) {
	if err := spec.ValidateFor(size); err != nil {
		return nil, err
	}
	root := NewRNG(seed)
	// Sub-stream split order is part of the replay contract: base
	// pattern, then mixer, then phase patterns in script order.
	patRNG := root.Split()
	mixRNG := root.Split()

	g := &Gen{
		size:     size,
		closed:   spec.Closed(),
		baseRate: spec.RateGBps,
		mix:      newMixer(mixRNG, spec.WriteFraction, spec.MixRunLength),
	}
	var err error
	if g.base, err = compilePattern(spec, spec.Pattern, size, patRNG); err != nil {
		return nil, err
	}
	g.active = g.base

	g.phasePats = make([]generator, len(spec.Phases))
	g.phases = make([]PhaseInfo, len(spec.Phases))
	for i, p := range spec.Phases {
		info := PhaseInfo{
			Duration: sim.Time(p.DurationUs * float64(sim.Microsecond)),
			RateGBps: p.RateGBps,
			Off:      p.Off,
		}
		if info.RateGBps == 0 {
			info.RateGBps = spec.RateGBps
		}
		if g.closed || info.Off {
			info.RateGBps = 0
		}
		g.phases[i] = info
		if p.Pattern != "" && p.Pattern != spec.Pattern {
			if g.phasePats[i], err = compilePattern(spec, p.Pattern, size, root.Split()); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// resolve computes the effective working-set span for one named
// pattern and checks the cross-field constraints that depend on it
// (stride below the span, hot set within it, zipf rank table within
// its bound, chase table within the span). ValidateFor and
// compilePattern share it, so validation and compilation cannot
// disagree about what runs.
func (s Spec) resolve(name string, size int) (span uint64, err error) {
	if !validPattern(name) {
		return 0, &UnknownPatternError{Name: name}
	}
	span = s.WorkingSetBytes
	if span == 0 {
		span = addr.CubeBytes
		if name == PatternZipf {
			span = defaultZipfSet
		}
	}
	step := uint64(size)
	switch name {
	case PatternStride:
		stride := uint64(s.StrideBytes)
		if stride == 0 {
			stride = defaultStride
		}
		if stride >= span {
			return 0, fmt.Errorf("traffic: stride %d must be below the %d-byte working set", stride, span)
		}
	case PatternHotspot:
		hot := s.HotSetBytes
		if hot == 0 {
			hot = defaultHotSet
		}
		if hot > span {
			return 0, fmt.Errorf("traffic: hot set %d exceeds the %d-byte working set", hot, span)
		}
		if hot < step {
			return 0, fmt.Errorf("traffic: hot set %d smaller than one %d-byte request", hot, size)
		}
	case PatternZipf:
		blocks := span / step
		if blocks < 2 {
			return 0, fmt.Errorf("traffic: zipf working set %d holds fewer than two %d-byte blocks", span, size)
		}
		if blocks > maxZipfBlocks {
			return 0, fmt.Errorf("traffic: zipf working set %d is %d blocks, above the %d bound; shrink workingSetBytes", span, blocks, maxZipfBlocks)
		}
	case PatternChase:
		nodes := s.ChaseNodes
		if nodes == 0 {
			nodes = defaultChaseNodes
		}
		if uint64(nodes)*step > span {
			return 0, fmt.Errorf("traffic: %d chase nodes of %d bytes exceed the %d-byte working set", nodes, size, span)
		}
	}
	return span, nil
}

// compilePattern builds one named address source, applying the spec's
// parameter defaults.
func compilePattern(spec Spec, name string, size int, rng *RNG) (generator, error) {
	span, err := spec.resolve(name, size)
	if err != nil {
		return nil, err
	}
	// Align addresses the way GUPS does: to the largest power of two
	// not exceeding the request size (equal to it for the standard
	// 16/32/64/128 sizes).
	align := uint64(1) << (bits.Len(uint(size)) - 1)
	step := uint64(size)
	switch name {
	case "", PatternUniform:
		return &uniformGen{rng: rng, span: span, align: align}, nil
	case PatternSequential:
		return &strideGen{stride: step, span: span, align: align}, nil
	case PatternStride:
		stride := uint64(spec.StrideBytes)
		if stride == 0 {
			stride = defaultStride
		}
		return &strideGen{stride: stride, span: span, align: align}, nil
	case PatternHotspot:
		frac := spec.HotFraction
		if frac == 0 {
			frac = defaultHotFraction
		}
		hot := spec.HotSetBytes
		if hot == 0 {
			hot = defaultHotSet
		}
		return &hotspotGen{rng: rng, hotFrac: frac, hot: hot, span: span, align: align}, nil
	case PatternZipf:
		theta := spec.ZipfTheta
		if theta == 0 {
			theta = defaultZipfTheta
		}
		return newZipf(rng, theta, span/step, step), nil
	case PatternChase:
		nodes := spec.ChaseNodes
		if nodes == 0 {
			nodes = defaultChaseNodes
		}
		return newChase(rng, nodes, step), nil
	}
	return nil, &UnknownPatternError{Name: name}
}

// Next returns the next request: a size-aligned byte address and its
// direction. It never allocates.
func (g *Gen) Next() (a uint64, write bool) {
	return g.active.Next(), g.mix.next()
}

// Closed reports whether the injection discipline is closed-loop.
func (g *Gen) Closed() bool { return g.closed }

// RateGBps returns the base open-loop target (0 for closed-loop).
func (g *Gen) RateGBps() float64 {
	if g.closed {
		return 0
	}
	return g.baseRate
}

// Phases returns the resolved phase script; empty means the base
// pattern runs forever.
func (g *Gen) Phases() []PhaseInfo { return g.phases }

// UsePhase hands the address stream to phase i's pattern (the base
// pattern when the phase did not name one). Ports call it at each
// phase boundary; the script repeats, so i wraps modulo len(Phases).
func (g *Gen) UsePhase(i int) {
	if len(g.phases) == 0 {
		return
	}
	i %= len(g.phases)
	if p := g.phasePats[i]; p != nil {
		g.active = p
	} else {
		g.active = g.base
	}
}
