package traffic

import (
	"math"
	"sync"
)

// generator is one compiled address source. Next returns the next byte
// address in [0, span), already aligned to the request size; it must
// not allocate, since a port calls it once per issued request.
type generator interface {
	Next() uint64
}

// --- uniform -------------------------------------------------------------

// uniformGen draws independent uniform addresses over the working set.
type uniformGen struct {
	rng   *RNG
	span  uint64
	align uint64
}

func (g *uniformGen) Next() uint64 { return g.rng.Uint64() % g.span &^ (g.align - 1) }

// --- stride / sequential -------------------------------------------------

// strideGen walks the working set with a fixed stride, wrapping at the
// end. A stride equal to the request size is the sequential scan.
type strideGen struct {
	cur    uint64
	stride uint64
	span   uint64
	align  uint64
}

func (g *strideGen) Next() uint64 {
	a := g.cur &^ (g.align - 1)
	g.cur += g.stride
	if g.cur >= g.span {
		g.cur -= g.span
	}
	return a
}

// --- hotspot -------------------------------------------------------------

// hotspotGen sends hotFrac of accesses to the hot prefix of the working
// set and the rest uniformly over the whole set.
type hotspotGen struct {
	rng     *RNG
	hotFrac float64
	hot     uint64
	span    uint64
	align   uint64
}

func (g *hotspotGen) Next() uint64 {
	span := g.span
	if g.rng.Float64() < g.hotFrac {
		span = g.hot
	}
	return g.rng.Uint64() % span &^ (g.align - 1)
}

// --- zipf ----------------------------------------------------------------

// zipfGen draws request-size blocks with zipfian popularity (rank 0 the
// hottest) using the rejection-free quantile method of Gray et al.
// ("Quickly generating billion-record synthetic databases", SIGMOD'94),
// the same sampler YCSB uses. With the cube's low-order interleaving,
// adjacent hot ranks spread across vaults, so raising theta narrows the
// active bank set exactly the way the paper's mask patterns do.
type zipfGen struct {
	rng   *RNG
	step  uint64 // block (request) size in bytes
	n     float64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // pow(0.5, theta), hoisted out of Next
}

func newZipf(rng *RNG, theta float64, blocks uint64, step uint64) *zipfGen {
	// theta == 1 makes alpha blow up; nudge it the way YCSB does.
	if math.Abs(theta-1) < 1e-6 {
		theta = 1 - 1e-6
	}
	n := float64(blocks)
	zetan := zeta(blocks, theta)
	zeta2 := 1 + math.Pow(0.5, theta)
	return &zipfGen{
		rng:   rng,
		step:  step,
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/n, 1-theta)) / (1 - zeta2/zetan),
		half:  math.Pow(0.5, theta),
	}
}

func (g *zipfGen) Next() uint64 {
	u := g.rng.Float64()
	uz := u * g.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+g.half:
		rank = 1
	default:
		rank = uint64(g.n * math.Pow(g.eta*u-g.eta+1, g.alpha))
		if rank >= uint64(g.n) {
			rank = uint64(g.n) - 1
		}
	}
	return rank * g.step
}

// zetaCache memoizes the generalized harmonic sums: every port of every
// sweep point with the same (blocks, theta) shares one O(n) weighing.
// The value is a pure function of the key, so caching cannot perturb
// determinism.
var zetaCache sync.Map // [2]float64{blocks, theta} -> float64

// zeta returns the generalized harmonic number H_{n,theta}.
func zeta(n uint64, theta float64) float64 {
	key := [2]float64{float64(n), theta}
	if v, ok := zetaCache.Load(key); ok {
		return v.(float64)
	}
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	zetaCache.Store(key, sum)
	return sum
}

// --- pointer chase -------------------------------------------------------

// chaseGen is the pointer-chase random walk: a single-cycle random
// permutation over n request-size nodes, built with Sattolo's algorithm
// so the walk provably visits every node exactly once per n steps. Each
// Next is one dependent "pointer dereference" — the address stream has
// no spatial locality and maximal serialization, the access shape of
// linked-list traversal and of mean-first-passage random walks.
type chaseGen struct {
	next []uint32
	cur  uint32
	step uint64
}

func newChase(rng *RNG, nodes int, step uint64) *chaseGen {
	perm := make([]uint32, nodes)
	for i := range perm {
		perm[i] = uint32(i)
	}
	// Sattolo's variant of Fisher-Yates (j strictly below i) yields a
	// uniformly random permutation with exactly one cycle.
	for i := nodes - 1; i > 0; i-- {
		j := rng.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return &chaseGen{next: perm, step: step}
}

func (g *chaseGen) Next() uint64 {
	a := uint64(g.cur) * g.step
	g.cur = g.next[g.cur]
	return a
}

// --- read/write mixer ----------------------------------------------------

// mixer decides each request's direction. With a run length it is a
// two-state markov chain whose stationary write fraction matches the
// spec; without one it draws directions independently.
type mixer struct {
	rng       *RNG
	writeFrac float64
	markov    bool
	pLeaveW   float64 // P(write -> read)
	pLeaveR   float64 // P(read -> write)
	write     bool
	primed    bool
}

func newMixer(rng *RNG, writeFrac float64, runLength int) mixer {
	m := mixer{rng: rng, writeFrac: writeFrac}
	if runLength > 1 && writeFrac > 0 && writeFrac < 1 {
		// Mean write-run length L fixes P(write->read) = 1/L; the
		// read-side leave rate then makes the stationary distribution hit
		// writeFrac, clamped to a valid probability for extreme mixes.
		m.markov = true
		m.pLeaveW = 1 / float64(runLength)
		m.pLeaveR = m.pLeaveW * writeFrac / (1 - writeFrac)
		if m.pLeaveR > 1 {
			m.pLeaveR = 1
		}
	}
	return m
}

// next returns true when the next request is a write.
func (m *mixer) next() bool {
	if !m.markov {
		return m.rng.Float64() < m.writeFrac
	}
	if !m.primed {
		m.primed = true
		m.write = m.rng.Float64() < m.writeFrac
		return m.write
	}
	if m.write {
		if m.rng.Float64() < m.pLeaveW {
			m.write = false
		}
	} else if m.rng.Float64() < m.pLeaveR {
		m.write = true
	}
	return m.write
}
