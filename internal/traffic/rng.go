package traffic

// RNG is a splitmix64 generator (Steele, Lea, Flood 2014): one 64-bit
// addition plus a finalizer per draw, no state besides the counter, and
// any seed — including zero — starts a full-period stream. The traffic
// subsystem keeps its own generator (rather than sharing sim.Rand's
// xorshift64*) so pattern streams can be split into independent
// sub-streams: the counter construction makes Split both cheap and
// collision-resistant.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Unlike xorshift, every
// seed value (zero included) yields a distinct full-period stream.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// golden is 2^64 / phi, the Weyl increment of splitmix64.
const golden = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 output finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	return mix64(r.state)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("traffic: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Split returns a new generator whose stream is independent of the
// parent's continuation: the child is seeded from the parent's next
// draw, so N sub-generators derived from one seed never correlate with
// each other or with the parent.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }
