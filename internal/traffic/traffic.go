// Package traffic is the composable synthetic traffic-generation
// subsystem: a library of named address patterns (uniform random,
// strided, sequential scan, hotspot, zipfian, pointer-chase random
// walk), a markov read/write mixer, phase scripting (on/off bursts,
// ramps, pattern handoffs), and two injection disciplines — closed-loop
// (bounded outstanding requests, like the paper's GUPS firmware) and
// open-loop (a target GB/s fed by a token bucket).
//
// A Spec is the declarative, JSON-serializable form; Compile turns it
// into a Gen, the allocation-free runtime generator a host traffic port
// drives one request at a time. Everything is derived from one seeded
// splitmix64 stream, so a (spec, seed) pair replays byte-identically —
// which is what lets the hmcsimd service cache traffic experiments
// under the same content-addressed Spec key as the paper figures.
package traffic

import (
	"fmt"
	"strings"

	"hmcsim/internal/addr"
)

// Pattern names accepted by Spec.Pattern and Phase.Pattern.
const (
	PatternUniform    = "uniform"    // independent uniform random addresses
	PatternStride     = "stride"     // fixed-stride walk (StrideBytes)
	PatternSequential = "sequential" // linear scan, one request size per step
	PatternHotspot    = "hotspot"    // HotFraction of accesses land in the first HotSetBytes
	PatternZipf       = "zipf"       // zipfian over request-size blocks, skew ZipfTheta
	PatternChase      = "chase"      // pointer-chase random walk over a ChaseNodes-node cycle
)

// Disciplines accepted by Spec.Discipline.
const (
	DisciplineClosed = "closed" // issue every cycle while an outstanding-request tag is free
	DisciplineOpen   = "open"   // issue at RateGBps via a token bucket, still tag-bounded
)

// patternNames is the single source of truth for the library;
// PatternNames, validPattern, and the compile-everything test all
// derive from it, so the name list cannot drift between validation and
// compilation.
var patternNames = []string{
	PatternUniform, PatternStride, PatternSequential,
	PatternHotspot, PatternZipf, PatternChase,
}

var patternSet = func() map[string]bool {
	m := make(map[string]bool, len(patternNames))
	for _, n := range patternNames {
		m[n] = true
	}
	return m
}()

// PatternNames returns the valid pattern names in documentation order.
func PatternNames() []string {
	out := make([]string, len(patternNames))
	copy(out, patternNames)
	return out
}

// UnknownPatternError reports a pattern name that is not in the
// library, listing the valid names so the CLI, Spec validation, and the
// daemon's HTTP 400 all give the same actionable message.
type UnknownPatternError struct {
	Name string
}

func (e *UnknownPatternError) Error() string {
	return fmt.Sprintf("traffic: unknown pattern %q (valid patterns: %s)",
		e.Name, strings.Join(PatternNames(), ", "))
}

// validPattern reports whether name is in the library ("" means the
// uniform default).
func validPattern(name string) bool {
	return name == "" || patternSet[name]
}

// Spec declares one port's synthetic traffic. The zero value is
// uniform random read-only closed-loop traffic over the whole cube —
// the paper's default GUPS personality.
type Spec struct {
	// Pattern names the address source; "" defaults to "uniform".
	Pattern string `json:"pattern,omitempty"`

	// WorkingSetBytes bounds generated addresses to [0, n). 0 means the
	// pattern default: the whole cube, except zipf which defaults to
	// 16 MiB so its rank table stays cheap to weigh.
	WorkingSetBytes uint64 `json:"workingSetBytes,omitempty"`
	// StrideBytes is the stride pattern's step; 0 means 4096 (one OS
	// page, the classic worst case for low-order interleaving).
	StrideBytes int `json:"strideBytes,omitempty"`
	// HotFraction is the probability a hotspot access lands in the hot
	// set; 0 means 0.9.
	HotFraction float64 `json:"hotFraction,omitempty"`
	// HotSetBytes sizes the hotspot pattern's hot region; 0 means 1 MiB.
	HotSetBytes uint64 `json:"hotSetBytes,omitempty"`
	// ZipfTheta is the zipf skew in (0, 2): larger is more
	// concentrated, and 0 (the zero value) means the YCSB default of
	// 0.99. For near-uniform traffic pass a small explicit value such
	// as 0.01 — or just use the uniform pattern.
	ZipfTheta float64 `json:"zipfTheta,omitempty"`
	// ChaseNodes is the pointer-chase cycle length; 0 means 4096.
	ChaseNodes int `json:"chaseNodes,omitempty"`

	// WriteFraction is the long-run fraction of writes in [0, 1];
	// 0 means read-only, the paper's default.
	WriteFraction float64 `json:"writeFraction,omitempty"`
	// MixRunLength makes the read/write mix a two-state markov chain
	// with mean write-run length n (reads dilate to keep WriteFraction);
	// 0 or 1 draws each direction independently.
	MixRunLength int `json:"mixRunLength,omitempty"`

	// Discipline selects the injection law; "" defaults to "closed".
	Discipline string `json:"discipline,omitempty"`
	// RateGBps is the open-loop per-port target bandwidth (counted as
	// request payload bytes issued per second).
	RateGBps float64 `json:"rateGBps,omitempty"`

	// Phases, when non-empty, script the generator through a repeating
	// sequence of timed phases: on/off bursts, rate ramps, and pattern
	// handoffs. An empty list runs the base pattern forever.
	Phases []Phase `json:"phases,omitempty"`
}

// Phase is one step of a traffic script. Fields left zero inherit the
// spec's base pattern and rate, so a two-phase {on, off} burst or a
// rate ramp only states what changes.
type Phase struct {
	// Pattern hands the address stream off to another library pattern
	// for this phase; "" keeps the spec's base pattern.
	Pattern string `json:"pattern,omitempty"`
	// DurationUs is the phase length in simulated microseconds.
	//hmcsim:speckey-ok founding phase field: a zero-duration phase is meaningless, so it is always set
	DurationUs float64 `json:"durationUs"`
	// RateGBps overrides the open-loop target for this phase; 0 keeps
	// the spec's base rate.
	RateGBps float64 `json:"rateGBps,omitempty"`
	// Off silences the port for the phase (the off half of a burst).
	Off bool `json:"off,omitempty"`
}

// maxChaseNodes bounds the pointer-chase table (16 M nodes = 64 MiB of
// uint32 links — per port, so a max-size multi-port job still costs
// hundreds of MiB) so a hostile spec cannot balloon daemon memory.
const maxChaseNodes = 1 << 24

// Validate checks the spec for the standard 128-byte request size the
// registered traffic experiments use. The CLI, hmcsim.Spec validation,
// and the hmcsimd submit path all call it, so an unknown pattern or an
// uncompilable parameter combination is rejected with the same helpful
// error everywhere instead of surfacing later as a run-time panic.
func (s Spec) Validate() error { return s.ValidateFor(128) }

// ValidateFor checks the spec against the pattern library, parameter
// ranges, and the cross-field constraints compilation enforces for the
// given request size: everything ValidateFor accepts is guaranteed to
// Compile at that size.
func (s Spec) ValidateFor(size int) error {
	if size <= 0 || size%16 != 0 || size > 128 {
		return fmt.Errorf("traffic: request size %d must be a multiple of 16 in [16, 128]", size)
	}
	if !validPattern(s.Pattern) {
		return &UnknownPatternError{Name: s.Pattern}
	}
	if s.WorkingSetBytes > addr.CubeBytes {
		return fmt.Errorf("traffic: working set %d exceeds the %d-byte cube", s.WorkingSetBytes, uint64(addr.CubeBytes))
	}
	if s.WorkingSetBytes != 0 && s.WorkingSetBytes < 4096 {
		return fmt.Errorf("traffic: working set %d below the 4096-byte minimum", s.WorkingSetBytes)
	}
	if s.StrideBytes < 0 || s.StrideBytes%16 != 0 {
		return fmt.Errorf("traffic: stride %d must be a non-negative multiple of 16", s.StrideBytes)
	}
	if s.HotFraction < 0 || s.HotFraction > 1 {
		return fmt.Errorf("traffic: hot fraction %g outside [0, 1]", s.HotFraction)
	}
	if s.HotSetBytes > addr.CubeBytes {
		return fmt.Errorf("traffic: hot set %d exceeds the %d-byte cube", s.HotSetBytes, uint64(addr.CubeBytes))
	}
	if s.ZipfTheta < 0 || s.ZipfTheta >= 2 {
		return fmt.Errorf("traffic: zipf theta %g outside [0, 2)", s.ZipfTheta)
	}
	if s.ChaseNodes < 0 || s.ChaseNodes == 1 || s.ChaseNodes > maxChaseNodes {
		return fmt.Errorf("traffic: chase nodes %d must be 0 (default) or in [2, %d]", s.ChaseNodes, maxChaseNodes)
	}
	if s.WriteFraction < 0 || s.WriteFraction > 1 {
		return fmt.Errorf("traffic: write fraction %g outside [0, 1]", s.WriteFraction)
	}
	if s.MixRunLength < 0 {
		return fmt.Errorf("traffic: mix run length %d must be non-negative", s.MixRunLength)
	}
	// The markov chain's read-side leave rate is pLeaveW * w/(1-w); past
	// w = L/(L+1) it would exceed 1 and the stationary write fraction
	// could no longer match the spec, so reject the combination rather
	// than silently distort the mix. w = 1 is exempt: pure-write traffic
	// never engages the chain.
	if s.MixRunLength > 1 && s.WriteFraction < 1 && s.WriteFraction > float64(s.MixRunLength)/float64(s.MixRunLength+1) {
		return fmt.Errorf("traffic: mix run length %d cannot sustain write fraction %g (max %g); raise the run length or lower the fraction",
			s.MixRunLength, s.WriteFraction, float64(s.MixRunLength)/float64(s.MixRunLength+1))
	}
	switch s.Discipline {
	case "", DisciplineClosed:
		if s.RateGBps != 0 {
			return fmt.Errorf("traffic: rateGBps is open-loop only; set discipline to %q", DisciplineOpen)
		}
	case DisciplineOpen:
		if s.RateGBps <= 0 && !s.phasesCarryRate() {
			return fmt.Errorf("traffic: open-loop discipline needs rateGBps > 0 (on the spec or on every active phase)")
		}
	default:
		return fmt.Errorf("traffic: unknown discipline %q (valid: %s, %s)", s.Discipline, DisciplineClosed, DisciplineOpen)
	}
	if s.RateGBps < 0 || s.RateGBps > 1000 {
		return fmt.Errorf("traffic: rate %g GB/s outside (0, 1000]", s.RateGBps)
	}
	for i, p := range s.Phases {
		if !validPattern(p.Pattern) {
			return &UnknownPatternError{Name: p.Pattern}
		}
		if p.DurationUs <= 0 {
			return fmt.Errorf("traffic: phase %d duration %g us must be positive", i, p.DurationUs)
		}
		if p.RateGBps != 0 && s.Closed() {
			return fmt.Errorf("traffic: phase %d rateGBps is open-loop only; set discipline to %q", i, DisciplineOpen)
		}
		if p.RateGBps < 0 || p.RateGBps > 1000 {
			return fmt.Errorf("traffic: phase %d rate %g GB/s outside [0, 1000]", i, p.RateGBps)
		}
	}
	// Resolve every pattern the spec can reach (base plus phase
	// handoffs) against the request size, so cross-field violations —
	// stride beyond the working set, an oversized hot set, a zipf rank
	// table past its bound, a chase table past the working set — fail
	// here, with the same checks compilation applies.
	if _, err := s.resolve(s.Pattern, size); err != nil {
		return err
	}
	for _, p := range s.Phases {
		if p.Pattern != "" {
			if _, err := s.resolve(p.Pattern, size); err != nil {
				return err
			}
		}
	}
	return nil
}

// phasesCarryRate reports whether every non-off phase states its own
// open-loop rate, making a base RateGBps unnecessary.
func (s Spec) phasesCarryRate() bool {
	if len(s.Phases) == 0 {
		return false
	}
	for _, p := range s.Phases {
		if !p.Off && p.RateGBps <= 0 {
			return false
		}
	}
	return true
}

// Closed reports whether the spec uses the closed-loop discipline.
func (s Spec) Closed() bool { return s.Discipline != DisciplineOpen }

// Name returns a compact human label for the spec, used as the default
// workload name: pattern, discipline, and the salient parameter.
func (s Spec) Name() string {
	pat := s.Pattern
	if pat == "" {
		pat = PatternUniform
	}
	var b strings.Builder
	b.WriteString(pat)
	switch pat {
	case PatternZipf:
		theta := s.ZipfTheta
		if theta == 0 {
			theta = defaultZipfTheta
		}
		fmt.Fprintf(&b, "(%.2f)", theta)
	case PatternHotspot:
		frac := s.HotFraction
		if frac == 0 {
			frac = defaultHotFraction
		}
		fmt.Fprintf(&b, "(%.0f%%)", frac*100)
	}
	if !s.Closed() {
		if s.RateGBps > 0 {
			fmt.Fprintf(&b, "/open%.2gGBps", s.RateGBps)
		} else {
			// Phase-rated specs have no single base rate to print.
			b.WriteString("/open")
		}
	}
	if s.WriteFraction > 0 {
		fmt.Fprintf(&b, "/wr%.2f", s.WriteFraction)
	}
	if len(s.Phases) > 0 {
		fmt.Fprintf(&b, "/%dphases", len(s.Phases))
	}
	return b.String()
}
