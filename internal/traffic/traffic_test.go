package traffic

import (
	"math"
	"strings"
	"testing"

	"hmcsim/internal/sim"
)

// TestSplitMix64KnownVectors pins the RNG to the reference splitmix64
// stream (seed 0), so a refactor cannot silently change every seeded
// traffic run.
func TestSplitMix64KnownVectors(t *testing.T) {
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	r := NewRNG(0)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("splitmix64(seed 0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(42)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided on %d of 64 draws", same)
	}
}

func TestValidateUnknownPatternListsLibrary(t *testing.T) {
	err := Spec{Pattern: "zipfian"}.Validate()
	if err == nil {
		t.Fatal("unknown pattern accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"zipfian"`) {
		t.Errorf("error %q does not name the bad pattern", msg)
	}
	for _, name := range PatternNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list valid pattern %q", msg, name)
		}
	}
	// Phase patterns are validated with the same error.
	err = Spec{Phases: []Phase{{Pattern: "nope", DurationUs: 1}}}.Validate()
	if err == nil || !strings.Contains(err.Error(), `"nope"`) {
		t.Errorf("phase pattern validation: %v", err)
	}
}

func TestValidateRejectsBadParameters(t *testing.T) {
	cases := map[string]Spec{
		"negative stride":      {Pattern: PatternStride, StrideBytes: -16},
		"unaligned stride":     {Pattern: PatternStride, StrideBytes: 100},
		"hot fraction > 1":     {Pattern: PatternHotspot, HotFraction: 1.5},
		"theta >= 2":           {Pattern: PatternZipf, ZipfTheta: 2},
		"one chase node":       {Pattern: PatternChase, ChaseNodes: 1},
		"write fraction > 1":   {WriteFraction: 2},
		"bad discipline":       {Discipline: "turnstile"},
		"open without rate":    {Discipline: DisciplineOpen},
		"rate on closed loop":  {RateGBps: 4},
		"phase rate on closed": {Phases: []Phase{{DurationUs: 10, RateGBps: 4}, {DurationUs: 10, Off: true}}},
		"zero-length phase":    {Phases: []Phase{{DurationUs: 0}}},
		"tiny working set":     {WorkingSetBytes: 128},
		"oversized hot set":    {HotSetBytes: 8 << 30},
		"oversized workingset": {WorkingSetBytes: 8 << 30},
		// Cross-field combinations that would fail compilation must fail
		// validation too, or the daemon and CLI would accept specs that
		// later surface as run-time panics.
		"stride beyond set":    {Pattern: PatternStride, StrideBytes: 8192, WorkingSetBytes: 8192},
		"hot set beyond set":   {Pattern: PatternHotspot, HotSetBytes: 2 << 20, WorkingSetBytes: 1 << 20},
		"zipf table too large": {Pattern: PatternZipf, WorkingSetBytes: 4 << 30},
		"chase beyond set":     {Pattern: PatternChase, ChaseNodes: 4096, WorkingSetBytes: 64 << 10},
		"phase handoff bad":    {WorkingSetBytes: 4096, Phases: []Phase{{DurationUs: 1, Pattern: PatternStride}}},
		"unsustainable mix":    {WriteFraction: 0.95, MixRunLength: 8},
	}
	for name, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", name, spec)
		}
	}
	// The zero value and a fully-specified spec must both pass.
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
	ok := Spec{
		Pattern: PatternZipf, ZipfTheta: 1.2, WorkingSetBytes: 1 << 20,
		WriteFraction: 0.25, MixRunLength: 8,
		Discipline: DisciplineOpen, RateGBps: 2,
		Phases: []Phase{{DurationUs: 10, RateGBps: 4}, {DurationUs: 10, Off: true}},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	// Open-loop is fine without a base rate when every active phase
	// carries one.
	phased := Spec{Discipline: DisciplineOpen, Phases: []Phase{
		{DurationUs: 5, RateGBps: 3}, {DurationUs: 5, Off: true},
	}}
	if err := phased.Validate(); err != nil {
		t.Errorf("phase-rated open spec rejected: %v", err)
	}
}

// drain pulls n requests from a freshly compiled generator.
func drain(t *testing.T, spec Spec, size int, seed uint64, n int) ([]uint64, []bool) {
	t.Helper()
	g, err := Compile(spec, size, seed)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]uint64, n)
	writes := make([]bool, n)
	for i := range addrs {
		addrs[i], writes[i] = g.Next()
	}
	return addrs, writes
}

func TestCompileDeterminism(t *testing.T) {
	spec := Spec{Pattern: PatternZipf, ZipfTheta: 1.1, WriteFraction: 0.3, MixRunLength: 4}
	a1, w1 := drain(t, spec, 64, 7, 4096)
	a2, w2 := drain(t, spec, 64, 7, 4096)
	for i := range a1 {
		if a1[i] != a2[i] || w1[i] != w2[i] {
			t.Fatalf("same seed diverged at request %d: (%#x,%v) vs (%#x,%v)", i, a1[i], w1[i], a2[i], w2[i])
		}
	}
	b, _ := drain(t, spec, 64, 8, 4096)
	same := 0
	for i := range a1 {
		if a1[i] == b[i] {
			same++
		}
	}
	if same > len(a1)/10 {
		t.Fatalf("different seeds agree on %d of %d addresses", same, len(a1))
	}
}

func TestUniformAlignmentAndSpan(t *testing.T) {
	span := uint64(1 << 20)
	addrs, _ := drain(t, Spec{WorkingSetBytes: span}, 128, 1, 10000)
	for _, a := range addrs {
		if a >= span {
			t.Fatalf("address %#x outside working set %#x", a, span)
		}
		if a%128 != 0 {
			t.Fatalf("address %#x not 128-byte aligned", a)
		}
	}
}

func TestSequentialScans(t *testing.T) {
	addrs, _ := drain(t, Spec{Pattern: PatternSequential, WorkingSetBytes: 1 << 20}, 64, 1, 100)
	for i, a := range addrs {
		if want := uint64(i) * 64; a != want {
			t.Fatalf("sequential request %d at %#x, want %#x", i, a, want)
		}
	}
}

func TestStrideWraps(t *testing.T) {
	span := uint64(4096 * 4)
	addrs, _ := drain(t, Spec{Pattern: PatternStride, StrideBytes: 4096, WorkingSetBytes: span}, 64, 1, 8)
	for i, a := range addrs {
		if want := uint64(i) * 4096 % span; a != want {
			t.Fatalf("stride request %d at %#x, want %#x", i, a, want)
		}
	}
}

// TestZipfSkew checks the sampler against its analytic head: the
// hottest block's frequency must match 1/zeta(n, theta), and must grow
// with theta.
func TestZipfSkew(t *testing.T) {
	const n = 200000
	span := uint64(1 << 20) // 8192 blocks of 128 B
	blocks := span / 128
	prevTop := 0.0
	for _, theta := range []float64{0.5, 0.99, 1.4} {
		addrs, _ := drain(t, Spec{Pattern: PatternZipf, ZipfTheta: theta, WorkingSetBytes: span}, 128, 11, n)
		hits := map[uint64]int{}
		for _, a := range addrs {
			hits[a]++
		}
		top := float64(hits[0]) / n
		want := 1 / zeta(blocks, theta)
		if math.Abs(top-want) > 0.15*want+0.002 {
			t.Errorf("theta %.2f: top-block frequency %.4f, analytic %.4f", theta, top, want)
		}
		if top <= prevTop {
			t.Errorf("theta %.2f: top-block frequency %.4f did not grow from %.4f", theta, top, prevTop)
		}
		prevTop = top
	}
}

func TestHotspotFraction(t *testing.T) {
	spec := Spec{
		Pattern:     PatternHotspot,
		HotFraction: 0.9,
		HotSetBytes: 1 << 20,
		// 64 MiB working set: cold draws land in the hot prefix 1/64th
		// of the time, so the expected hot share is 0.9 + 0.1/64.
		WorkingSetBytes: 64 << 20,
	}
	addrs, _ := drain(t, spec, 128, 3, 100000)
	hot := 0
	for _, a := range addrs {
		if a < 1<<20 {
			hot++
		}
	}
	got := float64(hot) / float64(len(addrs))
	want := 0.9 + 0.1/64
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("hot-set share %.4f, want ~%.4f", got, want)
	}
}

// TestChaseCycle proves the pointer-chase walk is one full cycle: from
// any start, n steps visit every node exactly once and return home.
func TestChaseCycle(t *testing.T) {
	const nodes = 1000
	g, err := Compile(Spec{Pattern: PatternChase, ChaseNodes: nodes}, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]int, nodes)
	var first uint64
	for i := 0; i < nodes; i++ {
		a, _ := g.Next()
		if i == 0 {
			first = a
		}
		seen[a]++
	}
	if len(seen) != nodes {
		t.Fatalf("walk of %d steps visited %d distinct nodes, want %d (not a single cycle)", nodes, len(seen), nodes)
	}
	for a, c := range seen {
		if c != 1 {
			t.Fatalf("node %#x visited %d times in one lap", a, c)
		}
	}
	next, _ := g.Next()
	if next != first {
		t.Fatalf("lap did not close: step %d at %#x, lap started at %#x", nodes, next, first)
	}
}

// TestMixer checks both mixer modes: the long-run write fraction must
// match the spec, and a run length must actually lengthen write runs.
func TestMixer(t *testing.T) {
	count := func(spec Spec) (frac float64, meanRun float64) {
		_, writes := drain(t, spec, 64, 9, 100000)
		nw, runs, cur := 0, 0, 0
		for _, w := range writes {
			if w {
				nw++
				cur++
			} else if cur > 0 {
				runs++
				cur = 0
			}
		}
		if cur > 0 {
			runs++
		}
		if runs == 0 {
			return float64(nw) / float64(len(writes)), 0
		}
		return float64(nw) / float64(len(writes)), float64(nw) / float64(runs)
	}

	iidFrac, iidRun := count(Spec{WriteFraction: 0.3})
	if math.Abs(iidFrac-0.3) > 0.01 {
		t.Errorf("iid write fraction %.3f, want 0.3", iidFrac)
	}
	markovFrac, markovRun := count(Spec{WriteFraction: 0.3, MixRunLength: 8})
	if math.Abs(markovFrac-0.3) > 0.02 {
		t.Errorf("markov write fraction %.3f, want 0.3", markovFrac)
	}
	if markovRun < 6 || markovRun > 10 {
		t.Errorf("markov mean write-run %.2f, want ~8", markovRun)
	}
	if markovRun < 2*iidRun {
		t.Errorf("run length did not bite: markov %.2f vs iid %.2f", markovRun, iidRun)
	}

	if _, writes := drain(t, Spec{}, 64, 1, 1000); anyTrue(writes) {
		t.Error("zero spec issued writes; default must be read-only")
	}
	if _, writes := drain(t, Spec{WriteFraction: 1}, 64, 1, 1000); !allTrue(writes) {
		t.Error("writeFraction 1 issued reads")
	}
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

func allTrue(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}

// TestPhases checks script resolution: durations, rate inheritance and
// overrides, off phases, and pattern handoff via UsePhase.
func TestPhases(t *testing.T) {
	spec := Spec{
		Pattern:    PatternSequential,
		Discipline: DisciplineOpen,
		RateGBps:   2,
		Phases: []Phase{
			{DurationUs: 10},                            // base pattern, base rate
			{DurationUs: 5, RateGBps: 6},                // rate override
			{DurationUs: 3, Off: true},                  // silence
			{DurationUs: 7, Pattern: PatternSequential}, // same name: still base
		},
		WorkingSetBytes: 1 << 20,
	}
	g, err := Compile(spec, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	ph := g.Phases()
	if len(ph) != 4 {
		t.Fatalf("compiled %d phases, want 4", len(ph))
	}
	wantDur := []sim.Time{10 * sim.Microsecond, 5 * sim.Microsecond, 3 * sim.Microsecond, 7 * sim.Microsecond}
	wantRate := []float64{2, 6, 0, 2}
	for i := range ph {
		if ph[i].Duration != wantDur[i] {
			t.Errorf("phase %d duration %v, want %v", i, ph[i].Duration, wantDur[i])
		}
		if ph[i].RateGBps != wantRate[i] {
			t.Errorf("phase %d rate %g, want %g", i, ph[i].RateGBps, wantRate[i])
		}
	}
	if !ph[2].Off || ph[0].Off {
		t.Error("off flags wrong")
	}

	// A handoff to a different pattern must switch streams and back.
	handoff := Spec{
		Pattern:         PatternSequential,
		WorkingSetBytes: 1 << 20,
		Phases: []Phase{
			{DurationUs: 1},
			{DurationUs: 1, Pattern: PatternUniform},
		},
	}
	h, err := Compile(handoff, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	a0, _ := h.Next() // sequential: 0
	a1, _ := h.Next() // sequential: 64
	if a0 != 0 || a1 != 64 {
		t.Fatalf("base phase not sequential: %#x, %#x", a0, a1)
	}
	h.UsePhase(1)
	uniform := false
	prev, _ := h.Next()
	for i := 0; i < 8; i++ {
		a, _ := h.Next()
		if a != prev+64 {
			uniform = true
		}
		prev = a
	}
	if !uniform {
		t.Error("phase 1 still sequential after handoff")
	}
	h.UsePhase(2) // wraps to phase 0: back to the base scan where it left off
	a, _ := h.Next()
	if a%64 != 0 || a >= 1<<20 {
		t.Fatalf("post-handoff address %#x invalid", a)
	}
}

// TestEveryNamedPatternCompiles pins validation and compilation
// together: every name PatternNames advertises must compile at every
// valid request size, so the two tables cannot drift apart.
func TestEveryNamedPatternCompiles(t *testing.T) {
	for _, name := range PatternNames() {
		for _, size := range []int{16, 48, 128} {
			g, err := Compile(Spec{Pattern: name}, size, 1)
			if err != nil {
				t.Errorf("%s at %dB: %v", name, size, err)
				continue
			}
			if a, _ := g.Next(); a >= 4<<30 {
				t.Errorf("%s at %dB: address %#x outside the cube", name, size, a)
			}
		}
	}
}

// TestValidateForMatchesCompile fuzzes the agreement the daemon relies
// on: whatever ValidateFor accepts must Compile, and whatever it
// rejects must not.
func TestValidateForMatchesCompile(t *testing.T) {
	rng := NewRNG(99)
	sizes := []int{16, 32, 64, 128}
	for i := 0; i < 500; i++ {
		spec := Spec{
			Pattern:         PatternNames()[rng.Intn(len(patternNames))],
			WorkingSetBytes: uint64(rng.Intn(1<<24)) &^ 15,
			StrideBytes:     rng.Intn(1<<14) &^ 15,
			HotSetBytes:     uint64(rng.Intn(1 << 22)),
			ZipfTheta:       rng.Float64() * 1.9,
			ChaseNodes:      rng.Intn(1 << 14),
			WriteFraction:   rng.Float64(),
			MixRunLength:    rng.Intn(16),
		}
		size := sizes[rng.Intn(len(sizes))]
		vErr := spec.ValidateFor(size)
		_, cErr := Compile(spec, size, 1)
		if (vErr == nil) != (cErr == nil) {
			t.Fatalf("validation and compilation disagree on %+v at %dB:\n  validate: %v\n  compile: %v", spec, size, vErr, cErr)
		}
	}
}

// TestNextDoesNotAllocate is the hot-loop guard behind the CI bench
// smoke: one request must cost zero heap allocations for every pattern.
func TestNextDoesNotAllocate(t *testing.T) {
	specs := map[string]Spec{
		"uniform":    {},
		"stride":     {Pattern: PatternStride},
		"sequential": {Pattern: PatternSequential},
		"hotspot":    {Pattern: PatternHotspot},
		"zipf":       {Pattern: PatternZipf, WorkingSetBytes: 1 << 20},
		"chase":      {Pattern: PatternChase},
		"mixed":      {WriteFraction: 0.5, MixRunLength: 8},
	}
	for name, spec := range specs {
		g, err := Compile(spec, 128, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var sink uint64
		allocs := testing.AllocsPerRun(1000, func() {
			a, w := g.Next()
			sink += a
			if w {
				sink++
			}
		})
		if allocs != 0 {
			t.Errorf("%s: Next allocates %.1f per request, want 0", name, allocs)
		}
		_ = sink
	}
}
