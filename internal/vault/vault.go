// Package vault implements the HMC vault controller: the per-vault memory
// controller in the logic layer (Section II-A). Each vault owns sixteen
// DRAM banks behind per-bank request queues and a 32-byte-granularity TSV
// data path whose limited bandwidth (~10 GB/s) is one of the bottlenecks
// the paper identifies (Sections IV-A and IV-F).
//
// The per-bank queue structure is the design choice Figure 14 infers from
// Little's law: saturated outstanding-request counts grow linearly with
// the number of banks accessed, so the controller must dedicate a queue to
// each bank rather than share one.
package vault

import (
	"fmt"

	"hmcsim/internal/dram"
	"hmcsim/internal/obs"
	"hmcsim/internal/packet"
	"hmcsim/internal/phys"
	"hmcsim/internal/sim"
)

// RespOutlet consumes completed transactions, typically the response side
// of the internal NoC. TryOut must be non-blocking; when it reports false
// the vault registers a wake-up via NotifyOut for that transaction.
type RespOutlet interface {
	TryOut(tr *packet.Transaction) bool
	NotifyOut(tr *packet.Transaction, fn func())
}

// Config parameterizes one vault controller.
type Config struct {
	ID             int
	Banks          int // banks per vault (16 in HMC 1.1)
	BankQueueDepth int // requests queued per bank
	Timing         dram.Timing
	Policy         dram.PagePolicy
	// TSVBandwidth is the vault's internal data-path bandwidth. Service
	// time is charged on the counted transaction size (request plus
	// response bytes), which reproduces the ~10 GB/s plateau the paper
	// measures for within-vault access patterns regardless of request
	// size.
	TSVBandwidth phys.Bandwidth
	// TSVWindow bounds how many transactions may sit between bank issue
	// and TSV completion; it throttles banks when the TSV is the
	// bottleneck.
	TSVWindow   int
	CtrlLatency sim.Time // fixed controller pipeline latency per response

	// RecvQueueDepth sizes the controller's shared input buffer between
	// the NoC and the per-bank queues. The dispatcher moves requests out
	// of it into bank queues out of order across banks, so one full bank
	// does not stall traffic to its siblings until the input buffer
	// itself fills with requests for the blocked bank.
	RecvQueueDepth int

	// Trace, when non-nil, observes admissions, rejections and queue
	// occupancy. Nil (the default) keeps the admission path hook a
	// single predictable branch.
	Trace *obs.VaultTracer
}

// DefaultConfig returns the HMC 1.1 vault parameters used by the
// reproduction.
func DefaultConfig(id int) Config {
	return Config{
		ID:             id,
		Banks:          16,
		BankQueueDepth: 128,
		Timing:         dram.DefaultTiming(),
		Policy:         dram.ClosedPage,
		TSVBandwidth:   phys.GBps(10),
		TSVWindow:      8,
		CtrlLatency:    4 * sim.Nanosecond,
		RecvQueueDepth: 32,
	}
}

// Vault is one vault controller plus its DRAM banks.
type Vault struct {
	eng  *sim.Engine
	cfg  Config
	resp RespOutlet

	banks    []*dram.Bank
	recvQ    *sim.Queue[*packet.Transaction]
	queues   []*sim.Queue[*packet.Transaction]
	bankBusy []bool

	tsv       *sim.Server
	tsvTokens *sim.TokenPool

	out           *sim.Queue[*packet.Transaction]
	pumping       bool
	dispatching   bool
	dispatchAgain bool
	acceptWait    sim.Waiters

	// Pre-bound callbacks and in-flight rings: each pipeline stage fires
	// in a deterministic FIFO order (monotone per-bank data completions,
	// serialized TSV reservations, constant controller latency), so the
	// transaction a callback concerns is always the head of the matching
	// ring and no per-event closures are needed.
	kickFns      []func() // kickFns[b] retries bank b on TSV-token release
	bankReadyFns []func() // bankReadyFns[b] frees bank b and re-kicks it
	dataDoneFns  []func() // dataDoneFns[b] moves bank b's head into the TSV
	dataQ        []sim.Ring[*packet.Transaction]
	tsvFn        func()
	tsvQ         sim.Ring[*packet.Transaction]
	ctrlFn       func()
	ctrlQ        sim.Ring[*packet.Transaction]
	pumpFn       func()

	reads, writes uint64
	bytesServed   uint64

	// nq mirrors the total occupancy of the bank queues, so tracing (and
	// Queued) read it in O(1) instead of scanning sixteen queues.
	nq    int
	trace *obs.VaultTracer
}

// New builds a vault. resp receives completed transactions.
func New(eng *sim.Engine, cfg Config, resp RespOutlet) *Vault {
	if cfg.Banks <= 0 || cfg.BankQueueDepth <= 0 {
		panic(fmt.Sprintf("vault %d: invalid geometry %+v", cfg.ID, cfg))
	}
	if err := cfg.Timing.Validate(); err != nil {
		panic(err)
	}
	if cfg.RecvQueueDepth <= 0 {
		cfg.RecvQueueDepth = 16
	}
	v := &Vault{
		eng:       eng,
		cfg:       cfg,
		resp:      resp,
		banks:     make([]*dram.Bank, cfg.Banks),
		recvQ:     sim.NewQueue[*packet.Transaction](cfg.RecvQueueDepth),
		queues:    make([]*sim.Queue[*packet.Transaction], cfg.Banks),
		bankBusy:  make([]bool, cfg.Banks),
		tsv:       sim.NewServer(eng),
		tsvTokens: sim.NewTokenPool(cfg.TSVWindow),
		out:       sim.NewQueue[*packet.Transaction](0),
		trace:     cfg.Trace,
	}
	v.kickFns = make([]func(), cfg.Banks)
	v.bankReadyFns = make([]func(), cfg.Banks)
	v.dataDoneFns = make([]func(), cfg.Banks)
	v.dataQ = make([]sim.Ring[*packet.Transaction], cfg.Banks)
	for i := range v.banks {
		v.banks[i] = dram.NewBank(cfg.Timing, cfg.Policy)
		if cfg.Timing.TREFI > 0 {
			// Stagger refresh across the cube so vaults and banks never
			// refresh in lockstep, as real controllers schedule it.
			slot := sim.Time(cfg.ID*cfg.Banks + i)
			v.banks[i].SetRefreshPhase(slot * cfg.Timing.TREFI / sim.Time(16*cfg.Banks))
		}
		v.queues[i] = sim.NewQueue[*packet.Transaction](cfg.BankQueueDepth)
		b := i
		v.kickFns[b] = func() { v.kickBank(b) }
		v.bankReadyFns[b] = func() {
			v.bankBusy[b] = false
			v.kickBank(b)
		}
		v.dataDoneFns[b] = func() { v.dataDone(b) }
	}
	v.tsvFn = v.tsvDone
	v.ctrlFn = v.ctrlDone
	v.pumpFn = v.pumpOut
	return v
}

// ID returns the vault number.
func (v *Vault) ID() int { return v.cfg.ID }

// TryAccept enqueues tr into the controller's shared input buffer. It
// reports false, leaving the vault unchanged, when the buffer is full;
// the caller should register a retry with NotifyAccept. This is the
// back-pressure boundary that pushes queuing out into the NoC and
// ultimately the host.
func (v *Vault) TryAccept(tr *packet.Transaction) bool {
	if tr.Bank < 0 || tr.Bank >= v.cfg.Banks {
		panic(fmt.Sprintf("vault %d: transaction for bank %d", v.cfg.ID, tr.Bank))
	}
	now := v.eng.Now()
	// Fast path: move straight into the bank queue when possible.
	if v.recvQ.Empty() && v.queues[tr.Bank].Push(now, tr) {
		v.nq++
		tr.TVaultIn = now
		v.trace.OnAccept(v.nq)
		v.kickBank(tr.Bank)
		return true
	}
	if !v.recvQ.Push(now, tr) {
		v.trace.OnReject()
		return false
	}
	tr.TVaultIn = now
	v.trace.OnAccept(v.nq + v.recvQ.Len())
	v.dispatch()
	return true
}

// dispatch moves requests from the input buffer into bank queues,
// skipping over requests whose bank is full (out-of-order across banks,
// in-order within a bank because the scan preserves arrival order per
// bank). Re-entrant calls — kickBank frees a slot mid-scan — are deferred
// to another pass rather than recursing into the live scan.
func (v *Vault) dispatch() {
	if v.dispatching {
		v.dispatchAgain = true
		return
	}
	v.dispatching = true
	now := v.eng.Now()
	moved := false
	for {
		v.dispatchAgain = false
		for i := 0; i < v.recvQ.Len(); {
			tr := v.recvQ.At(i)
			if v.queues[tr.Bank].Push(now, tr) {
				v.nq++
				v.recvQ.RemoveAt(now, i)
				v.kickBank(tr.Bank)
				moved = true
				continue // same index now holds the next element
			}
			i++
		}
		if !v.dispatchAgain {
			break
		}
	}
	v.dispatching = false
	if moved {
		v.wakeAcceptors()
	}
}

// NotifyAccept registers fn to run the next time any bank queue frees a
// slot.
func (v *Vault) NotifyAccept(fn func()) { v.acceptWait.Add(fn) }

func (v *Vault) wakeAcceptors() { v.acceptWait.Fire() }

// kickBank issues the head of bank b's queue if the bank is idle and the
// TSV window has room.
func (v *Vault) kickBank(b int) {
	if v.bankBusy[b] || v.queues[b].Empty() {
		return
	}
	if !v.tsvTokens.TryAcquire(1) {
		v.tsvTokens.Notify(v.kickFns[b])
		return
	}
	now := v.eng.Now()
	tr, _ := v.queues[b].Pop(now)
	v.nq--
	v.bankBusy[b] = true
	v.dispatch()

	tr.TIssued = now
	if tr.Write {
		v.writes++
	} else {
		v.reads++
	}
	v.bytesServed += uint64(tr.Size)

	dataDone, bankReady := v.banks[b].Access(now, tr.Row, tr.Size)
	v.eng.At(bankReady, v.bankReadyFns[b])
	// Per-bank data completions are monotone (the bank model's data bus
	// cursor only moves forward), so the transaction dataDoneFns[b]
	// concerns is always the head of the bank's in-flight ring.
	v.dataQ[b].Push(tr)
	v.eng.At(dataDone, v.dataDoneFns[b])
}

// dataDone fires when bank b's oldest outstanding access finishes its
// data burst: the completed access crosses the vault's internal data
// path; service time covers the counted request+response bytes.
func (v *Vault) dataDone(b int) {
	tr := v.dataQ[b].Pop()
	v.tsvQ.Push(tr)
	v.tsv.Reserve(v.cfg.TSVBandwidth.TimeFor(tr.RoundTripBytes()), v.tsvFn)
}

// tsvDone fires when the TSV data path finishes its oldest reservation;
// reservations complete in Reserve order, so the head of tsvQ is the
// transaction that just crossed.
func (v *Vault) tsvDone() {
	tr := v.tsvQ.Pop()
	v.tsvTokens.Release(1)
	v.ctrlQ.Push(tr)
	v.eng.Schedule(v.cfg.CtrlLatency, v.ctrlFn)
}

// ctrlDone fires CtrlLatency after a transaction crossed the TSV; the
// latency is constant, so completions stay in FIFO order.
func (v *Vault) ctrlDone() {
	tr := v.ctrlQ.Pop()
	v.out.Push(v.eng.Now(), tr)
	v.pumpOut()
}

// pumpOut drains completed transactions into the response outlet.
func (v *Vault) pumpOut() {
	if v.pumping {
		return
	}
	v.pumping = true
	defer func() { v.pumping = false }()
	for {
		tr, ok := v.out.Peek()
		if !ok {
			return
		}
		if !v.resp.TryOut(tr) {
			v.resp.NotifyOut(tr, v.pumpFn)
			return
		}
		v.out.Pop(v.eng.Now())
		tr.TVaultOut = v.eng.Now()
	}
}

// QueueLen returns the occupancy of bank b's request queue.
func (v *Vault) QueueLen(b int) int { return v.queues[b].Len() }

// RecvQueued returns the occupancy of the shared input buffer.
func (v *Vault) RecvQueued() int { return v.recvQ.Len() }

// Queued returns the total requests waiting in all bank queues.
func (v *Vault) Queued() int { return v.nq }

// Reads returns the number of read transactions issued to DRAM.
func (v *Vault) Reads() uint64 { return v.reads }

// Writes returns the number of write transactions issued to DRAM.
func (v *Vault) Writes() uint64 { return v.writes }

// BytesServed returns the total data bytes moved by the banks.
func (v *Vault) BytesServed() uint64 { return v.bytesServed }

// Bank exposes bank b's DRAM model for inspection in tests and stats.
func (v *Vault) Bank(b int) *dram.Bank { return v.banks[b] }

// TSVUtilization reports the internal data path's busy fraction.
func (v *Vault) TSVUtilization(now sim.Time) float64 { return v.tsv.Utilization(now) }

// OutQueued returns completed transactions waiting for the response
// network (diagnostics).
func (v *Vault) OutQueued() int { return v.out.Len() }

// TSVHeld returns how many TSV window slots are currently held.
func (v *Vault) TSVHeld() int { return v.cfg.TSVWindow - v.tsvTokens.Available() }
