package vault

import (
	"testing"

	"hmcsim/internal/packet"
	"hmcsim/internal/phys"
	"hmcsim/internal/sim"
)

// collector is a RespOutlet that accepts everything (optionally throttled).
type collector struct {
	got     []*packet.Transaction
	block   bool
	waiters []func()
}

func (c *collector) TryOut(tr *packet.Transaction) bool {
	if c.block {
		return false
	}
	c.got = append(c.got, tr)
	return true
}

func (c *collector) NotifyOut(_ *packet.Transaction, fn func()) { c.waiters = append(c.waiters, fn) }

func (c *collector) unblock() {
	c.block = false
	w := c.waiters
	c.waiters = nil
	for _, fn := range w {
		fn()
	}
}

func read(id uint64, bank int, row uint64, size int) *packet.Transaction {
	return &packet.Transaction{ID: id, Bank: bank, Row: row, Size: size}
}

func newTestVault(t *testing.T) (*sim.Engine, *Vault, *collector) {
	t.Helper()
	eng := sim.NewEngine()
	c := &collector{}
	return eng, New(eng, DefaultConfig(0), c), c
}

func TestSingleReadCompletes(t *testing.T) {
	eng, v, c := newTestVault(t)
	tr := read(1, 0, 7, 32)
	eng.Schedule(0, func() {
		if !v.TryAccept(tr) {
			t.Error("accept failed on empty vault")
		}
	})
	eng.Drain()
	if len(c.got) != 1 {
		t.Fatalf("completed %d transactions, want 1", len(c.got))
	}
	if tr.TVaultOut <= tr.TVaultIn {
		t.Fatalf("timestamps not ordered: in=%v out=%v", tr.TVaultIn, tr.TVaultOut)
	}
	// Latency must cover at least tRCD+tCL plus one beat plus TSV time.
	cfg := DefaultConfig(0)
	minLat := cfg.Timing.TRCD + cfg.Timing.TCL + cfg.Timing.TBurst
	if lat := tr.TVaultOut - tr.TVaultIn; lat < minLat {
		t.Fatalf("vault latency %v below DRAM floor %v", lat, minLat)
	}
}

func TestBankQueueBackpressure(t *testing.T) {
	eng, v, _ := newTestVault(t)
	cfg := DefaultConfig(0)
	capacity := cfg.BankQueueDepth + cfg.RecvQueueDepth
	eng.Schedule(0, func() {
		accepted := 0
		for i := 0; ; i++ {
			if !v.TryAccept(read(uint64(i), 3, 0, 16)) {
				break
			}
			accepted++
		}
		// The bank queue plus the shared input buffer fill, plus the one
		// request popped for immediate issue.
		if accepted < capacity || accepted > capacity+2 {
			t.Errorf("accepted %d before backpressure, want ~%d", accepted, capacity)
		}
	})
	eng.Drain()
}

func TestNotifyAcceptWakes(t *testing.T) {
	eng, v, _ := newTestVault(t)
	woken := false
	eng.Schedule(0, func() {
		for i := 0; v.TryAccept(read(uint64(i), 0, 0, 16)); i++ {
		}
		v.NotifyAccept(func() { woken = true })
	})
	eng.Drain()
	if !woken {
		t.Fatal("acceptor never woken after queue drained")
	}
}

func TestBanksOperateInParallel(t *testing.T) {
	// Two requests to different banks overlap; two to one bank serialize.
	engA := sim.NewEngine()
	cA := &collector{}
	vA := New(engA, DefaultConfig(0), cA)
	engA.Schedule(0, func() {
		vA.TryAccept(read(1, 0, 0, 32))
		vA.TryAccept(read(2, 1, 0, 32))
	})
	engA.Drain()
	parallelEnd := engA.Now()

	engB := sim.NewEngine()
	cB := &collector{}
	vB := New(engB, DefaultConfig(0), cB)
	engB.Schedule(0, func() {
		vB.TryAccept(read(1, 0, 0, 32))
		vB.TryAccept(read(2, 0, 1, 32))
	})
	engB.Drain()
	serialEnd := engB.Now()

	if parallelEnd >= serialEnd {
		t.Fatalf("parallel banks (%v) not faster than single bank (%v)", parallelEnd, serialEnd)
	}
}

func TestSingleBankRateIsTRCLimited(t *testing.T) {
	// Drive one bank hard; completions must be spaced at least tRC apart
	// in steady state. This is the "1 bank" bottleneck of Figure 6.
	eng, v, c := newTestVault(t)
	const n = 50
	eng.Schedule(0, func() {
		for i := 0; i < n; i++ {
			v.TryAccept(read(uint64(i), 0, uint64(i), 16))
		}
	})
	eng.Drain()
	if len(c.got) != n {
		t.Fatalf("completed %d, want %d", len(c.got), n)
	}
	cfg := DefaultConfig(0)
	elapsed := eng.Now()
	perReq := elapsed / n
	if perReq < cfg.Timing.TRC() {
		t.Fatalf("per-request time %v below tRC %v", perReq, cfg.Timing.TRC())
	}
}

func TestTSVCountedByteCap(t *testing.T) {
	// Spread load over all 16 banks so DRAM is not the limit; the
	// counted-byte throughput through the vault must respect
	// ~TSVBandwidth. This is the 10 GB/s plateau of Figures 6 and 13.
	eng := sim.NewEngine()
	c := &collector{}
	cfg := DefaultConfig(0)
	v := New(eng, cfg, c)
	const n = 2000
	size := 128
	eng.Schedule(0, func() {
		var issue func(i int)
		issue = func(i int) {
			if i >= n {
				return
			}
			tr := read(uint64(i), i%16, uint64(i/16), size)
			if !v.TryAccept(tr) {
				v.NotifyAccept(func() { issue(i) })
				return
			}
			issue(i + 1)
		}
		issue(0)
	})
	eng.Drain()
	counted := uint64(n) * uint64(packet.RoundTripBytes(false, size))
	bw := phys.Rate(counted, eng.Now())
	if bw.GBpsValue() > cfg.TSVBandwidth.GBpsValue()*1.02 {
		t.Fatalf("vault counted bandwidth %v exceeds TSV cap %v", bw, cfg.TSVBandwidth)
	}
	if bw.GBpsValue() < cfg.TSVBandwidth.GBpsValue()*0.85 {
		t.Fatalf("vault counted bandwidth %v far below TSV cap %v", bw, cfg.TSVBandwidth)
	}
}

func TestResponseBackpressureHolds(t *testing.T) {
	eng := sim.NewEngine()
	c := &collector{block: true}
	v := New(eng, DefaultConfig(0), c)
	eng.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			v.TryAccept(read(uint64(i), i, 0, 16))
		}
	})
	eng.Schedule(sim.Millisecond, func() {
		if len(c.got) != 0 {
			t.Errorf("responses leaked past blocked outlet: %d", len(c.got))
		}
		c.unblock()
	})
	eng.Drain()
	if len(c.got) != 4 {
		t.Fatalf("completed %d after unblock, want 4", len(c.got))
	}
	for _, tr := range c.got {
		if tr.TVaultOut < sim.Millisecond {
			t.Fatalf("TVaultOut %v predates unblock", tr.TVaultOut)
		}
	}
}

func TestReadWriteCounters(t *testing.T) {
	eng, v, _ := newTestVault(t)
	eng.Schedule(0, func() {
		v.TryAccept(read(1, 0, 0, 64))
		w := read(2, 1, 0, 64)
		w.Write = true
		v.TryAccept(w)
	})
	eng.Drain()
	if v.Reads() != 1 || v.Writes() != 1 {
		t.Fatalf("reads/writes = %d/%d, want 1/1", v.Reads(), v.Writes())
	}
	if v.BytesServed() != 128 {
		t.Fatalf("bytes served = %d, want 128", v.BytesServed())
	}
}

func TestConservationUnderLoad(t *testing.T) {
	// Everything accepted eventually completes exactly once.
	eng := sim.NewEngine()
	c := &collector{}
	v := New(eng, DefaultConfig(0), c)
	rng := sim.NewRand(42)
	accepted := 0
	eng.Schedule(0, func() {
		var issue func(i int)
		issue = func(i int) {
			if i >= 500 {
				return
			}
			tr := read(uint64(i), rng.Intn(16), uint64(rng.Intn(1024)), 16*(rng.Intn(8)+1))
			if !v.TryAccept(tr) {
				v.NotifyAccept(func() { issue(i) })
				return
			}
			accepted++
			issue(i + 1)
		}
		issue(0)
	})
	eng.Drain()
	if accepted != 500 || len(c.got) != 500 {
		t.Fatalf("accepted %d, completed %d, want 500/500", accepted, len(c.got))
	}
	seen := map[uint64]bool{}
	for _, tr := range c.got {
		if seen[tr.ID] {
			t.Fatalf("transaction %d completed twice", tr.ID)
		}
		seen[tr.ID] = true
	}
}

func TestTimestampOrdering(t *testing.T) {
	eng, v, c := newTestVault(t)
	eng.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			v.TryAccept(read(uint64(i), i%4, uint64(i), 32))
		}
	})
	eng.Drain()
	for _, tr := range c.got {
		if !(tr.TVaultIn <= tr.TIssued && tr.TIssued < tr.TVaultOut) {
			t.Fatalf("timestamps out of order: in=%v issued=%v out=%v",
				tr.TVaultIn, tr.TIssued, tr.TVaultOut)
		}
	}
}
