package hmcsim

import (
	"context"
	"sync"
	"time"
)

// Progress is a live snapshot of a running experiment: how many sweep
// points have finished, and how much simulated work the engines built
// via Options.NewSystemCtx have retired so far.
type Progress struct {
	Done      int    `json:"done"`      // sweep points finished
	Total     int    `json:"total"`     // sweep points scheduled
	Events    uint64 `json:"events"`    // engine events retired
	SimTimePs int64  `json:"simTimePs"` // simulated time advanced, summed across engines
}

// WithProgress returns a context that delivers Progress snapshots to fn
// while experiments run under it. Sweep reports every point boundary;
// engines from Options.NewSystemCtx report simulation headway at their
// cancellation checkpoints, rate-limited to a few updates per second.
//
// fn is called from worker goroutines but never concurrently; it must
// not block for long, since engine checkpoints wait on it.
func WithProgress(ctx context.Context, fn func(Progress)) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKey{}, &progressSink{fn: fn})
}

type progressKey struct{}

// progressSink serializes Progress updates from concurrently running
// sweep workers and rate-limits the high-frequency engine ticks.
type progressSink struct {
	mu   sync.Mutex
	fn   func(Progress)
	cur  Progress
	last time.Time
}

const progressMinGap = 100 * time.Millisecond

func sinkFrom(ctx context.Context) *progressSink {
	s, _ := ctx.Value(progressKey{}).(*progressSink)
	return s
}

// addTotal announces n more sweep points; flushed immediately so
// watchers learn the denominator before the first point lands.
func (s *progressSink) addTotal(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.cur.Total += n
	s.flushLocked()
	s.mu.Unlock()
}

// pointDone records one finished sweep point; flushed immediately since
// point boundaries are rare and the most meaningful signal.
func (s *progressSink) pointDone() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.cur.Done++
	s.flushLocked()
	s.mu.Unlock()
}

// engineTick accumulates simulation headway deltas from engine
// checkpoints; these fire thousands of times per second, so delivery is
// rate-limited.
func (s *progressSink) engineTick(events uint64, simPs int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.cur.Events += events
	s.cur.SimTimePs += simPs
	if time.Since(s.last) >= progressMinGap {
		s.flushLocked()
	}
	s.mu.Unlock()
}

func (s *progressSink) flushLocked() {
	s.last = time.Now()
	s.fn(s.cur)
}
