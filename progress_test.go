// Tests for the observability wiring of the public API: progress
// sinks, trace collectors, and context-cancellation checkpoints in
// systems built with Options.NewSystemCtx.
package hmcsim_test

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hmcsim"
)

func TestWithProgressReportsSweepPoints(t *testing.T) {
	var mu sync.Mutex
	var got []hmcsim.Progress
	pctx := hmcsim.WithProgress(context.Background(), func(p hmcsim.Progress) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	hmcsim.Sweep(pctx, 2, 5, func(i int) int { return i })
	mu.Lock()
	defer mu.Unlock()
	if len(got) < 2 {
		t.Fatalf("want at least 2 progress events (total announcement + points), got %d", len(got))
	}
	if got[0].Total != 5 {
		t.Errorf("first event total = %d, want 5 (announced before points land)", got[0].Total)
	}
	last := got[len(got)-1]
	if last.Done != 5 || last.Total != 5 {
		t.Errorf("final event = %d/%d, want 5/5", last.Done, last.Total)
	}
}

func TestWithProgressCarriesEngineHeadway(t *testing.T) {
	var mu sync.Mutex
	var last hmcsim.Progress
	pctx := hmcsim.WithProgress(context.Background(), func(p hmcsim.Progress) {
		mu.Lock()
		last = p
		mu.Unlock()
	})
	o := hmcsim.Options{Quick: true}
	hmcsim.Sweep(pctx, 1, 2, func(i int) float64 {
		sys := o.NewSystemCtx(pctx)
		m := hmcsim.GUPS{
			Ports: 1, Size: 128, Pattern: hmcsim.AllVaults,
			Warmup: hmcsim.Microsecond, Window: 5 * hmcsim.Microsecond,
		}.Run(sys)
		return m.GBps
	})
	mu.Lock()
	defer mu.Unlock()
	// The point-boundary flushes force out whatever engine headway the
	// rate limiter was still holding.
	if last.Events == 0 {
		t.Error("final progress reports zero engine events despite two simulations")
	}
	if last.SimTimePs == 0 {
		t.Error("final progress reports zero simulated time despite two simulations")
	}
}

func TestNewSystemCtxCancelInterruptsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the simulation even starts
	o := hmcsim.Options{}
	sys := o.NewSystemCtx(ctx)
	window := 500 * hmcsim.Microsecond
	hmcsim.GUPS{
		Ports: 9, Size: 128, Pattern: hmcsim.AllVaults,
		Warmup: 100 * hmcsim.Microsecond, Window: window,
	}.Run(sys)
	// The engine hits its first checkpoint within a few thousand events
	// and stops; a full run would advance simulated time to 600 us.
	if sys.Eng.Now() >= 100*hmcsim.Microsecond {
		t.Fatalf("engine ran to %v despite canceled context", sys.Eng.Now())
	}
	if !sys.Eng.Interrupted() {
		t.Error("engine does not report the checkpoint interrupt")
	}
}

func TestNewSystemCtxBackgroundMatchesNewSystem(t *testing.T) {
	o := hmcsim.Options{Quick: true, Seed: 7}
	run := func(sys *hmcsim.System) hmcsim.Measurement {
		return hmcsim.GUPS{
			Ports: 2, Size: 64, Pattern: hmcsim.AllVaults,
			Warmup: 2 * hmcsim.Microsecond, Window: 10 * hmcsim.Microsecond,
		}.Run(sys)
	}
	plain := run(o.NewSystem())
	wired := run(o.NewSystemCtx(context.Background()))
	if !reflect.DeepEqual(plain, wired) {
		t.Errorf("NewSystemCtx(background) diverges from NewSystem:\n %+v\n %+v", plain, wired)
	}
}

func TestWithTraceCollectsComponentActivity(t *testing.T) {
	ctx, col := hmcsim.WithTrace(context.Background())
	o := hmcsim.Options{Quick: true}
	sys := o.NewSystemCtx(ctx)
	hmcsim.GUPS{
		Ports: 2, Size: 128, Pattern: hmcsim.AllVaults,
		Warmup: 2 * hmcsim.Microsecond, Window: 10 * hmcsim.Microsecond,
	}.Run(sys)

	if col.Systems() != 1 {
		t.Fatalf("collector saw %d systems, want 1", col.Systems())
	}
	text := col.String()
	for _, want := range []string{"tracer summary", "vaults: accepts=", "link0.req", "noc: hops=", "host: tag takes="} {
		if !strings.Contains(text, want) {
			t.Errorf("summary text missing %q:\n%s", want, text)
		}
	}
	blob, err := json.Marshal(col)
	if err != nil {
		t.Fatalf("marshal collector: %v", err)
	}
	var sum struct {
		Vaults struct {
			Accepts uint64 `json:"Accepts"`
		}
		NoC struct {
			Hops uint64 `json:"Hops"`
		}
		Host struct {
			TagTakes uint64 `json:"TagTakes"`
		}
	}
	if err := json.Unmarshal(blob, &sum); err != nil {
		t.Fatalf("unmarshal summary: %v", err)
	}
	if sum.Vaults.Accepts == 0 {
		t.Error("traced run recorded zero vault accepts")
	}
	if sum.NoC.Hops == 0 {
		t.Error("traced run recorded zero NoC hops")
	}
	if sum.Host.TagTakes == 0 {
		t.Error("traced run recorded zero host tag takes")
	}
}

// TestTraceDoesNotChangeResults guards determinism: a traced system
// must produce bit-identical measurements to an untraced one, since
// tracers only observe.
func TestTraceDoesNotChangeResults(t *testing.T) {
	o := hmcsim.Options{Quick: true, Seed: 3}
	run := func(ctx context.Context) hmcsim.Measurement {
		sys := o.NewSystemCtx(ctx)
		return hmcsim.GUPS{
			Ports: 2, Size: 64, Pattern: hmcsim.AllVaults,
			Warmup: 2 * hmcsim.Microsecond, Window: 10 * hmcsim.Microsecond,
		}.Run(sys)
	}
	plain := run(context.Background())
	tctx, _ := hmcsim.WithTrace(context.Background())
	traced := run(tctx)
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("tracing changed the measurement:\n untraced %+v\n traced   %+v", plain, traced)
	}
}
