package hmcsim

import "context"

// SpecRunner executes a Spec somewhere other than this process —
// typically on one or more hmcsimd daemons — and returns the structured
// result. internal/service.Fleet implements it over the HTTP JSON API,
// sharding submissions across daemons and failing work over when one
// becomes unreachable.
type SpecRunner interface {
	RunSpec(ctx context.Context, spec Spec) (Result, error)
}

// RemoteRunner adapts an experiment served by a SpecRunner to the
// Runner interface, so Sweep-shaped programs can farm points out to a
// daemon fleet exactly as they would run them locally:
//
//	fleet := service.NewFleet("http://a:8080,http://b:8080")
//	fig6 := hmcsim.RemoteRunner{Exp: "fig6", On: fleet}
//	results := hmcsim.Sweep(ctx, 0, len(seeds), func(i int) hmcsim.Result {
//	    res, _ := fig6.Run(ctx, hmcsim.Options{Seed: seeds[i]})
//	    return res
//	})
//
// Because daemon workers run single-threaded engines and results are
// cached content-addressed, remote points are bit-identical to local
// ones and repeated points are free.
type RemoteRunner struct {
	// Exp is the experiment's registered name on the serving daemons.
	Exp string
	// Title, when set, overrides Describe's default.
	Title string
	// On executes the submitted specs.
	On SpecRunner
}

// Name returns the remote experiment's registered name.
func (r RemoteRunner) Name() string { return r.Exp }

// Describe returns the runner's headline.
func (r RemoteRunner) Describe() string {
	if r.Title != "" {
		return r.Title
	}
	return "remote experiment " + r.Exp
}

// Run submits the experiment with the given options and waits for its
// result.
func (r RemoteRunner) Run(ctx context.Context, o Options) (Result, error) {
	return r.On.RunSpec(ctx, Spec{Exp: r.Exp, Options: o})
}
