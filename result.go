package hmcsim

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
)

// Result is the structured outcome of one experiment: metadata plus one
// or more named series of points. It marshals to JSON for machine
// consumption; String renders the human-readable tables the runners
// have always printed.
type Result struct {
	Name    string   `json:"name"`
	Title   string   `json:"title"`
	Options Options  `json:"options"`
	Series  []Series `json:"series"`

	// Group is the lockstep-observatory snapshot a sharded run folds in
	// when shard stats were requested (`hmcsim -shardstats`). Omitted
	// otherwise — serial results, AB goldens and daemon cache keys are
	// byte-identical with and without the observatory attached.
	Group *GroupStats `json:"group,omitempty"`

	// Text is the pre-rendered human form, excluded from JSON.
	Text string `json:"-"`
}

// Series is one named metric across a sweep.
type Series struct {
	Name   string  `json:"name"`
	Unit   string  `json:"unit,omitempty"`
	Points []Point `json:"points"`
}

// Point is one sample of a series. Label carries the categorical
// dimension (a pattern name, a backend, a size class); X the numeric
// one (request size, port count, stream length).
type Point struct {
	Label string  `json:"label,omitempty"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
}

// String renders the human-readable form, falling back to a terse
// series dump for results built without one.
func (r Result) String() string {
	if r.Text != "" {
		return r.Text
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", r.Name, r.Title)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %s [%s]: %d points\n", s.Name, s.Unit, len(s.Points))
	}
	return b.String()
}

// JSON marshals the result with stable, human-diffable indentation.
func (r Result) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Get returns the named series.
func (r Result) Get(series string) (Series, bool) {
	for _, s := range r.Series {
		if s.Name == series {
			return s, true
		}
	}
	return Series{}, false
}

// Lookup returns the Y value of the point with the given label and X.
func (s Series) Lookup(label string, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.Label == label && p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Runner is a named, self-describing experiment. The paper's tables and
// figures implement it via the registry in internal/exp; RemoteRunner
// adapts experiments served by a daemon fleet.
//
// Run observes ctx between sweep points: cancelling it makes the runner
// stop scheduling work and return ctx's error instead of the partial
// (and therefore meaningless) Result it swept so far. A non-nil error
// means the Result must be discarded.
type Runner interface {
	Name() string
	Describe() string
	Run(ctx context.Context, o Options) (Result, error)
}
