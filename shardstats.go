package hmcsim

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"hmcsim/internal/obs"
	"hmcsim/internal/sim"
)

// ShardStatsCollector gathers the lockstep observatories of every
// sharded system a run builds (one per sweep point, typically) and
// merges them into a GroupStats snapshot. Obtain one with
// WithShardStats and read it after the run completes.
type ShardStatsCollector struct {
	mu     sync.Mutex
	groups []shardStatsEntry
}

type shardStatsEntry struct {
	g *sim.Group
	t *sim.GroupTracer
}

type shardStatsKey struct{}

// WithShardStats returns a context carrying a fresh shard-stats
// collector. Systems built from the context via NewSystemCtx with
// Options.Shards >= 1 install a lockstep observatory and register with
// the collector; serial systems are unaffected.
func WithShardStats(ctx context.Context) (context.Context, *ShardStatsCollector) {
	c := &ShardStatsCollector{}
	return context.WithValue(ctx, shardStatsKey{}, c), c
}

// shardStatsFrom extracts the collector installed by WithShardStats,
// nil if none.
func shardStatsFrom(ctx context.Context) *ShardStatsCollector {
	c, _ := ctx.Value(shardStatsKey{}).(*ShardStatsCollector)
	return c
}

func (c *ShardStatsCollector) register(g *sim.Group, t *sim.GroupTracer) {
	c.mu.Lock()
	c.groups = append(c.groups, shardStatsEntry{g, t})
	c.mu.Unlock()
}

// Systems returns how many sharded systems have registered.
func (c *ShardStatsCollector) Systems() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.groups)
}

// ShardDist is the wire form of a merged telemetry distribution.
type ShardDist struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   uint64  `json:"max"`
}

func distOf(h *obs.Hist) ShardDist {
	return ShardDist{Count: h.Count, Mean: h.Mean(), Max: h.Max}
}

// ShardStat is one shard's merged lockstep telemetry.
type ShardStat struct {
	Shard     int     `json:"shard"`
	BusyMs    float64 `json:"busyMs"`    // wall-clock ms executing events
	BarrierMs float64 `json:"barrierMs"` // wall-clock ms at window barriers
	BusyRatio float64 `json:"busyRatio"` // busy / (busy + barrier)

	BarrierWaitNs ShardDist `json:"barrierWaitNs"` // per-window barrier wait, ns
	WindowEvents  ShardDist `json:"windowEvents"`  // events executed per window
	MailboxMerged ShardDist `json:"mailboxMerged"` // cross-shard events merged per barrier
	MailboxPeak   uint64    `json:"mailboxPeak"`   // mailbox depth high-water mark
}

// GroupStats is the merged lockstep-observatory snapshot of a run:
// what `hmcsim -shardstats` folds into the Result and renders as the
// per-shard imbalance report.
type GroupStats struct {
	Systems  int       `json:"systems"`  // sharded systems observed
	Shards   int       `json:"shards"`   // widest group's shard count
	WindowPs int64     `json:"windowPs"` // lockstep safety window
	Windows  uint64    `json:"windows"`  // windows opened at barriers
	SkipPs   ShardDist `json:"skipPs"`   // idle sim-time skipped per window open

	PerShard []ShardStat `json:"perShard,omitempty"`
}

// Stats merges every registered system's observatory. Call after the
// traced runs complete; it reads state the shard goroutines wrote.
func (c *ShardStatsCollector) Stats() GroupStats {
	c.mu.Lock()
	entries := append([]shardStatsEntry(nil), c.groups...)
	c.mu.Unlock()

	gs := GroupStats{Systems: len(entries)}
	if len(entries) == 0 {
		return gs
	}
	for _, e := range entries {
		if n := e.g.Shards(); n > gs.Shards {
			gs.Shards = n
		}
		if w := int64(e.g.Window()); w > gs.WindowPs {
			gs.WindowPs = w
		}
	}
	var skip obs.Hist
	busyNs := make([]int64, gs.Shards)
	barNs := make([]int64, gs.Shards)
	type shardHists struct{ wait, events, mail obs.Hist }
	hists := make([]shardHists, gs.Shards)
	for _, e := range entries {
		gs.Windows += e.t.Windows
		skip.Merge(&e.t.WindowSkip)
		busy := e.g.BusyNanos()
		bar := e.g.BarrierNanos()
		for i := 0; i < e.g.Shards(); i++ {
			busyNs[i] += busy[i]
			barNs[i] += bar[i]
			st := e.t.Shard(i)
			hists[i].wait.Merge(&st.BarrierWait)
			hists[i].events.Merge(&st.WindowEvents)
			hists[i].mail.Merge(&st.Mailbox)
		}
	}
	gs.SkipPs = distOf(&skip)
	gs.PerShard = make([]ShardStat, gs.Shards)
	for i := range gs.PerShard {
		busy := float64(busyNs[i]) / 1e6
		bar := float64(barNs[i]) / 1e6
		ratio := 0.0
		if busy+bar > 0 {
			ratio = busy / (busy + bar)
		}
		gs.PerShard[i] = ShardStat{
			Shard:         i,
			BusyMs:        busy,
			BarrierMs:     bar,
			BusyRatio:     ratio,
			BarrierWaitNs: distOf(&hists[i].wait),
			WindowEvents:  distOf(&hists[i].events),
			MailboxMerged: distOf(&hists[i].mail),
			MailboxPeak:   hists[i].mail.Max,
		}
	}
	return gs
}

// SuggestedShards is a rule-of-thumb shard count for this workload: the
// parallel-speedup bound (total busy time over the busiest shard's busy
// time) rounded to the nearest count, clamped to [1, 5] (hub plus four
// quadrants). 1 means "stay serial" — also the suggestion whenever
// barrier waits dominate and the bound is below 2, since a partition
// that mostly waits cannot pay for its barriers.
func (s GroupStats) SuggestedShards() int {
	var total, max, barrier float64
	for _, sh := range s.PerShard {
		total += sh.BusyMs
		barrier += sh.BarrierMs
		if sh.BusyMs > max {
			max = sh.BusyMs
		}
	}
	if max <= 0 {
		return 1
	}
	bound := total / max
	if bound < 2 && total/(total+barrier) < 0.5 {
		return 1
	}
	n := int(bound + 0.5)
	if n < 1 {
		n = 1
	}
	if n > 5 {
		n = 5
	}
	return n
}

// Report renders the human-readable per-shard imbalance report printed
// by `hmcsim -shardstats`.
func (s GroupStats) Report() string {
	var b strings.Builder
	if s.Systems == 0 || s.Shards == 0 {
		b.WriteString("shard report: no sharded systems ran (use -shards >= 2 to shard the engine)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "shard report (%d system", s.Systems)
	if s.Systems != 1 {
		b.WriteString("s")
	}
	fmt.Fprintf(&b, ", %d shards, window %d ps)\n", s.Shards, s.WindowPs)
	fmt.Fprintf(&b, "  windows opened: %d, idle sim-time skipped per open: mean=%.0f ps max=%d ps\n",
		s.Windows, s.SkipPs.Mean, s.SkipPs.Max)
	var total, max float64
	for _, sh := range s.PerShard {
		total += sh.BusyMs
		if sh.BusyMs > max {
			max = sh.BusyMs
		}
	}
	for _, sh := range s.PerShard {
		role := "quad"
		if sh.Shard == 0 {
			role = "hub "
		}
		fmt.Fprintf(&b, "  shard %d (%s): busy=%8.2fms barrier=%8.2fms busy-ratio=%4.0f%%  events/window mean=%.1f  mailbox/barrier mean=%.1f peak=%d\n",
			sh.Shard, role, sh.BusyMs, sh.BarrierMs, 100*sh.BusyRatio,
			sh.WindowEvents.Mean, sh.MailboxMerged.Mean, sh.MailboxPeak)
	}
	if max > 0 {
		fmt.Fprintf(&b, "  speedup bound from imbalance: %.2fx (total busy / busiest shard)\n", total/max)
	}
	n := s.SuggestedShards()
	switch {
	case n <= 1:
		b.WriteString("  suggestion: stay serial (-shards 0); barrier waits dominate the busy time this partition exposes\n")
	default:
		fmt.Fprintf(&b, "  suggestion: -shards %d\n", n)
	}
	return b.String()
}
