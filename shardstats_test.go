// Tests for the lockstep observatory's public surface: WithShardStats
// collection, report rendering, determinism, and sharded teardown under
// a canceled context.
package hmcsim_test

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"hmcsim"
)

func TestWithShardStatsCollects(t *testing.T) {
	ctx, ssc := hmcsim.WithShardStats(context.Background())
	o := hmcsim.Options{Quick: true, Shards: 4}
	runQuickGUPS(o.NewSystemCtx(ctx))

	if ssc.Systems() != 1 {
		t.Fatalf("collector saw %d systems, want 1", ssc.Systems())
	}
	gs := ssc.Stats()
	if gs.Shards != 4 {
		t.Fatalf("Stats.Shards = %d, want 4", gs.Shards)
	}
	if gs.WindowPs <= 0 {
		t.Fatalf("Stats.WindowPs = %d, want > 0", gs.WindowPs)
	}
	if gs.Windows == 0 {
		t.Fatal("no window opens observed over a full GUPS run")
	}
	if len(gs.PerShard) != 4 {
		t.Fatalf("PerShard has %d entries, want 4", len(gs.PerShard))
	}
	for _, sh := range gs.PerShard {
		if sh.BarrierWaitNs.Count == 0 {
			t.Fatalf("shard %d: no barrier waits recorded", sh.Shard)
		}
		if sh.BusyRatio < 0 || sh.BusyRatio > 1 {
			t.Fatalf("shard %d: busy ratio %v out of [0,1]", sh.Shard, sh.BusyRatio)
		}
	}
	rep := gs.Report()
	for _, want := range []string{"shard report", "windows opened", "speedup bound", "suggestion:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if n := gs.SuggestedShards(); n < 1 || n > 5 {
		t.Errorf("SuggestedShards() = %d, want within [1, 5]", n)
	}
}

// TestWithShardStatsSerialRun: a serial build registers nothing, and the
// report says so instead of fabricating shard rows.
func TestWithShardStatsSerialRun(t *testing.T) {
	ctx, ssc := hmcsim.WithShardStats(context.Background())
	o := hmcsim.Options{Quick: true}
	runQuickGUPS(o.NewSystemCtx(ctx))
	if ssc.Systems() != 0 {
		t.Fatalf("serial run registered %d sharded systems", ssc.Systems())
	}
	if rep := ssc.Stats().Report(); !strings.Contains(rep, "no sharded systems") {
		t.Errorf("empty report = %q, want the no-sharded-systems notice", rep)
	}
}

// TestShardStatsDoesNotChangeResults guards the observatory's
// observe-only contract: measurements with the collector attached are
// bit-identical to an untraced sharded run.
func TestShardStatsDoesNotChangeResults(t *testing.T) {
	o := hmcsim.Options{Quick: true, Seed: 3, Shards: 2}
	run := func(ctx context.Context) hmcsim.Measurement {
		sys := o.NewSystemCtx(ctx)
		return hmcsim.GUPS{
			Ports: 2, Size: 64, Pattern: hmcsim.AllVaults,
			Warmup: 2 * hmcsim.Microsecond, Window: 10 * hmcsim.Microsecond,
		}.Run(sys)
	}
	plain := run(context.Background())
	sctx, _ := hmcsim.WithShardStats(context.Background())
	traced := run(sctx)
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("shard-stats collection changed the measurement:\n plain  %+v\n traced %+v", plain, traced)
	}
}

// TestCanceledContextShardedTeardown is the teardown regression test: a
// sharded system built from an already-canceled context must interrupt
// promptly — no shard may stay parked on a barrier — and leak no
// goroutines.
func TestCanceledContextShardedTeardown(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := hmcsim.Options{Quick: true, Shards: 4}
	sys := o.NewSystemCtx(ctx)
	runQuickGUPS(sys)
	if !sys.Eng.Interrupted() {
		t.Fatal("canceled context did not interrupt the sharded run")
	}
	deadline := time.Now().Add(time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked after canceled sharded run: %d > %d", n, before)
	}
}
