package hmcsim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Spec is a serializable experiment request: which registered
// experiment to run and with which options. It is the unit of work the
// hmcsimd service accepts, and its canonical encoding is the
// content-address under which results are cached — two specs that mean
// the same experiment must hash to the same key, however their JSON was
// spelled.
//
// Options.Workers is deliberately excluded (json:"-"): it changes only
// wall-clock time, never results, so it must not split the cache.
type Spec struct {
	//hmcsim:speckey-ok founding key field: every cached result already keys on it
	Exp string `json:"exp"`
	//hmcsim:speckey-ok founding key field: every cached result already keys on it
	Options Options `json:"options"`
}

// TrafficExp is the registered name of the generic traffic experiment,
// the only runner that consumes Options.Traffic.
const TrafficExp = "traffic"

// Validate rejects specs that cannot run regardless of registry: bad
// option values such as an unknown traffic pattern, or a traffic spec
// attached to an experiment that would silently ignore it (and
// needlessly fork the result cache's content keys). The experiment
// name's existence is validated separately against whichever registry
// will run the spec.
func (s Spec) Validate() error {
	if s.Options.Traffic != nil && s.Exp != TrafficExp {
		return fmt.Errorf("hmcsim: options.traffic only applies to the %q experiment, not %q", TrafficExp, s.Exp)
	}
	return s.Options.Validate()
}

// Canonical returns the spec's canonical JSON encoding: object keys
// sorted, no insignificant whitespace, numbers preserved exactly. Any
// JSON spelling of the same spec — reordered fields, extra whitespace —
// canonicalizes to the same bytes.
func (s Spec) Canonical() ([]byte, error) {
	raw, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("hmcsim: marshal spec: %w", err)
	}
	// Round-trip through a generic value: encoding/json emits map keys
	// in sorted order, which is exactly the canonical form. UseNumber
	// keeps 64-bit seeds exact instead of routing them through float64.
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("hmcsim: canonicalize spec: %w", err)
	}
	return json.Marshal(v)
}

// Key returns the spec's content address: the hex SHA-256 of its
// canonical encoding. Identical specs — whatever field order or
// formatting they were submitted with — share a key.
func (s Spec) Key() (string, error) {
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}
