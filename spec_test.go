package hmcsim_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"hmcsim"
)

func TestResultJSONRoundTrip(t *testing.T) {
	in := hmcsim.Result{
		Name:    "fig6",
		Title:   "Figure 6",
		Options: hmcsim.Options{Quick: true, Seed: 42, Workers: 8},
		Series: []hmcsim.Series{
			{
				Name: "bandwidth", Unit: "GB/s",
				Points: []hmcsim.Point{
					{Label: "1 bank", X: 16, Y: 1.625},
					{Label: "16 vaults", X: 128, Y: 22.75},
				},
			},
			{
				Name:   "avg-latency", // no unit: omitempty path
				Points: []hmcsim.Point{{X: 0, Y: 0}},
			},
		},
		Text: "human form",
	}
	blob, err := in.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back hmcsim.Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	// Workers and Text are deliberately excluded from the wire form;
	// everything else must survive.
	in.Options.Workers = 0
	in.Text = ""
	if !reflect.DeepEqual(in, back) {
		t.Fatalf("round trip changed the result:\n in: %+v\nout: %+v", in, back)
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	in := hmcsim.Series{
		Name: "max-latency", Unit: "ns",
		Points: []hmcsim.Point{{Label: "pinned1/64B", X: 5, Y: 1234.5}, {X: 6, Y: 0}},
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back hmcsim.Series
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, back) {
		t.Fatalf("round trip changed the series:\n in: %+v\nout: %+v", in, back)
	}
}

func TestSpecKeyStability(t *testing.T) {
	// The same spec spelled with different JSON field orders and
	// whitespace must canonicalize to the same key.
	spellings := []string{
		`{"exp":"fig6","options":{"quick":true,"seed":7}}`,
		`{"options":{"seed":7,"quick":true},"exp":"fig6"}`,
		`{
			"options": { "quick": true, "seed": 7 },
			"exp": "fig6"
		}`,
	}
	keys := map[string]bool{}
	for _, src := range spellings {
		var s hmcsim.Spec
		if err := json.Unmarshal([]byte(src), &s); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		k, err := s.Key()
		if err != nil {
			t.Fatal(err)
		}
		keys[k] = true
	}
	if len(keys) != 1 {
		t.Fatalf("field order changed the key: %v", keys)
	}

	// The key must be deterministic across calls...
	s := hmcsim.Spec{Exp: "fig6", Options: hmcsim.Options{Quick: true, Seed: 7}}
	k1, err := s.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := s.Key()
	if k1 != k2 || !keys[k1] {
		t.Fatalf("struct-built key %s != JSON-built key set %v", k1, keys)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not hex SHA-256", k1)
	}
}

func TestSpecKeyDiscriminates(t *testing.T) {
	base := hmcsim.Spec{Exp: "fig6", Options: hmcsim.Options{Quick: true, Seed: 7}}
	variants := []hmcsim.Spec{
		{Exp: "fig13", Options: base.Options},
		{Exp: "fig6", Options: hmcsim.Options{Quick: false, Seed: 7}},
		{Exp: "fig6", Options: hmcsim.Options{Quick: true, Seed: 8}},
	}
	bk, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		vk, err := v.Key()
		if err != nil {
			t.Fatal(err)
		}
		if vk == bk {
			t.Errorf("distinct spec %+v collides with %+v", v, base)
		}
	}

	// Workers changes only wall-clock time, never results, so it must
	// not split the cache.
	w := base
	w.Options.Workers = 16
	wk, err := w.Key()
	if err != nil {
		t.Fatal(err)
	}
	if wk != bk {
		t.Error("Workers changed the content address")
	}
}

func TestSpecKeyPreservesLargeSeeds(t *testing.T) {
	// Seeds above 2^53 must survive canonicalization exactly (no float64
	// round-trip): nearby seeds that a float64 would conflate must keep
	// distinct keys.
	a := hmcsim.Spec{Exp: "fig6", Options: hmcsim.Options{Seed: 1<<63 + 1}}
	b := hmcsim.Spec{Exp: "fig6", Options: hmcsim.Options{Seed: 1<<63 + 2}}
	ak, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	bk, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ak == bk {
		t.Fatal("adjacent 64-bit seeds collapsed to one key")
	}
	canon, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	var back hmcsim.Spec
	if err := json.Unmarshal(canon, &back); err != nil {
		t.Fatal(err)
	}
	if back.Options.Seed != a.Options.Seed {
		t.Fatalf("canonical form altered the seed: %d -> %d", a.Options.Seed, back.Options.Seed)
	}
}
