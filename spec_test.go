package hmcsim_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"hmcsim"
)

func TestResultJSONRoundTrip(t *testing.T) {
	in := hmcsim.Result{
		Name:    "fig6",
		Title:   "Figure 6",
		Options: hmcsim.Options{Quick: true, Seed: 42, Workers: 8},
		Series: []hmcsim.Series{
			{
				Name: "bandwidth", Unit: "GB/s",
				Points: []hmcsim.Point{
					{Label: "1 bank", X: 16, Y: 1.625},
					{Label: "16 vaults", X: 128, Y: 22.75},
				},
			},
			{
				Name:   "avg-latency", // no unit: omitempty path
				Points: []hmcsim.Point{{X: 0, Y: 0}},
			},
		},
		Text: "human form",
	}
	blob, err := in.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back hmcsim.Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	// Workers and Text are deliberately excluded from the wire form;
	// everything else must survive.
	in.Options.Workers = 0
	in.Text = ""
	if !reflect.DeepEqual(in, back) {
		t.Fatalf("round trip changed the result:\n in: %+v\nout: %+v", in, back)
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	in := hmcsim.Series{
		Name: "max-latency", Unit: "ns",
		Points: []hmcsim.Point{{Label: "pinned1/64B", X: 5, Y: 1234.5}, {X: 6, Y: 0}},
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back hmcsim.Series
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, back) {
		t.Fatalf("round trip changed the series:\n in: %+v\nout: %+v", in, back)
	}
}

func TestSpecKeyStability(t *testing.T) {
	// The same spec spelled with different JSON field orders and
	// whitespace must canonicalize to the same key.
	spellings := []string{
		`{"exp":"fig6","options":{"quick":true,"seed":7}}`,
		`{"options":{"seed":7,"quick":true},"exp":"fig6"}`,
		`{
			"options": { "quick": true, "seed": 7 },
			"exp": "fig6"
		}`,
	}
	keys := map[string]bool{}
	for _, src := range spellings {
		var s hmcsim.Spec
		if err := json.Unmarshal([]byte(src), &s); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		k, err := s.Key()
		if err != nil {
			t.Fatal(err)
		}
		keys[k] = true
	}
	if len(keys) != 1 {
		t.Fatalf("field order changed the key: %v", keys)
	}

	// The key must be deterministic across calls...
	s := hmcsim.Spec{Exp: "fig6", Options: hmcsim.Options{Quick: true, Seed: 7}}
	k1, err := s.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := s.Key()
	if k1 != k2 || !keys[k1] {
		t.Fatalf("struct-built key %s != JSON-built key set %v", k1, keys)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not hex SHA-256", k1)
	}
}

func TestSpecKeyDiscriminates(t *testing.T) {
	base := hmcsim.Spec{Exp: "fig6", Options: hmcsim.Options{Quick: true, Seed: 7}}
	variants := []hmcsim.Spec{
		{Exp: "fig13", Options: base.Options},
		{Exp: "fig6", Options: hmcsim.Options{Quick: false, Seed: 7}},
		{Exp: "fig6", Options: hmcsim.Options{Quick: true, Seed: 8}},
	}
	bk, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		vk, err := v.Key()
		if err != nil {
			t.Fatal(err)
		}
		if vk == bk {
			t.Errorf("distinct spec %+v collides with %+v", v, base)
		}
	}

	// Workers changes only wall-clock time, never results, so it must
	// not split the cache.
	w := base
	w.Options.Workers = 16
	wk, err := w.Key()
	if err != nil {
		t.Fatal(err)
	}
	if wk != bk {
		t.Error("Workers changed the content address")
	}
}

// TestSpecKeyStableAcrossTrafficExtension pins the canonical encoding
// of a pre-traffic spec: adding the options.traffic field must not
// change the keys of specs that do not use it, or every daemon cache
// entry from before the traffic subsystem would be silently orphaned.
func TestSpecKeyStableAcrossTrafficExtension(t *testing.T) {
	s := hmcsim.Spec{Exp: "fig6", Options: hmcsim.Options{Quick: true, Seed: 7}}
	canon, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	// The exact canonical bytes from before Options.Traffic existed.
	want := `{"exp":"fig6","options":{"quick":true,"seed":7}}`
	if string(canon) != want {
		t.Fatalf("canonical form drifted:\n got: %s\nwant: %s", canon, want)
	}
}

func TestSpecKeyCoversTrafficFields(t *testing.T) {
	base := hmcsim.Spec{Exp: "traffic", Options: hmcsim.Options{Quick: true}}
	zipf := base
	zipf.Options.Traffic = &hmcsim.TrafficSpec{Pattern: hmcsim.TrafficZipf, ZipfTheta: 1.2}
	bk, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	zk, err := zipf.Key()
	if err != nil {
		t.Fatal(err)
	}
	if bk == zk {
		t.Fatal("traffic spec did not change the content address")
	}

	// Identical traffic specs share a key however they were built.
	var fromJSON hmcsim.Spec
	src := `{"options":{"traffic":{"zipfTheta":1.2,"pattern":"zipf"},"seed":0,"quick":true},"exp":"traffic"}`
	if err := json.Unmarshal([]byte(src), &fromJSON); err != nil {
		t.Fatal(err)
	}
	jk, err := fromJSON.Key()
	if err != nil {
		t.Fatal(err)
	}
	if jk != zk {
		t.Fatalf("JSON-built traffic key %s != struct-built %s", jk, zk)
	}

	// Every traffic field must discriminate the key.
	variants := []hmcsim.TrafficSpec{
		{Pattern: hmcsim.TrafficZipf, ZipfTheta: 1.1},
		{Pattern: hmcsim.TrafficHotspot, ZipfTheta: 1.2},
		{Pattern: hmcsim.TrafficZipf, ZipfTheta: 1.2, WriteFraction: 0.5},
		{Pattern: hmcsim.TrafficZipf, ZipfTheta: 1.2, Discipline: hmcsim.TrafficOpenLoop, RateGBps: 2},
		{Pattern: hmcsim.TrafficZipf, ZipfTheta: 1.2, Phases: []hmcsim.TrafficPhase{{DurationUs: 10}}},
	}
	for _, v := range variants {
		s := base
		v := v
		s.Options.Traffic = &v
		vk, err := s.Key()
		if err != nil {
			t.Fatal(err)
		}
		if vk == zk {
			t.Errorf("traffic variant %+v collides with the zipf base spec", v)
		}
	}
}

func TestSpecValidateTraffic(t *testing.T) {
	bad := hmcsim.Spec{Exp: "traffic", Options: hmcsim.Options{
		Traffic: &hmcsim.TrafficSpec{Pattern: "zipfian"},
	}}
	err := bad.Validate()
	if err == nil {
		t.Fatal("unknown traffic pattern accepted")
	}
	for _, name := range hmcsim.TrafficPatterns() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list pattern %q", err, name)
		}
	}
	ok := hmcsim.Spec{Exp: "traffic", Options: hmcsim.Options{
		Traffic: &hmcsim.TrafficSpec{Pattern: hmcsim.TrafficChase},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid traffic spec rejected: %v", err)
	}
	if err := (hmcsim.Spec{Exp: "fig6"}).Validate(); err != nil {
		t.Errorf("traffic-less spec rejected: %v", err)
	}

	// A traffic spec on an experiment that ignores it would silently
	// fork the cache keys, so it is rejected at validation.
	misapplied := hmcsim.Spec{Exp: "fig6", Options: hmcsim.Options{
		Traffic: &hmcsim.TrafficSpec{Pattern: hmcsim.TrafficZipf},
	}}
	if err := misapplied.Validate(); err == nil || !strings.Contains(err.Error(), "traffic") {
		t.Errorf("traffic spec on fig6 accepted (err = %v)", err)
	}

	// Cross-field violations must fail Spec validation too, not just
	// compilation: this is what turns them into HTTP 400s.
	uncompilable := hmcsim.Spec{Exp: "traffic", Options: hmcsim.Options{
		Traffic: &hmcsim.TrafficSpec{Pattern: hmcsim.TrafficStride, StrideBytes: 8192, WorkingSetBytes: 8192},
	}}
	if err := uncompilable.Validate(); err == nil {
		t.Error("uncompilable stride spec accepted")
	}
}

func TestSpecKeyPreservesLargeSeeds(t *testing.T) {
	// Seeds above 2^53 must survive canonicalization exactly (no float64
	// round-trip): nearby seeds that a float64 would conflate must keep
	// distinct keys.
	a := hmcsim.Spec{Exp: "fig6", Options: hmcsim.Options{Seed: 1<<63 + 1}}
	b := hmcsim.Spec{Exp: "fig6", Options: hmcsim.Options{Seed: 1<<63 + 2}}
	ak, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	bk, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ak == bk {
		t.Fatal("adjacent 64-bit seeds collapsed to one key")
	}
	canon, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	var back hmcsim.Spec
	if err := json.Unmarshal(canon, &back); err != nil {
		t.Fatal(err)
	}
	if back.Options.Seed != a.Options.Seed {
		t.Fatalf("canonical form altered the seed: %d -> %d", a.Options.Seed, back.Options.Seed)
	}
}
