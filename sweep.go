package hmcsim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep runs n independent jobs across workers goroutines and returns
// their results in job order. workers <= 0 uses runtime.NumCPU();
// workers == 1 runs inline with no goroutines.
//
// Each job must be self-contained — build its own System, derive its
// seeds from the job index — so that results are bit-identical whatever
// the worker count. Engines are single-threaded, so confining one
// System per job keeps the whole sweep data-race-free without locks.
//
// Cancelling ctx stops the sweep from scheduling further jobs: points
// already running finish (the deterministic engines are not
// interruptible mid-simulation), unscheduled slots keep their zero
// value, and the partial slice is returned. Callers that care must
// check ctx.Err() and discard the result.
func Sweep[T any](ctx context.Context, workers, n int, job func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	sink := sinkFrom(ctx)
	sink.addTotal(n)
	if workers == 1 {
		for i := range out {
			if ctx.Err() != nil {
				return out
			}
			out[i] = job(i)
			sink.pointDone()
		}
		return out
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				out[i] = job(i)
				sink.pointDone()
			}
		}()
	}
	wg.Wait()
	return out
}

// Sweep2 runs the cross product of two dimensions, outer-major, and is
// sugar for the common (size x pattern)-shaped experiment sweeps. It
// inherits Sweep's cancellation semantics.
func Sweep2[A, B, T any](ctx context.Context, workers int, as []A, bs []B, job func(a A, b B) T) []T {
	return Sweep(ctx, workers, len(as)*len(bs), func(i int) T {
		return job(as[i/len(bs)], bs[i%len(bs)])
	})
}
