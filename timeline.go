package hmcsim

import (
	"context"
	"io"

	"hmcsim/internal/obs"
)

// TimelineCollector accumulates time-resolved activity series (vault
// accepts and rejects, link flits, NoC hops, host tag pressure over
// simulated time) from every system built with Options.NewSystemCtx
// under its context. Obtain one with WithTimeline; export after the
// experiment finishes with WriteChromeTrace.
//
// Memory is bounded regardless of run length: each system's timeline
// holds a fixed number of buckets and downsamples (doubling the bucket
// width) whenever the run outgrows them.
type TimelineCollector struct {
	col obs.Collector
}

// WithTimeline returns a context under which Options.NewSystemCtx
// attaches a per-system activity timeline, and the collector that
// aggregates them. Composes with WithTrace and WithProgress: a context
// carrying both a trace and a timeline collector builds systems whose
// tracers report into both. Runs without WithTimeline pay nothing.
func WithTimeline(ctx context.Context) (context.Context, *TimelineCollector) {
	tlc := &TimelineCollector{}
	return context.WithValue(ctx, timelineKey{}, tlc), tlc
}

type timelineKey struct{}

func timelineFrom(ctx context.Context) *TimelineCollector {
	tlc, _ := ctx.Value(timelineKey{}).(*TimelineCollector)
	return tlc
}

// Systems returns how many systems contributed timelines so far.
func (tlc *TimelineCollector) Systems() int { return tlc.col.Systems() }

// WriteChromeTrace renders the collected timelines as Chrome
// trace_event JSON — one process per system, one counter series per
// component — loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Valid (empty) output is produced even when no
// system registered.
func (tlc *TimelineCollector) WriteChromeTrace(w io.Writer) error {
	return tlc.col.WriteChromeTrace(w)
}
