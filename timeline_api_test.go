// Tests for the timeline wiring of the public API: WithTimeline
// contexts, Chrome trace_event export, and composition with WithTrace.
package hmcsim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"hmcsim"
)

func runQuickGUPS(sys *hmcsim.System) hmcsim.Measurement {
	return hmcsim.GUPS{
		Ports: 2, Size: 128, Pattern: hmcsim.AllVaults,
		Warmup: 2 * hmcsim.Microsecond, Window: 10 * hmcsim.Microsecond,
	}.Run(sys)
}

func TestWithTimelineProducesChromeTrace(t *testing.T) {
	ctx, tlc := hmcsim.WithTimeline(context.Background())
	o := hmcsim.Options{Quick: true}
	runQuickGUPS(o.NewSystemCtx(ctx))

	if tlc.Systems() != 1 {
		t.Fatalf("timeline collector saw %d systems, want 1", tlc.Systems())
	}
	var buf bytes.Buffer
	if err := tlc.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("write chrome trace: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	counters := map[string]int{}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "C" {
			counters[ev.Name]++
		}
	}
	if len(counters) == 0 {
		t.Fatal("trace has no counter events")
	}
	for _, want := range []string{"vault 0", "noc hops", "host tags"} {
		if counters[want] == 0 {
			t.Errorf("trace missing counter series %q; have %v", want, counters)
		}
	}
}

// TestWithTimelineEmptyRunStillValid: a run that builds no systems must
// still export a valid (empty) trace — the table1 smoke case.
func TestWithTimelineEmptyRunStillValid(t *testing.T) {
	_, tlc := hmcsim.WithTimeline(context.Background())
	var buf bytes.Buffer
	if err := tlc.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if _, ok := out["traceEvents"]; !ok {
		t.Fatal("empty trace missing traceEvents key")
	}
}

// TestWithTimelineComposesWithTrace: a context carrying both collectors
// feeds one system's tracers into both — the trace summary and the
// timeline each see the run.
func TestWithTimelineComposesWithTrace(t *testing.T) {
	ctx, tc := hmcsim.WithTrace(context.Background())
	ctx, tlc := hmcsim.WithTimeline(ctx)
	o := hmcsim.Options{Quick: true}
	runQuickGUPS(o.NewSystemCtx(ctx))

	if tc.Systems() != 1 {
		t.Fatalf("trace collector saw %d systems, want 1", tc.Systems())
	}
	if tlc.Systems() != 1 {
		t.Fatalf("timeline collector saw %d systems, want 1", tlc.Systems())
	}
	blob, err := json.Marshal(tc)
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Vaults struct {
			Accepts uint64 `json:"Accepts"`
		}
	}
	if err := json.Unmarshal(blob, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Vaults.Accepts == 0 {
		t.Error("trace summary empty despite shared tracer")
	}
	var buf bytes.Buffer
	if err := tlc.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"ph":"C"`)) {
		t.Error("timeline trace has no counter events despite shared tracer")
	}
}

// TestTimelineDoesNotChangeResults guards determinism: a timeline-
// sampled system must produce bit-identical measurements to a plain
// one, since the sampler only observes.
func TestTimelineDoesNotChangeResults(t *testing.T) {
	o := hmcsim.Options{Quick: true, Seed: 3}
	run := func(ctx context.Context) hmcsim.Measurement {
		sys := o.NewSystemCtx(ctx)
		return hmcsim.GUPS{
			Ports: 2, Size: 64, Pattern: hmcsim.AllVaults,
			Warmup: 2 * hmcsim.Microsecond, Window: 10 * hmcsim.Microsecond,
		}.Run(sys)
	}
	plain := run(context.Background())
	tctx, _ := hmcsim.WithTimeline(context.Background())
	sampled := run(tctx)
	if !reflect.DeepEqual(plain, sampled) {
		t.Errorf("timeline sampling changed the measurement:\n plain   %+v\n sampled %+v", plain, sampled)
	}
}
