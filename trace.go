package hmcsim

import (
	"context"

	"hmcsim/internal/obs"
)

// TraceCollector accumulates per-component tracer state from every
// system built with Options.NewSystemCtx under its context: vault queue
// occupancy, link utilization, NoC hops, and host tag-pool pressure.
// Obtain one with WithTrace; read it after the experiment finishes.
type TraceCollector struct {
	col obs.Collector
}

// WithTrace returns a context under which Options.NewSystemCtx attaches
// tracers to every system it builds, and the collector that aggregates
// them. Tracing adds a few percent of overhead to the kernel hot paths;
// runs without WithTrace pay nothing.
func WithTrace(ctx context.Context) (context.Context, *TraceCollector) {
	tc := &TraceCollector{}
	return context.WithValue(ctx, traceKey{}, tc), tc
}

type traceKey struct{}

func collectorFrom(ctx context.Context) *TraceCollector {
	tc, _ := ctx.Value(traceKey{}).(*TraceCollector)
	return tc
}

// String renders a human-readable per-component summary.
func (tc *TraceCollector) String() string { return tc.col.Summary().String() }

// MarshalJSON renders the summary as JSON, for embedding alongside
// experiment results.
func (tc *TraceCollector) MarshalJSON() ([]byte, error) { return tc.col.Summary().JSON() }

// Systems returns how many systems contributed tracers so far.
func (tc *TraceCollector) Systems() int { return tc.col.Systems() }
