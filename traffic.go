package hmcsim

import (
	"fmt"

	"hmcsim/internal/core"
	"hmcsim/internal/traffic"
)

// TrafficSpec declares synthetic traffic for one port: a named address
// pattern (uniform, stride, sequential, hotspot, zipf, chase), a
// read/write mix, an injection discipline (closed-loop outstanding
// bound or open-loop GB/s token bucket), and an optional phase script.
// The zero value is uniform random read-only closed-loop traffic — the
// paper's GUPS personality. It is JSON-serializable and rides inside
// Options, so traffic experiments are content-addressable by Spec.Key
// and servable by hmcsimd like every paper figure.
type TrafficSpec = traffic.Spec

// TrafficPhase is one step of a traffic phase script: a duration plus
// optional pattern handoff, rate override, or silence.
type TrafficPhase = traffic.Phase

// Traffic pattern and discipline names, re-exported for callers that
// build specs programmatically.
const (
	TrafficUniform    = traffic.PatternUniform
	TrafficStride     = traffic.PatternStride
	TrafficSequential = traffic.PatternSequential
	TrafficHotspot    = traffic.PatternHotspot
	TrafficZipf       = traffic.PatternZipf
	TrafficChase      = traffic.PatternChase

	TrafficClosedLoop = traffic.DisciplineClosed
	TrafficOpenLoop   = traffic.DisciplineOpen
)

// TrafficPatterns returns the valid pattern names; unknown names are
// rejected (with this list in the error) by TrafficSpec.Validate,
// which the CLI, Spec validation, and the hmcsimd submit path share.
func TrafficPatterns() []string { return traffic.PatternNames() }

// TrafficWorkload drives Ports synthetic-traffic ports against a
// System and reports what the monitors saw, completing the Workload
// trio beside GUPS and Streams. Validate rejects bad specs up front;
// Run panics on an invalid spec (the Workload interface has no error
// return), so callers accepting untrusted specs must Validate first —
// the CLI and the daemon both do.
type TrafficWorkload struct {
	Label   string
	Traffic TrafficSpec
	Ports   int
	Size    int
	Warmup  Time
	Window  Time
}

// Name identifies the workload configuration.
func (w TrafficWorkload) Name() string {
	if w.Label != "" {
		return w.Label
	}
	return fmt.Sprintf("traffic/%s/%dB/%dports", w.Traffic.Name(), w.Size, w.Ports)
}

// Validate checks the traffic spec against the pattern library and the
// workload's request size; everything it accepts is guaranteed to
// compile, so Run cannot panic after a successful Validate.
func (w TrafficWorkload) Validate() error { return w.Traffic.ValidateFor(w.Size) }

// Run performs the measurement on a fresh set of ports.
func (w TrafficWorkload) Run(sys *System) Measurement {
	r, err := sys.RunTraffic(core.TrafficRunSpec{
		Ports:   w.Ports,
		Size:    w.Size,
		Traffic: w.Traffic,
		Warmup:  w.Warmup,
		Window:  w.Window,
	})
	if err != nil {
		panic(fmt.Sprintf("hmcsim: invalid traffic workload: %v", err))
	}
	m := fromCore(r)
	m.Label = w.Name()
	return m
}
