package hmcsim

import (
	"fmt"

	"hmcsim/internal/addr"
	"hmcsim/internal/core"
	"hmcsim/internal/host"
	"hmcsim/internal/packet"
	"hmcsim/internal/sim"
)

// Measurement is what the monitoring logic reports for one workload
// run: counts, read-latency statistics, and counted request+response
// bandwidth.
type Measurement struct {
	Label    string  `json:"label,omitempty"`
	Reads    uint64  `json:"reads"`
	Writes   uint64  `json:"writes"`
	AvgLatNs float64 `json:"avgLatNs"`
	MinLatNs float64 `json:"minLatNs"`
	MaxLatNs float64 `json:"maxLatNs"`
	// GBps is counted request+response bytes per second.
	GBps     float64 `json:"gbps"`
	WindowNs float64 `json:"windowNs"`
	// HMCOutstanding is the time-averaged in-flight count inside the
	// cube (GUPS runs only).
	HMCOutstanding float64 `json:"hmcOutstanding,omitempty"`
	// AvgHMCLatNs is the mean time a read spends inside the cube (GUPS
	// runs only).
	AvgHMCLatNs float64 `json:"avgHmcLatNs,omitempty"`
	// Ports is the per-port breakdown for stream workloads.
	Ports []Measurement `json:"ports,omitempty"`
}

// ReadRate returns measured read transactions per second.
func (m Measurement) ReadRate() float64 {
	if m.WindowNs <= 0 {
		return 0
	}
	return float64(m.Reads) / (m.WindowNs * 1e-9)
}

// fromCore converts the GUPS driver's result.
func fromCore(r core.Result) Measurement {
	return Measurement{
		Reads:          r.Reads,
		Writes:         r.Writes,
		AvgLatNs:       r.AvgLat.Nanoseconds(),
		MinLatNs:       r.MinLat.Nanoseconds(),
		MaxLatNs:       r.MaxLat.Nanoseconds(),
		GBps:           r.Bandwidth.GBpsValue(),
		WindowNs:       r.Window.Nanoseconds(),
		HMCOutstanding: r.HMCOutstanding,
		AvgHMCLatNs:    r.AvgHMCLat.Nanoseconds(),
	}
}

// fromMonitor converts one port's monitor over an elapsed window.
func fromMonitor(m *host.Monitor, elapsed Time) Measurement {
	out := Measurement{
		Reads:    m.Reads,
		Writes:   m.Writes,
		AvgLatNs: m.AvgLat().Nanoseconds(),
		MinLatNs: m.MinLat.Nanoseconds(),
		MaxLatNs: m.MaxLat.Nanoseconds(),
		WindowNs: elapsed.Nanoseconds(),
	}
	if elapsed > 0 {
		out.GBps = float64(m.CountedBytes) / elapsed.Seconds() / 1e9
	}
	return out
}

// Workload generates traffic against a System's port fabric and reports
// what the monitors saw. Run drives the system's engine to completion
// of the workload's measurement.
type Workload interface {
	Name() string
	Run(sys *System) Measurement
}

// GUPS is the free-running random-access workload of the paper's Figure
// 5a: Ports address generators issue requests of Size bytes shaped by
// Pattern, warm up for Warmup, then measure for Window.
type GUPS struct {
	Ports   int
	Size    int
	Pattern PatternSpec
	Linear  bool // sequential instead of random addresses
	Mix     bool // even read/write mix instead of read-only
	Warmup  Time
	Window  Time
}

// Name identifies the workload configuration.
func (g GUPS) Name() string {
	return fmt.Sprintf("gups/%s/%dB/%dports", g.Pattern, g.Size, g.Ports)
}

// Run performs the measurement on a fresh set of ports.
func (g GUPS) Run(sys *System) Measurement {
	kind := host.ReadOnly
	if g.Mix {
		kind = host.ReadWriteMix
	}
	r := sys.RunGUPS(core.GUPSSpec{
		Ports:   g.Ports,
		Size:    g.Size,
		Kind:    kind,
		Pattern: g.Pattern.Build(sys),
		Linear:  g.Linear,
		Warmup:  g.Warmup,
		Window:  g.Window,
	})
	m := fromCore(r)
	m.Label = g.Name()
	return m
}

// Streams is the trace-driven workload of the paper's Figure 5b: one
// finite trace per port, all ports replaying simultaneously until every
// port drains. The Measurement aggregates all ports and carries the
// per-port breakdown in Ports.
type Streams struct {
	Label  string
	Traces [][]Request
}

// Name identifies the workload configuration.
func (s Streams) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return fmt.Sprintf("streams/%dports", len(s.Traces))
}

// Run replays the traces and aggregates the port monitors.
func (s Streams) Run(sys *System) Measurement {
	start := sys.Eng.Now()
	ports := sys.PlayStreams(s.Traces)
	elapsed := sys.Eng.Now() - start

	agg := Measurement{Label: s.Name(), WindowNs: elapsed.Nanoseconds()}
	var aggLat sim.Time
	var bytes uint64
	for _, p := range ports {
		pm := fromMonitor(&p.Mon, elapsed)
		agg.Ports = append(agg.Ports, pm)
		agg.Reads += p.Mon.Reads
		agg.Writes += p.Mon.Writes
		aggLat += p.Mon.AggLat
		bytes += p.Mon.CountedBytes
		if agg.MinLatNs == 0 || (pm.MinLatNs > 0 && pm.MinLatNs < agg.MinLatNs) {
			agg.MinLatNs = pm.MinLatNs
		}
		if pm.MaxLatNs > agg.MaxLatNs {
			agg.MaxLatNs = pm.MaxLatNs
		}
	}
	if agg.Reads > 0 {
		agg.AvgLatNs = (aggLat / sim.Time(agg.Reads)).Nanoseconds()
	}
	if elapsed > 0 {
		agg.GBps = float64(bytes) / elapsed.Seconds() / 1e9
	}
	return agg
}

// TraceReplay replays one request sequence on Ports identical stream
// ports, the CLI trace workflow as a workload value.
type TraceReplay struct {
	Label    string
	Requests []Request
	Ports    int
}

// Name identifies the workload configuration.
func (t TraceReplay) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return fmt.Sprintf("replay/%dx%dreqs", t.ports(), len(t.Requests))
}

// ports returns the effective port count Run uses.
func (t TraceReplay) ports() int {
	if t.Ports <= 0 {
		return 1
	}
	return t.Ports
}

// Run copies the trace to every port and replays.
func (t TraceReplay) Run(sys *System) Measurement {
	n := t.ports()
	traces := make([][]Request, n)
	for i := range traces {
		traces[i] = t.Requests
	}
	m := Streams{Label: t.Name(), Traces: traces}.Run(sys)
	return m
}

// TraceSpec describes a synthetic trace: n requests of Size bytes
// confined to a structural subset of the cube. It is the programmatic
// form of the hmctrace CLI.
type TraceSpec struct {
	N    int
	Size int
	// Vaults confines addresses to the first N vaults (0 or 16 = whole
	// cube); Banks, when positive, confines to the first N banks of
	// vault 0 and overrides Vaults.
	Vaults     int
	Banks      int
	Writes     float64 // fraction of writes in [0, 1]
	Sequential bool    // sequential instead of random addresses
	Seed       uint64  // RNG seed; 0 uses the RNG's fixed default
	BlockSize  int     // address-interleave block size; 0 means 128
}

// Generate materializes the trace.
func (t TraceSpec) Generate() ([]Request, error) {
	if !packet.ValidSize(t.Size) {
		return nil, fmt.Errorf("hmcsim: trace size %d must be a multiple of 16 in [16,128]", t.Size)
	}
	block := t.BlockSize
	if block == 0 {
		block = 128
	}
	mapping, err := addr.NewMapping(block)
	if err != nil {
		return nil, err
	}
	mask := addr.AllAccess
	switch {
	case t.Banks > 0:
		mask, err = mapping.BanksMask(t.Banks)
	case t.Vaults > 0 && t.Vaults != addr.Vaults:
		mask, err = mapping.VaultsMask(t.Vaults)
	}
	if err != nil {
		return nil, err
	}
	// sim.NewRand already maps a zero seed to its fixed default, so the
	// spec's zero value stays consistent with every other Seed field.
	rng := sim.NewRand(t.Seed)
	reqs := make([]Request, t.N)
	var cursor uint64
	for i := range reqs {
		var raw uint64
		if t.Sequential {
			raw = cursor
			cursor += uint64(t.Size)
		} else {
			raw = rng.Uint64()
		}
		a := mask.Apply(raw&(addr.CubeBytes-1)) &^ uint64(t.Size-1)
		reqs[i] = Request{
			Addr:  a,
			Size:  t.Size,
			Write: rng.Float64() < t.Writes,
		}
	}
	return reqs, nil
}
